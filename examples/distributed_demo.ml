(* Distributed deterministic processing without two-phase commit
   (paper section 2.2): a 4-node cluster runs YCSB with multi-node
   transactions.  Watch the message counters — Calvin pays per
   transaction, the queue-oriented engine ships whole queues per batch
   and commits with one done/commit exchange per node.

     dune exec examples/distributed_demo.exe *)

open Quill_workloads
open Quill_txn
module Dq = Quill_dist.Dist_quecc
module Dc = Quill_dist.Dist_calvin

let () =
  List.iter
    (fun mp ->
      let cfg nparts =
        {
          Ycsb.default with
          Ycsb.table_size = 160_000;
          nparts;
          theta = 0.0;
          mp_ratio = mp;
          parts_per_txn = 2;
        }
      in
      let wl1 = Ycsb.make (cfg 16) in
      let m1 =
        Dq.run
          { Dq.default_cfg with Dq.planners = 4; executors = 4 }
          wl1 ~batches:5
      in
      let wl2 = Ycsb.make (cfg 16) in
      let m2 =
        Dc.run
          { Dc.default_cfg with Dc.workers = 8 }
          wl2 ~batches:5
      in
      Printf.printf
        "multi-node=%3.0f%%  dist-quecc: %8.0f txn/s %6d msgs (%.1f/txn) | \
         dist-calvin: %8.0f txn/s %6d msgs (%.1f/txn)\n"
        (mp *. 100.)
        (Metrics.throughput m1) m1.Metrics.msgs
        (float_of_int m1.Metrics.msgs /. float_of_int m1.Metrics.committed)
        (Metrics.throughput m2) m2.Metrics.msgs
        (float_of_int m2.Metrics.msgs /. float_of_int m2.Metrics.committed))
    [ 0.0; 0.2; 1.0 ]
