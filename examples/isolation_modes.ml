(* The paradigm's configurability (paper section 3.2): one engine, four
   configurations — {speculative, conservative} x {serializable,
   read-committed} — under a workload with data-dependent abortable
   fragments.  Speculation wins when aborts are rare; conservative
   execution avoids cascades when they are not; read-committed trades
   isolation for extra read parallelism.

     dune exec examples/isolation_modes.exe *)

open Quill_workloads
open Quill_txn
module Engine = Quill_quecc.Engine

let () =
  List.iter
    (fun abort_ratio ->
      Printf.printf "\nabortable transactions: %.0f%%\n" (abort_ratio *. 100.);
      List.iter
        (fun (label, mode, isolation) ->
          let wl =
            Ycsb.make
              {
                Ycsb.default with
                Ycsb.table_size = 50_000;
                nparts = 8;
                theta = 0.6;
                read_ratio = 0.7;
                abort_ratio;
                abort_threshold = 128;
                chain_deps = true;
              }
          in
          let m =
            Engine.run
              {
                Engine.default_cfg with
                Engine.planners = 8;
                executors = 8;
                batch_size = 1024;
                mode;
                isolation;
              }
              wl ~batches:8
          in
          Printf.printf
            "  %-28s %8.0f txn/s  aborted=%-4d cascades=%-5d p99=%.1fms\n"
            label (Metrics.throughput m) m.Metrics.logic_aborted
            m.Metrics.cascades
            (float_of_int (Quill_common.Stats.Hist.percentile m.Metrics.lat 99.0)
            /. 1e6))
        [
          ("speculative serializable", Engine.Speculative, Engine.Serializable);
          ("conservative serializable", Engine.Conservative, Engine.Serializable);
          ( "speculative read-committed",
            Engine.Speculative,
            Engine.Read_committed );
          ( "conservative read-committed",
            Engine.Conservative,
            Engine.Read_committed );
        ])
    [ 0.0; 0.05; 0.2 ]
