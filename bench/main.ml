(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) plus bechamel
   micro-benchmarks of the engine's hot paths.

   Usage:
     bench/main.exe                 -- everything at the default scale
     bench/main.exe table2-row1     -- one experiment
     bench/main.exe micro           -- microbenchmarks only
     bench/main.exe all 0.25        -- everything at quarter scale *)

open Quill_common
open Quill_workloads
module H = Quill_harness

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: real-time cost of the hot paths.         *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let zipf = Zipf.create ~theta:0.99 1_000_000 in
  let rng = Rng.create 11 in
  let bench_zipf =
    Test.make ~name:"zipf-sample-0.99"
      (Staged.stage (fun () -> ignore (Zipf.sample_scrambled zipf rng)))
  in
  let heap = Heap.create ~cmp:compare in
  let bench_heap =
    Test.make ~name:"heap-push-pop"
      (Staged.stage (fun () ->
           Heap.push heap (Rng.int rng 1000);
           ignore (Heap.pop heap)))
  in
  let ycsb =
    Ycsb.make { Ycsb.default with Ycsb.table_size = 10_000; nparts = 4 }
  in
  let stream = ycsb.Quill_txn.Workload.new_stream 0 in
  let bench_gen_ycsb =
    Test.make ~name:"ycsb-gen-txn" (Staged.stage (fun () -> ignore (stream ())))
  in
  let tpcc =
    Tpcc.make
      { Tpcc.default with Tpcc_defs.warehouses = 1; nparts = 4; items = 10_000 }
  in
  let tstream = tpcc.Quill_txn.Workload.new_stream 0 in
  let bench_gen_tpcc =
    Test.make ~name:"tpcc-gen-txn" (Staged.stage (fun () -> ignore (tstream ())))
  in
  let bench_sim_tick =
    Test.make ~name:"sim-1k-thread-barrier"
      (Staged.stage (fun () ->
           let sim = Quill_sim.Sim.create () in
           let b = Quill_sim.Sim.Barrier.create 8 in
           for _ = 1 to 8 do
             Quill_sim.Sim.spawn sim (fun () ->
                 for _ = 1 to 16 do
                   Quill_sim.Sim.tick sim 10;
                   Quill_sim.Sim.Barrier.await sim b
                 done)
           done;
           ignore (Quill_sim.Sim.run sim)))
  in
  let bench_quecc_batch =
    let wl = Ycsb.make { Ycsb.default with Ycsb.table_size = 20_000; nparts = 4 } in
    Test.make ~name:"quecc-256txn-batch"
      (Staged.stage (fun () ->
           ignore
             (Quill_quecc.Engine.run
                {
                  Quill_quecc.Engine.default_cfg with
                  Quill_quecc.Engine.planners = 4;
                  executors = 4;
                  batch_size = 256;
                }
                wl ~batches:1)))
  in
  Test.make_grouped ~name:"quill"
    [
      bench_zipf;
      bench_heap;
      bench_gen_ycsb;
      bench_gen_tpcc;
      bench_sim_tick;
      bench_quecc_batch;
    ]

let run_micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "\n== Microbenchmarks (real time per run) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                                      ~predictors:[| Measure.run |]) i raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false
                                 ~predictors:[| Measure.run |]) instances results in
  (* lint: order-insensitive — rows are List.sort-ed before printing *)
  Hashtbl.iter
    (fun measure tbl ->
      ignore measure;
      let rows =
        (* lint: order-insensitive — same: accumulated rows sorted below *)
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some [ e ] -> Printf.sprintf "%.1f ns" e
              | _ -> "-"
            in
            [ name; est ] :: acc)
          tbl []
      in
      Tablefmt.print ~header:[ "benchmark"; "time/run" ]
        (List.sort compare rows))
    results

(* ------------------------------------------------------------------ *)

let usage ?hint () =
  (match hint with
  | Some h -> Printf.eprintf "main.exe: %s\n" h
  | None -> ());
  prerr_endline
    "usage: main.exe [table2-row1|table2-row2|table2-row3|fig-contention|\n\
    \                 fig-scalability|fig-modes|fig-latency|fig-batch|\n\
    \                 pipeline|skew|fault-tolerance|failover|durability|\n\
    \                 cdc|overload|micro|all]\n\
    \                [scale] [--trace FILE] [--phase-table] [--faults SPEC]\n\
    \                [--arrival RATE] [--admission POLICY[:DEPTH]]\n\
    \                [--deadline TIME] [--retries N[:BACKOFF]]\n\
    \                [--json FILE  (pipeline/skew/failover/durability/cdc: \
     machine-readable results)]\n\
    \                [--check-conflicts  (QueCC runs: verify planned order)]";
  exit 2

(* Pull the option flags out of argv; what remains is positional. *)
type opts = {
  mutable trace_file : string option;
  mutable faults : Quill_faults.Faults.spec option;
  mutable arrival : Quill_clients.Clients.arrival option;
  mutable admission : (Quill_clients.Clients.policy * int) option;
  mutable deadline : int option;
  mutable retries : (int * int) option;
  mutable json : string option;
}

let parse_args () =
  let o =
    {
      trace_file = None;
      faults = None;
      arrival = None;
      admission = None;
      deadline = None;
      retries = None;
      json = None;
    }
  in
  let positional = ref [] in
  let takes_value = function
    | "--trace" | "--faults" | "--arrival" | "--admission" | "--deadline"
    | "--retries" | "--json" ->
        true
    | _ -> false
  in
  let value flag i =
    if i + 1 >= Array.length Sys.argv then
      usage ~hint:(flag ^ " needs an argument") ();
    Sys.argv.(i + 1)
  in
  let parsed flag parse s =
    match parse s with
    | Ok v -> v
    | Error msg -> usage ~hint:(Printf.sprintf "bad %s: %s" flag msg) ()
  in
  let rec go i =
    if i < Array.length Sys.argv then begin
      (match Sys.argv.(i) with
      | "--trace" -> o.trace_file <- Some (value "--trace" i)
      | "--faults" ->
          o.faults <-
            Some (parsed "--faults" Quill_faults.Faults.parse (value "--faults" i))
      | "--arrival" ->
          o.arrival <-
            Some
              (parsed "--arrival" Quill_clients.Clients.parse_arrival
                 (value "--arrival" i))
      | "--admission" ->
          o.admission <-
            Some
              (parsed "--admission" Quill_clients.Clients.parse_admission
                 (value "--admission" i))
      | "--deadline" -> (
          let s = value "--deadline" i in
          match Quill_clients.Clients.parse_time s with
          | d -> o.deadline <- Some d
          | exception _ ->
              usage ~hint:("bad --deadline " ^ s ^ " (want NUM[ns|us|ms|s])") ())
      | "--retries" ->
          o.retries <-
            Some
              (parsed "--retries" Quill_clients.Clients.parse_retries
                 (value "--retries" i))
      | "--json" -> o.json <- Some (value "--json" i)
      | "--check-conflicts" -> H.Experiments.check_conflicts := true
      | "--phase-table" -> H.Report.phase_tables := true
      | a when String.length a > 0 && a.[0] = '-' ->
          usage ~hint:("unknown option " ^ a) ()
      | a -> positional := a :: !positional);
      go (i + if takes_value Sys.argv.(i) then 2 else 1)
    end
  in
  go 1;
  (o, List.rev !positional)

let () =
  let o, positional = parse_args () in
  let trace_file = o.trace_file and faults = o.faults in
  let arg = match positional with a :: _ -> a | [] -> "all" in
  let scale =
    match positional with
    | _ :: s :: _ -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> f
        | Some _ | None ->
            usage ~hint:("scale must be a positive number, got " ^ s) ())
    | _ -> 0.5
  in
  (match trace_file with
  | Some _ -> H.Experiments.tracer := Quill_trace.Trace.create ()
  | None -> ());
  Printf.printf "quill benchmark harness (scale=%.2f)\n%!" scale;
  (match arg with
  | "table2-row1" -> H.Experiments.table2_row1 ~scale ()
  | "table2-row2" -> H.Experiments.table2_row2 ~scale ()
  | "table2-row3" -> H.Experiments.table2_row3 ~scale ()
  | "fig-contention" -> H.Experiments.fig_contention ~scale ()
  | "fig-scalability" -> H.Experiments.fig_scalability ~scale ()
  | "fig-modes" -> H.Experiments.fig_modes ~scale ()
  | "fig-latency" -> H.Experiments.fig_latency ~scale ()
  | "fig-batch" -> H.Experiments.fig_batch ~scale ()
  | "pipeline" -> H.Experiments.pipeline ~scale ?json:o.json ()
  | "skew" -> H.Experiments.skew ~scale ?json:o.json ()
  | "fault-tolerance" -> H.Experiments.fault_tolerance ~scale ?plan:faults ()
  | "failover" ->
      H.Experiments.failover ~scale ?json:o.json ?plan:faults ()
  | "durability" -> H.Experiments.durability ~scale ?json:o.json ()
  | "cdc" -> H.Experiments.cdc ~scale ?json:o.json ()
  | "overload" ->
      H.Experiments.overload ~scale ?arrival:o.arrival ?admission:o.admission
        ?deadline:o.deadline ?retries:o.retries ()
  | "micro" -> run_micro ()
  | "all" ->
      H.Experiments.all ~scale ();
      run_micro ()
  | a -> usage ~hint:("unknown experiment " ^ a) ());
  (match trace_file with
  | Some path ->
      let tr = !H.Experiments.tracer in
      Quill_trace.Trace.write_file tr path;
      Printf.printf "trace: %d events written to %s\n"
        (Quill_trace.Trace.num_events tr) path
  | None -> ());
  print_endline "\ndone."
