(** Distributed Calvin (Thomson et al., SIGMOD'12) — Table 2 row 2's
    baseline.

    Per epoch, each node's sequencer broadcasts its input slice to every
    node, giving all nodes the same deterministically-ordered global
    batch.  Each node's scheduler then requests locks for the keys it
    {e homes}, in global order, through its local deterministic lock
    manager, and dispatches a transaction's local sub-transaction to the
    worker pool once its local locks are held.  Participants of a
    multi-node transaction broadcast their read results to each other
    (one message per participant pair per transaction — the per-txn
    messaging QueCC's shipped queues amortize away); cross-node data
    dependencies travel as value-fill messages.  Commitment needs no 2PC
    (deterministic execution), matching the paper's description.

    Crash recovery replays the sequencer log: a fault-plan crash rolls
    the node's partitions back to the last committed epoch and serially
    re-executes the epoch's local sub-transactions in sequence order —
    epoch-granular, coarser than dist-quecc's queue-entry-granular
    replay (the comparison EXPERIMENTS.md quantifies). *)

type cfg = {
  nodes : int;
  workers : int;         (** execution threads per node *)
  batch_size : int;      (** global transactions per epoch *)
  costs : Quill_sim.Costs.t;
  pipeline : bool;
      (** sequence epoch [N+1] while epoch [N] executes (lag-1: epoch
          [N] is sequenced once [N-2] committed).  All cross-epoch state
          is epoch-keyed, so the committed state per seed is identical
          to the sequential schedule.  Ignored in client mode. *)
}

val default_cfg : cfg
(** 4 nodes, 4 workers per node, epoch 2048, [pipeline] off. *)

val run :
  ?sim:Quill_sim.Sim.t ->
  ?faults:Quill_faults.Faults.spec ->
  ?clients:Quill_clients.Clients.t ->
  cfg ->
  Quill_txn.Workload.t ->
  batches:int ->
  Quill_txn.Metrics.t
(** Requires [Db.nparts db] to be a multiple of [nodes] (partition p is
    homed at node [p * nodes / nparts]).  [faults] attaches a
    deterministic fault plan; raises [Invalid_argument] if the plan
    names a node outside the cluster.  With [?clients] (created with
    [~nodes:cfg.nodes]), each node's sequencer closes epochs against its
    local admission queue and the run continues until the client layer
    is exhausted ([batches] ignored). *)
