open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn
module Faults = Quill_faults.Faults
module Trace = Quill_trace.Trace
module Clients = Quill_clients.Clients

type cfg = {
  nodes : int;
  workers : int;
  batch_size : int;
  costs : Costs.t;
  pipeline : bool;
}

let default_cfg =
  { nodes = 4; workers = 4; batch_size = 2048; costs = Costs.default;
    pipeline = false }

(* Shared (cross-node) transaction runtime, built by the sequencer. *)
type xrt = {
  txn : Txn.t;
  inputs : int Sim.Ivar.iv array array;
  producers : (int * int Sim.Ivar.iv) list array;
  participants : int list;
  resolved : unit Sim.Ivar.iv array;
  aborted_local : bool array;
  mutable pending_aborters : int;
  mutable aborted : bool;
  centry : Clients.entry option;     (* admission provenance *)
}

(* Node-local sub-transaction. *)
type sub = {
  rt : xrt;
  locks : (int * int * bool) list;   (* (table, key, exclusive) local keys *)
  mutable pending : int;
  may_block : bool;
      (* waits on remote value fills or remote abort resolution *)
}

type lock_mode = S | X

type lockq = {
  mutable holders : (sub * lock_mode) list;
  waiting : (sub * lock_mode) Queue.t;
}

type msg =
  | Slice of { epoch : int; src : int; rts : xrt array }
  | Fill of { iv : int Sim.Ivar.iv; v : int }
  | Reads                               (* read-broadcast cost carrier *)
  | Resolve of { rt : xrt; aborted : bool }
  | Node_done
  | Epoch_commit of { epoch : int; stop : bool }
      (* [stop] piggybacks the termination decision on the commit (see
         Dist_quecc): epoch quota reached, or client layer exhausted. *)
  | Stop

type nstate = {
  locktab : (int * int, lockq) Hashtbl.t;
  work : sub option Sim.Chan.ch;
  mutable expected : int;   (* -1 until the scheduler finished the epoch *)
  mutable completed : int;
  touched : Row.t Vec.t;
  subs : sub Vec.t;
      (* this epoch's local sub-txns in sequencer-log order: Calvin's
         redo log for crash recovery *)
  mutable crash_idx : int;  (* next unconsumed crash in the fault plan *)
}

type shared = {
  cfg : cfg;
  sim : Sim.t;
  wl : Workload.t;
  db : Db.t;
  net : msg Net.t;
  ns : nstate array;
  crash_plan : Faults.crash array array;   (* per node, sorted by time *)
  slices : (int * int * int, xrt array Sim.Ivar.iv) Hashtbl.t;
      (* (epoch, src, receiving node) *)
  epoch_rts : (int * int, xrt array) Hashtbl.t;          (* accounting *)
  commits : (int * int, bool Sim.Ivar.iv) Hashtbl.t;     (* epoch, node *)
  metrics : Metrics.t;
  mutable done_count : int;
  mutable epochs_done : int;
  total_epochs : int;
  clients : Clients.t option;
}

let node_of_part sh part = part * sh.cfg.nodes / Db.nparts sh.db

let frag_node sh (f : Fragment.t) =
  node_of_part sh (Db.home sh.db f.Fragment.table f.Fragment.key)

let get_iv tbl key =
  match Hashtbl.find_opt tbl key with
  | Some iv -> iv
  | None ->
      let iv = Sim.Ivar.create () in
      Hashtbl.replace tbl key iv;
      iv

let get_slice sh epoch src dst = get_iv sh.slices (epoch, src, dst)
let get_commit sh epoch node = get_iv sh.commits (epoch, node)

(* ------------------------------------------------------------------ *)
(* Sequencer                                                           *)
(* ------------------------------------------------------------------ *)

let make_xrt ?centry sh txn =
  let n = Array.length txn.Txn.frags in
  let inputs =
    Array.map
      (fun (f : Fragment.t) ->
        Array.map (fun _ -> Sim.Ivar.create ()) f.Fragment.data_deps)
      txn.Txn.frags
  in
  let producers = Array.make n [] in
  Array.iteri
    (fun fid (f : Fragment.t) ->
      let consumer_node = frag_node sh f in
      Array.iteri
        (fun i d ->
          producers.(d) <- (consumer_node, inputs.(fid).(i)) :: producers.(d))
        f.Fragment.data_deps)
    txn.Txn.frags;
  let participants =
    let seen = Array.make sh.cfg.nodes false in
    Array.iter (fun f -> seen.(frag_node sh f) <- true) txn.Txn.frags;
    let acc = ref [] in
    for i = sh.cfg.nodes - 1 downto 0 do
      if seen.(i) then acc := i :: !acc
    done;
    !acc
  in
  txn.Txn.status <- Txn.Active;
  {
    txn;
    inputs;
    producers;
    participants;
    resolved = Array.init sh.cfg.nodes (fun _ -> Sim.Ivar.create ());
    aborted_local = Array.make sh.cfg.nodes false;
    pending_aborters = txn.Txn.n_abortable;
    aborted = false;
    centry;
  }

let sequencer_thread sh node stream epochs =
  let costs = sh.cfg.costs in
  let base = sh.cfg.batch_size / sh.cfg.nodes in
  let count = base + if node < sh.cfg.batch_size mod sh.cfg.nodes then 1 else 0 in
  let seq_txn ?centry txn =
    Sim.tick sh.sim costs.Costs.txn_overhead;
    txn.Txn.submit_time <- Sim.now sh.sim;
    txn.Txn.attempts <- txn.Txn.attempts + 1;
    make_xrt ?centry sh txn
  in
  (* Sequence one epoch's slice and broadcast it (no commit await —
     the caller decides how far ahead to run). *)
  let seq_epoch e rts =
    let bytes =
      40 * Array.fold_left
             (fun acc rt -> acc + Array.length rt.txn.Txn.frags)
             1 rts
    in
    Hashtbl.replace sh.epoch_rts (e, node) rts;
    for dst = 0 to sh.cfg.nodes - 1 do
      if dst = node then Sim.Ivar.fill sh.sim (get_slice sh e node node) rts
      else Net.send sh.net ~src:node ~dst ~bytes (Slice { epoch = e; src = node; rts })
    done;
    Sim.set_phase sh.sim Sim.Ph_other
  in
  let await_commit e = Sim.Ivar.read sh.sim (get_commit sh e node) in
  match sh.clients with
  | None ->
      if sh.cfg.pipeline then
        (* Lag-1 pipelining: sequence epoch [e] once epoch [e-2] has
           committed, so sequencing (and the slice broadcast) of the
           next epoch overlaps scheduling and execution of the current
           one.  All cross-epoch state is epoch-keyed (slices,
           epoch_rts, commits), so no double-buffering is needed — the
           lag only bounds how many epochs are in flight. *)
        for e = 0 to epochs - 1 do
          if e >= 2 then begin
            let t0 = Sim.now sh.sim in
            ignore (await_commit (e - 2));
            sh.metrics.Metrics.pipe_drain_stall <-
              sh.metrics.Metrics.pipe_drain_stall + (Sim.now sh.sim - t0)
          end;
          Sim.set_phase sh.sim Sim.Ph_plan;
          seq_epoch e (Array.init count (fun _ -> seq_txn (stream ())))
        done
      else
        for e = 0 to epochs - 1 do
          Sim.set_phase sh.sim Sim.Ph_plan;
          seq_epoch e (Array.init count (fun _ -> seq_txn (stream ())));
          ignore (await_commit e)
        done
  | Some c ->
      (* Client mode: each node's sequencer closes the epoch against its
         local admission queue (up to the node's epoch share), blocking
         until an arrival or local exhaustion — an empty slice once the
         node's clients are done.  Stays sequential under [pipeline]:
         epoch contents depend on the previous epoch's completions, and
         the stop decision rides on its commit. *)
      let rec loop e =
        Sim.set_phase sh.sim Sim.Ph_plan;
        let entries = Clients.drain c ~node ~max:count in
        let rts =
          Array.map
            (fun (en : Clients.entry) -> seq_txn ~centry:en en.Clients.txn)
            entries
        in
        seq_epoch e rts;
        if not (await_commit e) then loop (e + 1)
      in
      loop 0

(* ------------------------------------------------------------------ *)
(* Deterministic lock manager (per node)                               *)
(* ------------------------------------------------------------------ *)

let compatible holders m =
  match m with
  | X -> holders = []
  | S -> List.for_all (fun (_, hm) -> hm = S) holders

let dispatch sh node sub = Sim.Chan.send sh.sim sh.ns.(node).work (Some sub)

let grant sh node sub =
  sub.pending <- sub.pending - 1;
  if sub.pending = 0 then dispatch sh node sub

let get_q ns key =
  match Hashtbl.find_opt ns.locktab key with
  | Some q -> q
  | None ->
      let q = { holders = []; waiting = Queue.create () } in
      Hashtbl.replace ns.locktab key q;
      q

let request sh node sub key m =
  let q = get_q sh.ns.(node) key in
  if compatible q.holders m && Queue.is_empty q.waiting then begin
    q.holders <- (sub, m) :: q.holders;
    grant sh node sub
  end
  else Queue.push (sub, m) q.waiting

let release sh node sub key =
  let q = get_q sh.ns.(node) key in
  q.holders <- List.filter (fun (s, _) -> s != sub) q.holders;
  let rec drain () =
    match Queue.peek_opt q.waiting with
    | Some (s, m) when compatible q.holders m ->
        ignore (Queue.pop q.waiting);
        q.holders <- (s, m) :: q.holders;
        grant sh node s;
        drain ()
    | Some _ | None -> ()
  in
  drain ()

(* Local lock set: keys homed here; X when any access updates. *)
let local_lock_set sh node txn =
  let acc = ref [] in
  Array.iter
    (fun (f : Fragment.t) ->
      match f.Fragment.mode with
      | Fragment.Insert -> ()
      | Fragment.Read | Fragment.Write | Fragment.Rmw ->
          if frag_node sh f = node then begin
            let x = f.Fragment.mode <> Fragment.Read in
            let key = (f.Fragment.table, f.Fragment.key) in
            let rec merge = function
              | [] -> [ (key, x) ]
              | (k, x0) :: rest when k = key -> (k, x || x0) :: rest
              | e :: rest -> e :: merge rest
            in
            acc := merge !acc
          end)
    txn.Txn.frags;
  List.map (fun ((t, k), x) -> (t, k, x)) !acc

let has_remote_inputs sh node txn =
  Array.exists
    (fun (f : Fragment.t) ->
      frag_node sh f = node
      && Array.exists
           (fun d -> frag_node sh txn.Txn.frags.(d) <> node)
           f.Fragment.data_deps)
    txn.Txn.frags

let dummy_row = Row.make ~key:(-1) ~nfields:1

(* Re-execute one local sub-transaction during crash recovery.  The
   sequencer log (this epoch's subs in sequence order) is Calvin's redo
   log: replaying it serially against the rolled-back partition
   reproduces the pre-crash state, because deterministic locking made
   the concurrent original equivalent to exactly that serial order.
   Cross-node traffic is suppressed — input values were computed and
   broadcast before the crash and their ivars are still full — and the
   abort vote is not re-cast (the outcome is already decided).  Returns
   whether the sub was replayed (aborted txns left no persistent
   writes, so they are skipped). *)
let replay_sub sh node sub =
  let costs = sh.cfg.costs in
  let rt = sub.rt in
  if rt.aborted_local.(node) then false
  else begin
    let txn = rt.txn in
    let cur_row = ref dummy_row and cur_found = ref false in
    let cur_frag = ref None in
    let read (_ : Fragment.t) field =
      Sim.tick sh.sim costs.Costs.row_read;
      if !cur_found then (!cur_row).Row.data.(field) else 0
    in
    let write _frag field v =
      Sim.tick sh.sim costs.Costs.row_write;
      if !cur_found then begin
        let row = !cur_row in
        if not row.Row.dirty then begin
          row.Row.dirty <- true;
          Vec.push sh.ns.(node).touched row
        end;
        row.Row.data.(field) <- v
      end
    in
    let add frag field d = write frag field (read frag field + d) in
    let insert (frag : Fragment.t) ~key payload =
      Sim.tick sh.sim costs.Costs.index_insert;
      let tbl = Db.table sh.db frag.Fragment.table in
      (* Inserts published before the crash survive it. *)
      if Table.find tbl key = None then begin
        let home = Db.home sh.db frag.Fragment.table frag.Fragment.key in
        ignore (Table.insert tbl ~home ~key payload)
      end
    in
    let input producer_fid =
      let frag = match !cur_frag with Some f -> f | None -> assert false in
      let deps = frag.Fragment.data_deps in
      let rec find i = if deps.(i) = producer_fid then i else find (i + 1) in
      Sim.Ivar.read sh.sim rt.inputs.(frag.Fragment.fid).(find 0)
    in
    let output _ _ = () in
    let found _ = !cur_found in
    let ctx = { Exec.read; write; add; insert; input; output; found } in
    Array.iter
      (fun (f : Fragment.t) ->
        if frag_node sh f = node then begin
          cur_frag := Some f;
          (match f.Fragment.mode with
          | Fragment.Insert ->
              cur_row := dummy_row;
              cur_found := true
          | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
              Sim.tick sh.sim costs.Costs.index_probe;
              match
                Table.find (Db.table sh.db f.Fragment.table) f.Fragment.key
              with
              | Some row ->
                  cur_row := row;
                  cur_found := true
              | None ->
                  cur_row := dummy_row;
                  cur_found := false));
          Sim.tick sh.sim costs.Costs.logic;
          match sh.wl.Workload.exec ctx txn f with
          | Exec.Ok | Exec.Abort -> ()
          | Exec.Blocked -> assert false
        end)
      (Quill_quecc.Engine.plan_order_for_dist txn.Txn.frags);
    true
  end

(* Consume planned crashes once all of the node's sub-txns for the
   epoch finished, before the node reports Node_done.  A crash rolls
   the node's partitions back to the last committed epoch and replays
   the sequencer log — epoch granularity, coarser than dist-quecc's
   per-queue-entry replay. *)
let maybe_recover sh node =
  let ns = sh.ns.(node) in
  let crashes = sh.crash_plan.(node) in
  while
    ns.crash_idx < Array.length crashes
    && crashes.(ns.crash_idx).Faults.at <= Sim.now sh.sim
  do
    let c = crashes.(ns.crash_idx) in
    ns.crash_idx <- ns.crash_idx + 1;
    let t0 = Sim.now sh.sim in
    Sim.set_phase sh.sim Sim.Ph_recover;
    Vec.iter Row.revert ns.touched;
    Vec.clear ns.touched;
    let restart = c.Faults.at + c.Faults.down in
    if restart > Sim.now sh.sim then
      Sim.sleep sh.sim (restart - Sim.now sh.sim);
    Sim.tick sh.sim sh.cfg.costs.Costs.crash_reboot;
    Vec.iter
      (fun sub ->
        if replay_sub sh node sub then
          sh.metrics.Metrics.redone <- sh.metrics.Metrics.redone + 1)
      ns.subs;
    sh.metrics.Metrics.crashes <- sh.metrics.Metrics.crashes + 1;
    let tr = Sim.tracer sh.sim in
    if Trace.enabled tr then
      Trace.span tr ~tid:(Sim.current_tid sh.sim) ~cat:"phase" ~name:"recover"
        ~ts:t0
        ~dur:(Sim.now sh.sim - t0)
        ();
    Sim.set_phase sh.sim Sim.Ph_other
  done

let check_node_done sh node =
  let ns = sh.ns.(node) in
  if ns.expected >= 0 && ns.completed = ns.expected then begin
    ns.expected <- -1;
    ns.completed <- 0;
    maybe_recover sh node;
    Net.send sh.net ~src:node ~dst:0 ~bytes:8 Node_done
  end

let scheduler_thread sh node epochs =
  let costs = sh.cfg.costs in
  (* One epoch: request locks in sequencer order, wait for the epoch
     commit, publish; returns the commit's stop decision. *)
  let sched_epoch e =
    Sim.set_phase sh.sim Sim.Ph_plan;
    let count = ref 0 in
    for src = 0 to sh.cfg.nodes - 1 do
      let t0 = Sim.now sh.sim in
      let rts = Sim.Ivar.read sh.sim (get_slice sh e src node) in
      (* In a pipelined run, waiting on a slice means the pipeline ran
         dry (sequencing/shipping slower than execution). *)
      if sh.cfg.pipeline then
        sh.metrics.Metrics.pipe_fill_stall <-
          sh.metrics.Metrics.pipe_fill_stall + (Sim.now sh.sim - t0);
      Array.iter
        (fun rt ->
          if List.mem node rt.participants then begin
            incr count;
            let locks = local_lock_set sh node rt.txn in
            let sub =
              {
                rt;
                locks;
                pending = List.length locks + 1;
                may_block =
                  has_remote_inputs sh node rt.txn
                  || (rt.txn.Txn.n_abortable > 0
                     && List.exists (fun n -> n <> node) rt.participants);
              }
            in
            Vec.push sh.ns.(node).subs sub;
            List.iter
              (fun (t, k, x) ->
                Sim.tick sh.sim costs.Costs.lock_mgr_op;
                request sh node sub (t, k) (if x then X else S))
              locks;
            grant sh node sub
          end)
        rts;
      Hashtbl.remove sh.slices (e, src, node)
    done;
    sh.ns.(node).expected <- !count;
    check_node_done sh node;
    Sim.set_phase sh.sim Sim.Ph_other;
    let stop = Sim.Ivar.read sh.sim (get_commit sh e node) in
    (* All local sub-transactions are done: publish committed state. *)
    Sim.set_phase sh.sim Sim.Ph_publish;
    Vec.iter
      (fun row ->
        Row.publish row;
        row.Row.dirty <- false)
      sh.ns.(node).touched;
    Vec.clear sh.ns.(node).touched;
    Vec.clear sh.ns.(node).subs;
    Sim.set_phase sh.sim Sim.Ph_other;
    stop
  in
  (match sh.clients with
  | None -> for e = 0 to epochs - 1 do ignore (sched_epoch e) done
  | Some _ ->
      let rec loop e = if not (sched_epoch e) then loop (e + 1) in
      loop 0);
  (* Poison the worker pool after the final epoch. *)
  for _ = 1 to sh.cfg.workers do
    Sim.Chan.send sh.sim sh.ns.(node).work None
  done

(* ------------------------------------------------------------------ *)
(* Workers                                                             *)
(* ------------------------------------------------------------------ *)

let broadcast_resolution sh ~self rt aborted =
  List.iter
    (fun n ->
      if n = self then begin
        if aborted then rt.aborted_local.(n) <- true;
        if not (Sim.Ivar.is_full rt.resolved.(n)) then
          Sim.Ivar.fill sh.sim rt.resolved.(n) ()
      end
      else Net.send sh.net ~src:self ~dst:n ~bytes:16 (Resolve { rt; aborted }))
    rt.participants

let exec_sub sh node sub =
  Sim.set_phase sh.sim Sim.Ph_execute;
  let costs = sh.cfg.costs in
  let rt = sub.rt in
  let txn = rt.txn in
  (* Calvin read broadcast: one message per other participant. *)
  let nreads =
    Array.fold_left
      (fun acc (f : Fragment.t) ->
        if frag_node sh f = node && not (Fragment.updates f) then acc + 1
        else acc)
      0 txn.Txn.frags
  in
  List.iter
    (fun n ->
      if n <> node then
        Net.send sh.net ~src:node ~dst:n ~bytes:(8 + (16 * nreads)) Reads)
    rt.participants;
  let cur_row = ref dummy_row and cur_found = ref false in
  let cur_frag = ref None in
  let read (_ : Fragment.t) field =
    Sim.tick sh.sim costs.Costs.row_read;
    if !cur_found then (!cur_row).Row.data.(field) else 0
  in
  let write _frag field v =
    Sim.tick sh.sim costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      if not row.Row.dirty then begin
        row.Row.dirty <- true;
        Vec.push sh.ns.(node).touched row
      end;
      row.Row.data.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick sh.sim costs.Costs.index_insert;
    let tbl = Db.table sh.db frag.Fragment.table in
    let home = Db.home sh.db frag.Fragment.table frag.Fragment.key in
    ignore (Table.insert tbl ~home ~key payload)
  in
  let input producer_fid =
    let frag = match !cur_frag with Some f -> f | None -> assert false in
    let deps = frag.Fragment.data_deps in
    let rec find i =
      if deps.(i) = producer_fid then i else find (i + 1)
    in
    Sim.Ivar.read sh.sim rt.inputs.(frag.Fragment.fid).(find 0)
  in
  let output fid v =
    List.iter
      (fun (dst, iv) ->
        if dst = node then begin
          if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv v
        end
        else Net.send sh.net ~src:node ~dst ~bytes:16 (Fill { iv; v }))
      rt.producers.(fid)
  in
  let found _ = !cur_found in
  let ctx = { Exec.read; write; add; insert; input; output; found } in
  (* Dependency-free abortable fragments first, so a commit-dependency
     wait can never sit ahead of its own abort decision. *)
  Array.iter
    (fun (f : Fragment.t) ->
      if frag_node sh f = node && not rt.aborted_local.(node) then begin
        if
          f.Fragment.commit_dep
          && not (Sim.Ivar.is_full rt.resolved.(node))
        then Sim.Ivar.read sh.sim rt.resolved.(node);
        if not rt.aborted_local.(node) then begin
          cur_frag := Some f;
          (match f.Fragment.mode with
          | Fragment.Insert ->
              cur_row := dummy_row;
              cur_found := true
          | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
              Sim.tick sh.sim costs.Costs.index_probe;
              match
                Table.find (Db.table sh.db f.Fragment.table) f.Fragment.key
              with
              | Some row ->
                  cur_row := row;
                  cur_found := true
              | None ->
                  cur_row := dummy_row;
                  cur_found := false));
          Sim.tick sh.sim costs.Costs.logic;
          match sh.wl.Workload.exec ctx txn f with
          | Exec.Ok ->
              if f.Fragment.abortable then begin
                rt.pending_aborters <- rt.pending_aborters - 1;
                if rt.pending_aborters = 0 && not rt.aborted then
                  broadcast_resolution sh ~self:node rt false
              end
          | Exec.Abort ->
              if not rt.aborted then begin
                rt.aborted <- true;
                txn.Txn.status <- Txn.Aborted;
                broadcast_resolution sh ~self:node rt true;
                Array.iter
                  (Array.iter (fun iv ->
                       if not (Sim.Ivar.is_full iv) then
                         Sim.Ivar.fill sh.sim iv 0))
                  rt.inputs
              end
          | Exec.Blocked -> assert false
        end
      end)
    (Quill_quecc.Engine.plan_order_for_dist txn.Txn.frags);
  (* Release local locks; grants may dispatch further sub-txns. *)
  List.iter
    (fun (t, k, _) ->
      Sim.tick sh.sim costs.Costs.lock_release;
      release sh node sub (t, k))
    sub.locks;
  sh.ns.(node).completed <- sh.ns.(node).completed + 1;
  check_node_done sh node;
  Sim.set_phase sh.sim Sim.Ph_other

let worker_thread sh node =
  let rec loop () =
    match Sim.Chan.recv sh.sim sh.ns.(node).work with
    | None -> ()
    | Some sub ->
        (* A sub-transaction that may block on remote inputs or remote
           abort resolution runs on a helper so the worker (and lock
           pipeline) keeps draining; see DESIGN.md on Calvin worker-pool
           deadlock avoidance. *)
        if sub.may_block then
          Sim.spawn ~at:(Sim.now sh.sim) sh.sim (fun () -> exec_sub sh node sub)
        else exec_sub sh node sub;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Demux / commit coordination                                         *)
(* ------------------------------------------------------------------ *)

let demux_thread sh node =
  let rec loop () =
    match Net.recv sh.net ~node with
    | Slice { epoch; src; rts } ->
        Sim.Ivar.fill sh.sim (get_slice sh epoch src node) rts;
        loop ()
    | Fill { iv; v } ->
        if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv v;
        loop ()
    | Reads -> loop ()
    | Resolve { rt; aborted } ->
        if aborted then rt.aborted_local.(node) <- true;
        if not (Sim.Ivar.is_full rt.resolved.(node)) then
          Sim.Ivar.fill sh.sim rt.resolved.(node) ();
        loop ()
    | Node_done ->
        assert (node = 0);
        sh.done_count <- sh.done_count + 1;
        if sh.done_count = sh.cfg.nodes then begin
          sh.done_count <- 0;
          let e = sh.epochs_done in
          sh.epochs_done <- e + 1;
          (* Account every transaction of the epoch. *)
          let now = Sim.now sh.sim in
          for src = 0 to sh.cfg.nodes - 1 do
            match Hashtbl.find_opt sh.epoch_rts (e, src) with
            | None -> ()
            | Some rts ->
                Array.iter
                  (fun rt ->
                    rt.txn.Txn.finish_time <- now;
                    (match rt.txn.Txn.status with
                    | Txn.Aborted ->
                        sh.metrics.Metrics.logic_aborted <-
                          sh.metrics.Metrics.logic_aborted + 1
                    | Txn.Active | Txn.Committed ->
                        rt.txn.Txn.status <- Txn.Committed;
                        sh.metrics.Metrics.committed <-
                          sh.metrics.Metrics.committed + 1
                    | Txn.Pending -> assert false);
                    Stats.Hist.add sh.metrics.Metrics.lat
                      (now - rt.txn.Txn.submit_time);
                    match (sh.clients, rt.centry) with
                    | Some c, Some ce ->
                        Clients.complete c ce
                          ~ok:(rt.txn.Txn.status = Txn.Committed)
                    | _ -> ())
                  rts;
                Hashtbl.remove sh.epoch_rts (e, src)
          done;
          sh.metrics.Metrics.batches <- sh.metrics.Metrics.batches + 1;
          (* Stop decision after accounting, where client exhaustion is
             monotone-stable (see Dist_quecc.demux_thread). *)
          let stop =
            match sh.clients with
            | None -> sh.epochs_done = sh.total_epochs
            | Some c -> Clients.exhausted c
          in
          for dst = 0 to sh.cfg.nodes - 1 do
            if dst = 0 then Sim.Ivar.fill sh.sim (get_commit sh e 0) stop
            else
              Net.send sh.net ~src:0 ~dst ~bytes:8
                (Epoch_commit { epoch = e; stop })
          done;
          if stop then
            for dst = 1 to sh.cfg.nodes - 1 do
              Net.send sh.net ~src:0 ~dst ~bytes:8 Stop
            done
          else loop ()
        end
        else loop ()
    | Epoch_commit { epoch = e; stop } ->
        Sim.Ivar.fill sh.sim (get_commit sh e node) stop;
        loop ()
    | Stop -> ()
  in
  loop ()

let run ?sim ?(faults = Faults.none) ?clients cfg wl ~batches =
  assert (cfg.nodes > 0 && cfg.workers > 0);
  let db = wl.Workload.db in
  if Db.nparts db mod cfg.nodes <> 0 then
    invalid_arg "Dist_calvin.run: nparts must be a multiple of nodes";
  Faults.check_nodes faults ~nodes:cfg.nodes ~name:"Dist_calvin.run";
  let frt = if Faults.active faults then Some (Faults.make faults) else None in
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let sh =
    {
      cfg;
      sim;
      wl;
      db;
      net = Net.create ?faults:frt sim cfg.costs ~nodes:cfg.nodes;
      ns =
        Array.init cfg.nodes (fun _ ->
            {
              locktab = Hashtbl.create 4096;
              work = Sim.Chan.create ();
              expected = -1;
              completed = 0;
              touched = Vec.create ();
              subs = Vec.create ();
              crash_idx = 0;
            });
      crash_plan =
        Array.init cfg.nodes (fun n -> Faults.crashes_for faults ~node:n);
      slices = Hashtbl.create 64;
      epoch_rts = Hashtbl.create 64;
      commits = Hashtbl.create 64;
      metrics = Metrics.create ();
      done_count = 0;
      epochs_done = 0;
      total_epochs = batches;
      clients;
    }
  in
  for node = 0 to cfg.nodes - 1 do
    let stream =
      match clients with
      | Some _ -> fun () -> assert false (* arrivals come from clients *)
      | None -> wl.Workload.new_stream node
    in
    Sim.spawn sim (fun () -> sequencer_thread sh node stream batches);
    Sim.spawn sim (fun () -> scheduler_thread sh node batches);
    for _ = 1 to cfg.workers do
      Sim.spawn sim (fun () -> worker_thread sh node)
    done;
    Sim.spawn sim (fun () -> demux_thread sh node)
  done;
  let parked = Sim.run sim in
  if parked <> 0 then
    failwith (Printf.sprintf "Dist_calvin.run: %d threads deadlocked" parked);
  let m = sh.metrics in
  m.Metrics.elapsed <- Sim.horizon sim;
  m.Metrics.busy <- Sim.busy_time sim;
  m.Metrics.idle <- Sim.idle_time sim;
  m.Metrics.threads <- cfg.nodes * (cfg.workers + 3);
  if cfg.pipeline then begin
    (* one scheduler (fill stalls) and one sequencer (drain stalls) per
       node — far fewer contributors than dist-quecc's per-role pools,
       which is why raw stall sums were never engine-comparable *)
    m.Metrics.pipe_fill_threads <- cfg.nodes;
    m.Metrics.pipe_drain_threads <- cfg.nodes
  end;
  m.Metrics.msgs <- Net.messages_sent sh.net;
  m.Metrics.msg_retries <- Net.messages_retried sh.net;
  m.Metrics.msg_dup_drops <- Net.duplicates_dropped sh.net;
  Quill_quecc.Engine.record_sim_breakdown m sim;
  m
