(** Distributed queue-oriented engine (Q-Store design, the distributed
    instantiation of the paper's paradigm).

    Each node's planners plan the transactions its clients submit into
    priority-tagged execution queues — including queues destined for
    {e remote} nodes, which are shipped as one message per
    (planner, node) per batch.  That batching is the structural advantage
    over Calvin's per-transaction messaging, and the reason the paper's
    Table 2 row 2 reports an order-of-magnitude gap.  Commitment needs no
    2PC: execution is deterministic, so a batch commits with a single
    done/commit message exchange per node per batch.

    Cross-node data dependencies travel as value-fill messages;
    commit dependencies (abortable fragments) resolve via per-node
    resolution messages, giving conservative execution semantics
    (DESIGN.md discusses why the distributed engine is conservative).

    Crash recovery exploits the paradigm directly: the planned
    execution queues are the redo log.  A fault-plan crash rolls the
    node's partitions back to the last published batch boundary and
    re-executes the completed prefix of each queue in priority order,
    under the [recover] phase label (DESIGN.md, "Fault injection"). *)

type cfg = {
  nodes : int;
  planners : int;        (** per node *)
  executors : int;       (** per node *)
  batch_size : int;      (** global, per batch *)
  costs : Quill_sim.Costs.t;
  pipeline : bool;
      (** overlap planning of batch [N+1] with execution of batch [N]
          (lag-1: planning of [N] is gated on the commit of [N-2], so at
          most two batches are in flight).  Planning touches no rows and
          batch runtimes are double-buffered by batch parity, so the
          committed state per seed is identical to the sequential
          schedule.  Ignored in client mode, where a batch can only
          close against the previous batch's completions. *)
  replicas : int;
      (** HA mode when positive: stream every planned batch to this many
          backup nodes over a dedicated replication network, gate each
          batch commit on their acks, and survive a fault-plan leader
          crash by failing over to the lowest-id backup (see
          {!Replication}).  Requires [nodes = 1] (the backups are the
          redundancy), no open-loop clients and no conflict recorder. *)
  spec_lag : int;
      (** how many batches past the newest commit marker a backup may
          speculatively execute (>= 1); acks double as backpressure, so
          this also bounds how far the leader can run ahead of a slow
          backup. *)
}

val default_cfg : cfg
(** 4 nodes, 2 planners and 2 executors per node, batch 2048,
    [pipeline] off, no replicas, speculation lag 1. *)

val run :
  ?sim:Quill_sim.Sim.t ->
  ?faults:Quill_faults.Faults.spec ->
  ?clients:Quill_clients.Clients.t ->
  ?recorder:Quill_analysis.Access_log.t ->
  cfg ->
  Quill_txn.Workload.t ->
  batches:int ->
  Quill_txn.Metrics.t
(** [?recorder] records row accesses with queue-slot attribution for
    the conflict detector ([--check-conflicts]); crash-replay accesses
    are recorded under the recover phase, which the checker exempts.

    Requires the workload database to be partitioned with
    [nparts = nodes * executors].  [faults] (default
    {!Quill_faults.Faults.none}) attaches a deterministic fault plan;
    raises [Invalid_argument] if the plan crashes a node index outside
    the cluster.  With [?clients] (created with [~nodes:cfg.nodes]),
    each node admits transactions at its local admission queue —
    planner 0 of each node closes batches against it — and the run
    continues until the client layer is exhausted ([batches] ignored);
    the stop decision piggybacks on the per-batch commit broadcast. *)
