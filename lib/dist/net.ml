open Quill_sim
module Faults = Quill_faults.Faults

(* Every message travels in an envelope carrying the sender and a
   per-link sequence number, so receivers can suppress the duplicate
   deliveries a fault plan injects. *)
type 'a env = { seq : int; src : int; payload : 'a }

type 'a t = {
  sim : Sim.t;
  costs : Costs.t;
  faults : Faults.t option;
  inboxes : 'a env Sim.Chan.ch array;
  next_seq : int array array; (* [src].(dst): next seq to assign *)
  last_seen : int array array; (* [dst].(src): highest seq delivered *)
  mutable msgs : int;
  mutable bytes : int;
  mutable retries : int;
  mutable dups_sent : int;
  mutable dups_dropped : int;
}

let create ?faults sim costs ~nodes =
  if nodes <= 0 then invalid_arg "Net.create: node count must be positive";
  let faults =
    match faults with
    | Some f when Faults.active (Faults.spec f) -> Some f
    | _ -> None
  in
  {
    sim;
    costs;
    faults;
    inboxes = Array.init nodes (fun _ -> Sim.Chan.create ());
    next_seq = Array.make_matrix nodes nodes 0;
    last_seen = Array.make_matrix nodes nodes (-1);
    msgs = 0;
    bytes = 0;
    retries = 0;
    dups_sent = 0;
    dups_dropped = 0;
  }

let nodes t = Array.length t.inboxes

let check t fn what v =
  if v < 0 || v >= Array.length t.inboxes then
    invalid_arg
      (Printf.sprintf "Net.%s: %s node %d out of range for a %d-node cluster"
         fn what v (Array.length t.inboxes))

let send t ~src ~dst ~bytes m =
  check t "send" "source" src;
  check t "send" "destination" dst;
  let seq = t.next_seq.(src).(dst) in
  t.next_seq.(src).(dst) <- seq + 1;
  let env = { seq; src; payload = m } in
  if src = dst then Sim.Chan.send t.sim t.inboxes.(dst) env
  else begin
    t.msgs <- t.msgs + 1;
    t.bytes <- t.bytes + bytes;
    Sim.tick t.sim t.costs.Costs.msg_fixed;
    let delay =
      t.costs.Costs.net_latency + (bytes * t.costs.Costs.msg_per_byte / 1000)
    in
    match t.faults with
    | None -> Sim.Chan.send ~delay t.sim t.inboxes.(dst) env
    | Some f ->
        let v = Faults.on_send f ~src ~dst ~now:(Sim.now t.sim) in
        t.retries <- t.retries + v.Faults.retries;
        let delay = delay + v.Faults.extra_delay in
        Sim.Chan.send ~delay t.sim t.inboxes.(dst) env;
        if v.Faults.duplicate then begin
          t.dups_sent <- t.dups_sent + 1;
          (* The spurious copy trails the original by one extra network
             hop; FIFO push order keeps per-link seq delivery monotone. *)
          Sim.Chan.send
            ~delay:(delay + t.costs.Costs.net_latency)
            t.sim t.inboxes.(dst) env
        end
  end

(* Deliver one envelope, dropping stale duplicates.  The receive CPU
   cost is charged per delivery attempt: a node really does demux a
   duplicate before discarding it. *)
let accept t ~node env =
  if env.seq <= t.last_seen.(node).(env.src) then begin
    t.dups_dropped <- t.dups_dropped + 1;
    None
  end
  else begin
    t.last_seen.(node).(env.src) <- env.seq;
    Some env.payload
  end

let rec recv t ~node =
  check t "recv" "receiving" node;
  let env = Sim.Chan.recv t.sim t.inboxes.(node) in
  Sim.tick t.sim t.costs.Costs.msg_fixed;
  match accept t ~node env with Some m -> m | None -> recv t ~node

let recv_timeout t ~node ~timeout =
  check t "recv_timeout" "receiving" node;
  let deadline = Sim.now t.sim + timeout in
  (* Duplicates eat into the same deadline: the caller asked to wait
     [timeout] ns for a fresh message, however many stale copies the
     link delivers in between. *)
  let rec go () =
    let remaining = deadline - Sim.now t.sim in
    if remaining < 0 then None
    else
      match
        Sim.Chan.recv_timeout t.sim t.inboxes.(node) ~timeout:remaining
      with
      | None -> None
      | Some env -> (
          Sim.tick t.sim t.costs.Costs.msg_fixed;
          match accept t ~node env with Some m -> Some m | None -> go ())
  in
  go ()

let messages_sent t = t.msgs
let bytes_sent t = t.bytes
let messages_retried t = t.retries
let duplicates_sent t = t.dups_sent
let duplicates_dropped t = t.dups_dropped
