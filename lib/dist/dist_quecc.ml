open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn
module Faults = Quill_faults.Faults
module Trace = Quill_trace.Trace
module Clients = Quill_clients.Clients

type cfg = {
  nodes : int;
  planners : int;
  executors : int;
  batch_size : int;
  costs : Costs.t;
  pipeline : bool;
  replicas : int;
  spec_lag : int;
}

let default_cfg =
  { nodes = 4; planners = 2; executors = 2; batch_size = 2048;
    costs = Costs.default; pipeline = false; replicas = 0; spec_lag = 1 }

(* Distributed per-batch transaction runtime. *)
type drt = {
  txn : Txn.t;
  bidx : int;
  inputs : int Sim.Ivar.iv array array;    (* [fid].[dep_idx] *)
  producers : (int * int Sim.Ivar.iv) list array; (* [fid] -> (node, iv) *)
  resolved : unit Sim.Ivar.iv array;       (* per node *)
  aborted_local : bool array;              (* per node view *)
  participants : int list;
  mutable pending_aborters : int;
  mutable aborted : bool;                  (* authoritative (coordinator) *)
  centry : Clients.entry option;           (* admission provenance *)
}

(* [voted] makes the abort-resolution vote idempotent: queue replay
   after a crash re-executes entries whose vote already reached the
   coordinator, and a second [resolve_arrive] would corrupt the
   pending-aborters count. *)
type entry = { rt : drt; frag : Fragment.t; mutable voted : bool }

type msg =
  | Ship of { batch : int; prio : int; qs : entry Vec.t array }
  | Fill of { iv : int Sim.Ivar.iv; v : int }
  | Resolve of { rt : drt; aborted : bool }
  | Exec_done
  | Commit_batch of { batch : int; stop : bool }
      (* [stop] piggybacks the run-termination decision on the commit
         broadcast, so every node learns "no further batch" at a
         deterministic point (client mode: the client layer is
         exhausted; closed loop: the batch quota is reached). *)
  | Stop

type shared = {
  cfg : cfg;
  sim : Sim.t;
  wl : Workload.t;
  db : Db.t;
  net : msg Net.t;
  reg : (int * int * int, entry Vec.t Sim.Ivar.iv) Hashtbl.t;
      (* (batch, prio, executor gid) -> queue *)
  commits : (int * int, bool Sim.Ivar.iv) Hashtbl.t;
      (* (batch, node) -> commit signal carrying the stop decision *)
  rts : drt option array array;            (* [batch parity].[slot] *)
      (* Two buffers of global batch slots: with [pipeline], planners
         fill batch [b+1]'s slots while the demux still owns batch
         [b]'s for accounting; the parity index keeps them apart.
         Planning of [b] is gated on the commit of [b-2], so at most
         two batches of runtimes are ever live. *)
  touched : Row.t Vec.t array;             (* per executor gid *)
  crash_plan : Faults.crash array array;   (* per node, sorted by time *)
  metrics : Metrics.t;
  exec_done_b : Sim.Barrier.b array;       (* per node: executor rendezvous *)
  mutable done_count : int;                (* node 0: Exec_done received *)
  mutable batches_done : int;
  total_batches : int;
  clients : Clients.t option;
  recorder : Quill_analysis.Access_log.t option;
      (* conflict-detector access log (--check-conflicts) *)
  mutable rep : Replication.t option;      (* HA: cfg.replicas > 0 *)
  mutable halted : bool;
      (* HA leader killed by the fault plan.  Set before any poisoning,
         so every guarded protocol step observes it; the dead leader's
         threads then fast-forward through poisoned synchronization and
         exit without accounting further batches. *)
}

let p_global sh = sh.cfg.nodes * sh.cfg.planners
let e_global sh = sh.cfg.nodes * sh.cfg.executors
let node_of_part sh part = part / sh.cfg.executors

let frag_part sh (f : Fragment.t) =
  Db.home sh.db f.Fragment.table f.Fragment.key mod e_global sh

let get_iv tbl key =
  match Hashtbl.find_opt tbl key with
  | Some iv -> iv
  | None ->
      let iv = Sim.Ivar.create () in
      Hashtbl.replace tbl key iv;
      iv

let get_reg sh batch prio egid = get_iv sh.reg (batch, prio, egid)
let get_commit sh batch node = get_iv sh.commits (batch, node)

(* ------------------------------------------------------------------ *)
(* Abort / resolution coordination                                     *)
(* ------------------------------------------------------------------ *)

let broadcast_resolution sh ~self rt aborted =
  List.iter
    (fun n ->
      if n = self then begin
        if aborted then rt.aborted_local.(n) <- true;
        if not (Sim.Ivar.is_full rt.resolved.(n)) then
          Sim.Ivar.fill sh.sim rt.resolved.(n) ()
      end
      else Net.send sh.net ~src:self ~dst:n ~bytes:16 (Resolve { rt; aborted }))
    rt.participants

let resolve_arrive sh ~self rt =
  rt.pending_aborters <- rt.pending_aborters - 1;
  if rt.pending_aborters = 0 && not rt.aborted then
    broadcast_resolution sh ~self rt false

let do_abort sh ~self rt =
  if not rt.aborted then begin
    rt.aborted <- true;
    rt.txn.Txn.status <- Txn.Aborted;
    broadcast_resolution sh ~self rt true;
    (* Unblock same-txn consumers; conservative gating keeps garbage out
       of the database. *)
    Array.iter
      (fun ivs ->
        Array.iter
          (fun iv -> if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv 0)
          ivs)
      rt.inputs
  end

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

let make_drt ?centry sh txn bidx =
  let n = Array.length txn.Txn.frags in
  let inputs =
    Array.map
      (fun (f : Fragment.t) ->
        Array.map (fun _ -> Sim.Ivar.create ()) f.Fragment.data_deps)
      txn.Txn.frags
  in
  let producers = Array.make n [] in
  Array.iteri
    (fun fid (f : Fragment.t) ->
      let consumer_node = node_of_part sh (frag_part sh f) in
      Array.iteri
        (fun i d ->
          producers.(d) <- (consumer_node, inputs.(fid).(i)) :: producers.(d))
        f.Fragment.data_deps)
    txn.Txn.frags;
  let participants =
    let seen = Array.make sh.cfg.nodes false in
    Array.iter
      (fun f -> seen.(node_of_part sh (frag_part sh f)) <- true)
      txn.Txn.frags;
    let acc = ref [] in
    for i = sh.cfg.nodes - 1 downto 0 do
      if seen.(i) then acc := i :: !acc
    done;
    !acc
  in
  txn.Txn.status <- Txn.Active;
  {
    txn;
    bidx;
    inputs;
    producers;
    resolved = Array.init sh.cfg.nodes (fun _ -> Sim.Ivar.create ());
    aborted_local = Array.make sh.cfg.nodes false;
    participants;
    pending_aborters = txn.Txn.n_abortable;
    aborted = false;
    centry;
  }

let slice_bounds sh gid =
  let planners = p_global sh in
  let base = sh.cfg.batch_size / planners
  and rem = sh.cfg.batch_size mod planners in
  let start = (gid * base) + min gid rem in
  (start, base + if gid < rem then 1 else 0)

let plan_order = Quill_quecc.Engine.plan_order_for_dist

(* The contiguous [rts] slot range owned by a node (union of its
   planners' slices; used whole by planner 0 in client mode). *)
let node_slot_range sh node =
  let start = fst (slice_bounds sh (node * sh.cfg.planners)) in
  let stop =
    if node = sh.cfg.nodes - 1 then sh.cfg.batch_size
    else fst (slice_bounds sh ((node + 1) * sh.cfg.planners))
  in
  (start, stop - start)

let planner_thread sh node p stream batches =
  let costs = sh.cfg.costs in
  let gid = (node * sh.cfg.planners) + p in
  let plan_txn out parity start j txn centry =
    Sim.tick sh.sim costs.Costs.txn_overhead;
    txn.Txn.submit_time <- Sim.now sh.sim;
    txn.Txn.attempts <- txn.Txn.attempts + 1;
    let rt = make_drt ?centry sh txn (start + j) in
    sh.rts.(parity).(start + j) <- Some rt;
    Array.iter
      (fun (f : Fragment.t) ->
        Sim.tick sh.sim costs.Costs.plan_fragment;
        Vec.push out.(frag_part sh f) { rt; frag = f; voted = false })
      (plan_order txn.Txn.frags)
  in
  (* Plan one batch via [fill] and deliver the queues.  The staging
     array (queues destined for every executor gid) is allocated fresh
     per batch: local executors receive their queues by reference and
     keep them as the crash-replay log until the batch commits, so a
     pipelined planner must not reuse (or clear) a previous batch's
     vectors. *)
  let plan_batch b fill =
    Sim.set_phase sh.sim Sim.Ph_plan;
    let out = Array.init (e_global sh) (fun _ -> Vec.create ()) in
    fill out (b land 1);
    (* Deliver queues: local ones directly, remote ones as one shipped
       message per destination node (the Q-Store batching). *)
    for dst = 0 to sh.cfg.nodes - 1 do
      if dst = node then
        for e = 0 to sh.cfg.executors - 1 do
          let egid = (dst * sh.cfg.executors) + e in
          Sim.tick sh.sim costs.Costs.queue_op;
          (* An HA leader kill poisons every queue ivar with an empty
             queue; a planner caught mid-batch must not double-fill. *)
          let iv = get_reg sh b gid egid in
          if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv out.(egid)
        done
      else begin
        let qs =
          Array.init sh.cfg.executors (fun e ->
              let egid = (dst * sh.cfg.executors) + e in
              let copy = Vec.of_array (Vec.to_array out.(egid)) in
              copy)
        in
        let entries =
          Array.fold_left (fun acc q -> acc + Vec.length q) 0 qs
        in
        Net.send sh.net ~src:node ~dst ~bytes:(32 * max 1 entries)
          (Ship { batch = b; prio = gid; qs })
      end
    done;
    Sim.set_phase sh.sim Sim.Ph_other
  in
  let await_commit b = Sim.Ivar.read sh.sim (get_commit sh b node) in
  match sh.clients with
  | None ->
      let start, count = slice_bounds sh gid in
      let fill out parity =
        for j = 0 to count - 1 do
          plan_txn out parity start j (stream ()) None
        done
      in
      (* HA: stream this planner's freshly planned slice to the backups
         — the queues double as the replication log. *)
      let replicate b =
        match sh.rep with
        | Some r when not sh.halted ->
            let txns =
              Array.init count (fun j ->
                  match sh.rts.(b land 1).(start + j) with
                  | Some rt -> rt.txn
                  | None -> assert false)
            in
            Replication.ship r ~batch:b ~part:gid txns
        | _ -> ()
      in
      if sh.cfg.pipeline then
        (* Lag-1 pipelining: plan batch [b] as soon as batch [b-2]
           committed, overlapping planning of [b] with execution of
           [b-1].  Exactly two batches of runtimes are live at once —
           what the parity-indexed [rts] buffers hold.  The time spent
           blocked on that lagged commit is the pipeline backing up
           (execution slower than planning). *)
        for b = 0 to batches - 1 do
          if not sh.halted then begin
            if b >= 2 then begin
              let t0 = Sim.now sh.sim in
              ignore (await_commit (b - 2));
              sh.metrics.Metrics.pipe_drain_stall <-
                sh.metrics.Metrics.pipe_drain_stall + (Sim.now sh.sim - t0)
            end;
            if not sh.halted then begin
              plan_batch b fill;
              replicate b
            end
          end
        done
      else
        for b = 0 to batches - 1 do
          if not sh.halted then begin
            plan_batch b fill;
            replicate b;
            ignore (await_commit b)
          end
        done
  | Some c ->
      (* Client mode: exactly one planner per node (p = 0) closes each
         batch against the admission queue, owning the node's whole slot
         range.  A second blocking drainer would deadlock: executors sit
         on its unshipped queue ivars, so completions — the only thing
         that can exhaust the client layer — could never happen.  The
         other planners ship empty queues to keep the priority structure
         (and message counts) intact.

         The loop stays sequential even with [pipeline] set: a batch can
         only close against arrivals admitted after the previous batch's
         completions ran, and the stop decision rides on that batch's
         commit — planning ahead would change admission order. *)
      let start, capacity = node_slot_range sh node in
      let rec loop b =
        plan_batch b (fun out parity ->
            if p = 0 then
              Array.iteri
                (fun j (e : Clients.entry) ->
                  plan_txn out parity start j e.Clients.txn (Some e))
                (Clients.drain c ~node ~max:capacity));
        if not (await_commit b) then loop (b + 1)
      in
      loop 0

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type est = {
  node : int;
  egid : int;
  mutable cur_rt : drt option;
  mutable cur_frag : Fragment.t option;
  mutable cur_row : Row.t;
  mutable cur_found : bool;
  mutable replaying : bool;  (* re-executing queues during recovery *)
}

let dummy_row = Row.make ~key:(-1) ~nfields:1

let make_ctx sh st =
  let costs = sh.cfg.costs in
  let the_rt () =
    match st.cur_rt with Some rt -> rt | None -> assert false
  in
  let read (_ : Fragment.t) field =
    Sim.tick sh.sim costs.Costs.row_read;
    if st.cur_found then st.cur_row.Row.data.(field) else 0
  in
  let write _frag field v =
    Sim.tick sh.sim costs.Costs.row_write;
    if st.cur_found then begin
      let row = st.cur_row in
      if not row.Row.dirty then begin
        row.Row.dirty <- true;
        Vec.push sh.touched.(st.egid) row
      end;
      row.Row.data.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick sh.sim costs.Costs.index_insert;
    let tbl = Db.table sh.db frag.Fragment.table in
    (* Inserts publish immediately and survive the crash; replaying one
       verbatim would raise on the duplicate key. *)
    if not (st.replaying && Table.find tbl key <> None) then begin
      let home = Db.home sh.db frag.Fragment.table frag.Fragment.key in
      ignore (Table.insert tbl ~home ~key payload)
    end
  in
  let input producer_fid =
    let rt = the_rt () in
    let frag =
      match st.cur_frag with Some f -> f | None -> assert false
    in
    (* Find which of this fragment's dependencies points at the producer;
       its input ivar carries the value (locally or via a Fill message). *)
    let deps = frag.Fragment.data_deps in
    let rec find i =
      if i >= Array.length deps then assert false
      else if deps.(i) = producer_fid then i
      else find (i + 1)
    in
    Sim.Ivar.read sh.sim rt.inputs.(frag.Fragment.fid).(find 0)
  in
  let output fid v =
    let rt = the_rt () in
    List.iter
      (fun (dst, iv) ->
        if dst = st.node then begin
          if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv v
        end
        else Net.send sh.net ~src:st.node ~dst ~bytes:16 (Fill { iv; v }))
      rt.producers.(fid)
  in
  let found _ = st.cur_found in
  { Exec.read; write; add; insert; input; output; found }

let exec_entry sh st ctx e =
  let { rt; frag; _ } = e in
  let costs = sh.cfg.costs in
  Sim.tick sh.sim costs.Costs.queue_op;
  if rt.aborted_local.(st.node) then Sim.tick sh.sim costs.Costs.abort_cleanup
  else begin
    if frag.Fragment.commit_dep && not (Sim.Ivar.is_full rt.resolved.(st.node))
    then Sim.Ivar.read sh.sim rt.resolved.(st.node);
    if rt.aborted_local.(st.node) then
      Sim.tick sh.sim costs.Costs.abort_cleanup
    else begin
      st.cur_rt <- Some rt;
      st.cur_frag <- Some frag;
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          st.cur_row <- dummy_row;
          st.cur_found <- true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          Sim.tick sh.sim costs.Costs.index_probe;
          match
            Table.find (Db.table sh.db frag.Fragment.table) frag.Fragment.key
          with
          | Some row ->
              st.cur_row <- row;
              st.cur_found <- true
          | None ->
              st.cur_row <- dummy_row;
              st.cur_found <- false));
      Sim.tick sh.sim costs.Costs.logic;
      match sh.wl.Workload.exec ctx rt.txn frag with
      | Exec.Ok ->
          if frag.Fragment.abortable && not e.voted then begin
            e.voted <- true;
            resolve_arrive sh ~self:st.node rt
          end
      | Exec.Abort -> do_abort sh ~self:st.node rt
      | Exec.Blocked -> assert false
    end
  end

let executor_thread sh node e batches =
  let egid = (node * sh.cfg.executors) + e in
  let st = { node; egid; cur_rt = None; cur_frag = None; cur_row = dummy_row;
             cur_found = false; replaying = false } in
  let ctx =
    match sh.recorder with
    | None -> make_ctx sh st
    | Some log -> Quill_analysis.Access_log.wrap_exec_ctx log (make_ctx sh st)
  in
  let nprio = p_global sh in
  (* Volatile batch state for recovery: the queues delivered so far and
     how many entries of each were completed.  The planned queues double
     as the redo log — after a crash, replaying the completed prefixes
     in priority order rebuilds exactly the pre-crash partition state. *)
  let qs : entry Vec.t option array = Array.make nprio None in
  let done_ = Array.make nprio 0 in
  let crashes = sh.crash_plan.(node) in
  let crash_idx = ref 0 in
  let tr = Sim.tracer sh.sim in
  (* Consume every planned crash whose time has passed.  Crashes
     materialize at entry boundaries: the executor rolls its partition
     back to the last published batch, sits out the downtime, pays the
     reboot cost, and re-executes the completed queue prefixes. *)
  let check_crash () =
    while
      !crash_idx < Array.length crashes
      && crashes.(!crash_idx).Faults.at <= Sim.now sh.sim
    do
      let c = crashes.(!crash_idx) in
      incr crash_idx;
      let t0 = Sim.now sh.sim in
      Sim.set_phase sh.sim Sim.Ph_recover;
      Vec.iter Row.revert sh.touched.(egid);
      Vec.clear sh.touched.(egid);
      let restart = c.Faults.at + c.Faults.down in
      if restart > Sim.now sh.sim then
        Sim.sleep sh.sim (restart - Sim.now sh.sim);
      Sim.tick sh.sim sh.cfg.costs.Costs.crash_reboot;
      st.replaying <- true;
      for prio = 0 to nprio - 1 do
        match qs.(prio) with
        | None -> ()
        | Some q ->
            for i = 0 to done_.(prio) - 1 do
              exec_entry sh st ctx (Vec.get q i);
              sh.metrics.Metrics.redone <- sh.metrics.Metrics.redone + 1
            done
      done;
      st.replaying <- false;
      if e = 0 then
        sh.metrics.Metrics.crashes <- sh.metrics.Metrics.crashes + 1;
      if Trace.enabled tr then
        Trace.span tr ~tid:(Sim.current_tid sh.sim) ~cat:"phase"
          ~name:"recover" ~ts:t0
          ~dur:(Sim.now sh.sim - t0)
          ();
      Sim.set_phase sh.sim Sim.Ph_execute
    done
  in
  (* One batch; returns the commit's stop decision. *)
  let exec_batch b =
    Sim.set_phase sh.sim Sim.Ph_execute;
    Array.fill qs 0 nprio None;
    Array.fill done_ 0 nprio 0;
    for prio = 0 to nprio - 1 do
      check_crash ();
      let t0 = Sim.now sh.sim in
      let q = Sim.Ivar.read sh.sim (get_reg sh b prio egid) in
      (* In a pipelined run, waiting on a queue ivar means the pipeline
         ran dry (planning/shipping slower than execution). *)
      if sh.cfg.pipeline then
        sh.metrics.Metrics.pipe_fill_stall <-
          sh.metrics.Metrics.pipe_fill_stall + (Sim.now sh.sim - t0);
      qs.(prio) <- Some q;
      for i = 0 to Vec.length q - 1 do
        check_crash ();
        (match sh.recorder with
        | None -> ()
        | Some log ->
            (* no stealing in the distributed engine: owner = thread *)
            Quill_analysis.Access_log.set_slot log ~thread:egid ~owner:egid
              ~prio ~subseq:(-1) ~pos:i ~batch:b);
        exec_entry sh st ctx (Vec.get q i);
        done_.(prio) <- i + 1
      done;
      Hashtbl.remove sh.reg (b, prio, egid)
    done;
    Sim.set_phase sh.sim Sim.Ph_other;
    (* Node-local rendezvous; the last executor reports to node 0. *)
    Sim.Barrier.await sh.sim sh.exec_done_b.(node);
    if e = 0 then Net.send sh.net ~src:node ~dst:0 ~bytes:8 Exec_done;
    let stop = Sim.Ivar.read sh.sim (get_commit sh b node) in
    (* Publish committed state for this executor's rows. *)
    Sim.set_phase sh.sim Sim.Ph_publish;
    Vec.iter
      (fun row ->
        Row.publish row;
        row.Row.dirty <- false)
      sh.touched.(egid);
    Vec.clear sh.touched.(egid);
    Sim.set_phase sh.sim Sim.Ph_other;
    stop
  in
  match sh.clients with
  | None -> for b = 0 to batches - 1 do ignore (exec_batch b) done
  | Some _ ->
      let rec loop b = if not (exec_batch b) then loop (b + 1) in
      loop 0

(* ------------------------------------------------------------------ *)
(* Demultiplexer (per node): network thread                            *)
(* ------------------------------------------------------------------ *)

let account sh ~parity =
  let now = Sim.now sh.sim in
  let rts = sh.rts.(parity) in
  Array.iteri
    (fun i slot ->
      match slot with
      | None -> ()
      | Some rt ->
          rt.txn.Txn.finish_time <- now;
          (match rt.txn.Txn.status with
          | Txn.Aborted ->
              sh.metrics.Metrics.logic_aborted <-
                sh.metrics.Metrics.logic_aborted + 1
          | Txn.Active | Txn.Committed ->
              rt.txn.Txn.status <- Txn.Committed;
              sh.metrics.Metrics.committed <- sh.metrics.Metrics.committed + 1
          | Txn.Pending -> assert false);
          Stats.Hist.add sh.metrics.Metrics.lat
            (now - rt.txn.Txn.submit_time);
          (match (sh.clients, rt.centry) with
          | Some c, Some ce ->
              Clients.complete c ce ~ok:(rt.txn.Txn.status = Txn.Committed)
          | _ -> ());
          rts.(i) <- None)
    rts;
  sh.metrics.Metrics.batches <- sh.metrics.Metrics.batches + 1

let demux_thread sh node =
  let rec loop () =
    match Net.recv sh.net ~node with
    | Ship { batch; prio; qs } ->
        Array.iteri
          (fun e q ->
            let egid = (node * sh.cfg.executors) + e in
            Sim.Ivar.fill sh.sim (get_reg sh batch prio egid) q)
          qs;
        loop ()
    | Fill { iv; v } ->
        if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv v;
        loop ()
    | Resolve { rt; aborted } ->
        if aborted then rt.aborted_local.(node) <- true;
        if not (Sim.Ivar.is_full rt.resolved.(node)) then
          Sim.Ivar.fill sh.sim rt.resolved.(node) ();
        loop ()
    | Exec_done ->
        assert (node = 0);
        if sh.halted then loop ()
        else begin
          sh.done_count <- sh.done_count + 1;
          if sh.done_count = sh.cfg.nodes then begin
            sh.done_count <- 0;
            let b = sh.batches_done in
            (* HA commit gate: a batch commits only after every backup
               has received and speculatively executed it — so a leader
               crash can never lose a committed transaction, and a
               lagging backup backpressures the leader. *)
            (match sh.rep with
            | Some r -> Replication.await_acks r ~batch:b
            | None -> ());
            if sh.halted then
              (* killed while waiting on the ack gate: the batch is not
                 accounted here — the failover finalizes it *)
              loop ()
            else begin
              account sh ~parity:(b land 1);
              sh.batches_done <- b + 1;
              (match sh.rep with
              | Some r -> Replication.committed r ~batch:b
              | None -> ());
              (* The stop decision is made here, after accounting, where
                 it is monotone-stable: client exhaustion means every
                 offered transaction is finally resolved (retries are
                 scheduled before [complete] returns), so no further
                 batch can form. *)
              let stop =
                match sh.clients with
                | None -> sh.batches_done = sh.total_batches
                | Some c -> Clients.exhausted c
              in
              for dst = 0 to sh.cfg.nodes - 1 do
                if dst = 0 then begin
                  (* the commit-marker send above may yield into an HA
                     leader kill, which poisons commit ivars *)
                  let iv = get_commit sh b 0 in
                  if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv stop
                end
                else
                  Net.send sh.net ~src:0 ~dst ~bytes:8
                    (Commit_batch { batch = b; stop })
              done;
              if stop then begin
                for dst = 0 to sh.cfg.nodes - 1 do
                  if dst = 0 then ()
                  else Net.send sh.net ~src:0 ~dst ~bytes:8 Stop
                done;
                match sh.rep with
                | Some r -> Replication.stop r
                | None -> ()
              end
              else loop ()
            end
          end
          else loop ()
        end
    | Commit_batch { batch = b; stop } ->
        Sim.Ivar.fill sh.sim (get_commit sh b node) stop;
        loop ()
    | Stop -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)

let run ?sim ?(faults = Faults.none) ?clients ?recorder cfg wl ~batches =
  assert (cfg.nodes > 0 && cfg.planners > 0 && cfg.executors > 0);
  let db = wl.Workload.db in
  if Db.nparts db <> cfg.nodes * cfg.executors then
    invalid_arg "Dist_quecc.run: db nparts must equal nodes * executors";
  Faults.check_nodes faults ~nodes:cfg.nodes ~name:"Dist_quecc.run";
  if cfg.replicas > 0 then begin
    (* The HA deployment replicates a single-node leader: the cluster's
       redundancy comes from the backups, not from sharding the leader.
       (check_nodes above then forces any planned crash onto node 0.) *)
    if cfg.nodes <> 1 then
      invalid_arg "Dist_quecc.run: --replicas wants a single-node leader";
    if cfg.spec_lag < 1 then
      invalid_arg "Dist_quecc.run: spec_lag must be >= 1";
    (match clients with
    | Some _ ->
        invalid_arg
          "Dist_quecc.run: replication does not compose with open-loop \
           clients"
    | None -> ());
    (match recorder with
    | Some _ ->
        invalid_arg
          "Dist_quecc.run: replication does not compose with the conflict \
           recorder"
    | None -> ());
    if List.length faults.Faults.crashes > 1 then
      invalid_arg "Dist_quecc.run: replication supports one leader crash"
  end;
  let ha = cfg.replicas > 0 in
  let frt = if Faults.active faults then Some (Faults.make faults) else None in
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let sh =
    {
      cfg;
      sim;
      wl;
      db;
      net = Net.create ?faults:frt sim cfg.costs ~nodes:cfg.nodes;
      reg = Hashtbl.create 1024;
      commits = Hashtbl.create 64;
      rts = Array.init 2 (fun _ -> Array.make cfg.batch_size None);
      touched =
        Array.init (cfg.nodes * cfg.executors) (fun _ -> Vec.create ());
      crash_plan =
        (* An HA leader crash is fail-stop, not the transient
           crash-and-replay of the executor path: the reaper below kills
           the leader for good and the backups take over. *)
        (if ha then Array.init cfg.nodes (fun _ -> [||])
         else Array.init cfg.nodes (fun n -> Faults.crashes_for faults ~node:n));
      metrics = Metrics.create ();
      exec_done_b = Array.init cfg.nodes (fun _ -> Sim.Barrier.create cfg.executors);
      done_count = 0;
      batches_done = 0;
      total_batches = batches;
      clients;
      recorder;
      rep = None;
      halted = false;
    }
  in
  if ha then begin
    (* Deterministic re-planning for failover: re-draw every planner
       stream from its seed, fast-forward past the batches the dead
       leader already planned, and yield successive whole batches in
       global batch-slot order — the exact transactions the dead leader
       would have planned (exact for generators that do not read the
       database while generating, i.e. YCSB; see DESIGN.md). *)
    let replan ~first =
      let streams =
        Array.init (p_global sh) (fun gid -> wl.Workload.new_stream gid)
      in
      Array.iteri
        (fun gid s ->
          let _, count = slice_bounds sh gid in
          for _ = 1 to first * count do
            ignore (s ())
          done)
        streams;
      let next = ref first in
      fun () ->
        assert (!next < batches);
        incr next;
        Array.concat
          (List.init (p_global sh) (fun gid ->
               let _, count = slice_bounds sh gid in
               Array.init count (fun _ ->
                   Sim.tick sh.sim cfg.costs.Costs.txn_overhead;
                   let txn = streams.(gid) () in
                   txn.Txn.submit_time <- Sim.now sh.sim;
                   txn.Txn.attempts <- txn.Txn.attempts + 1;
                   Array.iter
                     (fun (_ : Fragment.t) ->
                       Sim.tick sh.sim cfg.costs.Costs.plan_fragment)
                     txn.Txn.frags;
                   txn)))
    in
    let rep =
      Replication.create ~sim ~costs:cfg.costs ~wl ~replicas:cfg.replicas
        ~spec_lag:cfg.spec_lag ~slices:(p_global sh) ~total_batches:batches
        ~metrics:sh.metrics
        ~halted:(fun () -> sh.halted)
        ~committed_batches:(fun () -> sh.batches_done)
        ~replan ()
    in
    sh.rep <- Some rep;
    Replication.spawn rep;
    (* The reaper: at the planned crash time, fail-stop the leader.
       [halted] is set first, then every synchronization point a leader
       thread could be parked on is poisoned (all fills are
       is-full-guarded, and [account] is yield-free, so the guarded
       re-checks in the planner/demux paths are race-free). *)
    List.iter
      (fun (c : Faults.crash) ->
        Sim.spawn ~at:c.Faults.at sim (fun () ->
            sh.halted <- true;
            sh.metrics.Metrics.crashes <- sh.metrics.Metrics.crashes + 1;
            for b = 0 to batches - 1 do
              for prio = 0 to p_global sh - 1 do
                for egid = 0 to e_global sh - 1 do
                  let iv = get_reg sh b prio egid in
                  if not (Sim.Ivar.is_full iv) then
                    Sim.Ivar.fill sim iv (Vec.create ())
                done
              done;
              let civ = get_commit sh b 0 in
              if not (Sim.Ivar.is_full civ) then Sim.Ivar.fill sim civ true
            done;
            Array.iter
              (fun slots ->
                Array.iter
                  (function
                    | None -> ()
                    | Some rt ->
                        Array.iter
                          (Array.iter (fun iv ->
                               if not (Sim.Ivar.is_full iv) then
                                 Sim.Ivar.fill sim iv 0))
                          rt.inputs;
                        Array.iter
                          (fun iv ->
                            if not (Sim.Ivar.is_full iv) then
                              Sim.Ivar.fill sim iv ())
                          rt.resolved)
                  slots)
              sh.rts;
            Net.send sh.net ~src:0 ~dst:0 ~bytes:8 Stop;
            Replication.kill_leader rep))
      faults.Faults.crashes
  end;
  for node = 0 to cfg.nodes - 1 do
    for p = 0 to cfg.planners - 1 do
      let stream =
        match clients with
        | Some _ -> fun () -> assert false (* arrivals come from clients *)
        | None -> wl.Workload.new_stream ((node * cfg.planners) + p)
      in
      Sim.spawn sim (fun () -> planner_thread sh node p stream batches)
    done;
    for e = 0 to cfg.executors - 1 do
      Sim.spawn sim (fun () -> executor_thread sh node e batches)
    done;
    Sim.spawn sim (fun () -> demux_thread sh node)
  done;
  let parked =
    match recorder with
    | None -> Sim.run sim
    | Some log ->
        Quill_analysis.Access_log.with_sim log sim (fun () -> Sim.run sim)
  in
  if parked <> 0 then
    failwith (Printf.sprintf "Dist_quecc.run: %d threads deadlocked" parked);
  let m = sh.metrics in
  m.Metrics.elapsed <- Sim.horizon sim;
  m.Metrics.busy <- Sim.busy_time sim;
  m.Metrics.idle <- Sim.idle_time sim;
  m.Metrics.threads <-
    (cfg.nodes * (cfg.planners + cfg.executors + 1))
    + (match sh.rep with Some r -> Replication.threads r | None -> 0);
  if cfg.pipeline then begin
    (* fill stalls accumulate in executor threads, drain stalls in
       planner threads; recording the contributor counts makes the
       per-thread stall averages engine-comparable *)
    m.Metrics.pipe_fill_threads <- cfg.nodes * cfg.executors;
    m.Metrics.pipe_drain_threads <- cfg.nodes * cfg.planners
  end;
  m.Metrics.msgs <- Net.messages_sent sh.net;
  m.Metrics.msg_retries <- Net.messages_retried sh.net;
  m.Metrics.msg_dup_drops <- Net.duplicates_dropped sh.net;
  m.Metrics.msg_bytes <- Net.bytes_sent sh.net;
  m.Metrics.msg_dups_sent <- Net.duplicates_sent sh.net;
  (match sh.rep with
  | None -> ()
  | Some r ->
      (* folds the replication net's traffic on top of the main net's *)
      Replication.record r;
      if Replication.failed_over r then
        (* The harness database is the dead leader's; the surviving
           state of record is the elected backup's replica.  Syncing it
           back makes [Db.checksum] — and every state assertion built on
           it — observe the replicated outcome. *)
        Db.overwrite_from ~src:(Replication.winner_db r) db);
  Quill_quecc.Engine.record_sim_breakdown m sim;
  m
