(* Speculative queue replication and leader failover (HA-QueCC).

   The dist-quecc leader streams every planned batch — the same queues
   that already serve as the schedule and the crash-redo log — to [r]
   backup nodes over a dedicated replication network.  Backups execute
   each batch speculatively, in global batch-slot order, against a
   deep-cloned replica database as soon as (a) the batch is fully
   received and (b) it is within [spec_lag] batches of the last
   commit marker; effects stay in the replica's live versions and are
   only made visible (published to the committed versions) when the
   leader's commit marker for that batch arrives.  Each backup
   acknowledges a batch once it is received AND speculatively executed;
   the leader does not commit a batch before every backup acked it, so
   the ack path doubles as backpressure: a lagging backup stalls the
   leader rather than falling unboundedly behind.

   Failover: backups detect leader silence with [Net.recv_timeout]
   (the leader heartbeats between batches), broadcast deterministic
   election votes carrying the highest fully-replicated batch each has
   seen, and agree on (w, f) = (lowest live backup id, min of the
   votes).  Every accounted batch was acked by every backup, so
   f is never behind the leader's commit cursor: no committed
   transaction can be lost.  All backups then finalize batches <= f
   (speculative execution made them instantly committable) and undo
   speculative work > f; the new leader re-plans the in-flight batches
   from the workload's deterministic streams and resumes the protocol
   with the remaining backups. *)

open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn

(* Heartbeat period and the silence window that declares the leader
   dead.  Sized from the network latency so fault-plan jitter (bounded
   retransmission delays) cannot trigger a spurious election. *)
let heartbeat_every (c : Costs.t) = max 20_000 (5 * c.Costs.net_latency)
let detect_timeout c = 8 * heartbeat_every c

type rmsg =
  | Rep_batch of { batch : int; part : int; txns : Txn.t array }
      (* one planner's slice of a batch (the whole batch, in [part] 0,
         after a failover re-plan); txns arrive in batch-slot order *)
  | Rep_commit of { batch : int }
  | Rep_ack of { batch : int; backup : int }
  | Rep_hb
  | Rep_elect of { backup : int; full : int }
  | Rep_stop

(* Per-transaction speculative record: outcome plus enough undo state
   to erase the transaction if its batch never commits. *)
type trec = {
  t_txn : Txn.t;
  mutable t_ok : bool;
  mutable t_undo : (Row.t * int array) list;
  mutable t_inserts : (int * int) list;
}

(* Per-batch record on a backup. *)
type brec = {
  b_slices : Txn.t array option array;
  mutable b_have : int;
  mutable b_trecs : trec array;          (* [||] until spec-executed *)
  mutable b_publish : (Row.t * int array) list;
      (* end-of-batch snapshots of every row the batch wrote; publishing
         blits these (not the current live data, which later speculative
         batches may have overwritten) into the committed versions *)
  mutable b_specced : bool;
  mutable b_published : bool;
}

type backup = {
  k_id : int;                            (* replication-net node id *)
  k_db : Db.t;                           (* deep clone of the leader db *)
  k_recs : brec array;                   (* per batch *)
  mutable k_full : int;      (* largest F with batches 0..F fully received *)
  mutable k_commit : int;                (* last published batch *)
  mutable k_spec : int;                  (* last spec-executed batch *)
  mutable k_required : int;  (* slices per batch: p_global, 1 after failover *)
  mutable k_leader : int;
  k_written : Row.t Vec.t;               (* current batch's written rows *)
}

type t = {
  sim : Sim.t;
  costs : Costs.t;
  wl : Workload.t;
  net : rmsg Net.t;
  replicas : int;
  spec_lag : int;
  slices : int;                          (* planner slices per batch *)
  total_batches : int;
  metrics : Metrics.t;
  backups : backup array;
  acks : (int, unit Sim.Ivar.iv) Hashtbl.t;  (* leader: all-acked per batch *)
  ack_counts : (int, int ref) Hashtbl.t;
  hb_stop : unit Sim.Chan.ch;
  halted : unit -> bool;                 (* leader killed by the fault plan *)
  committed_batches : unit -> int;       (* leader accounting cursor *)
  replan : first:int -> unit -> Txn.t array;
      (* re-draw the workload streams and yield successive re-planned
         batches starting at [first] (deterministic: same seed, same
         transactions the dead leader would have planned) *)
  mutable failed_over : bool;
  mutable winner : int;
}

(* The replication network carries no fault plan: it models a reliable
   ordered transport (the leader->backup stream of the HA design), so a
   delayed heartbeat cannot fake a leader death and a dead leader's
   stragglers cannot arrive after the election settled.  The engine's
   main interconnect still carries the full fault plan — the leader
   crash itself is injected there. *)
let create ~sim ~costs ~wl ~replicas ~spec_lag ~slices ~total_batches
    ~metrics ~halted ~committed_batches ~replan () =
  let db = wl.Workload.db in
  {
    sim;
    costs;
    wl;
    net = Net.create sim costs ~nodes:(1 + replicas);
    replicas;
    spec_lag;
    slices;
    total_batches;
    metrics;
    backups =
      Array.init replicas (fun i ->
          {
            k_id = i + 1;
            k_db = Db.clone db;
            k_recs =
              Array.init total_batches (fun _ ->
                  {
                    b_slices = Array.make slices None;
                    b_have = 0;
                    b_trecs = [||];
                    b_publish = [];
                    b_specced = false;
                    b_published = false;
                  });
            k_full = -1;
            k_commit = -1;
            k_spec = -1;
            k_required = slices;
            k_leader = 0;
            k_written = Vec.create ();
          });
    acks = Hashtbl.create 64;
    ack_counts = Hashtbl.create 64;
    hb_stop = Sim.Chan.create ();
    halted;
    committed_batches;
    replan;
    failed_over = false;
    winner = 0;
  }

let replica_db t i = t.backups.(i).k_db
let failed_over t = t.failed_over
let winner_db t = t.backups.(t.winner - 1).k_db

(* ------------------------------------------------------------------ *)
(* Leader side                                                         *)
(* ------------------------------------------------------------------ *)

let ack_iv t batch =
  match Hashtbl.find_opt t.acks batch with
  | Some iv -> iv
  | None ->
      let iv = Sim.Ivar.create () in
      Hashtbl.replace t.acks batch iv;
      iv

let bytes_of_txns txns =
  32 * max 1 (Array.fold_left (fun a (x : Txn.t) ->
                  a + Array.length x.Txn.frags) 0 txns)

(* Planner hook: stream one planned slice to every backup. *)
let ship t ~batch ~part txns =
  let bytes = bytes_of_txns txns in
  for j = 1 to t.replicas do
    Net.send t.net ~src:0 ~dst:j ~bytes (Rep_batch { batch; part; txns })
  done

(* Commit gate: the leader's coordinator blocks here before accounting
   a batch — every backup must have received and spec-executed it. *)
let await_acks t ~batch = Sim.Ivar.read t.sim (ack_iv t batch)

let committed t ~batch =
  for j = 1 to t.replicas do
    Net.send t.net ~src:0 ~dst:j ~bytes:8 (Rep_commit { batch })
  done

let stop t =
  for j = 1 to t.replicas do
    Net.send t.net ~src:0 ~dst:j ~bytes:8 Rep_stop
  done;
  (* loopback: releases the ack listener *)
  Net.send t.net ~src:0 ~dst:0 ~bytes:8 Rep_stop;
  Sim.Chan.send t.sim t.hb_stop ()

(* Fault-plan kill: poison every ack gate the coordinator could be
   blocked on and release the leader-local replication threads.  The
   backups are NOT notified — they must detect the silence. *)
let kill_leader t =
  for b = 0 to t.total_batches - 1 do
    let iv = ack_iv t b in
    if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill t.sim iv ()
  done;
  Net.send t.net ~src:0 ~dst:0 ~bytes:8 Rep_stop;
  Sim.Chan.send t.sim t.hb_stop ()

let ack_listener t =
  let rec loop () =
    match Net.recv t.net ~node:0 with
    | Rep_ack { batch; _ } ->
        let c =
          match Hashtbl.find_opt t.ack_counts batch with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.replace t.ack_counts batch r;
              r
        in
        incr c;
        if !c = t.replicas then begin
          let iv = ack_iv t batch in
          if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill t.sim iv ()
        end;
        loop ()
    | Rep_stop -> ()
    | _ -> loop ()
  in
  loop ()

let heartbeat t =
  let every = heartbeat_every t.costs in
  let rec loop () =
    match Sim.Chan.recv_timeout t.sim t.hb_stop ~timeout:every with
    | Some () -> ()
    | None ->
        if not (t.halted ()) then begin
          for j = 1 to t.replicas do
            Net.send t.net ~src:0 ~dst:j ~bytes:8 Rep_hb
          done;
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Backup side: speculative execution                                  *)
(* ------------------------------------------------------------------ *)

let dummy_row = Row.make ~key:(-1) ~nfields:1

(* Serial-style execution context against the replica database.  Writes
   go to the live versions only; each transaction keeps an undo list and
   each batch a written-row set, so a batch is both publishable (commit
   marker) and erasable (failover) after the fact. *)
type est = {
  e_db : Db.t;
  mutable e_row : Row.t;
  mutable e_found : bool;
  mutable e_rec : trec;
  mutable e_slots : int array;
  e_written : Row.t Vec.t;
}

let make_ctx t st =
  let costs = t.costs in
  let read (_ : Fragment.t) field =
    Sim.tick t.sim costs.Costs.row_read;
    if st.e_found then st.e_row.Row.data.(field) else 0
  in
  let write _frag field v =
    Sim.tick t.sim costs.Costs.row_write;
    if st.e_found then begin
      let row = st.e_row in
      st.e_rec.t_undo <- (row, Array.copy row.Row.data) :: st.e_rec.t_undo;
      if not row.Row.dirty then begin
        row.Row.dirty <- true;
        Vec.push st.e_written row
      end;
      row.Row.data.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick t.sim costs.Costs.index_insert;
    let tbl = Db.table st.e_db frag.Fragment.table in
    let home = Db.home st.e_db frag.Fragment.table frag.Fragment.key in
    ignore (Table.insert tbl ~home ~key payload);
    st.e_rec.t_inserts <- (frag.Fragment.table, key) :: st.e_rec.t_inserts
  in
  let input fid = st.e_slots.(fid) in
  let output fid v =
    if fid < Array.length st.e_slots then st.e_slots.(fid) <- v
  in
  let found _ = st.e_found in
  { Exec.read; write; add; insert; input; output; found }

let undo_trec db tr =
  List.iter (fun (row, saved) -> Row.restore row saved) tr.t_undo;
  List.iter (fun (tid, key) -> Table.remove (Db.table db tid) key) tr.t_inserts;
  tr.t_undo <- [];
  tr.t_inserts <- []

(* Speculatively execute one transaction; commit-or-restore against the
   replica's live versions only. *)
let spec_txn t st ctx txn =
  let costs = t.costs in
  Sim.tick t.sim costs.Costs.txn_overhead;
  let tr = { t_txn = txn; t_ok = false; t_undo = []; t_inserts = [] } in
  st.e_rec <- tr;
  st.e_slots <- Array.make (Array.length txn.Txn.frags) 0;
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          st.e_row <- dummy_row;
          st.e_found <- true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          Sim.tick t.sim costs.Costs.index_probe;
          match
            Table.find (Db.table st.e_db frag.Fragment.table) frag.Fragment.key
          with
          | Some row ->
              st.e_row <- row;
              st.e_found <- true
          | None ->
              st.e_row <- dummy_row;
              st.e_found <- false));
      Sim.tick t.sim costs.Costs.logic;
      match t.wl.Workload.exec ctx txn frag with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  (match go 0 with
  | Exec.Ok -> tr.t_ok <- true
  | Exec.Abort | Exec.Blocked ->
      Sim.tick t.sim costs.Costs.abort_cleanup;
      undo_trec st.e_db tr);
  tr

(* All slices of a fully-received batch, concatenated in planner order
   (= global batch-slot order: planner slices are contiguous ascending). *)
let batch_txns bk b =
  let r = bk.k_recs.(b) in
  Array.concat (List.filter_map Fun.id (Array.to_list r.b_slices))

let spec_batch t bk st b =
  Sim.set_phase t.sim Sim.Ph_execute;
  let r = bk.k_recs.(b) in
  let txns = batch_txns bk b in
  Vec.clear st.e_written;
  r.b_trecs <- Array.map (fun txn -> spec_txn t st (make_ctx t st) txn) txns;
  (* Snapshot each written row's end-of-batch live value: that — not
     whatever later speculative batches leave in [data] — is what the
     commit marker publishes. *)
  let pub = ref [] in
  Vec.iter
    (fun row ->
      row.Row.dirty <- false;
      pub := (row, Array.copy row.Row.data) :: !pub)
    st.e_written;
  r.b_publish <- !pub;
  r.b_specced <- true;
  bk.k_spec <- b;
  let m = t.metrics in
  m.Metrics.spec_executed <- m.Metrics.spec_executed + Array.length txns;
  let lag = b - bk.k_commit in
  if lag > m.Metrics.rep_lag_max then m.Metrics.rep_lag_max <- lag;
  Sim.set_phase t.sim Sim.Ph_other

(* Make ctx once per txn: spec_txn needs [st.e_rec] rebound first, and
   the ctx closures read through [st], so one ctx per backup suffices. *)
let spec_ready t bk st =
  (* speculate ahead while fully received and within the lag bound *)
  while
    bk.k_spec + 1 <= bk.k_full
    && bk.k_spec + 1 <= bk.k_commit + t.spec_lag
  do
    let b = bk.k_spec + 1 in
    spec_batch t bk st b;
    Net.send t.net ~src:bk.k_id ~dst:bk.k_leader ~bytes:8
      (Rep_ack { batch = b; backup = bk.k_id })
  done

let publish_to t bk f =
  for b = bk.k_commit + 1 to f do
    let r = bk.k_recs.(b) in
    assert (r.b_specced && not r.b_published);
    Sim.set_phase t.sim Sim.Ph_publish;
    List.iter
      (fun (row, snap) ->
        Sim.tick t.sim t.costs.Costs.row_write;
        Array.blit snap 0 row.Row.committed 0 (Array.length snap))
      r.b_publish;
    r.b_published <- true;
    Sim.set_phase t.sim Sim.Ph_other
  done;
  if f > bk.k_commit then bk.k_commit <- f

let store_slice bk ~batch ~part txns =
  let r = bk.k_recs.(batch) in
  if r.b_slices.(part) = None then begin
    r.b_slices.(part) <- Some txns;
    r.b_have <- r.b_have + 1;
    while
      bk.k_full + 1 < Array.length bk.k_recs
      && bk.k_recs.(bk.k_full + 1).b_have >= bk.k_required
    do
      bk.k_full <- bk.k_full + 1
    done
  end

(* ------------------------------------------------------------------ *)
(* Failover                                                            *)
(* ------------------------------------------------------------------ *)

(* Finalize a batch's accounting from the speculative records: the new
   leader owns the metrics the dead leader can no longer produce. *)
let account_batch t bk b =
  let now = Sim.now t.sim in
  let m = t.metrics in
  Array.iter
    (fun tr ->
      let txn = tr.t_txn in
      txn.Txn.finish_time <- now;
      if tr.t_ok then begin
        txn.Txn.status <- Txn.Committed;
        m.Metrics.committed <- m.Metrics.committed + 1
      end
      else begin
        txn.Txn.status <- Txn.Aborted;
        m.Metrics.logic_aborted <- m.Metrics.logic_aborted + 1
      end;
      Stats.Hist.add m.Metrics.lat (max 0 (now - txn.Txn.submit_time)))
    bk.k_recs.(b).b_trecs;
  m.Metrics.batches <- m.Metrics.batches + 1

(* The new leader's protocol loop: re-plan each in-flight batch from the
   deterministic workload streams, stream it to the surviving backups,
   execute it locally, gate the commit on their acks, publish, account,
   and broadcast the commit marker. *)
let leader_loop t bk st ~first =
  let gen = t.replan ~first in
  for b = first to t.total_batches - 1 do
    Sim.set_phase t.sim Sim.Ph_plan;
    let txns = gen () in
    Sim.set_phase t.sim Sim.Ph_other;
    let bytes = bytes_of_txns txns in
    for j = 1 to t.replicas do
      if j <> bk.k_id then
        Net.send t.net ~src:bk.k_id ~dst:j ~bytes
          (Rep_batch { batch = b; part = 0; txns })
    done;
    store_slice bk ~batch:b ~part:0 txns;
    spec_batch t bk st b;
    let got = ref 0 in
    while !got < t.replicas - 1 do
      match Net.recv t.net ~node:bk.k_id with
      | Rep_ack { batch; _ } when batch = b -> incr got
      | _ -> ()
    done;
    publish_to t bk b;
    account_batch t bk b;
    for j = 1 to t.replicas do
      if j <> bk.k_id then
        Net.send t.net ~src:bk.k_id ~dst:j ~bytes:8 (Rep_commit { batch = b })
    done
  done;
  for j = 1 to t.replicas do
    if j <> bk.k_id then
      Net.send t.net ~src:bk.k_id ~dst:j ~bytes:8 Rep_stop
  done

exception Run_over

(* Leader presumed dead: elect, agree on the finalization point, roll
   speculation back to it, and either take over or follow the winner. *)
let failover t bk st ~pre =
  let t0 = Sim.now t.sim in
  Sim.set_phase t.sim Sim.Ph_recover;
  for j = 1 to t.replicas do
    if j <> bk.k_id then
      Net.send t.net ~src:bk.k_id ~dst:j ~bytes:16
        (Rep_elect { backup = bk.k_id; full = bk.k_full })
  done;
  let fmin = ref bk.k_full and wmin = ref bk.k_id and got = ref 0 in
  let vote ~backup ~full =
    if full < !fmin then fmin := full;
    if backup < !wmin then wmin := backup;
    incr got
  in
  (match pre with Some (backup, full) -> vote ~backup ~full | None -> ());
  while !got < t.replicas - 1 do
    match Net.recv t.net ~node:bk.k_id with
    | Rep_elect { backup; full } -> vote ~backup ~full
    | Rep_stop ->
        (* the run actually finished; the "silence" was the tail *)
        raise Run_over
    | Rep_batch _ | Rep_commit _ | Rep_hb | Rep_ack _ ->
        (* stragglers from the dead leader: anything beyond [k_full] is
           re-planned by the new leader, so they are safely ignored *)
        ()
  done;
  let f = !fmin and w = !wmin in
  (* Finalize: batches <= f are fully replicated everywhere and at most
     [spec_lag] ahead of our speculation point — execute any remainder,
     then make everything up to f visible. *)
  while bk.k_spec < f do
    spec_batch t bk st (bk.k_spec + 1)
  done;
  publish_to t bk f;
  (* Roll speculative batches beyond f back out of the live versions,
     newest first. *)
  let m = t.metrics in
  for b = bk.k_spec downto f + 1 do
    let r = bk.k_recs.(b) in
    let n = Array.length r.b_trecs in
    for i = n - 1 downto 0 do
      undo_trec bk.k_db r.b_trecs.(i)
    done;
    m.Metrics.spec_wasted <- m.Metrics.spec_wasted + n;
    r.b_trecs <- [||];
    r.b_publish <- [];
    r.b_specced <- false
  done;
  bk.k_spec <- f;
  (* Forget partially received batches: the new leader re-streams them
     as single whole-batch slices. *)
  for b = f + 1 to t.total_batches - 1 do
    let r = bk.k_recs.(b) in
    Array.fill r.b_slices 0 (Array.length r.b_slices) None;
    r.b_have <- 0
  done;
  bk.k_full <- f;
  bk.k_required <- 1;
  bk.k_leader <- w;
  Sim.set_phase t.sim Sim.Ph_other;
  t.failed_over <- true;
  t.winner <- w;
  if bk.k_id = w then begin
    m.Metrics.failovers <- m.Metrics.failovers + 1;
    (* Account the batches the dead leader never got to: they were
       acked by every backup, so they commit — zero lost transactions. *)
    for b = t.committed_batches () to f do
      account_batch t bk b
    done;
    m.Metrics.failover_time <- Sim.now t.sim - t0;
    leader_loop t bk st ~first:(f + 1)
  end

(* ------------------------------------------------------------------ *)
(* Backup thread                                                       *)
(* ------------------------------------------------------------------ *)

let backup_thread t bk =
  let st =
    {
      e_db = bk.k_db;
      e_row = dummy_row;
      e_found = false;
      e_rec =
        {
          t_txn = Txn.make ~tid:(-1) [||];
          t_ok = false;
          t_undo = [];
          t_inserts = [];
        };
      e_slots = [||];
      e_written = bk.k_written;
    }
  in
  let detect = detect_timeout t.costs in
  let rec loop () =
    (* After a failover the protocol runs against the elected leader
       with no further failover support (the fault plan is limited to
       one leader crash), so the timeout is retired. *)
    let msg =
      if t.failed_over then Some (Net.recv t.net ~node:bk.k_id)
      else Net.recv_timeout t.net ~node:bk.k_id ~timeout:detect
    in
    match msg with
    | None ->
        failover t bk st ~pre:None;
        (* the winner ran [leader_loop] to the end of the run inside
           [failover]; followers go back to serving the new leader *)
        if bk.k_id <> t.winner then loop ()
    | Some Rep_hb -> loop ()
    | Some (Rep_batch { batch; part; txns }) ->
        store_slice bk ~batch ~part txns;
        spec_ready t bk st;
        loop ()
    | Some (Rep_commit { batch }) ->
        publish_to t bk batch;
        spec_ready t bk st;
        loop ()
    | Some (Rep_elect { backup; full }) ->
        (* another backup detected the silence first *)
        failover t bk st ~pre:(Some (backup, full));
        if bk.k_id <> t.winner then loop ()
    | Some (Rep_ack _) -> loop ()
    | Some Rep_stop -> ()
  in
  try loop () with Run_over -> ()

let spawn t =
  Sim.spawn t.sim (fun () -> ack_listener t);
  Sim.spawn t.sim (fun () -> heartbeat t);
  Array.iter (fun bk -> Sim.spawn t.sim (fun () -> backup_thread t bk)) t.backups

(* Extra virtual cores an HA run occupies: the backups plus the
   leader's ack listener and heartbeat threads. *)
let threads t = t.replicas + 2

let record t =
  let m = t.metrics in
  m.Metrics.replicas <- t.replicas;
  m.Metrics.msgs <- m.Metrics.msgs + Net.messages_sent t.net;
  m.Metrics.msg_retries <- m.Metrics.msg_retries + Net.messages_retried t.net;
  m.Metrics.msg_dup_drops <-
    m.Metrics.msg_dup_drops + Net.duplicates_dropped t.net;
  m.Metrics.msg_bytes <- m.Metrics.msg_bytes + Net.bytes_sent t.net;
  m.Metrics.msg_dups_sent <-
    m.Metrics.msg_dups_sent + Net.duplicates_sent t.net
