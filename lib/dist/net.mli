(** Simulated cluster interconnect: one FIFO inbox per node, messages
    carry a payload size used for serialization and propagation costs.
    Senders pay [Costs.msg_fixed] CPU; delivery is delayed by
    [Costs.net_latency] plus a per-byte term; receivers pay
    [Costs.msg_fixed] on receipt (charged by the node's demux thread
    calling [recv]).  Loopback sends are free and instantaneous.

    Every message carries a per-link sequence number.  When a fault
    plan is attached, "dropped" messages arrive late (the delay models
    bounded retransmission with exponential backoff — delivery is
    guaranteed, so protocols never deadlock on loss), duplicated
    messages are delivered twice and suppressed at the receiver by
    sequence number, and partitioned links hold traffic until they
    heal.  All fault decisions come from the plan's seeded RNG in
    deterministic send order, so runs are reproducible bit-for-bit. *)

type 'a t

val create :
  ?faults:Quill_faults.Faults.t ->
  Quill_sim.Sim.t ->
  Quill_sim.Costs.t ->
  nodes:int ->
  'a t
(** An inactive fault plan (or none) leaves the fault machinery
    entirely out of the message path. *)

val nodes : 'a t -> int

val send : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Must be called from a simulated thread on node [src].  Raises
    [Invalid_argument] with a descriptive message when [src] or [dst]
    is not a valid node index. *)

val recv : 'a t -> node:int -> 'a
(** Blocking receive from the node's inbox; injected duplicates are
    consumed (and their receive cost charged) transparently.  Raises
    [Invalid_argument] on a bad [node] index. *)

val recv_timeout : 'a t -> node:int -> timeout:int -> 'a option
(** Like {!recv} but waits at most [timeout] virtual ns for a fresh
    (non-duplicate) message; [None] on timeout. *)

val messages_sent : 'a t -> int
(** Total non-loopback messages (duplicate copies not included). *)

val bytes_sent : 'a t -> int

val messages_retried : 'a t -> int
(** Retransmissions implied by fault-plan drops. *)

val duplicates_sent : 'a t -> int

val duplicates_dropped : 'a t -> int
(** Stale copies suppressed at receivers by sequence number. *)
