(** Speculative queue replication and leader failover for dist-quecc.

    The leader streams every planned batch — the queues that already
    double as the deterministic redo log — to [replicas] backups over a
    dedicated replication network, plus a commit marker per batch.
    Backups execute batches speculatively as they arrive (at most
    [spec_lag] batches ahead of the newest commit marker), keep the
    effects in their replica database's live versions, and publish to
    the committed versions only on the leader's marker.  A backup acks a
    batch once received and speculatively executed; the leader's
    coordinator gates each batch commit on all acks, so a lagging
    backup backpressures the leader instead of falling behind without
    bound.

    When the leader goes silent (crash injected by the fault plan),
    backups detect via heartbeat timeout, elect the lowest-id live
    backup, agree on the highest batch fully replicated everywhere,
    finalize up to it (zero committed transactions lost: commits were
    gated on every backup's ack), roll speculation beyond it back, and
    the new leader re-plans the in-flight batches from the workload's
    deterministic streams and resumes the protocol.

    The replication network itself carries no fault plan: it models the
    reliable ordered leader->backup transport of the HA design.  The
    leader crash is injected on the engine's main interconnect. *)

open Quill_sim
open Quill_storage
open Quill_txn

type t

val heartbeat_every : Costs.t -> int
(** Leader heartbeat period, virtual ns (sized from the net latency). *)

val detect_timeout : Costs.t -> int
(** Silence window after which backups declare the leader dead. *)

val create :
  sim:Sim.t ->
  costs:Costs.t ->
  wl:Workload.t ->
  replicas:int ->
  spec_lag:int ->
  slices:int ->
  total_batches:int ->
  metrics:Metrics.t ->
  halted:(unit -> bool) ->
  committed_batches:(unit -> int) ->
  replan:(first:int -> unit -> Txn.t array) ->
  unit ->
  t
(** [slices] is the number of planner slices each batch arrives in;
    [halted] reports whether the fault plan killed the leader;
    [committed_batches] is the leader's accounting cursor (batches fully
    accounted so far); [replan ~first] returns a generator that re-draws
    the workload streams and yields batch [first], [first+1], ... in
    global batch-slot order — the exact transactions the dead leader
    would have planned. *)

val spawn : t -> unit
(** Spawn the replication threads into the simulation: one per backup,
    plus the leader's ack listener and heartbeat. *)

val threads : t -> int
(** Virtual cores the replication layer occupies (for metrics). *)

val ship : t -> batch:int -> part:int -> Txn.t array -> unit
(** Leader planner hook: stream one planned slice to every backup. *)

val await_acks : t -> batch:int -> unit
(** Leader commit gate: block until every backup has received and
    speculatively executed the batch. *)

val committed : t -> batch:int -> unit
(** Broadcast the leader's commit marker for a batch. *)

val stop : t -> unit
(** Quiescent shutdown: stop the backups, the ack listener and the
    heartbeat. *)

val kill_leader : t -> unit
(** Fault-plan hook for a leader crash: release every leader-local
    replication thread and ack gate without notifying the backups —
    they must detect the silence and fail over. *)

val record : t -> unit
(** Fold the replication network's traffic counters and the replica
    count into the run metrics. *)

val failed_over : t -> bool

val replica_db : t -> int -> Db.t
(** [replica_db t i] is backup [i+1]'s database (0-indexed over the
    [replicas] backups). *)

val winner_db : t -> Db.t
(** The elected leader's database; only meaningful after a failover. *)
