open Quill_common
module Trace = Quill_trace.Trace

type time = int

(* Why a thread spent virtual time idle: which primitive it waited on.
   [Cause_sleep] is an explicit [sleep] (e.g. contention backoff). *)
type idle_cause = Cause_barrier | Cause_ivar | Cause_chan | Cause_sleep

let n_causes = 4

let cause_index = function
  | Cause_barrier -> 0
  | Cause_ivar -> 1
  | Cause_chan -> 2
  | Cause_sleep -> 3

let cause_name = function
  | Cause_barrier -> "barrier"
  | Cause_ivar -> "ivar"
  | Cause_chan -> "chan"
  | Cause_sleep -> "sleep"

(* Engine phase the current thread is in; [tick]ed busy time is
   attributed to it.  The labels follow the QueCC plan/execute/recover/
   publish pipeline; non-batched engines use the subset that applies. *)
type phase = Ph_other | Ph_plan | Ph_execute | Ph_recover | Ph_publish

let n_phases = 5

let phase_index = function
  | Ph_other -> 0
  | Ph_plan -> 1
  | Ph_execute -> 2
  | Ph_recover -> 3
  | Ph_publish -> 4

let phase_name = function
  | Ph_other -> "other"
  | Ph_plan -> "plan"
  | Ph_execute -> "execute"
  | Ph_recover -> "recover"
  | Ph_publish -> "publish"

type t = {
  runq : entry Heap.t;
  mutable order : int;
  mutable current : thread option;
  mutable spawned : int;
  mutable completed : int;
  mutable busy : int;
  mutable idle : int;
  mutable horizon : time;
  wake_cost : int;
  busy_by_phase : int array;   (* indexed by phase_index *)
  idle_by_cause : int array;   (* indexed by cause_index *)
  tracer : Trace.t;
}

and thread = { tid : int; mutable clock : time; mutable phase : int }

(* [phantom] entries are scheduler bookkeeping (e.g. receive timeouts)
   that may never fire: they must not drag the horizon forward, or an
   unused timeout would inflate the run's elapsed time. *)
and entry = { at : time; ord : int; phantom : bool; resume : unit -> unit }

type _ Effect.t +=
  | Suspend : (thread -> (unit, unit) Effect.Deep.continuation -> unit)
      -> unit Effect.t

let compare_entry a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.ord b.ord

let create ?(wake_cost = 0) ?(tracer = Trace.null) () =
  {
    runq = Heap.create ~cmp:compare_entry;
    order = 0;
    current = None;
    spawned = 0;
    completed = 0;
    busy = 0;
    idle = 0;
    horizon = 0;
    wake_cost;
    busy_by_phase = Array.make n_phases 0;
    idle_by_cause = Array.make n_causes 0;
    tracer;
  }

let schedule ?(phantom = false) t ~at resume =
  if (not phantom) && at > t.horizon then t.horizon <- at;
  Heap.push t.runq { at; ord = t.order; phantom; resume };
  t.order <- t.order + 1

let cur t =
  match t.current with
  | Some th -> th
  | None -> failwith "Sim: primitive used outside a simulated thread"

(* Build the closure that re-enters a parked thread. *)
let make_resume t th k () =
  t.current <- Some th;
  Effect.Deep.continue k ()

(* Park the calling thread; [f] receives the thread and its continuation
   and is responsible for scheduling it again (directly or via a waiter
   list). *)
let suspend (_ : t) f = Effect.perform (Suspend f)

let reschedule t th k = schedule t ~at:th.clock (make_resume t th k)

let spawn ?(at = 0) t body =
  let th = { tid = t.spawned; clock = at; phase = 0 } in
  t.spawned <- t.spawned + 1;
  let start () =
    t.current <- Some th;
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> t.completed <- t.completed + 1);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend f ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) -> f th k)
            | _ -> None);
      }
  in
  schedule t ~at start

let run t =
  let rec loop () =
    match Heap.pop t.runq with
    | None -> ()
    | Some e ->
        if (not e.phantom) && e.at > t.horizon then t.horizon <- e.at;
        e.resume ();
        loop ()
  in
  loop ();
  t.current <- None;
  t.spawned - t.completed

let now t = (cur t).clock

let advance t th n =
  th.clock <- th.clock + n;
  if th.clock > t.horizon then t.horizon <- th.clock

(* Yield only when another thread is due at or before our new clock; this
   keeps the virtual-time ordering invariant while avoiding a heap
   operation per tick on quiet cores. *)
let maybe_yield t th =
  match Heap.peek t.runq with
  | Some e when e.at <= th.clock -> suspend t (fun th k -> reschedule t th k)
  | Some _ | None -> ()

(* Charge [dt] of idle time to [cause], starting at the thread's current
   clock; emits a wait span when tracing.  Does not move the clock. *)
let charge_idle t th cause dt =
  t.idle <- t.idle + dt;
  t.idle_by_cause.(cause_index cause) <- t.idle_by_cause.(cause_index cause) + dt;
  if Trace.enabled t.tracer then
    Trace.span t.tracer ~tid:th.tid ~cat:"wait"
      ~name:("wait:" ^ cause_name cause)
      ~ts:th.clock ~dur:dt ()

let tick t n =
  let th = cur t in
  t.busy <- t.busy + n;
  t.busy_by_phase.(th.phase) <- t.busy_by_phase.(th.phase) + n;
  advance t th n;
  maybe_yield t th

let sleep t n =
  let th = cur t in
  charge_idle t th Cause_sleep n;
  advance t th n;
  maybe_yield t th

let yield t = suspend t (fun th k -> reschedule t th k)

let set_phase t ph = (cur t).phase <- phase_index ph

let phase_of_index = function
  | 1 -> Ph_plan
  | 2 -> Ph_execute
  | 3 -> Ph_recover
  | 4 -> Ph_publish
  | _ -> Ph_other

let phase t = phase_of_index (cur t).phase
let in_thread t = t.current <> None
let busy_time t = t.busy
let busy_in t ph = t.busy_by_phase.(phase_index ph)
let idle_time t = t.idle
let idle_in t cause = t.idle_by_cause.(cause_index cause)
let horizon t = t.horizon
let threads_spawned t = t.spawned
let threads_completed t = t.completed
let tracer t = t.tracer
let current_tid t = (cur t).tid

let wake t ~cause th at resume =
  let at = if at > th.clock then at else th.clock in
  let at = at + t.wake_cost in
  schedule t ~at (fun () ->
      if at > th.clock then begin
        charge_idle t th cause (at - th.clock);
        th.clock <- at
      end;
      resume ())

(* A fast-path waiter (the value was produced at a virtual time ahead of
   the caller's clock) pays the same wake-up cost as a parked waiter
   would; without this, one thread per hand-off was systematically
   cheaper than its peers.  A value already available at or before the
   caller's clock costs nothing: no wait, no wake. *)
let catch_up t th cause target =
  if target > th.clock then begin
    let target = target + t.wake_cost in
    charge_idle t th cause (target - th.clock);
    th.clock <- target;
    if th.clock > t.horizon then t.horizon <- th.clock
  end

module Ivar = struct
  type 'a state =
    | Empty of (thread * (unit -> unit)) Vec.t
    | Full of time * 'a

  type 'a iv = { mutable st : 'a state }

  let create () = { st = Empty (Vec.create ()) }
  let is_full iv = match iv.st with Full _ -> true | Empty _ -> false

  let fill t iv v =
    match iv.st with
    | Full _ -> invalid_arg "Sim.Ivar.fill: already full"
    | Empty waiters ->
        let at = now t in
        iv.st <- Full (at, v);
        Vec.iter (fun (th, r) -> wake t ~cause:Cause_ivar th at r) waiters

  let rec read t iv =
    match iv.st with
    | Full (tf, v) ->
        catch_up t (cur t) Cause_ivar tf;
        v
    | Empty waiters ->
        suspend t (fun th k -> Vec.push waiters (th, make_resume t th k));
        read t iv

  let peek iv = match iv.st with Full (_, v) -> Some v | Empty _ -> None
end

module Chan = struct
  (* A parked receiver.  [wdeadline] is [max_int] for a plain [recv];
     for [recv_timeout] a phantom scheduler entry fires at the deadline.
     Whichever side (sender or timeout) runs first flips [cancelled] so
     the other becomes a no-op; send skips cancelled waiters lazily. *)
  type waiter = {
    wth : thread;
    wresume : unit -> unit;
    wdeadline : time;
    mutable cancelled : bool;
  }

  type 'a ch = { q : (time * 'a) Queue.t; waiters : waiter Queue.t }

  let create () = { q = Queue.create (); waiters = Queue.create () }

  let send ?(delay = 0) t ch v =
    let arrival = now t + delay in
    Queue.push (arrival, v) ch.q;
    let rec wake_one () =
      match Queue.take_opt ch.waiters with
      | None -> ()
      | Some w when w.cancelled -> wake_one ()
      | Some w ->
          w.cancelled <- true;
          wake t ~cause:Cause_chan w.wth (min arrival w.wdeadline) w.wresume
    in
    wake_one ()

  let park t ch ~deadline =
    suspend t (fun th k ->
        let w =
          {
            wth = th;
            wresume = make_resume t th k;
            wdeadline = deadline;
            cancelled = false;
          }
        in
        Queue.push w ch.waiters;
        if deadline < max_int then begin
          (* Timeout wake-up: phantom so an unfired (or cancelled)
             timeout never advances the horizon; the firing closure
             advances it itself via charge/clock update below. *)
          let at = deadline + t.wake_cost in
          schedule ~phantom:true t ~at (fun () ->
              if not w.cancelled then begin
                w.cancelled <- true;
                if at > th.clock then begin
                  charge_idle t th Cause_chan (at - th.clock);
                  th.clock <- at;
                  if th.clock > t.horizon then t.horizon <- th.clock
                end;
                w.wresume ()
              end)
        end)

  let rec recv t ch =
    if Queue.is_empty ch.q then begin
      park t ch ~deadline:max_int;
      recv t ch
    end
    else begin
      let arrival, v = Queue.pop ch.q in
      catch_up t (cur t) Cause_chan arrival;
      v
    end

  (* Wait at most [timeout] ns of virtual time for a message.  Returns
     [None] once the deadline passes with nothing delivered; a message
     that arrived by the deadline (even while we were being woken) is
     still returned. *)
  let recv_timeout t ch ~timeout =
    if timeout < 0 then invalid_arg "Sim.Chan.recv_timeout: negative timeout";
    let deadline = (cur t).clock + timeout in
    let rec go () =
      let th = cur t in
      match Queue.peek_opt ch.q with
      | Some (arrival, _) when arrival <= deadline || arrival <= th.clock ->
          let arrival, v = Queue.pop ch.q in
          catch_up t th Cause_chan arrival;
          Some v
      | Some _ ->
          (* Next delivery is beyond the deadline: time out in place. *)
          if deadline > th.clock then begin
            charge_idle t th Cause_chan (deadline - th.clock);
            th.clock <- deadline;
            if th.clock > t.horizon then t.horizon <- th.clock
          end;
          None
      | None ->
          if th.clock >= deadline then None
          else begin
            park t ch ~deadline;
            go ()
          end
    in
    go ()

  let try_recv t ch =
    match Queue.peek_opt ch.q with
    | Some (arrival, _) when arrival <= now t ->
        let _, v = Queue.pop ch.q in
        Some v
    | Some _ | None -> None

  let pending ch = Queue.length ch.q
end

module Barrier = struct
  type b = {
    parties : int;
    mutable arrived : int;
    mutable t_max : time;
    mutable waiters : (thread * (unit -> unit)) list;
  }

  let create parties =
    assert (parties > 0);
    { parties; arrived = 0; t_max = 0; waiters = [] }

  let await t b =
    let th = cur t in
    b.arrived <- b.arrived + 1;
    if th.clock > b.t_max then b.t_max <- th.clock;
    if b.arrived = b.parties then begin
      let release = b.t_max in
      let waiters = b.waiters in
      b.arrived <- 0;
      b.t_max <- 0;
      b.waiters <- [];
      List.iter (fun (wth, r) -> wake t ~cause:Cause_barrier wth release r)
        waiters;
      (* The last arriver pays the same wake-up cost as the waiters it
         releases: every party leaves the barrier at release + wake_cost. *)
      let target = release + t.wake_cost in
      if target > th.clock then begin
        charge_idle t th Cause_barrier (target - th.clock);
        th.clock <- target;
        if th.clock > t.horizon then t.horizon <- th.clock
      end
    end
    else
      suspend t (fun th k ->
          b.waiters <- (th, make_resume t th k) :: b.waiters)
end

module Gate = struct
  type g = { mutable remaining : int; iv : unit Ivar.iv }

  let create n =
    assert (n >= 0);
    let g = { remaining = n; iv = Ivar.create () } in
    if n = 0 then g.iv.Ivar.st <- Ivar.Full (0, ());
    g

  let arrive t g =
    if g.remaining <= 0 then invalid_arg "Sim.Gate.arrive: already open";
    g.remaining <- g.remaining - 1;
    if g.remaining = 0 then Ivar.fill t g.iv ()

  let await t g = Ivar.read t g.iv
  let pending g = g.remaining
end
