(** Virtual-time cost model.

    Every value is in virtual nanoseconds.  The defaults are calibrated to
    published main-memory OLTP measurements (DBx1000 / Staring-into-the-
    abyss era hardware): data accesses cost tens of nanoseconds, lock
    manager operations ~a microsecond, LAN messages ~10 microseconds.
    Absolute simulator throughput is only meaningful relative to these
    constants; the benchmark harness reports ratios. *)

type t = {
  row_read : int;        (** read one row's payload *)
  row_write : int;       (** write one row's payload *)
  index_probe : int;     (** primary index lookup *)
  index_insert : int;    (** insert into an index / append arena *)
  cas : int;             (** one atomic RMW on a metadata word *)
  lock_acquire : int;    (** uncontended latch/lock acquire *)
  lock_release : int;
  lock_mgr_op : int;     (** centralized lock-manager queue operation (Calvin) *)
  queue_op : int;        (** push/pop on an execution queue *)
  steal_scan : int;      (** examine one candidate queue during a steal
                             disjointness scan (charged per queue scanned,
                             whether or not the steal goes ahead) *)
  plan_fragment : int;   (** planner work per fragment (routing + tagging) *)
  txn_overhead : int;    (** per-transaction bookkeeping (begin/commit path) *)
  validate_access : int; (** OCC validation work per access-set entry *)
  logic : int;           (** per-fragment business logic *)
  abort_cleanup : int;   (** per-access cleanup on abort *)
  msg_fixed : int;       (** CPU cost to send or receive one message *)
  msg_per_byte : int;    (** serialization cost per payload byte (x1000: milli-ns) *)
  net_latency : int;     (** one-way network propagation delay *)
  ipc_latency : int;     (** one-way cross-thread message-queue delay on a
                             single node (H-Store-style thread coordination) *)
  wakeup : int;          (** scheduler wakeup after blocking *)
  crash_reboot : int;    (** fixed restart overhead after a simulated
                             node crash, before queue replay begins *)
  wal_byte : int;        (** WAL serialization / replay-scan cost per log
                             byte (x1000: milli-ns) *)
  wal_fsync : int;       (** one durable flush of the WAL tail (the group
                             commit's single fsync) *)
  cdc_event : int;       (** serialize or apply one change-data-capture
                             event (a compact before/after image copy) *)
  cdc_publish : int;     (** seal one batch of the CDC feed and hand it to
                             the subscriber queues *)
}

val default : t
val zero : t
(** All-zero cost model, useful in unit tests where only ordering matters. *)
