type t = {
  row_read : int;
  row_write : int;
  index_probe : int;
  index_insert : int;
  cas : int;
  lock_acquire : int;
  lock_release : int;
  lock_mgr_op : int;
  queue_op : int;
  steal_scan : int;
  plan_fragment : int;
  txn_overhead : int;
  validate_access : int;
  logic : int;
  abort_cleanup : int;
  msg_fixed : int;
  msg_per_byte : int;
  net_latency : int;
  ipc_latency : int;
  wakeup : int;
  crash_reboot : int;
  wal_byte : int;
  wal_fsync : int;
  cdc_event : int;
  cdc_publish : int;
}

let default =
  {
    row_read = 50;
    row_write = 60;
    index_probe = 80;
    index_insert = 120;
    cas = 30;
    lock_acquire = 40;
    lock_release = 25;
    lock_mgr_op = 900;
    queue_op = 25;
    steal_scan = 15;
    plan_fragment = 70;
    txn_overhead = 250;
    validate_access = 35;
    logic = 100;
    abort_cleanup = 40;
    msg_fixed = 3000;
    msg_per_byte = 250;    (* milli-ns per byte: 0.25 ns/B ~ 4 GB/s *)
    net_latency = 10_000;
    ipc_latency = 2_000;
    wakeup = 200;
    crash_reboot = 50_000;
    wal_byte = 60;         (* milli-ns per byte: 0.06 ns/B ~ 16 GB/s buffer copy *)
    wal_fsync = 25_000;
    cdc_event = 3;         (* serialize/apply one change event (~70B memcpy) *)
    cdc_publish = 1_000;   (* per-batch feed seal + subscriber queue handoff *)
  }

let zero =
  {
    row_read = 0;
    row_write = 0;
    index_probe = 0;
    index_insert = 0;
    cas = 0;
    lock_acquire = 0;
    lock_release = 0;
    lock_mgr_op = 0;
    queue_op = 0;
    steal_scan = 0;
    plan_fragment = 0;
    txn_overhead = 0;
    validate_access = 0;
    logic = 0;
    abort_cleanup = 0;
    msg_fixed = 0;
    msg_per_byte = 0;
    net_latency = 0;
    ipc_latency = 0;
    wakeup = 0;
    crash_reboot = 0;
    wal_byte = 0;
    wal_fsync = 0;
    cdc_event = 0;
    cdc_publish = 0;
  }
