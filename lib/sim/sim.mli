(** Deterministic simulated-multicore execution substrate.

    Engine code is written as ordinary blocking OCaml against this module:
    [spawn] a thread per (virtual) core, charge CPU work with [tick], and
    synchronize through {!Ivar}, {!Chan}, {!Barrier} and {!Gate}.  Under the
    hood a single real thread runs a discrete-event scheduler built on
    OCaml 5 effect handlers: every thread carries a virtual clock, the
    runnable thread with the smallest clock runs next, and blocking
    primitives hand wake-up times to their wakers.  Runs are bit-for-bit
    deterministic, which the test suite exploits to check the paper's
    central property (deterministic final database state).

    Invariant relied on throughout Quill: shared-state accesses performed
    by the running thread happen "at" its current clock, and the scheduler
    only runs the globally minimal runnable clock, so shared-state events
    are totally ordered by virtual time (ties broken by scheduling order,
    deterministically). *)

type t
type time = int

(** Why a thread spent virtual time idle: the primitive it waited on
    ([Cause_sleep] is an explicit {!sleep}, e.g. contention backoff). *)
type idle_cause = Cause_barrier | Cause_ivar | Cause_chan | Cause_sleep

val cause_name : idle_cause -> string

(** Engine phase of the calling thread; busy time charged via {!tick} is
    attributed to the phase active at that moment.  The labels follow
    the QueCC plan / execute / recover / publish pipeline; engines
    without a phase use the subset that applies (default [Ph_other]). *)
type phase = Ph_other | Ph_plan | Ph_execute | Ph_recover | Ph_publish

val phase_name : phase -> string

val create : ?wake_cost:int -> ?tracer:Quill_trace.Trace.t -> unit -> t
(** [wake_cost] is added to a thread's clock whenever it is woken from a
    blocking primitive (models scheduler/futex wake latency); every
    party of a hand-off pays it, including fast-path readers that catch
    up to a value produced ahead of their clock and the barrier arriver
    that releases the others.  [tracer] (default {!Quill_trace.Trace.null},
    disabled) receives wait spans for idle time; it never affects
    virtual time. *)

val spawn : ?at:time -> t -> (unit -> unit) -> unit
(** Register a thread whose body starts executing at virtual time [at]
    (default 0).  Must be called before or during [run]. *)

val run : t -> int
(** Execute until no thread is runnable.  Returns the number of threads
    still parked on a blocking primitive (0 for a quiescent shutdown). *)

val now : t -> time
(** Clock of the calling thread (must be called from inside a thread). *)

val tick : t -> int -> unit
(** Charge [n] ns of CPU work to the calling thread, yielding to any
    thread whose wake-up time has been reached. *)

val sleep : t -> int -> unit
(** Advance the clock by [n] ns of idle (not busy) time. *)

val yield : t -> unit
(** Reschedule at the current clock, letting equal-time threads run. *)

val set_phase : t -> phase -> unit
(** Label subsequent [tick]s of the calling thread with [phase]. *)

val phase : t -> phase
(** Phase currently labelling the calling thread (set via {!set_phase};
    [Ph_other] if never set).  Used by the conflict detector to attribute
    recorded row accesses to the pipeline stage that performed them. *)

val in_thread : t -> bool
(** Whether the caller is executing inside a simulated thread (i.e.
    [now]/[phase]/[current_tid] are callable). *)

val busy_time : t -> int
(** Total CPU ns charged via [tick] across all threads. *)

val busy_in : t -> phase -> int
(** CPU ns charged while the given phase was active. *)

val idle_time : t -> int

val idle_in : t -> idle_cause -> int
(** Idle ns attributed to the given wait cause.  The causes partition
    {!idle_time} exactly. *)

val horizon : t -> time
(** Largest virtual time reached by any thread. *)

val threads_spawned : t -> int
val threads_completed : t -> int

val tracer : t -> Quill_trace.Trace.t
val current_tid : t -> int
(** Thread id of the calling thread (stable spawn index). *)

(** Write-once cell: the cross-thread data-dependency primitive. *)
module Ivar : sig
  type 'a iv

  val create : unit -> 'a iv
  val is_full : 'a iv -> bool
  val fill : t -> 'a iv -> 'a -> unit
  (** Fill at the caller's clock; wakes all readers.  Raises
      [Invalid_argument] when already full. *)

  val read : t -> 'a iv -> 'a
  (** Block until full; the caller's clock advances to at least the fill
      time. *)

  val peek : 'a iv -> 'a option
end

(** FIFO channel with per-message delivery delay: the messaging
    primitive.  Multi-producer, multi-consumer. *)
module Chan : sig
  type 'a ch

  val create : unit -> 'a ch
  val send : ?delay:int -> t -> 'a ch -> 'a -> unit
  (** Deliver the message at [caller clock + delay] (default 0). *)

  val recv : t -> 'a ch -> 'a
  (** Block until a message is available; clock advances to at least the
      message's arrival time. *)

  val recv_timeout : t -> 'a ch -> timeout:int -> 'a option
  (** Block at most [timeout] ns of virtual time.  Returns [Some msg]
      if a message arrives (or had arrived) by the deadline, [None]
      otherwise — in which case the caller's clock stands at the
      deadline and the wait was charged as chan idle time.  An unfired
      timeout never advances the simulation horizon.  Raises
      [Invalid_argument] on a negative timeout. *)

  val try_recv : t -> 'a ch -> 'a option
  (** Non-blocking: only returns a message already arrived by the caller's
      clock. *)

  val pending : 'a ch -> int
end

(** Reusable rendezvous barrier for a fixed party count: the phase
    separator between planning and execution. *)
module Barrier : sig
  type b

  val create : int -> b
  val await : t -> b -> unit
  (** All parties leave at the max of their arrival clocks. *)
end

(** Countdown latch: commit-dependency resolution.  [await] blocks until
    [arrive] has been called [n] times. *)
module Gate : sig
  type g

  val create : int -> g
  val arrive : t -> g -> unit
  val await : t -> g -> unit
  val pending : g -> int
end
