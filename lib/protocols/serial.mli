(** Single-threaded serial executor.

    Runs transactions one at a time in tid order with no concurrency
    control at all.  Serves two purposes: the correctness oracle for every
    other engine (serializable engines must produce exactly the state this
    engine produces for the same input batch — and deterministic engines
    must do so for {e this} serial order), and the single-core baseline in
    scalability plots. *)

val run :
  ?sim:Quill_sim.Sim.t ->
  ?costs:Quill_sim.Costs.t ->
  ?wal:Quill_wal.Wal.t ->
  ?cdc:Quill_cdc.Cdc.t ->
  ?crash_at:int ->
  ?batch_size:int ->
  Quill_txn.Workload.t ->
  txns:int ->
  Quill_txn.Metrics.t
(** Generate [txns] transactions from stream 0 and run them serially.

    [?wal] logs every committed transaction's row images and flushes
    once per [batch_size] transactions (default 1024) — the serial
    analogue of QueCC's batch-aligned group commit.  [?crash_at] stops
    the run at the first transaction boundary at/after that virtual
    time, losing the unflushed group, rebuilds the database from the
    newest snapshot plus the log, and reconciles the committed count to
    the durable boundary.

    [?cdc] stages every committed transaction's images and seals one
    ordered feed entry per commit group, at the same [batch_size]
    boundary the WAL flushes on; cannot be combined with [?crash_at]
    (the feed must never contain commits recovery retracts). *)

val run_txns :
  ?sim:Quill_sim.Sim.t ->
  ?costs:Quill_sim.Costs.t ->
  ?wal:Quill_wal.Wal.t ->
  ?cdc:Quill_cdc.Cdc.t ->
  ?crash_at:int ->
  ?batch_size:int ->
  Quill_txn.Workload.t ->
  Quill_txn.Txn.t list ->
  Quill_txn.Metrics.t
(** Run a pre-generated transaction list serially in list order (used by
    the determinism tests to replay the exact batch another engine ran).
    [?wal] / [?crash_at] / [?batch_size] behave as in {!run}. *)
