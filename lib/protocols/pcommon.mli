(** Shared helpers for the protocol implementations. *)

val dummy_row : Quill_storage.Row.t

val record_sim_breakdown :
  Quill_txn.Metrics.t -> Quill_sim.Sim.t -> unit
(** Copy the simulator's per-phase busy and per-cause idle attribution
    into the metrics record (call once, after [Sim.run] returns). *)

val in_phase :
  Quill_sim.Sim.t -> Quill_sim.Sim.phase -> int -> (unit -> 'a) -> 'a
(** [in_phase sim ph tid f] runs [f] with the calling thread's phase set
    to [ph], emits a span labelled with the phase over [f]'s virtual
    extent when tracing is enabled, and restores [Ph_other]. *)

val locate :
  Quill_sim.Sim.t ->
  Quill_sim.Costs.t ->
  Quill_storage.Db.t ->
  Quill_txn.Fragment.t ->
  Quill_storage.Row.t option
(** Index probe (cost-charged) for the fragment's routing key. *)

(** Small association maps keyed by physical row identity; access sets
    are tens of entries, so linear scans beat hashing. *)
module Rowmap : sig
  type 'a t

  val create : unit -> 'a t
  val find : 'a t -> Quill_storage.Row.t -> 'a option
  val add : 'a t -> Quill_storage.Row.t -> 'a -> unit

  val replace : 'a t -> Quill_storage.Row.t -> 'a -> unit
  (** Replaces the existing binding (adds when absent). *)

  val iter : (Quill_storage.Row.t -> 'a -> unit) -> 'a t -> unit
  val iter_rev : (Quill_storage.Row.t -> 'a -> unit) -> 'a t -> unit
  val clear : 'a t -> unit
  val is_empty : 'a t -> bool
  val length : 'a t -> int
  val elements : 'a t -> (Quill_storage.Row.t * 'a) list
end

type attempt = {
  mutable slots : int array;
  mutable inserts : (int * int * int array * int) list;
}

val new_attempt : Quill_txn.Txn.t -> attempt

val run_direct :
  Quill_sim.Sim.t ->
  Quill_sim.Costs.t ->
  Quill_storage.Db.t ->
  Quill_txn.Workload.t ->
  Quill_txn.Txn.t ->
  Quill_txn.Exec.outcome
(** In-place execution with undo and commit-time publish: the execution
    core for engines whose serialization is external (serial, H-Store,
    Calvin once locks are held). *)
