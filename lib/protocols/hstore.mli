(** H-Store-style deterministic partitioned engine (Kallman et al.,
    VLDB'08) — Table 2 row 1's deterministic baseline.

    One executor thread owns each partition; a transaction acquires the
    partition locks of every partition it touches (in ascending order)
    and then runs without any record-level concurrency control.
    Single-partition transactions are therefore extremely fast, but a
    multi-partition transaction serializes all its partitions for its
    whole duration {e and} pays a two-round coordination cost among the
    participant executors (the ExpoDB port models this as thread
    messaging; see [Costs.ipc_latency]) — which is exactly the behaviour
    the paper exploits in its multi-partition YCSB comparison. *)

type cfg = {
  workers : int;           (** also the number of partitions used *)
  costs : Quill_sim.Costs.t;
}

val default_cfg : cfg

val run :
  ?sim:Quill_sim.Sim.t ->
  ?clients:Quill_clients.Clients.t ->
  cfg ->
  Quill_txn.Workload.t ->
  txns:int ->
  Quill_txn.Metrics.t
(** With [?clients], workers pull from the admission queue until the
    client layer is exhausted ([txns] ignored). *)
