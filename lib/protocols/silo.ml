(* Silo-style OCC (Tu et al., SOSP'13).  Reads record the row's TID word;
   writes go to a transaction-local buffer.  At commit: latch the write
   set in deterministic (table, key) order, validate the read set (TID
   unchanged, not latched by someone else), install writes under a new
   TID, release.  Logic aborts are free — nothing was installed. *)

open Quill_sim
open Quill_storage
open Quill_txn

(* lint: engine-name-ok — protocol display name consumed by the registry *)
let name = "silo"

type t = { sim : Sim.t; costs : Costs.t; db : Db.t }

let create sim costs db = { sim; costs; db }

type wentry = { wtable : int; wcopy : int array }

let run_txn st ~wid:_ (wl : Workload.t) txn =
  let rset : int Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
  let wset : wentry Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
  let inserts = ref [] in
  let slots = Array.make (Array.length txn.Txn.frags) 0 in
  let cur_row = ref Pcommon.dummy_row and cur_found = ref false in
  let read (_ : Fragment.t) field =
    Sim.tick st.sim st.costs.Costs.row_read;
    if not !cur_found then 0
    else begin
      let row = !cur_row in
      match Pcommon.Rowmap.find wset row with
      | Some w -> w.wcopy.(field)
      | None ->
          if Pcommon.Rowmap.find rset row = None then
            Pcommon.Rowmap.add rset row row.Row.tid;
          row.Row.data.(field)
    end
  in
  let write (frag : Fragment.t) field v =
    Sim.tick st.sim st.costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      let w =
        match Pcommon.Rowmap.find wset row with
        | Some w -> w
        | None ->
            (* Record the version we based the write on, Silo-style. *)
            if Pcommon.Rowmap.find rset row = None then
              Pcommon.Rowmap.add rset row row.Row.tid;
            let w =
              { wtable = frag.Fragment.table; wcopy = Array.copy row.Row.data }
            in
            Pcommon.Rowmap.add wset row w;
            w
      in
      w.wcopy.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick st.sim st.costs.Costs.cas;
    let home = Db.home st.db frag.Fragment.table frag.Fragment.key in
    inserts := (frag.Fragment.table, key, Array.copy payload, home) :: !inserts
  in
  let input fid = slots.(fid) in
  let output fid v = if fid < Array.length slots then slots.(fid) <- v in
  let found _ = !cur_found in
  let ctx = { Exec.read; write; add; insert; input; output; found } in
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          cur_row := Pcommon.dummy_row;
          cur_found := true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          match Pcommon.locate st.sim st.costs st.db frag with
          | Some row ->
              cur_row := row;
              cur_found := true
          | None ->
              cur_row := Pcommon.dummy_row;
              cur_found := false));
      Sim.tick st.sim st.costs.Costs.logic;
      match wl.Workload.exec ctx txn frag with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  match go 0 with
  | Exec.Abort -> Exec.Abort
  | Exec.Blocked -> Exec.Blocked
  | Exec.Ok ->
      (* Commit protocol. *)
      let writes =
        List.sort
          (fun (r1, w1) (r2, w2) ->
            let c = compare w1.wtable w2.wtable in
            if c <> 0 then c else compare r1.Row.key r2.Row.key)
          (Pcommon.Rowmap.elements wset)
      in
      let locked = ref [] in
      let lock_all () =
        List.for_all
          (fun (row, _) ->
            Sim.tick st.sim st.costs.Costs.cas;
            if row.Row.lock = 0 then begin
              row.Row.lock <- -1;
              locked := row :: !locked;
              true
            end
            else false)
          writes
      in
      let unlock_all () =
        List.iter
          (fun row ->
            Sim.tick st.sim st.costs.Costs.cas;
            row.Row.lock <- 0)
          !locked
      in
      if not (lock_all ()) then begin
        unlock_all ();
        Exec.Blocked
      end
      else begin
        let in_wset row = Pcommon.Rowmap.find wset row <> None in
        let valid =
          List.for_all
            (fun (row, tid_seen) ->
              Sim.tick st.sim st.costs.Costs.validate_access;
              row.Row.tid = tid_seen
              && (row.Row.lock = 0 || in_wset row))
            (Pcommon.Rowmap.elements rset)
        in
        if not valid then begin
          unlock_all ();
          Exec.Blocked
        end
        else begin
          let commit_tid =
            1
            + List.fold_left
                (fun acc (row, _) -> max acc row.Row.tid)
                (List.fold_left
                   (fun acc (row, t) ->
                     ignore row;
                     max acc t)
                   0
                   (Pcommon.Rowmap.elements rset))
                writes
          in
          List.iter
            (fun (row, w) ->
              Sim.tick st.sim st.costs.Costs.row_write;
              Array.blit w.wcopy 0 row.Row.data 0 (Array.length w.wcopy);
              row.Row.tid <- commit_tid;
              Row.publish row)
            writes;
          List.iter
            (fun (tid, key, payload, home) ->
              Sim.tick st.sim st.costs.Costs.index_insert;
              let row = Table.insert (Db.table st.db tid) ~home ~key payload in
              row.Row.tid <- commit_tid)
            (List.rev !inserts);
          unlock_all ();
          Exec.Ok
        end
      end
