open Quill_common
open Quill_sim
open Quill_txn

(* Backoff needs per-worker jitter: in a deterministic simulation two
   conflicting workers with identical backoff schedules would collide in
   lockstep forever. *)

module type CC = sig
  val name : string

  type t

  val create : Sim.t -> Costs.t -> Quill_storage.Db.t -> t

  val run_txn :
    t -> wid:int -> Workload.t -> Txn.t -> Exec.outcome
end

type cfg = {
  workers : int;
  costs : Costs.t;
  backoff : int;
  max_backoff : int;
}

let default_cfg =
  { workers = 4; costs = Costs.default; backoff = 500; max_backoff = 200_000 }

let run ?sim ?clients (module P : CC) cfg wl ~txns =
  assert (cfg.workers > 0 && txns >= 0);
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let state = P.create sim cfg.costs wl.Workload.db in
  let metrics = Metrics.create () in
  for w = 0 to cfg.workers - 1 do
    let quota = (txns / cfg.workers) + if w < txns mod cfg.workers then 1 else 0 in
    Sim.spawn sim (fun () ->
        let tid = Sim.current_tid sim in
        let jitter = Rng.create ((w * 2654435761) + 17) in
        (* One admitted transaction: attempt with internal CC backoff
           until it commits or its own logic aborts; true = committed. *)
        let exec_txn txn =
          let committed = ref false in
          Pcommon.in_phase sim Sim.Ph_execute tid (fun () ->
              let rec attempt backoff =
                txn.Txn.attempts <- txn.Txn.attempts + 1;
                txn.Txn.status <- Txn.Active;
                match P.run_txn state ~wid:w wl txn with
                | Exec.Ok ->
                    txn.Txn.status <- Txn.Committed;
                    metrics.Metrics.committed <- metrics.Metrics.committed + 1;
                    committed := true
                | Exec.Abort ->
                    txn.Txn.status <- Txn.Aborted;
                    metrics.Metrics.logic_aborted <-
                      metrics.Metrics.logic_aborted + 1
                | Exec.Blocked ->
                    metrics.Metrics.cc_aborts <- metrics.Metrics.cc_aborts + 1;
                    Sim.sleep sim (backoff + Rng.int jitter (backoff + 1));
                    attempt (min (backoff * 2) cfg.max_backoff)
              in
              attempt cfg.backoff);
          txn.Txn.finish_time <- Sim.now sim;
          Stats.Hist.add metrics.Metrics.lat
            (txn.Txn.finish_time - txn.Txn.submit_time);
          !committed
        in
        match clients with
        | None ->
            let stream = wl.Workload.new_stream w in
            for _ = 1 to quota do
              let txn =
                Pcommon.in_phase sim Sim.Ph_plan tid (fun () ->
                    Sim.tick sim cfg.costs.Costs.txn_overhead;
                    let txn = stream () in
                    txn.Txn.submit_time <- Sim.now sim;
                    txn)
              in
              ignore (exec_txn txn)
            done
        | Some c ->
            (* Open loop: each worker pulls from the shared admission
               queue until the client layer is exhausted; client-level
               abort->retry goes back through the queue. *)
            let rec loop () =
              match Quill_clients.Clients.take c ~node:0 with
              | None -> ()
              | Some e ->
                  let txn = e.Quill_clients.Clients.txn in
                  Pcommon.in_phase sim Sim.Ph_plan tid (fun () ->
                      Sim.tick sim cfg.costs.Costs.txn_overhead;
                      txn.Txn.submit_time <- Sim.now sim);
                  let ok = exec_txn txn in
                  Quill_clients.Clients.complete c e ~ok;
                  loop ()
            in
            loop ())
  done;
  let parked = Sim.run sim in
  if parked <> 0 then
    failwith (Printf.sprintf "Nd_driver(%s): %d workers deadlocked" P.name parked);
  metrics.Metrics.elapsed <- Sim.horizon sim;
  metrics.Metrics.busy <- Sim.busy_time sim;
  metrics.Metrics.idle <- Sim.idle_time sim;
  metrics.Metrics.threads <- cfg.workers;
  Pcommon.record_sim_breakdown metrics sim;
  metrics
