open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn
module Wal = Quill_wal.Wal
module Cdc = Quill_cdc.Cdc

let dummy_row = Row.make ~key:(-1) ~nfields:1

type state = {
  sim : Sim.t;
  costs : Costs.t;
  db : Db.t;
  wl : Workload.t;
  wal : Wal.t option;
  cdc : Cdc.t option;
  metrics : Metrics.t;
  mutable cur_row : Row.t;
  mutable cur_found : bool;
  mutable undo : (Row.t * int array) list;
  mutable inserts : (int * int) list;
  mutable written : (int * Row.t) list;
  mutable slots : int array;
}

let make_ctx st =
  let read (frag : Fragment.t) field =
    ignore frag;
    Sim.tick st.sim st.costs.Costs.row_read;
    if st.cur_found then st.cur_row.Row.data.(field) else 0
  in
  let write (frag : Fragment.t) field v =
    Sim.tick st.sim st.costs.Costs.row_write;
    if st.cur_found then begin
      let row = st.cur_row in
      st.undo <- (row, Array.copy row.Row.data) :: st.undo;
      st.written <- (frag.Fragment.table, row) :: st.written;
      row.Row.data.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick st.sim st.costs.Costs.index_insert;
    let tbl = Db.table st.db frag.Fragment.table in
    let home = Db.home st.db frag.Fragment.table frag.Fragment.key in
    ignore (Table.insert tbl ~home ~key payload);
    st.inserts <- (frag.Fragment.table, key) :: st.inserts
  in
  let input fid = st.slots.(fid) in
  let output fid v = if fid < Array.length st.slots then st.slots.(fid) <- v in
  let found _ = st.cur_found in
  { Exec.read; write; add; insert; input; output; found }

let exec_one st ctx txn =
  let costs = st.costs in
  Sim.tick st.sim costs.Costs.txn_overhead;
  txn.Txn.submit_time <- Sim.now st.sim;
  txn.Txn.status <- Txn.Active;
  txn.Txn.attempts <- txn.Txn.attempts + 1;
  st.undo <- [];
  st.inserts <- [];
  st.written <- [];
  st.slots <- Array.make (Array.length txn.Txn.frags) 0;
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          st.cur_row <- dummy_row;
          st.cur_found <- true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          Sim.tick st.sim costs.Costs.index_probe;
          match Table.find (Db.table st.db frag.Fragment.table)
                  frag.Fragment.key
          with
          | Some row ->
              st.cur_row <- row;
              st.cur_found <- true
          | None ->
              st.cur_row <- dummy_row;
              st.cur_found <- false));
      Sim.tick st.sim costs.Costs.logic;
      match st.wl.Workload.exec ctx txn frag with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  (match go 0 with
  | Exec.Ok ->
      txn.Txn.status <- Txn.Committed;
      (* Stage CDC images before publish overwrites [committed]: the
         hub keeps the first pre-image and the final post-image per
         key, so per-transaction staging within a commit group
         collapses to exactly the group's state delta. *)
      (match st.cdc with
      | Some c ->
          List.iter
            (fun (tid, (row : Row.t)) ->
              Cdc.stage c ~table:tid ~key:row.Row.key
                ~before:row.Row.committed ~after:row.Row.data)
            st.written;
          List.iter
            (fun (tid, key) ->
              match Table.find (Db.table st.db tid) key with
              | Some row ->
                  Cdc.stage_insert c ~table:tid ~key ~after:row.Row.data
              | None -> ())
            st.inserts
      | None -> ());
      List.iter (fun (_, row) -> Row.publish row) st.written;
      (* Log the committed images into the WAL group buffer (the flush
         happens at the group-commit boundary in [run_list]).  Replay
         applies effects in log order, so per-transaction emission with
         duplicates is idempotent — the last image of a row wins. *)
      (match st.wal with
      | Some w ->
          List.iter
            (fun (tid, (row : Row.t)) ->
              Wal.log_effect w ~table:tid
                ~home:(Table.home_of_key (Db.table st.db tid) row.Row.key)
                ~key:row.Row.key row.Row.committed)
            st.written;
          List.iter
            (fun (tid, key) ->
              let tbl = Db.table st.db tid in
              match Table.find tbl key with
              | Some row ->
                  Wal.log_effect w ~table:tid
                    ~home:(Table.home_of_key tbl key) ~key row.Row.committed
              | None -> ())
            st.inserts
      | None -> ());
      st.metrics.Metrics.committed <- st.metrics.Metrics.committed + 1
  | Exec.Abort | Exec.Blocked ->
      List.iter
        (fun (row, saved) ->
          Sim.tick st.sim costs.Costs.abort_cleanup;
          Row.restore row saved)
        st.undo;
      List.iter
        (fun (tid, key) -> Table.remove (Db.table st.db tid) key)
        st.inserts;
      txn.Txn.status <- Txn.Aborted;
      st.metrics.Metrics.logic_aborted <- st.metrics.Metrics.logic_aborted + 1);
  txn.Txn.finish_time <- Sim.now st.sim;
  Stats.Hist.add st.metrics.Metrics.lat
    (txn.Txn.finish_time - txn.Txn.submit_time)

let run_list ?wal ?cdc ?crash_at ~batch_size sim costs wl next =
  (match (cdc, crash_at) with
  | Some _, Some _ ->
      invalid_arg
        "Serial.run: --cdc cannot be combined with crash faults (a \
         crash-truncated run would feed subscribers retracted commits)"
  | _ -> ());
  let st =
    {
      sim;
      costs;
      db = wl.Workload.db;
      wl;
      wal;
      cdc;
      metrics = Metrics.create ();
      cur_row = dummy_row;
      cur_found = false;
      undo = [];
      inserts = [];
      written = [];
      slots = [||];
    }
  in
  let ctx = make_ctx st in
  Sim.spawn sim (fun () ->
      let tid = Sim.current_tid sim in
      (* Group commit: [batch_size] transactions share one flush, the
         serial analogue of QueCC's batch-aligned group commit.  The
         CDC feed is sealed at the same boundary, so serial's feed
         entries align with its commit groups. *)
      let track = wal <> None || cdc <> None in
      let bno = ref 0 in
      let in_group = ref 0 in
      let group_committed = ref 0 in
      let group_open = ref false in
      let close_group () =
        (match wal with
        | Some w ->
            ignore (Wal.commit_batch w ~batch_no:!bno ~txns:!group_committed)
        | None -> ());
        (match cdc with
        | Some c -> Cdc.publish c ~batch_no:!bno ~txns:!group_committed
        | None -> ());
        incr bno;
        in_group := 0;
        group_committed := 0;
        group_open := false
      in
      let crash w =
        Pcommon.in_phase sim Sim.Ph_recover tid (fun () ->
            let m = st.metrics in
            m.Metrics.crashes <- m.Metrics.crashes + 1;
            Wal.recover w st.db;
            m.Metrics.committed <- Wal.durable_txns w)
      in
      let rec loop () =
        let dead =
          match crash_at with Some at -> Sim.now sim >= at | None -> false
        in
        if dead then
          (* The crash lands between transactions: the open group was
             never flushed and is lost with the process. *)
          match wal with Some w -> crash w | None -> ()
        else
          match next () with
          | None -> if track && !group_open then close_group ()
          | Some txn ->
              if track && not !group_open then begin
                (match wal with
                | Some w -> Wal.begin_batch w ~batch_no:!bno
                | None -> ());
                group_open := true
              end;
              let c0 = st.metrics.Metrics.committed in
              Pcommon.in_phase sim Sim.Ph_execute tid (fun () ->
                  exec_one st ctx txn);
              if track then begin
                if st.metrics.Metrics.committed > c0 then
                  incr group_committed;
                incr in_group;
                if !in_group >= batch_size then close_group ()
              end;
              loop ()
      in
      loop ());
  let parked = Sim.run sim in
  assert (parked = 0);
  let m = st.metrics in
  m.Metrics.elapsed <- Sim.horizon sim;
  m.Metrics.busy <- Sim.busy_time sim;
  m.Metrics.idle <- Sim.idle_time sim;
  m.Metrics.threads <- 1;
  (match wal with Some w -> Wal.record w m | None -> ());
  Pcommon.record_sim_breakdown m sim;
  m

let run ?sim ?(costs = Costs.default) ?wal ?cdc ?crash_at
    ?(batch_size = 1024) wl ~txns =
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:costs.Costs.wakeup ()
  in
  let stream = wl.Workload.new_stream 0 in
  let remaining = ref txns in
  let next () =
    if !remaining <= 0 then None
    else begin
      decr remaining;
      Some (stream ())
    end
  in
  run_list ?wal ?cdc ?crash_at ~batch_size sim costs wl next

let run_txns ?sim ?(costs = Costs.default) ?wal ?cdc ?crash_at
    ?(batch_size = 1024) wl txns =
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:costs.Costs.wakeup ()
  in
  let remaining = ref txns in
  let next () =
    match !remaining with
    | [] -> None
    | t :: rest ->
        remaining := rest;
        Some t
  in
  run_list ?wal ?cdc ?crash_at ~batch_size sim costs wl next
