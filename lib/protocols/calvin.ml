open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn

type cfg = { workers : int; batch_size : int; costs : Costs.t }

let default_cfg = { workers = 4; batch_size = 512; costs = Costs.default }

type mode = S | X

type crt = {
  txn : Txn.t;
  locks : (int * int * mode) list;   (* deduped (table, key, mode) *)
  mutable pending : int;
  entry : Quill_clients.Clients.entry option;
}

type lockq = {
  mutable holders : (crt * mode) list;
  waiting : (crt * mode) Queue.t;
}

type state = {
  sim : Sim.t;
  costs : Costs.t;
  db : Db.t;
  locktab : (int * int, lockq) Hashtbl.t;
  work : crt option Sim.Chan.ch;
  metrics : Metrics.t;
  mutable completed : int;
  mutable total : int;
  nworkers : int;
  clients : Quill_clients.Clients.t option;
}

(* Deduplicate the lock set: one request per key, X if any access
   updates.  Insert fragments lock nothing themselves — their key is
   computed at run time; the serializing row (e.g. the TPC-C district)
   is already X-locked, which prevents duplicate keys (DESIGN.md). *)
let lock_set txn =
  let acc = ref [] in
  Array.iter
    (fun (f : Fragment.t) ->
      match f.Fragment.mode with
      | Fragment.Insert -> ()
      | Fragment.Read | Fragment.Write | Fragment.Rmw ->
          let m =
            match f.Fragment.mode with Fragment.Read -> S | _ -> X
          in
          let key = (f.Fragment.table, f.Fragment.key) in
          let rec merge = function
            | [] -> [ (key, m) ]
            | (k, m0) :: rest when k = key ->
                (k, if m = X || m0 = X then X else S) :: rest
            | e :: rest -> e :: merge rest
          in
          acc := merge !acc)
    txn.Txn.frags;
  List.map (fun ((t, k), m) -> (t, k, m)) !acc

let get_q st key =
  match Hashtbl.find_opt st.locktab key with
  | Some q -> q
  | None ->
      let q = { holders = []; waiting = Queue.create () } in
      Hashtbl.replace st.locktab key q;
      q

let compatible holders m =
  match m with
  | X -> holders = []
  | S -> List.for_all (fun (_, hm) -> hm = S) holders

let dispatch st crt = Sim.Chan.send st.sim st.work (Some crt)

let grant st crt =
  crt.pending <- crt.pending - 1;
  if crt.pending = 0 then dispatch st crt

(* Request in batch order; FIFO per key (no barging past waiters). *)
let request st crt key m =
  let q = get_q st key in
  if compatible q.holders m && Queue.is_empty q.waiting then begin
    q.holders <- (crt, m) :: q.holders;
    grant st crt
  end
  else Queue.push (crt, m) q.waiting

let release st crt key =
  let q = get_q st key in
  q.holders <- List.filter (fun (c, _) -> c != crt) q.holders;
  let rec drain () =
    match Queue.peek_opt q.waiting with
    | Some (c, m) when compatible q.holders m ->
        ignore (Queue.pop q.waiting);
        q.holders <- (c, m) :: q.holders;
        grant st c;
        drain ()
    | Some _ | None -> ()
  in
  drain ()

let sequence st txn entry =
  Sim.tick st.sim st.costs.Costs.txn_overhead;
  txn.Txn.submit_time <- Sim.now st.sim;
  txn.Txn.status <- Txn.Active;
  txn.Txn.attempts <- txn.Txn.attempts + 1;
  let locks = lock_set txn in
  let crt = { txn; locks; pending = List.length locks + 1; entry } in
  (* The +1 guards against dispatching before all requests are issued. *)
  List.iter
    (fun (t, k, m) ->
      Sim.tick st.sim st.costs.Costs.lock_mgr_op;
      request st crt (t, k) m)
    locks;
  grant st crt

let poison st =
  for _ = 1 to st.nworkers do
    Sim.Chan.send st.sim st.work None
  done

let scheduler st (wl : Workload.t) ~txns =
  Pcommon.in_phase st.sim Sim.Ph_plan (Sim.current_tid st.sim) @@ fun () ->
  match st.clients with
  | None ->
      let stream = wl.Workload.new_stream 0 in
      for _ = 1 to txns do
        sequence st (stream ()) None
      done;
      if txns = 0 then poison st
  | Some c ->
      (* Open loop: sequence admitted transactions in arrival order until
         the client layer is exhausted, then poison the worker pool.
         Lock-waiting and in-flight transactions keep the client layer
         live, so exhaustion here really is the end. *)
      let rec loop () =
        match Quill_clients.Clients.take c ~node:0 with
        | None -> poison st
        | Some e ->
            sequence st e.Quill_clients.Clients.txn (Some e);
            loop ()
      in
      loop ()

let worker st (wl : Workload.t) =
  let tid = Sim.current_tid st.sim in
  let rec loop () =
    match Sim.Chan.recv st.sim st.work with
    | None -> ()
    | Some crt ->
        let txn = crt.txn in
        let outcome =
          Pcommon.in_phase st.sim Sim.Ph_execute tid (fun () ->
              Pcommon.run_direct st.sim st.costs st.db wl txn)
        in
        List.iter
          (fun (t, k, _) ->
            Sim.tick st.sim st.costs.Costs.lock_release;
            release st crt (t, k))
          crt.locks;
        (match outcome with
        | Exec.Ok ->
            txn.Txn.status <- Txn.Committed;
            st.metrics.Metrics.committed <- st.metrics.Metrics.committed + 1
        | Exec.Abort ->
            txn.Txn.status <- Txn.Aborted;
            st.metrics.Metrics.logic_aborted <-
              st.metrics.Metrics.logic_aborted + 1
        | Exec.Blocked -> assert false);
        txn.Txn.finish_time <- Sim.now st.sim;
        Stats.Hist.add st.metrics.Metrics.lat
          (txn.Txn.finish_time - txn.Txn.submit_time);
        (match (st.clients, crt.entry) with
        | Some c, Some e ->
            Quill_clients.Clients.complete c e ~ok:(outcome = Exec.Ok)
        | _ -> ());
        st.completed <- st.completed + 1;
        if st.completed = st.total then
          (* Poison the pool: everyone still blocked can exit.  (Client
             mode poisons from the scheduler instead: total is max_int.) *)
          poison st;
        loop ()
  in
  loop ()

let run ?sim ?clients cfg wl ~txns =
  assert (cfg.workers > 0);
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let st =
    {
      sim;
      costs = cfg.costs;
      db = wl.Workload.db;
      locktab = Hashtbl.create 4096;
      work = Sim.Chan.create ();
      metrics = Metrics.create ();
      completed = 0;
      total = (match clients with None -> txns | Some _ -> max_int);
      nworkers = cfg.workers;
      clients;
    }
  in
  Sim.spawn sim (fun () -> scheduler st wl ~txns);
  for _ = 1 to cfg.workers do
    Sim.spawn sim (fun () -> worker st wl)
  done;
  let parked = Sim.run sim in
  if parked <> 0 && txns > 0 then
    failwith (Printf.sprintf "Calvin.run: %d threads deadlocked" parked);
  st.metrics.Metrics.elapsed <- Sim.horizon sim;
  st.metrics.Metrics.busy <- Sim.busy_time sim;
  st.metrics.Metrics.idle <- Sim.idle_time sim;
  st.metrics.Metrics.threads <- cfg.workers + 1;
  st.metrics.Metrics.batches <- (txns + cfg.batch_size - 1) / cfg.batch_size;
  Pcommon.record_sim_breakdown st.metrics sim;
  st.metrics
