(* Strict two-phase locking with the NoWait and WaitDie deadlock-avoidance
   policies (Yu et al., VLDB'14 configurations).  Locks live in the row
   ([Row.lock]: 0 free, -1 exclusive, n>0 shared); writes are applied in
   place under the exclusive lock with undo on abort.

   WaitDie waits by spin-sleeping, as main-memory implementations do;
   [Row.lock_tx] tracks the oldest (smallest) timestamp among current
   holders, reset when the lock frees — a slightly conservative
   approximation that can only cause extra dies, never deadlock. *)

open Quill_sim
open Quill_storage
open Quill_txn

type policy = No_wait | Wait_die

module Make (Policy : sig
  val policy : policy
end) =
struct
  let name =
    match Policy.policy with
    (* lint: engine-name-ok — the protocol's own display name *)
    | No_wait -> "2pl-nowait"
    (* lint: engine-name-ok — same: display name, not dispatch *)
    | Wait_die -> "2pl-waitdie"

  type t = { sim : Sim.t; costs : Costs.t; db : Db.t }

  let create sim costs db = { sim; costs; db }

  (* Lock modes held by the running transaction. *)
  type held = Shared | Exclusive

  let spin_ns = 300

  let holder_min row ts =
    if row.Row.lock = 0 || ts < row.Row.lock_tx then row.Row.lock_tx <- ts

  (* Returns true when acquired, false when the policy says die. *)
  let rec acquire st ts row want (held : held Pcommon.Rowmap.t) =
    Sim.tick st.sim st.costs.Costs.lock_acquire;
    let mine = Pcommon.Rowmap.find held row in
    match (want, mine) with
    | Fragment.Read, Some _ -> true
    | (Fragment.Write | Fragment.Rmw), Some Exclusive -> true
    | (Fragment.Write | Fragment.Rmw), Some Shared ->
        (* Upgrade: possible only when we are the sole reader. *)
        if row.Row.lock = 1 then begin
          row.Row.lock <- -1;
          row.Row.lock_tx <- ts;
          Pcommon.Rowmap.replace held row Exclusive;
          true
        end
        else wait_or_die st ts row want held
    | Fragment.Read, None ->
        if row.Row.lock >= 0 then begin
          row.Row.lock <- row.Row.lock + 1;
          holder_min row ts;
          Pcommon.Rowmap.add held row Shared;
          true
        end
        else wait_or_die st ts row want held
    | (Fragment.Write | Fragment.Rmw), None ->
        if row.Row.lock = 0 then begin
          row.Row.lock <- -1;
          row.Row.lock_tx <- ts;
          Pcommon.Rowmap.add held row Exclusive;
          true
        end
        else wait_or_die st ts row want held
    | Fragment.Insert, _ -> true

  and wait_or_die st ts row want held =
    match Policy.policy with
    | No_wait -> false
    | Wait_die ->
        if ts < row.Row.lock_tx then begin
          (* We are older: wait (spin) until the lock state changes. *)
          Sim.sleep st.sim spin_ns;
          acquire st ts row want held
        end
        else false

  let release st row = function
    | Shared ->
        Sim.tick st.sim st.costs.Costs.lock_release;
        row.Row.lock <- row.Row.lock - 1;
        if row.Row.lock = 0 then row.Row.lock_tx <- max_int
    | Exclusive ->
        Sim.tick st.sim st.costs.Costs.lock_release;
        row.Row.lock <- 0;
        row.Row.lock_tx <- max_int

  let run_txn st ~wid:_ (wl : Workload.t) txn =
    let ts = txn.Txn.tid in
    let held : held Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
    let undo : int array Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
    let written : unit Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
    let inserts = ref [] in
    let slots = ref [||] in
    let cur_row = ref Pcommon.dummy_row and cur_found = ref false in
    let blocked = ref false in
    let read (_ : Fragment.t) field =
      Sim.tick st.sim st.costs.Costs.row_read;
      if !cur_found then (!cur_row).Row.data.(field) else 0
    in
    let write _frag field v =
      Sim.tick st.sim st.costs.Costs.row_write;
      if !cur_found then begin
        let row = !cur_row in
        (match Pcommon.Rowmap.find undo row with
        | None -> Pcommon.Rowmap.add undo row (Array.copy row.Row.data)
        | Some _ -> ());
        if Pcommon.Rowmap.find written row = None then
          Pcommon.Rowmap.add written row ();
        row.Row.data.(field) <- v
      end
    in
    let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
      Sim.tick st.sim st.costs.Costs.index_insert;
      let tbl = Db.table st.db frag.Fragment.table in
      let home = Db.home st.db frag.Fragment.table frag.Fragment.key in
      let row = Table.insert tbl ~home ~key payload in
      (* Keep the new row exclusively locked until commit. *)
      row.Row.lock <- -1;
      row.Row.lock_tx <- ts;
      Pcommon.Rowmap.add held row Exclusive;
      inserts := (frag.Fragment.table, key) :: !inserts
    in
    let input fid = !slots.(fid) in
    let output fid v = if fid < Array.length !slots then !slots.(fid) <- v in
    let found _ = !cur_found in
    let ctx = { Exec.read; write; add; insert; input; output; found } in
    slots := Array.make (Array.length txn.Txn.frags) 0;
    let frags = txn.Txn.frags in
    let rec go i =
      if i >= Array.length frags then Exec.Ok
      else begin
        let frag = frags.(i) in
        (match frag.Fragment.mode with
        | Fragment.Insert ->
            cur_row := Pcommon.dummy_row;
            cur_found := true
        | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
            match Pcommon.locate st.sim st.costs st.db frag with
            | Some row ->
                if acquire st ts row frag.Fragment.mode held then begin
                  cur_row := row;
                  cur_found := true
                end
                else blocked := true
            | None ->
                cur_row := Pcommon.dummy_row;
                cur_found := false));
        if !blocked then Exec.Blocked
        else begin
          Sim.tick st.sim st.costs.Costs.logic;
          match wl.Workload.exec ctx txn frag with
          | Exec.Ok -> go (i + 1)
          | (Exec.Abort | Exec.Blocked) as r -> r
        end
      end
    in
    let outcome = go 0 in
    (match outcome with
    | Exec.Ok -> Pcommon.Rowmap.iter (fun row () -> Row.publish row) written
    | Exec.Abort | Exec.Blocked ->
        Pcommon.Rowmap.iter
          (fun row saved ->
            Sim.tick st.sim st.costs.Costs.abort_cleanup;
            Row.restore row saved)
          undo;
        List.iter
          (fun (tid, key) -> Table.remove (Db.table st.db tid) key)
          !inserts);
    (* Strict 2PL: release everything at the end, success or not. *)
    Pcommon.Rowmap.iter_rev (fun row mode -> release st row mode) held;
    outcome
end

module No_wait_cc = Make (struct
  let policy = No_wait
end)

module Wait_die_cc = Make (struct
  let policy = Wait_die
end)
