open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn

type cfg = { workers : int; costs : Costs.t }

let default_cfg = { workers = 4; costs = Costs.default }

type state = {
  sim : Sim.t;
  costs : Costs.t;
  db : Db.t;
  plocks : Plock.t array;
  metrics : Metrics.t;
}

(* Partition of a fragment, folded onto the worker count. *)
let fpart st workers (f : Fragment.t) =
  Db.home st.db f.Fragment.table f.Fragment.key mod workers

let txn_parts st workers txn =
  let seen = Array.make workers false in
  Array.iter
    (fun f -> seen.(fpart st workers f) <- true)
    txn.Txn.frags;
  let acc = ref [] in
  for p = workers - 1 downto 0 do
    if seen.(p) then acc := p :: !acc
  done;
  !acc

let coordination_round st k =
  (* Coordinator exchanges one message with each other participant. *)
  if k > 1 then begin
    Sim.tick st.sim (st.costs.Costs.msg_fixed * (k - 1));
    Sim.sleep st.sim (2 * st.costs.Costs.ipc_latency);
    st.metrics.Metrics.msgs <- st.metrics.Metrics.msgs + (2 * (k - 1))
  end

let run ?sim ?clients cfg wl ~txns =
  assert (cfg.workers > 0);
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let st =
    {
      sim;
      costs = cfg.costs;
      db = wl.Workload.db;
      plocks = Array.init cfg.workers (fun _ -> Plock.create ());
      metrics = Metrics.create ();
    }
  in
  for w = 0 to cfg.workers - 1 do
    let quota =
      (txns / cfg.workers) + if w < txns mod cfg.workers then 1 else 0
    in
    Sim.spawn sim (fun () ->
        (* One admitted transaction: partition locks, two coordination
           rounds, execute; true = committed. *)
        let do_txn txn =
          Sim.tick sim cfg.costs.Costs.txn_overhead;
          txn.Txn.submit_time <- Sim.now sim;
          txn.Txn.status <- Txn.Active;
          txn.Txn.attempts <- txn.Txn.attempts + 1;
          let parts = txn_parts st cfg.workers txn in
          let k = List.length parts in
          (* Deterministic deadlock-free acquisition: ascending order. *)
          List.iter
            (fun p ->
              Sim.tick sim cfg.costs.Costs.lock_acquire;
              Plock.acquire sim st.plocks.(p))
            parts;
          coordination_round st k;
          let outcome =
            Pcommon.in_phase sim Sim.Ph_execute (Sim.current_tid sim)
              (fun () -> Pcommon.run_direct sim cfg.costs st.db wl txn)
          in
          coordination_round st k;
          List.iter
            (fun p ->
              Sim.tick sim cfg.costs.Costs.lock_release;
              Plock.release sim st.plocks.(p))
            parts;
          (match outcome with
          | Exec.Ok ->
              txn.Txn.status <- Txn.Committed;
              st.metrics.Metrics.committed <- st.metrics.Metrics.committed + 1
          | Exec.Abort ->
              txn.Txn.status <- Txn.Aborted;
              st.metrics.Metrics.logic_aborted <-
                st.metrics.Metrics.logic_aborted + 1
          | Exec.Blocked -> assert false);
          txn.Txn.finish_time <- Sim.now sim;
          Stats.Hist.add st.metrics.Metrics.lat
            (txn.Txn.finish_time - txn.Txn.submit_time);
          outcome = Exec.Ok
        in
        match clients with
        | None ->
            let stream = wl.Workload.new_stream w in
            for _ = 1 to quota do
              ignore (do_txn (stream ()))
            done
        | Some c ->
            let rec loop () =
              match Quill_clients.Clients.take c ~node:0 with
              | None -> ()
              | Some e ->
                  let ok = do_txn e.Quill_clients.Clients.txn in
                  Quill_clients.Clients.complete c e ~ok;
                  loop ()
            in
            loop ())
  done;
  let parked = Sim.run sim in
  if parked <> 0 then
    failwith (Printf.sprintf "Hstore.run: %d workers deadlocked" parked);
  st.metrics.Metrics.elapsed <- Sim.horizon sim;
  st.metrics.Metrics.busy <- Sim.busy_time sim;
  st.metrics.Metrics.idle <- Sim.idle_time sim;
  st.metrics.Metrics.threads <- cfg.workers;
  Pcommon.record_sim_breakdown st.metrics sim;
  st.metrics
