(* Multi-version timestamp ordering — the representative of the
   multi-version engine class the paper compares against (Cicada, ERMIA,
   FOEDUS; see DESIGN.md for the substitution argument).

   The row's live payload is always the newest version ([Row.data] with
   interval [wts, rts]); older snapshots are kept on [Row.versions]
   (newest first) so that readers with older timestamps never block or
   abort.  Writers abort when they would invalidate a read that already
   happened ([rts] in the future) or write below an installed version. *)

open Quill_sim
open Quill_storage
open Quill_txn

(* lint: engine-name-ok — protocol display name consumed by the registry *)
let name = "mvto"

type t = {
  sim : Sim.t;
  costs : Costs.t;
  db : Db.t;
  mutable ts_counter : int;
  max_versions : int;
}

let create sim costs db = { sim; costs; db; ts_counter = 0; max_versions = 8 }

type wentry = { wtable : int; wcopy : int array }

let read_version ts row field =
  if ts >= row.Row.wts then begin
    if ts > row.Row.rts then row.Row.rts <- ts;
    Some row.Row.data.(field)
  end
  else begin
    let rec go = function
      | [] -> None (* too old: all kept versions are newer *)
      | (v : Row.version) :: rest ->
          if v.Row.v_wts <= ts then begin
            if ts > v.Row.v_rts then v.Row.v_rts <- ts;
            Some v.Row.v_data.(field)
          end
          else go rest
    in
    go row.Row.versions
  end

let run_txn st ~wid:_ (wl : Workload.t) txn =
  st.ts_counter <- st.ts_counter + 1;
  let ts = st.ts_counter in
  let wset : wentry Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
  let inserts = ref [] in
  let slots = Array.make (Array.length txn.Txn.frags) 0 in
  let cur_row = ref Pcommon.dummy_row and cur_found = ref false in
  let too_old = ref false in
  let read (_ : Fragment.t) field =
    Sim.tick st.sim st.costs.Costs.row_read;
    if not !cur_found then 0
    else begin
      let row = !cur_row in
      match Pcommon.Rowmap.find wset row with
      | Some w -> w.wcopy.(field)
      | None ->
          (* A latched row is mid-install: reading now could miss the
             version being written after its validation already passed
             (lost update).  Abort and retry instead. *)
          if row.Row.lock <> 0 then begin
            too_old := true;
            0
          end
          else (
            match read_version ts row field with
            | Some v -> v
            | None ->
                too_old := true;
                0)
    end
  in
  let write (frag : Fragment.t) field v =
    Sim.tick st.sim st.costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      (* Early abort (Cicada-style): a version or read newer than our
         timestamp already dooms this write at validation. *)
      if row.Row.wts > ts || row.Row.rts > ts then too_old := true
      else begin
        let w =
          match Pcommon.Rowmap.find wset row with
          | Some w -> w
          | None ->
              let w =
                { wtable = frag.Fragment.table;
                  wcopy = Array.copy row.Row.data }
              in
              Pcommon.Rowmap.add wset row w;
              w
        in
        w.wcopy.(field) <- v
      end
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick st.sim st.costs.Costs.cas;
    let home = Db.home st.db frag.Fragment.table frag.Fragment.key in
    inserts := (frag.Fragment.table, key, Array.copy payload, home) :: !inserts
  in
  let input fid = slots.(fid) in
  let output fid v = if fid < Array.length slots then slots.(fid) <- v in
  let found _ = !cur_found in
  let ctx = { Exec.read; write; add; insert; input; output; found } in
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          cur_row := Pcommon.dummy_row;
          cur_found := true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          match Pcommon.locate st.sim st.costs st.db frag with
          | Some row ->
              cur_row := row;
              cur_found := true
          | None ->
              cur_row := Pcommon.dummy_row;
              cur_found := false));
      Sim.tick st.sim st.costs.Costs.logic;
      if !too_old then Exec.Blocked
      else
        match wl.Workload.exec ctx txn frag with
        | Exec.Ok -> if !too_old then Exec.Blocked else go (i + 1)
        | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  match go 0 with
  | Exec.Abort -> Exec.Abort
  | Exec.Blocked -> Exec.Blocked
  | Exec.Ok ->
      let writes =
        List.sort
          (fun (r1, w1) (r2, w2) ->
            let c = compare w1.wtable w2.wtable in
            if c <> 0 then c else compare r1.Row.key r2.Row.key)
          (Pcommon.Rowmap.elements wset)
      in
      let locked = ref [] in
      let lock_all () =
        List.for_all
          (fun (row, _) ->
            Sim.tick st.sim st.costs.Costs.cas;
            if row.Row.lock = 0 then begin
              row.Row.lock <- -1;
              locked := row :: !locked;
              true
            end
            else false)
          writes
      in
      let unlock_all () =
        List.iter
          (fun row ->
            Sim.tick st.sim st.costs.Costs.cas;
            row.Row.lock <- 0)
          !locked
      in
      if not (lock_all ()) then begin
        unlock_all ();
        Exec.Blocked
      end
      else begin
        let valid =
          List.for_all
            (fun (row, _) ->
              Sim.tick st.sim st.costs.Costs.validate_access;
              (* Write below an installed version or below a performed
                 read: timestamp-order violation. *)
              row.Row.wts <= ts && row.Row.rts <= ts)
            writes
        in
        if not valid then begin
          unlock_all ();
          Exec.Blocked
        end
        else begin
          List.iter
            (fun (row, w) ->
              Sim.tick st.sim st.costs.Costs.row_write;
              (* Snapshot the current newest version, then install. *)
              let snap =
                {
                  Row.v_data = Array.copy row.Row.data;
                  v_wts = row.Row.wts;
                  v_rts = row.Row.rts;
                }
              in
              let keep =
                if List.length row.Row.versions >= st.max_versions - 1 then
                  List.filteri
                    (fun i _ -> i < st.max_versions - 1)
                    row.Row.versions
                else row.Row.versions
              in
              row.Row.versions <- snap :: keep;
              Array.blit w.wcopy 0 row.Row.data 0 (Array.length w.wcopy);
              row.Row.wts <- ts;
              row.Row.rts <- ts;
              Row.publish row)
            writes;
          List.iter
            (fun (tid, key, payload, home) ->
              Sim.tick st.sim st.costs.Costs.index_insert;
              let row = Table.insert (Db.table st.db tid) ~home ~key payload in
              row.Row.wts <- ts;
              row.Row.rts <- ts)
            (List.rev !inserts);
          unlock_all ();
          Exec.Ok
        end
      end
