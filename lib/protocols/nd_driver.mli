(** Driver for non-deterministic protocols: a pool of symmetric worker
    threads (thread-to-transaction assignment), each generating from its
    own stream and retrying on concurrency-control aborts with bounded
    exponential backoff. *)

module type CC = sig
  val name : string

  type t

  val create : Quill_sim.Sim.t -> Quill_sim.Costs.t -> Quill_storage.Db.t -> t

  val run_txn :
    t -> wid:int -> Quill_txn.Workload.t -> Quill_txn.Txn.t ->
    Quill_txn.Exec.outcome
  (** One attempt.  [Ok]: committed, effects durable.  [Abort]: the
      transaction's own logic aborted — effects rolled back, final.
      [Blocked]: concurrency-control conflict — effects rolled back,
      the driver retries. *)
end

type cfg = {
  workers : int;
  costs : Quill_sim.Costs.t;
  backoff : int;        (** base backoff in virtual ns, doubled per retry *)
  max_backoff : int;
}

val default_cfg : cfg

val run :
  ?sim:Quill_sim.Sim.t ->
  ?clients:Quill_clients.Clients.t ->
  (module CC) ->
  cfg ->
  Quill_txn.Workload.t ->
  txns:int ->
  Quill_txn.Metrics.t
(** Run [txns] transactions split evenly across the workers.  With
    [?clients], workers instead pull from the admission queue until the
    client layer is exhausted ([txns] is ignored) and report outcomes
    back for client-level retry. *)
