(* TicToc timestamp-ordering OCC (Yu et al., SIGMOD'16).  Each row carries
   a write timestamp [wts] and read timestamp [rts] delimiting the
   interval in which its current version is valid.  The commit timestamp
   is computed lazily from the access set; read validity intervals are
   extended at validation when possible, which commits many schedules
   classic OCC would abort. *)

open Quill_sim
open Quill_storage
open Quill_txn

(* lint: engine-name-ok — protocol display name consumed by the registry *)
let name = "tictoc"

type t = { sim : Sim.t; costs : Costs.t; db : Db.t }

let create sim costs db = { sim; costs; db }

type rentry = { r_wts : int; r_rts : int }
type wentry = { wtable : int; wcopy : int array }

let run_txn st ~wid:_ (wl : Workload.t) txn =
  let rset : rentry Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
  let wset : wentry Pcommon.Rowmap.t = Pcommon.Rowmap.create () in
  let inserts = ref [] in
  let slots = Array.make (Array.length txn.Txn.frags) 0 in
  let cur_row = ref Pcommon.dummy_row and cur_found = ref false in
  let read (_ : Fragment.t) field =
    Sim.tick st.sim st.costs.Costs.row_read;
    if not !cur_found then 0
    else begin
      let row = !cur_row in
      match Pcommon.Rowmap.find wset row with
      | Some w -> w.wcopy.(field)
      | None ->
          if Pcommon.Rowmap.find rset row = None then
            Pcommon.Rowmap.add rset row
              { r_wts = row.Row.wts; r_rts = row.Row.rts };
          row.Row.data.(field)
    end
  in
  let write (frag : Fragment.t) field v =
    Sim.tick st.sim st.costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      let w =
        match Pcommon.Rowmap.find wset row with
        | Some w -> w
        | None ->
            if Pcommon.Rowmap.find rset row = None then
              Pcommon.Rowmap.add rset row
                { r_wts = row.Row.wts; r_rts = row.Row.rts };
            let w =
              { wtable = frag.Fragment.table; wcopy = Array.copy row.Row.data }
            in
            Pcommon.Rowmap.add wset row w;
            w
      in
      w.wcopy.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick st.sim st.costs.Costs.cas;
    let home = Db.home st.db frag.Fragment.table frag.Fragment.key in
    inserts := (frag.Fragment.table, key, Array.copy payload, home) :: !inserts
  in
  let input fid = slots.(fid) in
  let output fid v = if fid < Array.length slots then slots.(fid) <- v in
  let found _ = !cur_found in
  let ctx = { Exec.read; write; add; insert; input; output; found } in
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          cur_row := Pcommon.dummy_row;
          cur_found := true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          match Pcommon.locate st.sim st.costs st.db frag with
          | Some row ->
              cur_row := row;
              cur_found := true
          | None ->
              cur_row := Pcommon.dummy_row;
              cur_found := false));
      Sim.tick st.sim st.costs.Costs.logic;
      match wl.Workload.exec ctx txn frag with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  match go 0 with
  | Exec.Abort -> Exec.Abort
  | Exec.Blocked -> Exec.Blocked
  | Exec.Ok ->
      let writes =
        List.sort
          (fun (r1, w1) (r2, w2) ->
            let c = compare w1.wtable w2.wtable in
            if c <> 0 then c else compare r1.Row.key r2.Row.key)
          (Pcommon.Rowmap.elements wset)
      in
      let locked = ref [] in
      let lock_all () =
        List.for_all
          (fun (row, _) ->
            Sim.tick st.sim st.costs.Costs.cas;
            if row.Row.lock = 0 then begin
              row.Row.lock <- -1;
              locked := row :: !locked;
              true
            end
            else false)
          writes
      in
      let unlock_all () =
        List.iter
          (fun row ->
            Sim.tick st.sim st.costs.Costs.cas;
            row.Row.lock <- 0)
          !locked
      in
      if not (lock_all ()) then begin
        unlock_all ();
        Exec.Blocked
      end
      else begin
        (* Compute the commit timestamp. *)
        let commit_ts =
          List.fold_left (fun acc (row, _) -> max acc (row.Row.rts + 1)) 0
            writes
        in
        let commit_ts =
          List.fold_left
            (fun acc ((_ : Row.t), re) -> max acc re.r_wts)
            commit_ts
            (Pcommon.Rowmap.elements rset)
        in
        let in_wset row = Pcommon.Rowmap.find wset row <> None in
        (* Validate / extend the read set at commit_ts. *)
        let valid =
          List.for_all
            (fun (row, re) ->
              Sim.tick st.sim st.costs.Costs.validate_access;
              if re.r_rts >= commit_ts then true
              else if row.Row.wts <> re.r_wts then false
              else if row.Row.lock = -1 && not (in_wset row) then false
              else begin
                row.Row.rts <- max row.Row.rts commit_ts;
                true
              end)
            (Pcommon.Rowmap.elements rset)
        in
        if not valid then begin
          unlock_all ();
          Exec.Blocked
        end
        else begin
          List.iter
            (fun (row, w) ->
              Sim.tick st.sim st.costs.Costs.row_write;
              Array.blit w.wcopy 0 row.Row.data 0 (Array.length w.wcopy);
              row.Row.wts <- commit_ts;
              row.Row.rts <- commit_ts;
              Row.publish row)
            writes;
          List.iter
            (fun (tid, key, payload, home) ->
              Sim.tick st.sim st.costs.Costs.index_insert;
              let row = Table.insert (Db.table st.db tid) ~home ~key payload in
              row.Row.wts <- commit_ts;
              row.Row.rts <- commit_ts)
            (List.rev !inserts);
          unlock_all ();
          Exec.Ok
        end
      end
