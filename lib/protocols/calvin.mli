(** Centralized Calvin (Thomson et al., SIGMOD'12): deterministic locking.

    A single scheduler thread sequences transactions into batches and
    requests every transaction's locks in batch order through a
    deterministic lock manager (per-key FIFO queues, no barging).  When a
    transaction holds all its locks it is dispatched to a worker pool
    (thread-to-transaction assignment — the paper's contrast to QueCC's
    thread-to-queue design).  The single-threaded lock manager is
    Calvin's well-known scalability bottleneck, which the cost model
    charges via [Costs.lock_mgr_op]. *)

type cfg = {
  workers : int;           (** execution threads, excluding the scheduler *)
  batch_size : int;
  costs : Quill_sim.Costs.t;
}

val default_cfg : cfg

val run :
  ?sim:Quill_sim.Sim.t ->
  ?clients:Quill_clients.Clients.t ->
  cfg ->
  Quill_txn.Workload.t ->
  txns:int ->
  Quill_txn.Metrics.t
(** With [?clients], the scheduler sequences admitted transactions in
    arrival order until the client layer is exhausted ([txns] ignored);
    outcomes are reported back for client-level retry. *)
