(* Shared helpers for the protocol implementations: row location with cost
   accounting, per-attempt write buffers, and undo bookkeeping. *)

open Quill_sim
open Quill_storage
open Quill_txn

module Trace = Quill_trace.Trace

let dummy_row = Row.make ~key:(-1) ~nfields:1

(* Copy the simulator's per-phase busy / per-cause idle attribution into
   the run's metrics. *)
let record_sim_breakdown m sim =
  Metrics.record_phases m
    ~plan:(Sim.busy_in sim Sim.Ph_plan)
    ~execute:(Sim.busy_in sim Sim.Ph_execute)
    ~recover:(Sim.busy_in sim Sim.Ph_recover)
    ~publish:(Sim.busy_in sim Sim.Ph_publish)
    ~other:(Sim.busy_in sim Sim.Ph_other);
  Metrics.record_idle m
    ~barrier:(Sim.idle_in sim Sim.Cause_barrier)
    ~ivar:(Sim.idle_in sim Sim.Cause_ivar)
    ~chan:(Sim.idle_in sim Sim.Cause_chan)
    ~sleep:(Sim.idle_in sim Sim.Cause_sleep)

(* Run [f] as engine phase [ph], emitting a span covering its virtual
   extent when tracing. *)
let in_phase sim ph tid f =
  Sim.set_phase sim ph;
  let t0 = Sim.now sim in
  let r = f () in
  let tr = Sim.tracer sim in
  if Trace.enabled tr then
    Trace.span tr ~tid ~name:(Sim.phase_name ph) ~ts:t0
      ~dur:(Sim.now sim - t0) ();
  Sim.set_phase sim Sim.Ph_other;
  r

let locate sim (costs : Costs.t) db (frag : Fragment.t) =
  Sim.tick sim costs.Costs.index_probe;
  Table.find (Db.table db frag.Fragment.table) frag.Fragment.key

(* Association by physical row identity; access sets are small (tens of
   entries), linear scan beats hashing. *)
module Rowmap = struct
  type 'a t = (Row.t * 'a) list ref

  let create () : 'a t = ref []

  let find (t : 'a t) row =
    let rec go = function
      | [] -> None
      | (r, v) :: rest -> if r == row then Some v else go rest
    in
    go !t

  let add (t : 'a t) row v = t := (row, v) :: !t

  let replace (t : 'a t) row v =
    let rec go = function
      | [] -> [ (row, v) ]
      | (r, _) :: rest when r == row -> (row, v) :: rest
      | e :: rest -> e :: go rest
    in
    t := go !t
  let iter f (t : 'a t) = List.iter (fun (r, v) -> f r v) !t
  let iter_rev f (t : 'a t) = List.iter (fun (r, v) -> f r v) (List.rev !t)
  let clear (t : 'a t) = t := []
  let is_empty (t : 'a t) = !t = []
  let length (t : 'a t) = List.length !t
  let elements (t : 'a t) = !t
end

(* Per-attempt transaction-local state common to the buffered-write
   protocols (Silo, TicToc) and the in-place protocols (2PL). *)
type attempt = {
  mutable slots : int array;
  mutable inserts : (int * int * int array * int) list;
      (* table, key, payload, home *)
}

let new_attempt txn =
  { slots = Array.make (Array.length txn.Txn.frags) 0; inserts = [] }

(* Direct in-place execution with undo: the execution core of the
   engines that rely on external serialization (serial, H-Store, Calvin
   once locks are held). Publishes written rows on commit. *)
let run_direct sim (costs : Costs.t) db (wl : Workload.t) txn =
  let undo : int array Rowmap.t = Rowmap.create () in
  let written : unit Rowmap.t = Rowmap.create () in
  let inserts = ref [] in
  let slots = Array.make (Array.length txn.Txn.frags) 0 in
  let cur_row = ref dummy_row and cur_found = ref false in
  let read (_ : Fragment.t) field =
    Sim.tick sim costs.Costs.row_read;
    if !cur_found then (!cur_row).Row.data.(field) else 0
  in
  let write _frag field v =
    Sim.tick sim costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      (match Rowmap.find undo row with
      | None -> Rowmap.add undo row (Array.copy row.Row.data)
      | Some _ -> ());
      if Rowmap.find written row = None then Rowmap.add written row ();
      row.Row.data.(field) <- v
    end
  in
  let add frag field d = write frag field (read frag field + d) in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick sim costs.Costs.index_insert;
    let tbl = Db.table db frag.Fragment.table in
    let home = Db.home db frag.Fragment.table frag.Fragment.key in
    ignore (Table.insert tbl ~home ~key payload);
    inserts := (frag.Fragment.table, key) :: !inserts
  in
  let input fid = slots.(fid) in
  let output fid v = if fid < Array.length slots then slots.(fid) <- v in
  let found _ = !cur_found in
  let ctx = { Exec.read; write; add; insert; input; output; found } in
  let frags = txn.Txn.frags in
  let rec go i =
    if i >= Array.length frags then Exec.Ok
    else begin
      let frag = frags.(i) in
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          cur_row := dummy_row;
          cur_found := true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          match locate sim costs db frag with
          | Some row ->
              cur_row := row;
              cur_found := true
          | None ->
              cur_row := dummy_row;
              cur_found := false));
      Sim.tick sim costs.Costs.logic;
      match wl.Workload.exec ctx txn frag with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
    end
  in
  match go 0 with
  | Exec.Ok ->
      Rowmap.iter (fun row () -> Row.publish row) written;
      Exec.Ok
  | r ->
      Rowmap.iter
        (fun row saved ->
          Sim.tick sim costs.Costs.abort_cleanup;
          Row.restore row saved)
        undo;
      List.iter (fun (tid, key) -> Table.remove (Db.table db tid) key) !inserts;
      r
