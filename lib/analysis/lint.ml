(* Determinism lint: a Parsetree walk (compiler-libs) enforcing the repo
   invariants that keep Quill runs bit-for-bit reproducible.  Rules are
   named D1..D6; hits are suppressed by an explicit waiver: a comment
   opening with "lint: <keyword> -- justification" placed on the
   offending line or the line directly above it.  Waivers without a
   justification (W2) and waivers matching nothing (W1) are themselves
   findings, so the waiver inventory can never rot silently. *)

type finding = {
  f_file : string;
  f_line : int;
  f_rule : string;
  f_msg : string;
}

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d: [%s] %s" f.f_file f.f_line f.f_rule f.f_msg

let compare_finding a b =
  let c = compare a.f_file b.f_file in
  if c <> 0 then c
  else
    let c = compare a.f_line b.f_line in
    if c <> 0 then c else compare a.f_rule b.f_rule

(* keyword in a waiver comment -> rule it waives *)
let waiver_rules =
  [
    ("raw-random-ok", "D1");
    ("wall-clock-ok", "D2");
    ("order-insensitive", "D3");
    ("engine-name-ok", "D4");
    ("phys-eq-ok", "D5");
  ]

(* Per-rule file allowlists (path suffix match): the one sanctioned home
   of each construct. *)
let default_allow =
  [
    (* the deterministic seeded RNG implementation itself *)
    ("D1", "lib/common/rng.ml");
    (* trace export may stamp host wall-clock metadata; it never feeds
       back into virtual time *)
    ("D2", "lib/trace/trace.ml");
    (* the engine registry is the single place engine names live *)
    ("D4", "lib/harness/engine_registry.ml");
    (* row-identity checks on the storage's own row type *)
    ("D5", "lib/protocols/pcommon.ml");
  ]

let suffix_matches file suf =
  let lf = String.length file and ls = String.length suf in
  lf >= ls && String.sub file (lf - ls) ls = suf

let allowlisted rule file =
  List.exists
    (fun (r, suf) -> r = rule && suffix_matches file suf)
    default_allow

(* ------------------------------------------------------------------ *)
(* Waiver comments                                                     *)

type waiver = {
  w_line : int;
  w_rule : string;  (* "" when the keyword is unknown *)
  w_keyword : string;
  w_justified : bool;
  mutable w_used : bool;
}

let is_space c = c = ' ' || c = '\t'

(* Recognize a comment opener immediately followed (modulo whitespace)
   by "lint:" on one line; extract the keyword token and whether
   non-separator justification text follows it.  Requiring the marker
   to open the comment keeps prose that merely mentions the syntax
   (like this file) from registering as a waiver. *)
let scan_waiver line lnum =
  let n = String.length line in
  let rec find_marker i =
    if i + 1 >= n then None
    else if line.[i] = '(' && line.[i + 1] = '*' then begin
      let j = ref (i + 2) in
      while !j < n && is_space line.[!j] do
        incr j
      done;
      if !j + 5 <= n && String.sub line !j 5 = "lint:" then Some (!j + 5)
      else find_marker (i + 1)
    end
    else find_marker (i + 1)
  in
  match find_marker 0 with
  | Some after ->
      let i = ref after in
      while !i < n && is_space line.[!i] do
        incr i
      done;
      let start = !i in
      while
        !i < n
        && (not (is_space line.[!i]))
        && not (!i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')')
      do
        incr i
      done;
      let keyword = String.sub line start (!i - start) in
      let rest_end =
        let rec f j =
          if j + 1 < n && line.[j] = '*' && line.[j + 1] = ')' then j
          else if j >= n then n
          else f (j + 1)
        in
        f !i
      in
      let rest = String.sub line !i (max 0 (rest_end - !i)) in
      let justified =
        String.exists
          (fun c ->
            not (is_space c) && c <> '-' && c <> ':' && c <> ','
            && Char.code c < 128)
          rest
      in
      Some
        {
          w_line = lnum;
          w_rule =
            (match List.assoc_opt keyword waiver_rules with
            | Some r -> r
            | None -> "");
          w_keyword = keyword;
          w_justified = justified;
          w_used = false;
        }
  | _ -> None

let split_lines s =
  let out = ref [] and start = ref 0 in
  String.iteri (fun i c -> if c = '\n' then begin
        out := String.sub s !start (i - !start) :: !out;
        start := i + 1
      end) s;
  if !start <= String.length s - 1 then
    out := String.sub s !start (String.length s - !start) :: !out;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* AST walk                                                            *)

let lident_path li = String.concat "." (Longident.flatten li)

let last2 li =
  match List.rev (Longident.flatten li) with
  | x :: y :: _ -> Some (y, x)
  | _ -> None

let wall_clock_fns =
  [ "Unix.gettimeofday"; "Unix.time"; "Sys.time"; "Unix.gmtime" ]

let lint_structure ~file ~engine_names structure =
  let found = ref [] in
  let add ~line ~rule ~msg =
    if not (allowlisted rule file) then
      found := { f_file = file; f_line = line; f_rule = rule; f_msg = msg } :: !found
  in
  let check_string ~line s =
    if List.mem s engine_names then
      add ~line ~rule:"D4"
        ~msg:
          (Printf.sprintf
             "engine name literal %S outside lib/harness/engine_registry.ml \
              — dispatch through Engine_registry instead"
             s)
  in
  let on_expr (e : Parsetree.expression) =
    let line = e.pexp_loc.loc_start.pos_lnum in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        let path = lident_path txt in
        (match Longident.flatten txt with
        | [ "Random" ] | "Random" :: _ ->
            add ~line ~rule:"D1"
              ~msg:
                (Printf.sprintf
                   "stdlib Random (%s) is seeded from ambient state — use \
                    Common.Rng"
                   path)
        | _ -> ());
        if List.mem path wall_clock_fns then
          add ~line ~rule:"D2"
            ~msg:
              (Printf.sprintf
                 "wall-clock call %s outside the tracer export path — \
                  virtual time only"
                 path);
        (match last2 txt with
        | Some ("Hashtbl", ("iter" | "fold" as fn)) ->
            add ~line ~rule:"D3"
              ~msg:
                (Printf.sprintf
                   "Hashtbl.%s iterates in unspecified order — sort the \
                    bindings, or waive with a 'lint: order-insensitive' \
                    comment saying why"
                   fn)
        | Some ("Obj", "magic") ->
            add ~line ~rule:"D5" ~msg:"Obj.magic defeats the type system"
        | _ -> ());
        match txt with
        | Longident.Lident "==" | Longident.Ldot (Longident.Lident "Stdlib", "==") ->
            add ~line ~rule:"D5"
              ~msg:
                "physical equality (==) on mutable storage is \
                 representation-dependent — use structural equality or an \
                 explicit id field"
        | _ -> ())
    | Pexp_constant (Pconst_string (s, _, _)) -> check_string ~line s
    | _ -> ()
  in
  let on_pat (p : Parsetree.pattern) =
    let line = p.ppat_loc.loc_start.pos_lnum in
    match p.ppat_desc with
    | Ppat_constant (Pconst_string (s, _, _)) -> check_string ~line s
    | _ -> ()
  in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          on_expr e;
          default_iterator.expr it e);
      pat =
        (fun it p ->
          on_pat p;
          default_iterator.pat it p);
    }
  in
  it.structure it structure;
  !found

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let lint_source ~file ?(engine_names = []) ?(expect_mli = false) src =
  let lines = split_lines src in
  let waivers =
    List.concat
      (List.mapi
         (fun i line ->
           match scan_waiver line (i + 1) with
           | Some w -> [ w ]
           | None -> [])
         lines)
  in
  let waiver_findings =
    List.concat_map
      (fun w ->
        if w.w_rule = "" then
          [
            {
              f_file = file;
              f_line = w.w_line;
              f_rule = "W1";
              f_msg =
                Printf.sprintf "unknown lint waiver keyword %S" w.w_keyword;
            };
          ]
        else if not w.w_justified then
          [
            {
              f_file = file;
              f_line = w.w_line;
              f_rule = "W2";
              f_msg =
                Printf.sprintf
                  "waiver %S has no justification — say why the hit is \
                   safe"
                  w.w_keyword;
            };
          ]
        else [])
      waivers
  in
  let ast_findings =
    let lexbuf = Lexing.from_string src in
    Location.init lexbuf file;
    match Parse.implementation lexbuf with
    | ast -> lint_structure ~file ~engine_names ast
    | exception _ ->
        [
          {
            f_file = file;
            f_line = 1;
            f_rule = "E0";
            f_msg = "parse error — file could not be linted";
          };
        ]
  in
  (* A justified waiver on the finding's line (or the line above it)
     suppresses the finding and is marked used. *)
  let survives f =
    match
      List.find_opt
        (fun w ->
          w.w_rule = f.f_rule
          && (w.w_line = f.f_line || w.w_line = f.f_line - 1))
        waivers
    with
    | Some w ->
        w.w_used <- true;
        false
    | None -> true
  in
  let ast_findings = List.filter survives ast_findings in
  let stale =
    List.concat_map
      (fun w ->
        if w.w_rule <> "" && not w.w_used then
          [
            {
              f_file = file;
              f_line = w.w_line;
              f_rule = "W1";
              f_msg =
                Printf.sprintf
                  "stale waiver %S: no %s finding on this or the next line"
                  w.w_keyword w.w_rule;
            };
          ]
        else [])
      waivers
  in
  let mli =
    if expect_mli then
      [
        {
          f_file = file;
          f_line = 1;
          f_rule = "D6";
          f_msg =
            "library module has no .mli — make the public surface explicit";
        };
      ]
    else []
  in
  List.sort compare_finding (waiver_findings @ ast_findings @ stale @ mli)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(engine_names = []) path =
  let expect_mli =
    (* library modules (under lib/) must export an interface; executables
       and tests have no public surface *)
    let norm = String.concat "/" (String.split_on_char '\\' path) in
    let in_lib =
      let rec has_lib = function
        | "lib" :: _ -> true
        | _ :: tl -> has_lib tl
        | [] -> false
      in
      has_lib (String.split_on_char '/' norm)
    in
    in_lib && not (Sys.file_exists (Filename.chop_extension path ^ ".mli"))
  in
  lint_source ~file:path ~engine_names ~expect_mli (read_file path)
