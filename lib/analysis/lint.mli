(** Determinism lint over OCaml sources (compiler-libs Parsetree walk).

    Rules (hits exit the lint driver with status 1 unless waived):

    - {b D1} no stdlib [Random.*] — randomness goes through the seeded
      [Common.Rng] (allowlisted: [lib/common/rng.ml]).
    - {b D2} no wall-clock ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) — engines live in virtual time (allowlisted:
      [lib/trace/trace.ml], the export path).
    - {b D3} no [Hashtbl.iter]/[Hashtbl.fold] — iteration order is
      unspecified and would leak into committed state.
    - {b D4} no engine-name string literals outside
      [lib/harness/engine_registry.ml] — the PR 5 registry invariant.
    - {b D5} no [Obj.magic] / physical equality [(==)] on mutable
      storage outside [lib/protocols/pcommon.ml].
    - {b D6} library [.ml] under [lib/] must have an [.mli].
    - {b W1} stale or unknown waiver; {b W2} waiver without a
      justification; {b E0} file failed to parse.

    A finding is waived by [(* lint: <keyword> -- justification *)] on
    the offending line or the line directly above.  Keywords:
    [raw-random-ok] (D1), [wall-clock-ok] (D2), [order-insensitive]
    (D3), [engine-name-ok] (D4), [phys-eq-ok] (D5). *)

type finding = {
  f_file : string;
  f_line : int;
  f_rule : string;
  f_msg : string;
}

val pp_finding : Format.formatter -> finding -> unit
val compare_finding : finding -> finding -> int

val lint_source :
  file:string ->
  ?engine_names:string list ->
  ?expect_mli:bool ->
  string ->
  finding list
(** Lint a source text.  [engine_names] drives D4 (pass
    [Engine_registry.names ()]); [expect_mli] (default false) adds a D6
    finding, used by {!lint_file} for interface-less library modules. *)

val lint_file : ?engine_names:string list -> string -> finding list
(** Lint a file on disk; computes [expect_mli] from the path (under
    [lib/] with no sibling [.mli]). *)
