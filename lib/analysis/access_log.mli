(** Opt-in row-access recorder for the planned-order conflict detector.

    When attached (via {!Quill_harness.Experiment}'s [--check-conflicts]
    path), every row access performed through an executor context and
    every storage-level row probe is appended to an in-memory log,
    stamped with the accessing thread, virtual time, engine phase, and
    the QueCC queue slot (owner planner queue, priority, position,
    batch) being drained.  {!Conflict_check} then replays the log
    against the paper's structural invariants.

    Recording never calls [Sim.tick] and never perturbs engine control
    flow, so committed state is bit-identical with and without the
    recorder (asserted by the test suite).  When no recorder is passed
    the engines skip the wrapping entirely — zero cost when disabled. *)

type op = Read | Write | Insert | Committed_read

val op_name : op -> string

type row_access = {
  a_thread : int;  (** executor thread (engine-local id) doing the access *)
  a_owner : int;  (** thread that owns the queue being drained *)
  a_prio : int;  (** planner priority of the queue (planner index) *)
  a_subseq : int;
      (** intra-key sub-queue index when the entry came from a hot-key
          chain segment (QueCC [cfg.split]); -1 for a plain queue entry.
          Within one (batch, prio, key), planned order is
          [(subseq, pos)] lexicographic. *)
  a_pos : int;  (** position of the entry within the queue *)
  a_batch : int;  (** batch number *)
  a_vt : int;  (** virtual time of the access *)
  a_seq : int;  (** global append order — the true interleaving order *)
  a_phase : Quill_sim.Sim.phase;
  a_table : int;
  a_key : int;
  a_op : op;
}

type probe = {
  p_vt : int;
  p_seq : int;
  p_tid : int;  (** simulator thread id *)
  p_phase : Quill_sim.Sim.phase;
  p_table : string;
  p_key : int;
  p_insert : bool;
}

type t

val create : unit -> t

val attach :
  t ->
  now:(unit -> int) ->
  phase:(unit -> Quill_sim.Sim.phase) ->
  tid:(unit -> int) ->
  unit
(** Install the clock/phase/thread-id thunks (called once per run, after
    the simulator exists). *)

val clear : t -> unit

val set_slot :
  t ->
  thread:int ->
  owner:int ->
  prio:int ->
  subseq:int ->
  pos:int ->
  batch:int ->
  unit
(** Set the queue-slot context attributed to subsequent row accesses.
    Engines call this from their drain loops before executing each queue
    entry; [owner <> thread] marks a stolen queue (or, with
    [subseq >= 0], a chain segment running on a foreign executor).
    Pass [subseq:(-1)] for a plain queue entry. *)

val record_row : t -> table:int -> key:int -> op:op -> unit
val record_probe : t -> table:string -> key:int -> insert:bool -> unit

val wrap_exec_ctx :
  t ->
  ?rc_read:(Quill_txn.Fragment.t -> bool) ->
  Quill_txn.Exec.ctx ->
  Quill_txn.Exec.ctx
(** Interpose recording on every [read]/[write]/[add]/[insert] of an
    executor context.  [rc_read f] should return [true] when fragment
    [f]'s read is served from the committed image (read-committed
    isolation) — such reads commute and are logged as [Committed_read],
    which the checker exempts from ordering rules, mirroring their
    exclusion from steal signatures. *)

val with_sim : t -> Quill_sim.Sim.t -> (unit -> 'a) -> 'a
(** [with_sim t sim f] wires the log to [sim] (clock/phase/thread-id
    thunks) and installs the storage probe hook for the duration of [f]
    — only plan-phase probes are recorded, which is what the C1 check
    consumes.  Engines call this around [Sim.run]. *)

val rows : t -> row_access array
val probes : t -> probe array
val row_count : t -> int
val probe_count : t -> int
