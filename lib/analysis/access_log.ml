open Quill_common
open Quill_sim
open Quill_txn

(* The recorder deliberately never calls [Sim.tick]: recording must not
   perturb virtual time, so a run with the recorder attached commits a
   bit-identical database to the same run without it (the test suite
   asserts this).  All ordering information is carried by [seq], a global
   append counter: the cooperative scheduler runs one thread at a time,
   so [seq] is the true total order in which the accesses happened. *)

type op = Read | Write | Insert | Committed_read

let op_name = function
  | Read -> "read"
  | Write -> "write"
  | Insert -> "insert"
  | Committed_read -> "rc-read"

type row_access = {
  a_thread : int;
  a_owner : int;
  a_prio : int;
  a_subseq : int;
  a_pos : int;
  a_batch : int;
  a_vt : int;
  a_seq : int;
  a_phase : Sim.phase;
  a_table : int;
  a_key : int;
  a_op : op;
}

type probe = {
  p_vt : int;
  p_seq : int;
  p_tid : int;
  p_phase : Sim.phase;
  p_table : string;
  p_key : int;
  p_insert : bool;
}

type slot = {
  s_thread : int;
  s_owner : int;
  s_prio : int;
  s_subseq : int;
      (* intra-key sub-queue index for hot-key chain segments; -1 for a
         plain queue entry.  Segment entries of one (prio, key) chain
         execute in (subseq, pos) order. *)
  s_pos : int;
  s_batch : int;
}

let no_slot =
  { s_thread = -1; s_owner = -1; s_prio = -1; s_subseq = -1; s_pos = -1;
    s_batch = -1 }

type t = {
  mutable now : unit -> int;
  mutable phase : unit -> Sim.phase;
  mutable tid : unit -> int;
  mutable seq : int;
  row_log : row_access Vec.t;
  probe_log : probe Vec.t;
  (* Queue-slot context of the next recorded row access, per simulator
     thread (an executor can block mid-entry under the cooperative
     scheduler while a peer records, so the context cannot be global). *)
  slots : (int, slot) Hashtbl.t;
}

let create () =
  {
    now = (fun () -> 0);
    phase = (fun () -> Sim.Ph_other);
    tid = (fun () -> -1);
    seq = 0;
    row_log = Vec.create ();
    probe_log = Vec.create ();
    slots = Hashtbl.create 16;
  }

let attach t ~now ~phase ~tid =
  t.now <- now;
  t.phase <- phase;
  t.tid <- tid

let clear t =
  Vec.clear t.row_log;
  Vec.clear t.probe_log;
  Hashtbl.reset t.slots;
  t.seq <- 0

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let set_slot t ~thread ~owner ~prio ~subseq ~pos ~batch =
  Hashtbl.replace t.slots (t.tid ())
    { s_thread = thread; s_owner = owner; s_prio = prio; s_subseq = subseq;
      s_pos = pos; s_batch = batch }

let record_row t ~table ~key ~op =
  let s =
    match Hashtbl.find_opt t.slots (t.tid ()) with
    | Some s -> s
    | None -> no_slot
  in
  Vec.push t.row_log
    {
      a_thread = s.s_thread;
      a_owner = s.s_owner;
      a_prio = s.s_prio;
      a_subseq = s.s_subseq;
      a_pos = s.s_pos;
      a_batch = s.s_batch;
      a_vt = t.now ();
      a_seq = next_seq t;
      a_phase = t.phase ();
      a_table = table;
      a_key = key;
      a_op = op;
    }

let record_probe t ~table ~key ~insert =
  Vec.push t.probe_log
    {
      p_vt = t.now ();
      p_seq = next_seq t;
      p_tid = t.tid ();
      p_phase = t.phase ();
      p_table = table;
      p_key = key;
      p_insert = insert;
    }

(* Wire the log to a simulator for the duration of [f]: clock / phase /
   thread-id thunks, plus the storage-level probe hook that proves the
   planning phase touches no rows (only plan-phase probes are kept, so
   the log stays small on long runs).  The hook is process-global;
   [Fun.protect] restores it even when [f] raises. *)
let with_sim t sim f =
  let safe default g () = if Sim.in_thread sim then g () else default in
  attach t
    ~now:(safe 0 (fun () -> Sim.now sim))
    ~phase:(safe Sim.Ph_other (fun () -> Sim.phase sim))
    ~tid:(safe (-1) (fun () -> Sim.current_tid sim));
  Quill_storage.Table.set_probe_hook
    (Some
       (fun ~table ~key ~insert ->
         if Sim.in_thread sim && Sim.phase sim = Sim.Ph_plan then
           record_probe t ~table ~key ~insert));
  Fun.protect
    ~finally:(fun () -> Quill_storage.Table.set_probe_hook None)
    f

let rows t = Vec.to_array t.row_log
let probes t = Vec.to_array t.probe_log
let row_count t = Vec.length t.row_log
let probe_count t = Vec.length t.probe_log

(* Interpose on an executor context.  [rc_read] marks fragments whose
   reads are served from the committed image (read-committed isolation):
   those commute with anything in flight, so the conflict checker must
   not treat them as conflicting accesses — exactly mirroring their
   exclusion from the engine's steal signatures. *)
let wrap_exec_ctx t ?(rc_read = fun (_ : Fragment.t) -> false)
    (c : Exec.ctx) =
  {
    c with
    Exec.read =
      (fun f field ->
        record_row t ~table:f.Fragment.table ~key:f.Fragment.key
          ~op:(if rc_read f then Committed_read else Read);
        c.Exec.read f field);
    write =
      (fun f field v ->
        record_row t ~table:f.Fragment.table ~key:f.Fragment.key ~op:Write;
        c.Exec.write f field v);
    add =
      (fun f field d ->
        record_row t ~table:f.Fragment.table ~key:f.Fragment.key ~op:Write;
        c.Exec.add f field d);
    insert =
      (fun f ~key payload ->
        record_row t ~table:f.Fragment.table ~key ~op:Insert;
        c.Exec.insert f ~key payload);
  }
