open Quill_common
open Quill_sim
module A = Access_log

type rule = Plan_access | Priority_order | Cross_owner | Steal_overlap

let rule_name = function
  | Plan_access -> "plan-access"
  | Priority_order -> "priority-order"
  | Cross_owner -> "cross-owner"
  | Steal_overlap -> "steal-overlap"

type violation = {
  v_rule : rule;
  v_batch : int;
  v_table : string;
  v_key : int;
  v_msg : string;
}

type report = {
  r_rows : int;
  r_probes : int;
  r_batches : int;
  r_stolen : int;
  r_segments : int;
  violations : violation list;
}

let ok r = r.violations = []

let pp_violation fmt v =
  Format.fprintf fmt "[%s] batch %d %s key %d: %s" (rule_name v.v_rule)
    v.v_batch v.v_table v.v_key v.v_msg

let pp_report fmt r =
  Format.fprintf fmt
    "conflict-check: %d row accesses, %d probes, %d batches, %d stolen \
     queues, %d chain segments, %d violations"
    r.r_rows r.r_probes r.r_batches r.r_stolen r.r_segments
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf fmt "@.  %a" pp_violation v) r.violations

(* Queue-slot order within one owner's queue set: planner priority
   first, then intra-key sub-queue index (hot-key chain segments;
   -1 for plain entries), then position within the (sub-)queue.  This is
   the order the paper requires conflicting accesses to respect; the
   subseq component is what lets a split key's accesses, spread over
   several executors, still prove planned order. *)
let slot_lt (p1, s1, q1) (p2, s2, q2) =
  p1 < p2
  || (p1 = p2 && (s1 < s2 || (s1 = s2 && q1 < q2)))

(* All checks iterate deterministic sorted arrays — never a Hashtbl —
   so the checker's own output order is reproducible. *)

(* C1: the planning phase must perform zero row accesses.  Planners only
   route fragment descriptors into queues; a storage probe under Ph_plan
   means planning depends on row state and is no longer a pure function
   of the batch. *)
let check_plan_access ~(rows : A.row_access array)
    ~(probes : A.probe array) add =
  Array.iter
    (fun (p : A.probe) ->
      if p.A.p_phase = Sim.Ph_plan then
        add
          {
            v_rule = Plan_access;
            v_batch = -1;
            v_table = p.A.p_table;
            v_key = p.A.p_key;
            v_msg =
              Printf.sprintf
                "storage %s by thread %d at vt=%d during planning phase"
                (if p.A.p_insert then "insert" else "lookup")
                p.A.p_tid p.A.p_vt;
          })
    probes;
  Array.iter
    (fun (a : A.row_access) ->
      if a.A.a_phase = Sim.Ph_plan then
        add
          {
            v_rule = Plan_access;
            v_batch = a.A.a_batch;
            v_table = Printf.sprintf "table#%d" a.A.a_table;
            v_key = a.A.a_key;
            v_msg =
              Printf.sprintf "%s by thread %d at vt=%d during planning phase"
                (A.op_name a.A.a_op) a.A.a_thread a.A.a_vt;
          })
    rows

(* Execute-phase records that participate in ordering rules.  Recovery
   replay (Ph_recover) legitimately re-executes a batch prefix serially
   and out of global order; committed-image reads commute with anything
   in flight.  Both are excluded, mirroring the engine's own steal
   signatures. *)
let ordered_rows rows =
  let v = Vec.create () in
  Array.iter
    (fun (a : A.row_access) ->
      if
        a.A.a_phase = Sim.Ph_execute
        && a.A.a_op <> A.Committed_read
        && a.A.a_batch >= 0
      then Vec.push v a)
    rows;
  let arr = Vec.to_array v in
  Array.sort
    (fun (x : A.row_access) (y : A.row_access) ->
      let c = compare x.A.a_batch y.A.a_batch in
      if c <> 0 then c
      else
        let c = compare x.A.a_table y.A.a_table in
        if c <> 0 then c
        else
          let c = compare x.A.a_key y.A.a_key in
          if c <> 0 then c else compare x.A.a_seq y.A.a_seq)
    arr;
  arr

let is_write = function A.Write | A.Insert -> true | A.Read | A.Committed_read -> false

(* C2: conflicting same-key accesses within a batch must follow planned
   queue priority order.  Within one owner's queue set the execution
   order (by [a_seq]) of any read-write or write-write pair must agree
   with queue-slot order (priority, then position).  A conflicting pair
   spanning two different owners should be impossible — the planner
   routes a key's fragments to one executor — and is reported as
   [Cross_owner]. *)
let check_priority_order sorted add =
  let n = Array.length sorted in
  let i = ref 0 in
  while !i < n do
    let a0 = sorted.(!i) in
    let j = ref !i in
    while
      !j < n
      && sorted.(!j).A.a_batch = a0.A.a_batch
      && sorted.(!j).A.a_table = a0.A.a_table
      && sorted.(!j).A.a_key = a0.A.a_key
    do
      incr j
    done;
    (* group [i, j) shares (batch, table, key), already in seq order *)
    let owners = ref [] (* (owner, max slot of any access, max slot of a write) *)
    and has_write = ref false
    and multi_owner = ref false
    and reported_cross = ref false in
    for k = !i to !j - 1 do
      let a = sorted.(k) in
      let slot = (a.A.a_prio, a.A.a_subseq, a.A.a_pos) in
      if is_write a.A.a_op then has_write := true;
      (match !owners with
      | (o, _, _) :: _ when o <> a.A.a_owner -> multi_owner := true
      | _ -> ());
      if !multi_owner && !has_write && not !reported_cross then begin
        reported_cross := true;
        add
          {
            v_rule = Cross_owner;
            v_batch = a.A.a_batch;
            v_table = Printf.sprintf "table#%d" a.A.a_table;
            v_key = a.A.a_key;
            v_msg =
              "conflicting accesses span two owner queue sets (planner \
               routing broke per-key locality)";
          }
      end;
      let max_all, max_w =
        match List.assoc_opt a.A.a_owner (List.map (fun (o, ma, mw) -> (o, (ma, mw))) !owners) with
        | Some (ma, mw) -> (ma, mw)
        | None -> ((-1, -1, -1), (-1, -1, -1))
      in
      let against = if is_write a.A.a_op then max_all else max_w in
      if slot_lt slot against then begin
        let ap, asq, apos = against in
        add
          {
            v_rule = Priority_order;
            v_batch = a.A.a_batch;
            v_table = Printf.sprintf "table#%d" a.A.a_table;
            v_key = a.A.a_key;
            v_msg =
              Printf.sprintf
                "%s at queue slot (prio %d, sub %d, pos %d) by thread %d \
                 executed after a conflicting access at slot (prio %d, \
                 sub %d, pos %d) of the same owner %d"
                (A.op_name a.A.a_op) a.A.a_prio a.A.a_subseq a.A.a_pos
                a.A.a_thread ap asq apos a.A.a_owner;
          }
      end;
      let max_all' = if slot_lt max_all slot then slot else max_all in
      let max_w' =
        if is_write a.A.a_op && slot_lt max_w slot then slot else max_w
      in
      owners :=
        (a.A.a_owner, max_all', max_w')
        :: List.filter (fun (o, _, _) -> o <> a.A.a_owner) !owners
    done;
    i := !j
  done

(* One drained execution (sub-)queue: who drained it, which keys it
   touched, and the seq window over which it was drained.  A hot-key
   chain segment ([q_subseq >= 0]) is its own queue: it runs on a
   foreign thread like a steal, and the same concurrent-overlap check
   applies to it (its window must not overlap any other thread's queue
   that shares a key — chain sequencing is what guarantees that). *)
type queue = {
  q_batch : int;
  q_owner : int;
  q_prio : int;
  q_subseq : int;
  mutable q_thread : int;
  mutable q_min_seq : int;
  mutable q_max_seq : int;
  q_keys : (int * int) Vec.t; (* (table, key) *)
}

let build_queues sorted =
  (* sorted by (batch, table, key, seq); re-sort a copy by queue id *)
  let arr = Array.copy sorted in
  Array.sort
    (fun (x : A.row_access) (y : A.row_access) ->
      let c = compare x.A.a_batch y.A.a_batch in
      if c <> 0 then c
      else
        let c = compare x.A.a_owner y.A.a_owner in
        if c <> 0 then c
        else
          let c = compare x.A.a_prio y.A.a_prio in
          if c <> 0 then c
          else
            let c = compare x.A.a_subseq y.A.a_subseq in
            if c <> 0 then c
            else
              (* two chains can share (owner, prio, subseq); a segment
                 holds exactly one key, so key-group the segment rows *)
              let c =
                if x.A.a_subseq < 0 then 0
                else compare (x.A.a_table, x.A.a_key) (y.A.a_table, y.A.a_key)
              in
              if c <> 0 then c else compare x.A.a_seq y.A.a_seq)
    arr;
  let queues = Vec.create () in
  Array.iter
    (fun (a : A.row_access) ->
      let fresh () =
        let q =
          {
            q_batch = a.A.a_batch;
            q_owner = a.A.a_owner;
            q_prio = a.A.a_prio;
            q_subseq = a.A.a_subseq;
            q_thread = a.A.a_thread;
            q_min_seq = a.A.a_seq;
            q_max_seq = a.A.a_seq;
            q_keys = Vec.create ();
          }
        in
        Vec.push q.q_keys (a.A.a_table, a.A.a_key);
        Vec.push queues q
      in
      if Vec.length queues = 0 then fresh ()
      else
        let q = Vec.get queues (Vec.length queues - 1) in
        if
          q.q_batch = a.A.a_batch && q.q_owner = a.A.a_owner
          && q.q_prio = a.A.a_prio && q.q_subseq = a.A.a_subseq
          && (q.q_subseq < 0
             || Vec.get q.q_keys 0 = (a.A.a_table, a.A.a_key))
        then begin
          q.q_max_seq <- max q.q_max_seq a.A.a_seq;
          q.q_min_seq <- min q.q_min_seq a.A.a_seq;
          (* a queue is drained by one thread; a second thread showing up
             mid-queue is itself suspicious, keep the last thief so the
             steal check sees the steal *)
          q.q_thread <- a.A.a_thread;
          Vec.push q.q_keys (a.A.a_table, a.A.a_key)
        end
        else fresh ())
    arr;
  let qs = Vec.to_array queues in
  Array.iter
    (fun q ->
      Vec.sort compare q.q_keys)
    qs;
  qs

let keys_intersect a b =
  (* both Vecs sorted; merge scan for a shared (table, key) *)
  let la = Vec.length a.q_keys and lb = Vec.length b.q_keys in
  let i = ref 0 and j = ref 0 and hit = ref None in
  while !hit = None && !i < la && !j < lb do
    let x = Vec.get a.q_keys !i and y = Vec.get b.q_keys !j in
    let c = compare x y in
    if c = 0 then hit := Some x
    else if c < 0 then incr i
    else incr j
  done;
  !hit

(* C3: a stolen queue (drained by a thread other than its owner) must be
   key-disjoint from every queue drained concurrently by a different
   thread.  The engine only steals when signatures are disjoint against
   all unfinished queues; a queue fully drained before the steal window
   opened ([q_max_seq < q_min_seq of the stolen one]) may share keys.
   Hot-key chain segments also run off-owner, but by sequencing rather
   than disjointness: their windows must simply never overlap another
   thread's queue sharing the key, which the same scan verifies.  They
   are tallied as segments, not steals. *)
let check_steal_overlap queues add =
  let n = Array.length queues in
  let stolen = ref 0 and segments = ref 0 in
  for a = 0 to n - 1 do
    let qa = queues.(a) in
    if qa.q_subseq >= 0 || qa.q_thread <> qa.q_owner then begin
      if qa.q_subseq >= 0 then incr segments else incr stolen;
      for b = 0 to n - 1 do
        let qb = queues.(b) in
        if
          b <> a
          && qb.q_batch = qa.q_batch
          && qb.q_thread <> qa.q_thread
          && qb.q_max_seq > qa.q_min_seq
          && qb.q_min_seq < qa.q_max_seq
        then
          match keys_intersect qa qb with
          | None -> ()
          | Some (table, key) ->
              add
                {
                  v_rule = Steal_overlap;
                  v_batch = qa.q_batch;
                  v_table = Printf.sprintf "table#%d" table;
                  v_key = key;
                  v_msg =
                    Printf.sprintf
                      "%s (owner %d, prio %d, sub %d) on thread %d \
                       overlaps concurrent queue (owner %d, prio %d, \
                       sub %d) on thread %d — %s"
                      (if qa.q_subseq >= 0 then "chain segment"
                       else "stolen queue")
                      qa.q_owner qa.q_prio qa.q_subseq qa.q_thread
                      qb.q_owner qb.q_prio qb.q_subseq qb.q_thread
                      (if qa.q_subseq >= 0 then
                         "chain sequencing was violated"
                       else "signatures were not disjoint");
                }
      done
    end
  done;
  (!stolen, !segments)

let count_batches (rows : A.row_access array) =
  let seen = ref [] in
  Array.iter
    (fun (a : A.row_access) ->
      if a.A.a_batch >= 0 && not (List.mem a.A.a_batch !seen) then
        seen := a.A.a_batch :: !seen)
    rows;
  List.length !seen

let check_log log =
  let rows = A.rows log and probes = A.probes log in
  let acc = Vec.create () in
  let add v = Vec.push acc v in
  check_plan_access ~rows ~probes add;
  let sorted = ordered_rows rows in
  check_priority_order sorted add;
  let queues = build_queues sorted in
  let stolen, segments = check_steal_overlap queues add in
  {
    r_rows = Array.length rows;
    r_probes = Array.length probes;
    r_batches = count_batches rows;
    r_stolen = stolen;
    r_segments = segments;
    violations = Vec.to_list acc;
  }
