(** Happens-before checker for {!Access_log} recordings.

    Replays a recorded run against the structural invariants that make
    QueCC's priority-ordered queues deterministic (Qadah, Middleware
    2019):

    - {b plan-access} (C1): the planning phase performs zero row
      accesses — planners route fragment descriptors, they never touch
      storage.
    - {b priority-order} (C2): conflicting (read-write or write-write)
      same-key accesses within a batch execute in planned queue-slot
      order — planner priority first, then intra-key sub-queue index
      (hot-key chain segments, [cfg.split]), then position within the
      (sub-)queue.  Committed-image reads and recovery replay are exempt
      (they commute / legitimately re-execute out of global order).
    - {b cross-owner} (C2b): a key's conflicting fragments all land in
      one owner's queue set; conflicting accesses spanning owners mean
      planner routing broke per-key locality.  (A chain segment runs on
      a foreign {e thread} but keeps its home {e owner}, so splitting
      does not trip this rule.)
    - {b steal-overlap} (C3): a stolen queue is key-disjoint from every
      queue drained concurrently by a different thread — the
      work-stealing signatures really were disjoint.  Chain segments get
      the same concurrent-overlap scan (their windows must be serialized
      by the chain ivars, never concurrent with a key-sharing queue).

    The checker iterates sorted arrays only (never an unordered
    container), so its own output is deterministic. *)

type rule = Plan_access | Priority_order | Cross_owner | Steal_overlap

val rule_name : rule -> string

type violation = {
  v_rule : rule;
  v_batch : int;  (** -1 when the access predates batch attribution *)
  v_table : string;
  v_key : int;
  v_msg : string;
}

type report = {
  r_rows : int;  (** row accesses examined *)
  r_probes : int;  (** storage probes examined *)
  r_batches : int;  (** distinct batches covered *)
  r_stolen : int;  (** stolen queues observed *)
  r_segments : int;  (** hot-key chain segments observed (cfg.split) *)
  violations : violation list;
}

val ok : report -> bool
val check_log : Access_log.t -> report
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
