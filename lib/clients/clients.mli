(** Deterministic open-loop client layer.

    Seeded arrival processes (Poisson or bursty on/off) running on
    {!Quill_sim.Sim} virtual time feed a bounded per-node admission
    queue.  When the queue is full a pluggable overload policy decides
    who loses: [Block] parks the submitter (backpressure), the shed
    policies drop the newest or oldest entry, and [Deadline] purges
    expired entries before shedding.  Aborted transactions are
    resubmitted with seeded exponential backoff + jitter under a
    bounded retry budget.

    Determinism: each client thread owns one RNG stream derived from
    [(cfg.seed, client index)] and each entry owns a retry-jitter
    stream derived from [(cfg.seed, client index, serial)], so the
    schedule of arrivals and backoffs is a pure function of the seed —
    independent of engine interleaving and completion order.  Runs are
    bit-identical for a given seed. *)

type policy =
  | Block        (** full queue blocks the submitter: backpressure *)
  | Shed_newest  (** full queue drops the incoming transaction *)
  | Shed_oldest  (** full queue drops the head (stalest) entry *)
  | Deadline     (** drop expired entries; shed incoming when still full *)

type arrival =
  | Poisson of float
      (** mean arrival rate, transactions per virtual second *)
  | Bursty of { rate : float; on_ns : int; off_ns : int }
      (** Poisson at [rate] during [on_ns] windows separated by silent
          [off_ns] windows *)

type cfg = {
  arrival : arrival;
  clients : int;      (** generator threads; thread i feeds node (i mod nodes) *)
  depth : int;        (** admission-queue bound, per node *)
  policy : policy;
  deadline : int;     (** ns from first offer; 0 = no deadline *)
  max_retries : int;  (** abort -> retry budget per transaction *)
  backoff : int;      (** base retry backoff, ns; doubled per attempt *)
  max_backoff : int;
  seed : int;
  total : int;        (** transactions to offer across all clients *)
}

val default : cfg

type entry = {
  txn : Quill_txn.Txn.t;
  node : int;
  first_offer : int;
  deadline_at : int;
  mutable attempt : int;
  rng : Quill_common.Rng.t;
}

type t

val create : sim:Quill_sim.Sim.t -> nodes:int -> Quill_txn.Workload.t -> cfg -> t
(** Spawn [cfg.clients] generator threads on [sim].  Must be called
    before [Sim.run] starts (generators are ordinary sim threads). *)

val take : t -> node:int -> entry option
(** Dequeue one admitted transaction for [node], blocking on virtual
    time until one arrives.  [None] means the node is exhausted: every
    transaction routed to it has been finally resolved, so no arrival
    can ever happen again.  Must be called from a sim thread. *)

val drain : t -> node:int -> max:int -> entry array
(** Dequeue up to [max] entries — whatever the queue holds at
    batch-close, but at least one, blocking until the node is
    exhausted ([[||]]).  Must be called from a sim thread. *)

val complete : t -> entry -> ok:bool -> unit
(** Report the engine-side outcome for a dequeued entry.  [ok:true]
    records client latency and retires it; [ok:false] schedules a
    backoff retry, or retires it when the retry budget or deadline is
    exhausted.  Every entry returned by [take]/[drain] must be
    completed exactly once. *)

val exhausted : t -> bool
(** True when every offered transaction has been finally resolved
    (committed, shed, deadline-missed, or retry-exhausted).  Stable:
    once true it never becomes false. *)

val node_exhausted : t -> node:int -> bool
val queued : t -> node:int -> int

val record : t -> Quill_txn.Metrics.t -> unit
(** Copy the overload counters and client-latency histogram into [m]. *)

val policy_name : policy -> string
val arrival_to_string : arrival -> string

val parse_arrival : string -> (arrival, string) result
(** ["250000"] or ["2.5e6"] (Poisson txn/s) or ["burst:RATE:ON:OFF"]
    with ON/OFF in the NUM[ns|us|ms|s] time grammar. *)

val parse_admission : string -> (policy * int, string) result
(** ["block:256" | "shed:256" | "shed-newest:256" | "deadline:256"];
    the [:DEPTH] suffix is optional. *)

val parse_retries : string -> (int * int, string) result
(** ["N[:BACKOFF]"] -> (max_retries, base backoff ns). *)

val parse_time : string -> int
(** NUM[ns|us|ms|s] -> ns; bare numbers are ns.  Raises on bad input
    (internal; exposed for the deadline flag and tests). *)
