(* Deterministic open-loop client layer: seeded arrival processes feed a
   bounded per-node admission queue with pluggable overload policies, and
   aborted transactions come back through seeded exponential backoff.

   Everything runs on quill_sim virtual time with one RNG stream per
   client (plus one per entry for retry jitter, seeded from the entry's
   identity rather than split from a shared stream), so a run is
   bit-identical for a given seed regardless of engine interleaving —
   the property the chaos and trace layers already rely on.

   Lifecycle accounting is a single [live] counter initialized to the
   total offered load: an entry stays live while it is waiting to be
   offered, queued, in flight inside an engine, or parked in a retry
   timer, and is finally resolved exactly once (commit, shed, deadline
   miss, or retry-budget exhaustion).  [live = 0] is therefore a stable
   "nothing can ever arrive again" signal that engines use to
   terminate; [node_live] gives the same signal per node for the
   distributed engines. *)

open Quill_common
open Quill_sim
open Quill_txn

type policy = Block | Shed_newest | Shed_oldest | Deadline

type arrival =
  | Poisson of float  (* mean arrival rate, txns per virtual second *)
  | Bursty of { rate : float; on_ns : int; off_ns : int }
      (* Poisson at [rate] during [on_ns] windows, silent for [off_ns] *)

type cfg = {
  arrival : arrival;
  clients : int;       (* generator threads; thread i feeds node (i mod nodes) *)
  depth : int;         (* admission-queue bound, per node *)
  policy : policy;
  deadline : int;      (* ns from first offer; 0 = no deadline *)
  max_retries : int;   (* abort -> retry budget per transaction *)
  backoff : int;       (* base retry backoff, ns; doubled per attempt *)
  max_backoff : int;
  seed : int;
  total : int;         (* transactions to offer across all clients *)
}

let default =
  {
    arrival = Poisson 1e6;
    clients = 4;
    depth = 1024;
    policy = Shed_oldest;
    deadline = 0;
    max_retries = 3;
    backoff = 2_000;
    max_backoff = 200_000;
    seed = 42;
    total = 20_000;
  }

type entry = {
  txn : Txn.t;
  node : int;           (* admission node; retries come back here *)
  first_offer : int;    (* virtual ns; client latency is measured from it *)
  deadline_at : int;    (* absolute ns; max_int when no deadline *)
  mutable attempt : int;
  rng : Rng.t;          (* backoff jitter; per-entry so the schedule is
                           independent of completion order *)
}

type t = {
  cfg : cfg;
  sim : Sim.t;
  nodes : int;
  queues : entry Queue.t array;                  (* per node *)
  mutable live : int;
  node_live : int array;
  work_waiters : unit Sim.Ivar.iv Vec.t array;   (* take/drain parked here *)
  space_waiters : unit Sim.Ivar.iv Vec.t array;  (* Block submitters *)
  (* Overload counters, copied into Metrics by [record]. *)
  mutable offered : int;
  mutable shed : int;
  mutable deadline_miss : int;
  mutable retries : int;
  mutable retry_exhausted : int;
  mutable qmax : int;
  client_lat : Stats.Hist.t;
}

let policy_name = function
  | Block -> "block"
  | Shed_newest -> "shed-newest"
  | Shed_oldest -> "shed"
  | Deadline -> "deadline"

(* ------------------------------------------------------------------ *)
(* Waiter lists: condition variables built from one-shot ivars.        *)
(* ------------------------------------------------------------------ *)

let signal t vecs node =
  let v = vecs.(node) in
  if not (Vec.is_empty v) then begin
    Vec.iter
      (fun iv -> if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill t.sim iv ())
      v;
    Vec.clear v
  end

let wait t vecs node =
  let iv = Sim.Ivar.create () in
  Vec.push vecs.(node) iv;
  Sim.Ivar.read t.sim iv

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let exhausted t = t.live = 0
let node_exhausted t ~node = t.node_live.(node) = 0
let queued t ~node = Queue.length t.queues.(node)

(* Final resolution: the entry will never be seen again.  Exhaustion is
   an arrival of sorts — blocked takers must wake up and re-check. *)
let finish t (e : entry) =
  t.live <- t.live - 1;
  t.node_live.(e.node) <- t.node_live.(e.node) - 1;
  if t.live = 0 then
    for n = 0 to t.nodes - 1 do
      signal t t.work_waiters n
    done
  else if t.node_live.(e.node) = 0 then signal t t.work_waiters e.node

let expired t (e : entry) = Sim.now t.sim > e.deadline_at

let miss t e =
  t.deadline_miss <- t.deadline_miss + 1;
  finish t e

(* Drop entries whose deadline already passed (lazy purge: expiry is
   only ever observed at queue-touch points, keeping the clock honest). *)
let purge_expired t node =
  if t.cfg.deadline > 0 then begin
    let q = t.queues.(node) in
    let n = Queue.length q in
    for _ = 1 to n do
      let e = Queue.pop q in
      if expired t e then miss t e else Queue.push e q
    done
  end

let enqueue t (e : entry) =
  let q = t.queues.(e.node) in
  Queue.push e q;
  if Queue.length q > t.qmax then t.qmax <- Queue.length q;
  signal t t.work_waiters e.node

(* Admission: apply the overload policy when the queue is full.  [Block]
   parks the submitter (backpressure — generators stop producing, retry
   timers stall); the shedding policies resolve somebody finally. *)
let rec admit t (e : entry) =
  let q = t.queues.(e.node) in
  if t.cfg.policy = Deadline then purge_expired t e.node;
  if Queue.length q < t.cfg.depth then enqueue t e
  else
    match t.cfg.policy with
    | Block ->
        wait t t.space_waiters e.node;
        admit t e
    | Shed_newest | Deadline ->
        t.shed <- t.shed + 1;
        finish t e
    | Shed_oldest ->
        let victim = Queue.pop q in
        t.shed <- t.shed + 1;
        finish t victim;
        enqueue t e

(* ------------------------------------------------------------------ *)
(* Engine-facing dequeue                                               *)
(* ------------------------------------------------------------------ *)

let rec take t ~node =
  purge_expired t node;
  match Queue.take_opt t.queues.(node) with
  | Some e ->
      signal t t.space_waiters node;
      Some e
  | None ->
      if t.node_live.(node) = 0 then None
      else begin
        wait t t.work_waiters node;
        take t ~node
      end

(* Batch-close semantics: whatever the queue holds, at least one entry —
   blocking until the node is exhausted, in which case [||] means "no
   batch will ever form here again". *)
let rec drain t ~node ~max:m =
  purge_expired t node;
  let q = t.queues.(node) in
  if not (Queue.is_empty q) then begin
    let n = min m (Queue.length q) in
    let out = Array.init n (fun _ -> Queue.pop q) in
    signal t t.space_waiters node;
    out
  end
  else if t.node_live.(node) = 0 then [||]
  else begin
    wait t t.work_waiters node;
    drain t ~node ~max:m
  end

(* ------------------------------------------------------------------ *)
(* Completion and retry                                                *)
(* ------------------------------------------------------------------ *)

let resubmit t e = if expired t e then miss t e else admit t e

let complete t (e : entry) ~ok =
  if ok then begin
    Stats.Hist.add t.client_lat (Sim.now t.sim - e.first_offer);
    finish t e
  end
  else if e.attempt > t.cfg.max_retries then begin
    t.retry_exhausted <- t.retry_exhausted + 1;
    finish t e
  end
  else if expired t e then miss t e
  else begin
    t.retries <- t.retries + 1;
    e.attempt <- e.attempt + 1;
    (* Exponential backoff with full jitter from the entry's own stream:
       delay in [base, 2*base) where base doubles per failed attempt. *)
    let shift = min 20 (e.attempt - 2) in
    let base = min t.cfg.max_backoff (t.cfg.backoff * (1 lsl shift)) in
    let delay = base + Rng.int e.rng (max 1 base) in
    Sim.spawn ~at:(Sim.now t.sim + delay) t.sim (fun () -> resubmit t e)
  end

(* ------------------------------------------------------------------ *)
(* Arrival generators                                                  *)
(* ------------------------------------------------------------------ *)

let quota cfg gi =
  (cfg.total / cfg.clients) + if gi < cfg.total mod cfg.clients then 1 else 0

(* Exponential interarrival gap in ns at [rate] txn/s. *)
let exp_gap rng rate =
  let u = Rng.float rng 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  int_of_float (-.log u /. rate *. 1e9)

(* A bursty source is Poisson time that only elapses inside on-windows:
   a gap that crosses a window boundary additionally pays the silent
   off-period.  [rem_on] is the unconsumed remainder of the current
   window. *)
let bursty_gap ~on_ns ~off_ns rem_on gap =
  let rec go gap rem acc =
    if gap < rem then (acc + gap, rem - gap)
    else go (gap - rem) on_ns (acc + rem + off_ns)
  in
  let sleep, rem = go gap !rem_on 0 in
  rem_on := rem;
  sleep

let generator t (wl : Workload.t) gi =
  let cfg = t.cfg in
  let node = gi mod t.nodes in
  let arr_rng = Rng.create ((cfg.seed * 0x3779) + (gi * 2) + 1) in
  let stream = wl.Workload.new_stream gi in
  let rem_on =
    ref (match cfg.arrival with Bursty b -> b.on_ns | Poisson _ -> max_int)
  in
  for k = 1 to quota cfg gi do
    let gap =
      match cfg.arrival with
      | Poisson rate -> exp_gap arr_rng rate
      | Bursty { rate; on_ns; off_ns } ->
          bursty_gap ~on_ns ~off_ns rem_on (exp_gap arr_rng rate)
    in
    if gap > 0 then Sim.sleep t.sim gap;
    let txn = stream () in
    let now = Sim.now t.sim in
    let e =
      {
        txn;
        node;
        first_offer = now;
        deadline_at = (if cfg.deadline > 0 then now + cfg.deadline else max_int);
        attempt = 1;
        rng = Rng.create ((((cfg.seed * 8191) + gi) * 524287) + k);
      }
    in
    t.offered <- t.offered + 1;
    admit t e
  done

let create ~sim ~nodes (wl : Workload.t) cfg =
  if nodes <= 0 then invalid_arg "Clients.create: nodes must be positive";
  if cfg.clients <= 0 then invalid_arg "Clients.create: clients must be positive";
  if cfg.depth <= 0 then invalid_arg "Clients.create: depth must be positive";
  if cfg.total < 0 then invalid_arg "Clients.create: total must be >= 0";
  if cfg.max_retries < 0 then
    invalid_arg "Clients.create: max_retries must be >= 0";
  (match cfg.arrival with
  | Poisson r -> if r <= 0.0 then invalid_arg "Clients.create: rate must be > 0"
  | Bursty { rate; on_ns; off_ns } ->
      if rate <= 0.0 || on_ns <= 0 || off_ns < 0 then
        invalid_arg "Clients.create: bad bursty arrival");
  let node_live = Array.make nodes 0 in
  for gi = 0 to cfg.clients - 1 do
    node_live.(gi mod nodes) <- node_live.(gi mod nodes) + quota cfg gi
  done;
  let t =
    {
      cfg;
      sim;
      nodes;
      queues = Array.init nodes (fun _ -> Queue.create ());
      live = cfg.total;
      node_live;
      work_waiters = Array.init nodes (fun _ -> Vec.create ());
      space_waiters = Array.init nodes (fun _ -> Vec.create ());
      offered = 0;
      shed = 0;
      deadline_miss = 0;
      retries = 0;
      retry_exhausted = 0;
      qmax = 0;
      client_lat = Stats.Hist.create ();
    }
  in
  for gi = 0 to cfg.clients - 1 do
    Sim.spawn sim (fun () -> generator t wl gi)
  done;
  t

let record t (m : Metrics.t) =
  m.Metrics.offered <- t.offered;
  m.Metrics.shed <- t.shed;
  m.Metrics.deadline_miss <- t.deadline_miss;
  m.Metrics.client_retries <- t.retries;
  m.Metrics.retry_exhausted <- t.retry_exhausted;
  m.Metrics.qmax <- t.qmax;
  Stats.Hist.merge_into ~dst:m.Metrics.client_lat t.client_lat

(* ------------------------------------------------------------------ *)
(* CLI spec parsing                                                    *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* "5ms" -> 5_000_000 ns; bare numbers are ns (same grammar as Faults). *)
let parse_time s =
  let len = String.length s in
  let split n mul = (String.sub s 0 (len - n), mul) in
  let num, mul =
    if len > 2 && String.sub s (len - 2) 2 = "ns" then split 2 1.
    else if len > 2 && String.sub s (len - 2) 2 = "us" then split 2 1e3
    else if len > 2 && String.sub s (len - 2) 2 = "ms" then split 2 1e6
    else if len > 1 && s.[len - 1] = 's' then split 1 1e9
    else (s, 1.)
  in
  match float_of_string_opt num with
  | Some f when f >= 0. -> int_of_float ((f *. mul) +. 0.5)
  | _ -> failf "bad time %S (want NUM[ns|us|ms|s])" s

let wrap f s = try Ok (f s) with Bad m -> Error m

(* "250000" | "2.5e6" | "burst:RATE:ON:OFF" *)
let parse_arrival =
  wrap (fun s ->
      match String.split_on_char ':' s with
      | [ r ] -> (
          match float_of_string_opt r with
          | Some rate when rate > 0.0 -> Poisson rate
          | Some _ | None -> failf "bad arrival rate %S (txn/s, > 0)" r)
      | [ "burst"; r; on; off ] -> (
          match float_of_string_opt r with
          | Some rate when rate > 0.0 ->
              let on_ns = parse_time on and off_ns = parse_time off in
              if on_ns <= 0 then failf "bad burst on-period %S" on;
              Bursty { rate; on_ns; off_ns }
          | Some _ | None -> failf "bad burst rate %S" r)
      | _ -> failf "bad arrival %S (want RATE or burst:RATE:ON:OFF)" s)

(* "block:256" | "shed:256" (oldest-drop) | "shed-newest:256" |
   "deadline:256" *)
let parse_admission =
  wrap (fun s ->
      let name, depth =
        match String.split_on_char ':' s with
        | [ name ] -> (name, default.depth)
        | [ name; d ] -> (
            match int_of_string_opt d with
            | Some d when d > 0 -> (name, d)
            | Some _ | None -> failf "bad admission depth %S" d)
        | _ -> failf "bad admission %S (want POLICY[:DEPTH])" s
      in
      let policy =
        match name with
        | "block" -> Block
        | "shed" | "shed-oldest" -> Shed_oldest
        | "shed-newest" -> Shed_newest
        | "deadline" -> Deadline
        | p ->
            failf "unknown admission policy %S (block|shed|shed-newest|deadline)"
              p
      in
      (policy, depth))

(* "3:10us" -> (max_retries, base backoff); "3" keeps the default base. *)
let parse_retries =
  wrap (fun s ->
      let n, backoff =
        match String.split_on_char ':' s with
        | [ n ] -> (n, default.backoff)
        | [ n; b ] -> (n, parse_time b)
        | _ -> failf "bad retries %S (want N[:BACKOFF])" s
      in
      match int_of_string_opt n with
      | Some n when n >= 0 -> (n, backoff)
      | Some _ | None -> failf "bad retry count %S" n)

let arrival_to_string = function
  | Poisson r -> Printf.sprintf "%g" r
  | Bursty { rate; on_ns; off_ns } ->
      Printf.sprintf "burst:%g:%dns:%dns" rate on_ns off_ns
