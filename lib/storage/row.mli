(** In-memory rows.

    A row carries its payload ([data], the live version), a [committed]
    copy used by two-version schemes (QueCC read-committed isolation, OCC
    reads), and the union of per-protocol concurrency-control metadata.
    Only the protocol driving a given run touches its own metadata fields;
    keeping them in one record (as DBx1000/ExpoDB do) lets every protocol
    run against the same storage engine.

    The simulation substrate is cooperative, so plain mutable fields are
    race-free; virtual-time ordering of accesses is provided by
    {!Quill_sim.Sim}. *)

(** Undo-log entry payload: revert a [Uset] by restoring the old value,
    a [Uadd] by subtracting the delta (commutative updates). *)
type uop = Uset of int | Uadd of int

type t = {
  key : int;
  data : int array;                 (** live / latest version *)
  committed : int array;            (** committed version (2V schemes) *)
  (* --- 2PL --- *)
  mutable lock : int;               (** 0 free, -1 write-locked, n>0 readers *)
  mutable lock_tx : int;            (** owning writer txn (ts for wait-die) *)
  (* --- Silo --- *)
  mutable tid : int;                (** version counter; odd = latched *)
  (* --- TicToc --- *)
  mutable wts : int;
  mutable rts : int;
  (* --- MVTO --- *)
  mutable versions : version list;  (** newest first *)
  (* --- QueCC per-batch state (touched only by the home executor) --- *)
  mutable batch_tag : int;          (** batch id for lazy reset *)
  mutable inserter : int;           (** batch txn index that inserted the row
                                        this batch, -1 otherwise *)
  mutable fstate : (int * int list * int list) array;
      (** per-field speculation state: (last in-batch writer or -1,
          readers since that write, commutative adders since that
          write); [[||]] when untracked this batch *)
  mutable undo : (int * int * uop) list;
      (** (txn idx, field, revert info), newest first *)
  mutable dirty : bool;             (** live differs from committed *)
}

and version = {
  v_data : int array;
  v_wts : int;
  mutable v_rts : int;
}

val make : key:int -> nfields:int -> t
val nfields : t -> int

val publish : t -> unit
(** Copy live data into the committed version and clear [dirty]. *)

val restore : t -> int array -> unit
(** Overwrite live data with a saved pre-image. *)

val revert : t -> unit
(** Discard uncommitted live data: copy the committed version back over
    [data] and clear [dirty].  Crash recovery rolls a node's touched
    rows back to the last published batch boundary with this. *)

val reset_batch_state : t -> int -> unit
(** [reset_batch_state row batch] lazily (re)initializes the QueCC
    per-batch fields when the row is first touched in [batch]. *)
