type t = {
  name : string;
  nfields : int;
  nparts : int;
  rows : Row.t array;
  part_size : int;
  home_fn : (int -> int) option;
  dyn : (int, Row.t) Hashtbl.t;
  dyn_home : (int, int) Hashtbl.t;
}

let create ?home_fn ~name ~nfields ~capacity ~nparts () =
  assert (capacity >= 0 && nparts > 0 && nfields > 0);
  let rows = Array.init capacity (fun key -> Row.make ~key ~nfields) in
  let part_size =
    if capacity = 0 then 1 else (capacity + nparts - 1) / nparts
  in
  {
    name;
    nfields;
    nparts;
    rows;
    part_size;
    home_fn;
    dyn = Hashtbl.create 64;
    dyn_home = Hashtbl.create 64;
  }

let name t = t.name
let nfields t = t.nfields
let capacity t = Array.length t.rows
let nparts t = t.nparts

(* Conflict-detector interposition point: when installed (opt-in, via
   the harness's --check-conflicts path) every row probe is reported.
   A single option-ref branch when disabled — the common case. *)
let probe_hook : (table:string -> key:int -> insert:bool -> unit) option ref
    =
  ref None

let set_probe_hook h = probe_hook := h

let probe t key ~insert =
  match !probe_hook with
  | None -> ()
  | Some h -> h ~table:t.name ~key ~insert

let dense t key =
  if key < 0 || key >= Array.length t.rows then
    invalid_arg (Printf.sprintf "Table.dense %s: key %d" t.name key);
  probe t key ~insert:false;
  t.rows.(key)

let find t key =
  probe t key ~insert:false;
  if key >= 0 && key < Array.length t.rows then Some t.rows.(key)
  else Hashtbl.find_opt t.dyn key

let find_exn t key =
  match find t key with
  | Some r -> r
  | None -> raise Not_found

let insert t ~home ~key payload =
  if (key >= 0 && key < Array.length t.rows) || Hashtbl.mem t.dyn key then
    invalid_arg (Printf.sprintf "Table.insert %s: duplicate key %d" t.name key);
  if Array.length payload <> t.nfields then
    invalid_arg "Table.insert: payload arity mismatch";
  probe t key ~insert:true;
  let row = Row.make ~key ~nfields:t.nfields in
  Array.blit payload 0 row.Row.data 0 t.nfields;
  Row.publish row;
  Hashtbl.replace t.dyn key row;
  Hashtbl.replace t.dyn_home key home;
  row

let home_of_key t key =
  match t.home_fn with
  | Some f -> f key
  | None ->
      if key >= 0 && key < Array.length t.rows then
        min (key / t.part_size) (t.nparts - 1)
      else (
        match Hashtbl.find_opt t.dyn_home key with
        | Some h -> h
        | None -> abs key mod t.nparts)

let remove t key =
  if key >= 0 && key < Array.length t.rows then
    invalid_arg "Table.remove: dense keys cannot be removed";
  Hashtbl.remove t.dyn key;
  Hashtbl.remove t.dyn_home key

let inserted_count t = Hashtbl.length t.dyn

let sorted_dyn_keys t =
  (* lint: order-insensitive — bindings are collected then sorted *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.dyn [] in
  List.sort compare keys

let iter_inserted f t =
  List.iter (fun k -> f (Hashtbl.find t.dyn k)) (sorted_dyn_keys t)

let clone t =
  let copy_row (r : Row.t) =
    let r' = Row.make ~key:r.Row.key ~nfields:t.nfields in
    Array.blit r.Row.data 0 r'.Row.data 0 t.nfields;
    Array.blit r.Row.committed 0 r'.Row.committed 0 t.nfields;
    r'.Row.dirty <- r.Row.dirty;
    r'
  in
  let dyn = Hashtbl.create (max 64 (Hashtbl.length t.dyn)) in
  List.iter
    (fun k -> Hashtbl.replace dyn k (copy_row (Hashtbl.find t.dyn k)))
    (sorted_dyn_keys t);
  {
    name = t.name;
    nfields = t.nfields;
    nparts = t.nparts;
    rows = Array.map copy_row t.rows;
    part_size = t.part_size;
    home_fn = t.home_fn;
    dyn;
    dyn_home = Hashtbl.copy t.dyn_home;
  }

let overwrite_from ~src dst =
  if dst.name <> src.name || dst.nfields <> src.nfields
     || Array.length dst.rows <> Array.length src.rows
  then invalid_arg "Table.overwrite_from: shape mismatch";
  Array.iteri
    (fun i (r : Row.t) ->
      let d = dst.rows.(i) in
      Array.blit r.Row.data 0 d.Row.data 0 dst.nfields;
      Array.blit r.Row.committed 0 d.Row.committed 0 dst.nfields;
      d.Row.dirty <- r.Row.dirty)
    src.rows;
  (* Dynamic region: drop rows absent in [src], then install fresh
     copies of every [src] row (insert-time state may differ). *)
  List.iter
    (fun k -> if not (Hashtbl.mem src.dyn k) then Hashtbl.remove dst.dyn k)
    (sorted_dyn_keys dst);
  List.iter
    (fun k ->
      let r = Hashtbl.find src.dyn k in
      let r' = Row.make ~key:k ~nfields:dst.nfields in
      Array.blit r.Row.data 0 r'.Row.data 0 dst.nfields;
      Array.blit r.Row.committed 0 r'.Row.committed 0 dst.nfields;
      r'.Row.dirty <- r.Row.dirty;
      Hashtbl.replace dst.dyn k r')
    (sorted_dyn_keys src);
  Hashtbl.reset dst.dyn_home;
  List.iter
    (fun k -> Hashtbl.replace dst.dyn_home k (Hashtbl.find src.dyn_home k))
    (sorted_dyn_keys src)

let iter_dense f t = Array.iter f t.rows
let row_bytes t = t.nfields * 8
