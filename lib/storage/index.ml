open Quill_common

type entry = { keys : int Vec.t; mutable head : int }

type t = {
  name : string;
  tbl : (int, entry) Hashtbl.t;
}

let create ~name = { name; tbl = Hashtbl.create 1024 }
let name t = t.name

let add t skey pkey =
  match Hashtbl.find_opt t.tbl skey with
  | Some e -> Vec.push e.keys pkey
  | None ->
      let e = { keys = Vec.create (); head = 0 } in
      Vec.push e.keys pkey;
      Hashtbl.replace t.tbl skey e

let find t skey =
  match Hashtbl.find_opt t.tbl skey with
  | None -> []
  | Some e ->
      let acc = ref [] in
      for i = Vec.length e.keys - 1 downto e.head do
        acc := Vec.get e.keys i :: !acc
      done;
      !acc

let find_vec t skey =
  match Hashtbl.find_opt t.tbl skey with
  | None -> None
  | Some e -> Some e.keys

let pop_min t skey =
  match Hashtbl.find_opt t.tbl skey with
  | None -> None
  | Some e ->
      if e.head >= Vec.length e.keys then None
      else begin
        let k = Vec.get e.keys e.head in
        e.head <- e.head + 1;
        Some k
      end

let size t = Hashtbl.length t.tbl

let sorted_skeys t =
  (* lint: order-insensitive — bindings are collected then sorted *)
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
  List.sort compare keys

let clone t =
  let tbl = Hashtbl.create (max 1024 (Hashtbl.length t.tbl)) in
  List.iter
    (fun sk ->
      let e = Hashtbl.find t.tbl sk in
      Hashtbl.replace tbl sk
        { keys = Vec.of_array (Vec.to_array e.keys); head = e.head })
    (sorted_skeys t);
  { name = t.name; tbl }

let overwrite_from ~src dst =
  if dst.name <> src.name then invalid_arg "Index.overwrite_from: name";
  Hashtbl.reset dst.tbl;
  List.iter
    (fun sk ->
      let e = Hashtbl.find src.tbl sk in
      Hashtbl.replace dst.tbl sk
        { keys = Vec.of_array (Vec.to_array e.keys); head = e.head })
    (sorted_skeys src)
