(** The database: a catalog of tables and secondary indexes plus the
    partition layout shared by every engine in a run. *)

type t

val create : nparts:int -> t
val nparts : t -> int

val add_table :
  ?home_fn:(int -> int) ->
  t -> name:string -> nfields:int -> capacity:int -> int
(** Registers a table and returns its table id (dense, starting at 0).
    [home_fn] is forwarded to {!Table.create}. *)

val add_index : t -> name:string -> int
val table : t -> int -> Table.t
val table_by_name : t -> string -> Table.t
val table_id : t -> string -> int
val index : t -> int -> Index.t
val index_by_name : t -> string -> Index.t
val index_id : t -> string -> int
val ntables : t -> int

val home : t -> int -> int -> int
(** [home db table_id key]: the partition owning that record. *)

val checksum : t -> int
(** Order-independent digest of all committed dense-row payloads plus
    inserted-row count; used by the determinism tests ("same input batch
    => same final state"). *)

val live_checksum : t -> int
(** Same digest over the live versions. *)

val clone : t -> t
(** Deep-copy every table and index (payloads, dynamic rows, index
    cursors); protocol CC metadata starts fresh.  Replica databases for
    the HA replication layer are stood up with this. *)

val overwrite_from : src:t -> t -> unit
(** [overwrite_from ~src dst] makes [dst]'s visible state (table
    payloads, dynamic rows, indexes) identical to [src]'s; shapes must
    match.  After a leader failover the surviving replica's database is
    synced back into the harness's [Workload.db] with this, so
    [checksum] reflects the replicated state. *)
