(** A table: a dense preloaded region (keys [0 .. capacity-1]) plus a
    dynamic region for rows inserted at run time under arbitrary integer
    keys (composite keys are encoded into a single int by the workload's
    schema module).  Rows are partitioned among [nparts] homes by key
    range for the dense region and by an explicit home for inserts. *)

type t

val create :
  ?home_fn:(int -> int) ->
  name:string -> nfields:int -> capacity:int -> nparts:int -> unit -> t
(** [home_fn] overrides partition placement (e.g. TPC-C order-family
    tables derive their home from the district embedded in the key so
    that an order lives with its district). *)

val name : t -> string
val nfields : t -> int
val capacity : t -> int
(** Size of the dense region. *)

val nparts : t -> int

val dense : t -> int -> Row.t
(** [dense t key] for [0 <= key < capacity]; O(1). *)

val find : t -> int -> Row.t option
(** Dense or dynamic lookup. *)

val find_exn : t -> int -> Row.t

val insert : t -> home:int -> key:int -> int array -> Row.t
(** Insert a fresh row with the given payload into the dynamic region.
    Raises [Invalid_argument] on duplicate key. *)

val home_of_key : t -> int -> int
(** Partition of a key: [home_fn] when given; otherwise range
    partitioning for dense keys and the home recorded at insert time for
    dynamic keys. *)

val remove : t -> int -> unit
(** Remove a dynamic-region row (insert rollback).  No-op when absent;
    raises [Invalid_argument] for dense keys. *)

val set_probe_hook :
  (table:string -> key:int -> insert:bool -> unit) option -> unit
(** Install (or clear, with [None]) a process-global observer called on
    every row probe — [dense]/[find] lookups and [insert]s — across all
    tables.  Used by the conflict detector to prove the planning phase
    touches no rows; costs one branch when unset. *)

val inserted_count : t -> int
val iter_dense : (Row.t -> unit) -> t -> unit

val iter_inserted : (Row.t -> unit) -> t -> unit
(** Iterate the dynamic region in ascending key order (deterministic,
    unlike raw hashtable order). *)

val clone : t -> t
(** Deep-copy the table: fresh rows with copied live/committed payloads
    and dirty bits (protocol CC metadata — locks, timestamps, versions —
    starts fresh), a copied dynamic region, shared [home_fn].  Used to
    stand up replica databases for HA. *)

val overwrite_from : src:t -> t -> unit
(** [overwrite_from ~src dst] makes [dst]'s payloads (live + committed +
    dirty bits, dense and dynamic regions) identical to [src]'s.  Raises
    [Invalid_argument] when the shapes differ.  Used after a failover to
    sync the surviving replica's state back into the harness database. *)

val row_bytes : t -> int
(** Approximate payload size of one row in bytes (fields x 8). *)
