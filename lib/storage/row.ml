type uop = Uset of int | Uadd of int

type t = {
  key : int;
  data : int array;
  committed : int array;
  mutable lock : int;
  mutable lock_tx : int;
  mutable tid : int;
  mutable wts : int;
  mutable rts : int;
  mutable versions : version list;
  mutable batch_tag : int;
  mutable inserter : int;
  mutable fstate : (int * int list * int list) array;
  mutable undo : (int * int * uop) list;
  mutable dirty : bool;
}

and version = {
  v_data : int array;
  v_wts : int;
  mutable v_rts : int;
}

let make ~key ~nfields =
  {
    key;
    data = Array.make nfields 0;
    committed = Array.make nfields 0;
    lock = 0;
    lock_tx = max_int;
    tid = 0;
    wts = 0;
    rts = 0;
    versions = [];
    batch_tag = -1;
    inserter = -1;
    fstate = [||];
    undo = [];
    dirty = false;
  }

let nfields t = Array.length t.data

let publish t =
  Array.blit t.data 0 t.committed 0 (Array.length t.data);
  t.dirty <- false

let restore t saved = Array.blit saved 0 t.data 0 (Array.length t.data)

let revert t =
  Array.blit t.committed 0 t.data 0 (Array.length t.data);
  t.dirty <- false

let reset_batch_state t batch =
  if t.batch_tag <> batch then begin
    t.batch_tag <- batch;
    t.inserter <- -1;
    t.fstate <- [||];
    t.undo <- []
  end
