(** Secondary index: maps a secondary key to the primary keys that carry
    it.  Built at load time (TPC-C customer-by-last-name) and appended to
    at run time (TPC-C orders-by-customer, new-order queue). *)

type t

val create : name:string -> t
val name : t -> string

val add : t -> int -> int -> unit
(** [add idx skey pkey] appends [pkey] under [skey] (duplicates kept, in
    insertion order). *)

val find : t -> int -> int list
(** All primary keys under [skey], oldest first; [] when absent. *)

val find_vec : t -> int -> int Quill_common.Vec.t option

val pop_min : t -> int -> int option
(** Remove and return the oldest primary key under [skey] (FIFO); the
    TPC-C delivery transaction's new-order dequeue. *)

val size : t -> int

val clone : t -> t
(** Deep copy (entry vectors and FIFO cursors); deterministic regardless
    of hash-bucket layout. *)

val overwrite_from : src:t -> t -> unit
(** Make [dst]'s entries identical to [src]'s (post-failover sync). *)
