open Quill_common

type t = {
  nparts : int;
  tables : Table.t Vec.t;
  indexes : Index.t Vec.t;
  table_ids : (string, int) Hashtbl.t;
  index_ids : (string, int) Hashtbl.t;
}

let create ~nparts =
  assert (nparts > 0);
  {
    nparts;
    tables = Vec.create ();
    indexes = Vec.create ();
    table_ids = Hashtbl.create 16;
    index_ids = Hashtbl.create 16;
  }

let nparts t = t.nparts

let add_table ?home_fn t ~name ~nfields ~capacity =
  if Hashtbl.mem t.table_ids name then
    invalid_arg ("Db.add_table: duplicate " ^ name);
  let id = Vec.length t.tables in
  Vec.push t.tables
    (Table.create ?home_fn ~name ~nfields ~capacity ~nparts:t.nparts ());
  Hashtbl.replace t.table_ids name id;
  id

let add_index t ~name =
  if Hashtbl.mem t.index_ids name then
    invalid_arg ("Db.add_index: duplicate " ^ name);
  let id = Vec.length t.indexes in
  Vec.push t.indexes (Index.create ~name);
  Hashtbl.replace t.index_ids name id;
  id

let table t id = Vec.get t.tables id

let table_id t name =
  match Hashtbl.find_opt t.table_ids name with
  | Some id -> id
  | None -> invalid_arg ("Db.table_id: unknown " ^ name)

let table_by_name t name = table t (table_id t name)
let index t id = Vec.get t.indexes id

let index_id t name =
  match Hashtbl.find_opt t.index_ids name with
  | Some id -> id
  | None -> invalid_arg ("Db.index_id: unknown " ^ name)

let index_by_name t name = index t (index_id t name)
let ntables t = Vec.length t.tables
let home t tid key = Table.home_of_key (table t tid) key

(* FNV-style mixing keyed by (table, key, field, value); summed so the
   digest is independent of iteration order. *)
let mix a b =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  let h = h lxor (h lsr 31) in
  h * 0xC2B2AE3D

let digest_of ~live t =
  let acc = ref 0 in
  Vec.iteri
    (fun tid tbl ->
      Table.iter_dense
        (fun row ->
          let payload = if live then row.Row.data else row.Row.committed in
          Array.iteri
            (fun f v -> acc := !acc + mix (mix tid row.Row.key) (mix f v))
            payload)
        tbl;
      acc := !acc + mix tid (Table.inserted_count tbl))
    t.tables;
  !acc land max_int

let checksum t = digest_of ~live:false t
let live_checksum t = digest_of ~live:true t

let clone t =
  let c = create ~nparts:t.nparts in
  Vec.iter (fun tbl -> Vec.push c.tables (Table.clone tbl)) t.tables;
  Vec.iter (fun idx -> Vec.push c.indexes (Index.clone idx)) t.indexes;
  Hashtbl.iter (* lint: order-insensitive — key-to-id map copy *)
    (fun k v -> Hashtbl.replace c.table_ids k v)
    t.table_ids;
  Hashtbl.iter (* lint: order-insensitive — key-to-id map copy *)
    (fun k v -> Hashtbl.replace c.index_ids k v)
    t.index_ids;
  c

let overwrite_from ~src dst =
  if
    dst.nparts <> src.nparts
    || Vec.length dst.tables <> Vec.length src.tables
    || Vec.length dst.indexes <> Vec.length src.indexes
  then invalid_arg "Db.overwrite_from: shape mismatch";
  Vec.iteri
    (fun i tbl -> Table.overwrite_from ~src:(Vec.get src.tables i) tbl)
    dst.tables;
  Vec.iteri
    (fun i idx -> Index.overwrite_from ~src:(Vec.get src.indexes i) idx)
    dst.indexes
