module Db = Quill_storage.Db
module Table = Quill_storage.Table
module Row = Quill_storage.Row

type t = {
  db : Db.t;
  cache : (int * int, int array) Hashtbl.t;  (* (table, key) -> image *)
  mutable cursor : int;
  mutable reads : int;
}

let create db = { db; cache = Hashtbl.create 1024; cursor = -1; reads = 0 }

let consumer t =
  let on_batch (b : Cdc.batch) =
    Array.iter
      (fun (ev : Cdc.event) ->
        Hashtbl.replace t.cache (ev.Cdc.table, ev.Cdc.key)
          (Array.copy ev.Cdc.after))
      b.Cdc.events;
    t.cursor <- b.Cdc.batch_no
  in
  let on_snapshot db ~batch_no =
    Hashtbl.reset t.cache;
    for tid = 0 to Db.ntables db - 1 do
      let tbl = Db.table db tid in
      let copy (row : Row.t) =
        Hashtbl.replace t.cache (tid, row.Row.key)
          (Array.copy row.Row.committed)
      in
      Table.iter_dense copy tbl;
      Table.iter_inserted copy tbl
    done;
    t.cursor <- batch_no
  in
  let on_caught_up ~batch_no:_ = () in
  { Cdc.on_batch; on_snapshot; on_caught_up }

let read t ~table ~key =
  t.reads <- t.reads + 1;
  Hashtbl.find_opt t.cache (table, key)

let cursor t = t.cursor
let rows t = Hashtbl.length t.cache
let reads t = t.reads

let consistent_with t db =
  (* lint: order-insensitive — conjunction over all cached rows *)
  Hashtbl.fold
    (fun (tid, key) img ok ->
      ok
      &&
      match Table.find (Db.table db tid) key with
      | Some row -> row.Row.committed = img
      | None -> false)
    t.cache true
