(** Ordered change-data-capture over the deterministic batch commit
    stream.

    QueCC's planning phase fixes the commit order of a batch before a
    single row is touched, so the post-batch committed state — and
    therefore the batch's {e change set} — is a pure function of the
    input batch.  This module exploits that: engines stage the rows a
    batch dirtied at the same seam the WAL uses (after recovery has
    settled every status, before the publish barrier clears the write
    set), and seal the batch's feed entry right after the commit point.
    Sealing canonicalizes the change set — one event per distinct
    (table, key), first pre-image / last post-image, value-equal no-ops
    dropped, sorted by (table, key) — so the serialized feed depends
    only on the sequence of committed states.  Lockstep, pipelined,
    stealing and split-queue runs of the same seed therefore produce a
    {e byte-identical} feed (the headline determinism test).

    Subscriptions are typed cursors over that feed: bounded in-process
    queues drained every [apply_every] batches, with lag accounting,
    queue-overflow recovery and late-joiner catch-up.  A subscriber that
    falls too far behind (or joins after the retention ring has moved
    on) is re-seeded from a snapshot scan of the committed database —
    the CDC analogue of the WAL's snapshot-then-replay recovery — and
    the batches it skipped are counted as [catchup_batches]. *)

type event = {
  table : int;
  key : int;
  before : int array option;
      (** committed pre-image; [None] for a row inserted by this batch *)
  after : int array;  (** committed post-image *)
}

type batch = {
  batch_no : int;
  txns : int;  (** transactions committed by this batch *)
  events : event array;  (** canonical order: sorted by (table, key) *)
}

type consumer = {
  on_batch : batch -> unit;
      (** one feed entry, delivered in batch order *)
  on_snapshot : Quill_storage.Db.t -> batch_no:int -> unit;
      (** catch-up re-seed: the committed database as of [batch_no];
          replaces everything delivered so far *)
  on_caught_up : batch_no:int -> unit;
      (** the subscriber's cursor just reached [batch_no] (end of an
          apply round) — safe point for consistency checks *)
}

type sub
type t

val create :
  ?retain:int ->
  ?record_feed:bool ->
  sim:Quill_sim.Sim.t ->
  costs:Quill_sim.Costs.t ->
  Quill_storage.Db.t ->
  t
(** A hub over one run's commit stream.  [retain] bounds the ring of
    recent batches kept for late-joiner replay (default 64);
    [record_feed] additionally retains the full serialized feed for
    byte-level comparison in tests (default false).  The [Db.t] is the
    live database the engine commits into; snapshot catch-up scans its
    committed images. *)

val subscribe :
  t ->
  name:string ->
  ?max_queue:int ->
  ?apply_every:int ->
  ?join_at:int ->
  consumer ->
  sub
(** Register a subscriber.  [max_queue] (default 256) bounds the
    unapplied-batch queue: overflowing drops the queue and re-seeds from
    a snapshot at the next apply point.  [apply_every] (default 1) is
    the drain period in published batches — the subscriber's staleness
    bound.  [join_at] (default 0) delays activation until that batch is
    published: a late joiner catches up by ring replay when the ring
    still covers every published batch, by snapshot otherwise.  Must be
    called before the run publishes batch [join_at]. *)

val stage :
  t -> table:int -> key:int -> before:int array -> after:int array -> unit
(** Stage one dirtied row into the in-flight batch's change set.
    [before] is copied immediately (publish overwrites it); [after] is
    read at {!publish} time, so the first call's pre-image and the
    final post-image win regardless of staging order or duplication. *)

val stage_insert : t -> table:int -> key:int -> after:int array -> unit
(** Stage a row inserted by the in-flight batch ([before = None]). *)

val publish : t -> batch_no:int -> txns:int -> unit
(** Seal the staged change set as the feed entry for [batch_no] and
    deliver it: canonicalize, serialize into the feed digest, append to
    the retention ring, enqueue to every active subscriber (activating
    late joiners first) and drain the subscribers whose apply period
    elapsed.  Must be called from a simulator thread at the engine's
    commit point, after the batch's effects are committed; ticks
    [cdc_publish] plus [cdc_event] per serialized and per applied
    event. *)

val finish : t -> unit
(** End of run: drain every subscriber to the newest batch (no virtual
    time is charged — the run is over). *)

(* Feed accessors. *)

val batches : t -> int  (** feed entries published *)

val events : t -> int  (** canonical events across all entries *)

val feed_bytes : t -> int  (** serialized feed size *)

val digest : t -> int
(** Running checksum of the serialized feed — equal iff the feeds are
    byte-identical (and exactly the bytes when [record_feed] is set). *)

val feed : t -> string
(** The serialized feed; empty unless created with [record_feed]. *)

val last_batch : t -> int  (** newest published batch number; -1 if none *)

(* Subscription accessors. *)

val sub_name : sub -> string

val cursor : sub -> int
(** Newest batch applied through the consumer; -1 before any. *)

val lag_max : sub -> int
(** Widest gap ever observed between the newest published batch and
    this subscriber's cursor. *)

val delivered : sub -> int  (** events applied via [on_batch] *)

val catchup_batches : sub -> int
(** Batches absorbed through ring replay or snapshot re-seed instead of
    live delivery (late join + overflow recovery). *)

val overflows : sub -> int  (** queue overflows forcing a snapshot *)

val subs : t -> sub list  (** registration order *)

val record : t -> Quill_txn.Metrics.t -> unit
(** Accumulate feed + subscription counters into a metrics record. *)
