module Sim = Quill_sim.Sim
module Costs = Quill_sim.Costs
module Db = Quill_storage.Db
module Metrics = Quill_txn.Metrics

type event = {
  table : int;
  key : int;
  before : int array option;
  after : int array;
}

type batch = {
  batch_no : int;
  txns : int;
  events : event array;
}

type consumer = {
  on_batch : batch -> unit;
  on_snapshot : Db.t -> batch_no:int -> unit;
  on_caught_up : batch_no:int -> unit;
}

(* A staged row: first pre-image wins (copied at stage time, because the
   engine's publish overwrites [committed] before the feed entry is
   sealed), last post-image wins (a reference, read at publish time —
   for every engine the staged [data] array IS the final post-image by
   the commit point, and later stagings of the same row would only
   rebind it to the same array). *)
type staged = {
  s_table : int;
  s_key : int;
  s_before : int array option;
  mutable s_after : int array;
}

type sub = {
  s_name : string;
  s_consumer : consumer;
  s_max_queue : int;
  s_apply_every : int;
  s_join_at : int;
  s_queue : batch Queue.t;
  mutable s_active : bool;
  mutable s_cursor : int;
  mutable s_since_apply : int;
  mutable s_overflow : bool;
  mutable s_lag_max : int;
  mutable s_delivered : int;
  mutable s_catchup : int;
  mutable s_overflows : int;
}

type t = {
  sim : Sim.t;
  costs : Costs.t;
  db : Db.t;
  retain : int;
  staging : (int * int, staged) Hashtbl.t;
  ring : batch Queue.t;
  feed_buf : Buffer.t option;  (* full serialized feed, tests only *)
  mutable batches : int;
  mutable last_batch : int;
  mutable events : int;
  mutable feed_bytes : int;
  mutable digest : int;
  mutable subs_rev : sub list;
}

let create ?(retain = 64) ?(record_feed = false) ~sim ~costs db =
  if retain < 1 then invalid_arg "Cdc.create: retain must be >= 1";
  {
    sim;
    costs;
    db;
    retain;
    staging = Hashtbl.create 1024;
    ring = Queue.create ();
    feed_buf = (if record_feed then Some (Buffer.create 4096) else None);
    batches = 0;
    last_batch = -1;
    events = 0;
    feed_bytes = 0;
    digest = 5381;
    subs_rev = [];
  }

let subscribe t ~name ?(max_queue = 256) ?(apply_every = 1) ?(join_at = 0)
    consumer =
  if max_queue < 1 then invalid_arg "Cdc.subscribe: max_queue must be >= 1";
  if apply_every < 1 then invalid_arg "Cdc.subscribe: apply_every must be >= 1";
  if join_at <= t.last_batch then
    invalid_arg
      (Printf.sprintf
         "Cdc.subscribe %s: join_at=%d is already published (last batch %d)"
         name join_at t.last_batch);
  let s =
    {
      s_name = name;
      s_consumer = consumer;
      s_max_queue = max_queue;
      s_apply_every = apply_every;
      s_join_at = join_at;
      s_queue = Queue.create ();
      s_active = false;
      s_cursor = -1;
      s_since_apply = 0;
      s_overflow = false;
      s_lag_max = 0;
      s_delivered = 0;
      s_catchup = 0;
      s_overflows = 0;
    }
  in
  (* Joining at the very next batch is not late: activate now, with
     nothing to catch up on.  Larger [join_at]s activate at publish
     time via ring replay or snapshot. *)
  if join_at = t.last_batch + 1 then s.s_active <- true;
  t.subs_rev <- s :: t.subs_rev;
  s

let stage t ~table ~key ~before ~after =
  match Hashtbl.find_opt t.staging (table, key) with
  | Some st -> st.s_after <- after
  | None ->
      Hashtbl.replace t.staging (table, key)
        { s_table = table; s_key = key; s_before = Some (Array.copy before);
          s_after = after }

let stage_insert t ~table ~key ~after =
  match Hashtbl.find_opt t.staging (table, key) with
  | Some st -> st.s_after <- after
  | None ->
      Hashtbl.replace t.staging (table, key)
        { s_table = table; s_key = key; s_before = None; s_after = after }

(* ------------------------------------------------------------------ *)
(* Feed serialization                                                  *)
(* ------------------------------------------------------------------ *)

(* Wire shape (same idiom as the WAL's framing):
   batch  := batch_no:8 txns:8 nevents:4 event*
   event  := table:4 key:8 kind:1 [pre:payload] post:payload
   payload := nfields:4 fields:8xn
   kind 0 = update (pre present), 1 = insert (no pre). *)
let serialize_batch b =
  let buf = Buffer.create 256 in
  Buffer.add_int64_le buf (Int64.of_int b.batch_no);
  Buffer.add_int64_le buf (Int64.of_int b.txns);
  Buffer.add_int32_le buf (Int32.of_int (Array.length b.events));
  let payload a =
    Buffer.add_int32_le buf (Int32.of_int (Array.length a));
    Array.iter (fun v -> Buffer.add_int64_le buf (Int64.of_int v)) a
  in
  Array.iter
    (fun ev ->
      Buffer.add_int32_le buf (Int32.of_int ev.table);
      Buffer.add_int64_le buf (Int64.of_int ev.key);
      (match ev.before with
      | Some pre ->
          Buffer.add_char buf '\000';
          payload pre
      | None -> Buffer.add_char buf '\001');
      payload ev.after)
    b.events;
  Buffer.contents buf

(* djb2 rolled across the whole feed, masked to 32 bits: two feeds have
   equal digests iff their serialized bytes match (the [record_feed]
   tests additionally compare the bytes themselves). *)
let digest_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0xffff_ffff)
    s;
  !h

(* ------------------------------------------------------------------ *)
(* Delivery                                                            *)
(* ------------------------------------------------------------------ *)

let tick t ~charge cost = if charge && cost > 0 then Sim.tick t.sim cost

(* Drain a subscriber to the newest batch: apply the queued entries in
   order, or — after an overflow dropped the queue — re-seed from a
   snapshot scan of the committed database and skip straight to the
   cursor.  The snapshot is the CDC analogue of WAL snapshot recovery:
   everything the subscriber missed is folded into one state transfer
   and accounted as catch-up, not delivery. *)
let apply t ~charge s =
  let applied = ref false in
  if s.s_overflow then begin
    s.s_consumer.on_snapshot t.db ~batch_no:t.last_batch;
    s.s_catchup <- s.s_catchup + (t.last_batch - s.s_cursor);
    s.s_cursor <- t.last_batch;
    s.s_overflow <- false;
    tick t ~charge t.costs.Costs.cdc_publish;
    applied := true
  end
  else
    while not (Queue.is_empty s.s_queue) do
      let b = Queue.pop s.s_queue in
      s.s_consumer.on_batch b;
      s.s_delivered <- s.s_delivered + Array.length b.events;
      s.s_cursor <- b.batch_no;
      tick t ~charge (Array.length b.events * t.costs.Costs.cdc_event);
      applied := true
    done;
  s.s_since_apply <- 0;
  if !applied then s.s_consumer.on_caught_up ~batch_no:s.s_cursor

(* Late-joiner activation at the publish of batch [join_at] or later:
   replay the retention ring when it still covers every published batch,
   otherwise hand the consumer a snapshot as of the current batch. *)
let activate t ~charge s =
  s.s_active <- true;
  if Queue.length t.ring = t.batches then begin
    Queue.iter
      (fun b ->
        s.s_consumer.on_batch b;
        s.s_delivered <- s.s_delivered + Array.length b.events;
        s.s_cursor <- b.batch_no;
        tick t ~charge (Array.length b.events * t.costs.Costs.cdc_event))
      t.ring;
    s.s_catchup <- s.s_catchup + Queue.length t.ring
  end
  else begin
    s.s_consumer.on_snapshot t.db ~batch_no:t.last_batch;
    s.s_cursor <- t.last_batch;
    s.s_catchup <- s.s_catchup + t.batches;
    tick t ~charge t.costs.Costs.cdc_publish
  end;
  s.s_consumer.on_caught_up ~batch_no:s.s_cursor

let deliver t ~charge b =
  List.iter
    (fun s ->
      if not s.s_active then begin
        if s.s_join_at <= b.batch_no then activate t ~charge s
      end
      else begin
        Queue.add b s.s_queue;
        s.s_since_apply <- s.s_since_apply + 1;
        s.s_lag_max <- max s.s_lag_max (b.batch_no - s.s_cursor);
        if Queue.length s.s_queue > s.s_max_queue then begin
          Queue.clear s.s_queue;
          s.s_overflow <- true;
          s.s_overflows <- s.s_overflows + 1
        end;
        if s.s_since_apply >= s.s_apply_every then apply t ~charge s
      end)
    (List.rev t.subs_rev)

let publish t ~batch_no ~txns =
  (* Canonicalize: one event per distinct (table, key), no-ops dropped,
     sorted — the feed entry is a pure function of the pre/post-batch
     committed states, independent of execution interleaving. *)
  let evs = ref [] in
  (* lint: order-insensitive — events are collected then sorted *)
  Hashtbl.iter
    (fun _ st ->
      let keep =
        match st.s_before with
        | Some pre -> pre <> st.s_after
        | None -> true
      in
      if keep then
        evs :=
          {
            table = st.s_table;
            key = st.s_key;
            before = st.s_before;
            after = Array.copy st.s_after;
          }
          :: !evs)
    t.staging;
  Hashtbl.reset t.staging;
  let events =
    List.sort (fun a b -> compare (a.table, a.key) (b.table, b.key)) !evs
    |> Array.of_list
  in
  let b = { batch_no; txns; events } in
  let bytes = serialize_batch b in
  t.digest <- digest_string t.digest bytes;
  t.feed_bytes <- t.feed_bytes + String.length bytes;
  Option.iter (fun buf -> Buffer.add_string buf bytes) t.feed_buf;
  t.events <- t.events + Array.length events;
  t.batches <- t.batches + 1;
  t.last_batch <- batch_no;
  Queue.add b t.ring;
  if Queue.length t.ring > t.retain then ignore (Queue.pop t.ring);
  Sim.tick t.sim
    (t.costs.Costs.cdc_publish
    + (Array.length events * t.costs.Costs.cdc_event));
  deliver t ~charge:true b

let finish t =
  List.iter
    (fun s ->
      if s.s_active && ((not (Queue.is_empty s.s_queue)) || s.s_overflow)
      then apply t ~charge:false s)
    (List.rev t.subs_rev)

let batches t = t.batches
let events t = t.events
let feed_bytes t = t.feed_bytes
let digest t = t.digest

let feed t =
  match t.feed_buf with Some buf -> Buffer.contents buf | None -> ""

let last_batch t = t.last_batch
let sub_name s = s.s_name
let cursor s = s.s_cursor
let lag_max s = s.s_lag_max
let delivered s = s.s_delivered
let catchup_batches s = s.s_catchup
let overflows s = s.s_overflows
let subs t = List.rev t.subs_rev

let record t (m : Metrics.t) =
  m.Metrics.cdc_events <- m.Metrics.cdc_events + t.events;
  m.Metrics.cdc_bytes <- m.Metrics.cdc_bytes + t.feed_bytes;
  m.Metrics.cdc_batches <- m.Metrics.cdc_batches + t.batches;
  m.Metrics.cdc_subs <- m.Metrics.cdc_subs + List.length t.subs_rev;
  List.iter
    (fun s ->
      m.Metrics.cdc_lag_max <- max m.Metrics.cdc_lag_max s.s_lag_max;
      m.Metrics.cdc_catchup <- m.Metrics.cdc_catchup + s.s_catchup)
    t.subs_rev
