(** Incrementally maintained materialized view over the CDC feed.

    The view is a per-partition aggregate — SUM of one field of one
    table, grouped by the row's home partition (for TPC-C table 0 with
    field [w_ytd] this is the per-warehouse year-to-date total; for
    YCSB it is a per-partition field sum).  Each feed entry updates the
    sums from the events' before/after images alone, never touching the
    base table; a catch-up snapshot recomputes from committed state.

    With [verify] set, every time the subscription's cursor reaches the
    newest batch the incremental sums are checked against a full
    recompute from the committed database — the view-equals-recompute
    invariant the CDC acceptance tests and the [cdc-smoke] CI job gate
    on.  Divergence raises [Failure]. *)

type t

val create :
  ?verify:bool -> table:int -> field:int -> Quill_storage.Db.t -> t
(** Seeds the sums from the database's current committed state (the
    pre-run image), so batch 0's deltas apply cleanly.  [verify]
    defaults to true. *)

val consumer : t -> Cdc.consumer
(** Plug into {!Cdc.subscribe}. *)

val sums : t -> (int * int) list
(** Current [(partition, sum)] pairs, sorted by partition. *)

val refreshes : t -> int
(** Incremental refresh operations (feed entries applied). *)

val check : t -> bool
(** Compare the incremental sums against a recompute from committed
    state right now.  Only meaningful when the subscription's cursor is
    at the newest published batch. *)

val record : t -> Quill_txn.Metrics.t -> unit
(** Accumulate [view_refreshes] into a metrics record. *)
