module Db = Quill_storage.Db
module Table = Quill_storage.Table
module Row = Quill_storage.Row
module Metrics = Quill_txn.Metrics

type t = {
  db : Db.t;
  table : int;
  field : int;
  verify : bool;
  sums : (int, int) Hashtbl.t;  (* home partition -> field sum *)
  mutable refreshes : int;
}

let recompute_into t sums =
  Hashtbl.reset sums;
  let tbl = Db.table t.db t.table in
  let add (row : Row.t) =
    let home = Table.home_of_key tbl row.Row.key in
    let cur = Option.value (Hashtbl.find_opt sums home) ~default:0 in
    Hashtbl.replace sums home (cur + row.Row.committed.(t.field))
  in
  Table.iter_dense add tbl;
  Table.iter_inserted add tbl

let create ?(verify = true) ~table ~field db =
  let t =
    { db; table; field; verify; sums = Hashtbl.create 64; refreshes = 0 }
  in
  recompute_into t t.sums;
  t

let sorted sums =
  (* lint: order-insensitive — bindings are collected then sorted *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sums []
  |> List.sort compare

let sums t = sorted t.sums
let refreshes t = t.refreshes

let check t =
  let fresh = Hashtbl.create 64 in
  recompute_into t fresh;
  sorted fresh = sorted t.sums

let consumer t =
  let tbl = Db.table t.db t.table in
  let on_batch (b : Cdc.batch) =
    Array.iter
      (fun (ev : Cdc.event) ->
        if ev.Cdc.table = t.table then begin
          let delta =
            ev.Cdc.after.(t.field)
            - (match ev.Cdc.before with
              | Some pre -> pre.(t.field)
              | None -> 0)
          in
          (* Always materialize the partition entry (even for a zero
             delta): a recompute sees every row's home, so the
             incremental side must too or the comparison would differ
             on partitions first touched by a zero-valued insert. *)
          let home = Table.home_of_key tbl ev.Cdc.key in
          let cur = Option.value (Hashtbl.find_opt t.sums home) ~default:0 in
          Hashtbl.replace t.sums home (cur + delta)
        end)
      b.Cdc.events;
    t.refreshes <- t.refreshes + 1
  in
  let on_snapshot _db ~batch_no:_ =
    recompute_into t t.sums;
    t.refreshes <- t.refreshes + 1
  in
  let on_caught_up ~batch_no =
    if t.verify && not (check t) then
      failwith
        (Printf.sprintf
           "Cdc view diverged from recompute at batch %d (table %d field %d)"
           batch_no t.table t.field)
  in
  { Cdc.on_batch; on_snapshot; on_caught_up }

let record t (m : Metrics.t) =
  m.Metrics.view_refreshes <- m.Metrics.view_refreshes + t.refreshes
