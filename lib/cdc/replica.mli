(** Read-replica cache fed by the CDC stream.

    Keeps a copy of every row image the feed delivered and serves reads
    at the subscription's cursor — a bounded-staleness replica: with
    [apply_every = k] the cache is never more than [k] batches behind
    the primary's commit point.  A catch-up snapshot re-seeds the whole
    cache from committed state (after which it also covers rows the
    feed alone would not have mentioned). *)

type t

val create : Quill_storage.Db.t -> t
(** The database is only held for catch-up snapshots; live reads never
    touch it. *)

val consumer : t -> Cdc.consumer
(** Plug into {!Cdc.subscribe}. *)

val read : t -> table:int -> key:int -> int array option
(** The newest row image at the replica's cursor; [None] when the feed
    has not mentioned the key (and no snapshot seeded it). *)

val cursor : t -> int
(** Newest batch folded into the cache; -1 before any. *)

val rows : t -> int  (** distinct row images cached *)

val reads : t -> int  (** [read] calls served *)

val consistent_with : t -> Quill_storage.Db.t -> bool
(** Every cached image equals the database's committed image — the
    replica-correctness check, meaningful once the cursor has reached
    the newest published batch (e.g. after {!Cdc.finish}). *)
