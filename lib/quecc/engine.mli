(** The queue-oriented transaction processing engine (QueCC).

    Batches of transactions are processed in two deterministic phases
    (paper Figure 1):

    {ol
    {- {e Planning}: planner [p] takes the [p]-th slice of the batch in
       order and, for each fragment, appends it to the execution queue
       [(p, e)] where [e] is the home executor of the fragment's record.
       The planner index is the queue's {e priority}.}
    {- {e Execution}: executor [e] drains queues [(0, e)], [(1, e)], ...
       in priority order, processing fragments FIFO.  Because every
       record has a unique home executor, per-record access order equals
       global batch order — conflict dependencies need no locks at all.}}

    Cross-thread coordination is limited to (paper section 3):
    data-dependency value slots (ivars), and commit-dependency resolution
    for abortable fragments — exactly the "necessary communication to
    resolve dependencies" the paper allows.

    Two execution mechanisms are provided (section 3.2): {e speculative}
    (writes applied immediately with undo tracking; logic aborts trigger a
    deterministic cascade-recovery pass) and {e conservative} (fragments
    with commit dependencies wait until the transaction's abortable
    fragments resolve).  Two isolation levels: {e serializable} and
    {e read-committed} (reads served from the committed version, routed
    round-robin for extra parallelism). *)

type exec_mode = Speculative | Conservative
type isolation = Serializable | Read_committed

type split_cfg = {
  hot_threshold : int;
      (** per-planner, per-key routed-operation count at which the key's
          queue is split into a sub-queue chain *)
  max_subqueues : int;  (** maximum chain segments per hot key *)
}

val default_split : split_cfg
(** [hot_threshold = 32], [max_subqueues = 8]. *)

type adapt_cfg = {
  repartition : bool;
      (** remap virtual partitions ([spread] per executor) to executors
          between batches, by measured per-partition load; takes effect
          two batches after measurement (the pipeline-safe lag) *)
  spread : int;
  auto_batch : bool;
      (** pipelined closed-loop runs only: tune the planned batch size
          from the fill/drain stall split, conserving the total
          transaction budget (changes the schedule, so committed state
          is NOT bit-identical to the fixed-size run) *)
  min_batch : int;  (** auto-tuner floor *)
}

val default_adapt : adapt_cfg
(** [repartition = true], [spread = 8], [auto_batch = false],
    [min_batch = 64]. *)

type cfg = {
  planners : int;
  executors : int;
  batch_size : int;       (** transactions per batch *)
  mode : exec_mode;
  isolation : isolation;
  costs : Quill_sim.Costs.t;
  pipeline : bool;
      (** overlap planning of batch [N+1] with execution of batch [N]
          through a double-buffered queue matrix, with a single hand-off
          per batch.  Dedicated planner and executor threads
          ([planners + executors] cores).  Committed DB state is
          bit-identical to the non-pipelined path for the same seed. *)
  steal : bool;
      (** executors that drain their queues early steal whole queues
          from the most-loaded peer when a key-signature check proves
          the steal record-disjoint from the victim's remaining work
          (per-record FIFO order survives) *)
  split : split_cfg option;
      (** hot-key queue splitting: spread a hot key's operations across
          sub-queues on different executors, chained by intra-key
          sequence numbers so the key's operations still execute in
          exact planned order — committed state stays bit-identical to
          the unsplit run (DESIGN.md §12).  [None] = off. *)
  adapt : adapt_cfg option;
      (** between-batch adaptation (dynamic repartitioning and batch
          auto-tuning); [None] = off *)
}

val default_cfg : cfg
(** 4 planners, 4 executors, 1024-txn batches, speculative,
    serializable, default costs, pipeline, steal, split and adapt
    off. *)

val run :
  ?sim:Quill_sim.Sim.t ->
  ?clients:Quill_clients.Clients.t ->
  ?recorder:Quill_analysis.Access_log.t ->
  ?wal:Quill_wal.Wal.t ->
  ?cdc:Quill_cdc.Cdc.t ->
  ?crash_at:int ->
  cfg ->
  Quill_txn.Workload.t ->
  batches:int ->
  Quill_txn.Metrics.t
(** [?recorder] (the [--check-conflicts] path) records every row access
    with queue-slot attribution for {!Quill_analysis.Conflict_check};
    recording never ticks the simulator, so committed state is
    bit-identical with and without it.

    [?wal] makes every batch durable with one group-commit flush at its
    commit point (effects captured before publish, flushed after — see
    {!Quill_wal.Wal}).  [?crash_at] kills the node at its first batch
    commit point at/after that virtual time: the in-flight batch is
    lost, the database is rebuilt from the newest snapshot plus the log,
    the committed count is reconciled to the durable boundary, and the
    run ends.  Crash faults cannot be combined with [?clients] (a dead
    node strands the admission queue); [Invalid_argument] otherwise.

    [?cdc] stages every batch's change set into the ordered feed at the
    WAL seam and seals it right after the commit point, so subscribers
    observe the deterministic batch commit order (see {!Quill_cdc.Cdc}).
    Cannot be combined with [?crash_at]: a crash-truncated run would
    feed subscribers commits recovery then retracts.

    Closed-loop by default: [batches] fixed-size batches cut from the
    workload stream.  With [?clients], batches are formed from whatever
    the admission queue holds at batch-close (variable sizes, capped at
    [cfg.batch_size]) and the engine runs until the client layer is
    exhausted; [batches] is ignored.  Commit/abort outcomes are reported
    back through {!Quill_clients.Clients.complete}, so aborted
    transactions return in a later batch after their backoff. *)

val record_sim_breakdown : Quill_txn.Metrics.t -> Quill_sim.Sim.t -> unit
(** Copy the simulator's per-phase busy and per-cause idle attribution
    into the metrics record (also used by the distributed engines). *)

val plan_order_for_dist :
  Quill_txn.Fragment.t array -> Quill_txn.Fragment.t array
(** Queue-insertion order for one transaction's fragments (dependency-free
    abortable fragments first); shared with the distributed engine, which
    needs the same ordering for its conservative-execution deadlock-freedom
    argument. *)
