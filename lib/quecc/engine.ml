open Quill_common
open Quill_sim
open Quill_storage
open Quill_txn
module Trace = Quill_trace.Trace
module Clients = Quill_clients.Clients
module Alog = Quill_analysis.Access_log
module Wal = Quill_wal.Wal
module Cdc = Quill_cdc.Cdc

type exec_mode = Speculative | Conservative
type isolation = Serializable | Read_committed

(* Hot-key queue splitting: when one planner routes at least
   [hot_threshold] operations to a single key, that key's operations are
   spread across up to [max_subqueues] sub-queues (chain segments) on
   different executors, tagged with intra-key sequence numbers so the
   per-record access order is exactly the enqueue order. *)
type split_cfg = { hot_threshold : int; max_subqueues : int }

let default_split = { hot_threshold = 32; max_subqueues = 8 }

(* Between-batch adaptation.  [repartition] remaps virtual partitions
   ([spread] per executor) to executors by measured per-partition load;
   [auto_batch] lets pipelined runs tune the batch size from the
   fill/drain stall split, never below [min_batch]. *)
type adapt_cfg = {
  repartition : bool;
  spread : int;
  auto_batch : bool;
  min_batch : int;
}

let default_adapt =
  { repartition = true; spread = 8; auto_batch = false; min_batch = 64 }

type cfg = {
  planners : int;
  executors : int;
  batch_size : int;
  mode : exec_mode;
  isolation : isolation;
  costs : Costs.t;
  pipeline : bool;
      (* overlap planning of batch N+1 with execution of batch N via a
         double-buffered queue matrix; off = the lockstep oracle path *)
  steal : bool;
      (* drained executors steal whole queues from the most-loaded peer
         when the steal is provably record-disjoint *)
  split : split_cfg option;  (* hot-key queue splitting; None = off *)
  adapt : adapt_cfg option;  (* dynamic repartitioning / batch tuning *)
}

let default_cfg =
  {
    planners = 4;
    executors = 4;
    batch_size = 1024;
    mode = Speculative;
    isolation = Serializable;
    costs = Costs.default;
    pipeline = false;
    steal = false;
    split = None;
    adapt = None;
  }

(* Per-batch runtime state of one transaction. *)
type rt = {
  txn : Txn.t;
  bidx : int;                        (* position in the batch = serial order *)
  slots : int Sim.Ivar.iv array;     (* data-dependency value slots; [||]
                                        when the txn has no data deps *)
  resolved : unit Sim.Ivar.iv;       (* commit-dependency gate *)
  mutable pending_aborters : int;
  deps_on : int Vec.t;               (* speculation/WAW edges: bidxs read
                                        or overwritten (speculative mode) *)
  mutable inserts : (int * int) list; (* (table, key) for undo *)
  mutable logic_abort : bool;
  entry : Clients.entry option;      (* admission-queue provenance, for
                                        client completion / retry *)
}

type qentry = { rt : rt; frag : Fragment.t }

(* One sub-queue of a split hot key: segment [sg_idx] of the chain for
   [sg_key] (a packed sig_key) homed at executor [sg_home].  The segment
   runs on a foreign executor but only after [sg_prev] is filled — the
   previous segment's [sg_done] (segment 0's start ivar is filled by the
   home executor when it reaches the chain's priority) — so the key's
   operations still execute in exact enqueue order. *)
type segment = {
  sg_home : int;
  sg_key : int;
  sg_idx : int;
  sg_entries : qentry Vec.t;
  sg_prev : unit Sim.Ivar.iv;
  sg_done : unit Sim.Ivar.iv;
}

(* Planner-side bookkeeping for one open chain. *)
type chain = {
  ch_home : int;
  ch_key : int;
  ch_seg_len : int;
  ch_max_segs : int;
  mutable ch_last : segment;
  mutable ch_nsegs : int;
}

(* Auto-tuner state (pipelined closed-loop runs under adapt.auto_batch):
   the planned batch size floats between adapt.min_batch and
   cfg.batch_size, and the total transaction budget is conserved. *)
type autobs = {
  mutable abs_remaining : int;
  mutable abs_cur : int;
  mutable abs_last_fill : int;
  mutable abs_last_drain : int;
}

(* The queue matrix and the per-slot runtimes are double-buffered by
   batch parity so a pipelined run can plan batch N+1 while batch N is
   still executing.  The non-pipelined path only ever uses parity 0.
   [qstate]/[qsig] exist only under [cfg.steal]: per-(planner, executor)
   claim state (0 unclaimed / 1 claimed / 2 done) and an exact
   key-signature set used to prove a candidate steal record-disjoint
   (a Bloom filter is the wrong tool here: certifying DISJOINTNESS of
   n-entry sets needs ~n^2 bits, so real queues would never steal). *)
type shared = {
  cfg : cfg;
  sim : Sim.t;
  wl : Workload.t;
  db : Db.t;
  queues : qentry Vec.t array array array;
      (* [parity].[planner].[executor] *)
  rts : rt option array array;         (* [parity].[slot] -> runtime *)
  touched : (int * Row.t) Vec.t array;
      (* (table, row) per executor + one recovery slot; the rows dirtied
         by the in-flight batch — publish set and WAL write set *)
  qstate : int array array array;      (* [parity].[planner].[executor] *)
  qsig : (int, unit) Hashtbl.t array array array;
      (* [parity].[planner].[executor] *)
  qpend : int array array array;
      (* [parity].[planner].[executor], cfg.steal only: completion units
         left before qstate may flip to 2 — the queue drain itself, plus
         one for the chain joins homed there.  Without splitting every
         cell is 1 and this degenerates to the old drain => done. *)
  chain_starts : unit Sim.Ivar.iv Vec.t array array array;
      (* [parity].[planner].[home executor]: segment-0 start ivars, filled
         by the home executor when it reaches that priority *)
  chain_joins : unit Sim.Ivar.iv Vec.t array array array;
      (* [parity].[planner].[home executor]: last-segment done ivars the
         home executor awaits before leaving that priority *)
  segs : segment Vec.t array array array;
      (* [parity].[planner].[assigned executor], sorted by
         (home, key, idx) — the global order that makes chain waits
         deadlock-free (DESIGN.md §12) *)
  rmap : int array array;  (* [batch parity].[vpart] -> executor *)
  vload : int array array; (* [batch parity].[vpart] -> routed op count *)
  metrics : Metrics.t;
  recorder : Alog.t option;
      (* conflict-detector access log (--check-conflicts); None on the
         hot path *)
  abs : autobs option;
  wal : Wal.t option;  (* durable group-commit log (--wal) *)
  cdc : Cdc.t option;  (* ordered change-feed hub (--cdc) *)
  crash_at : int option;
      (* virtual time at/after which the node dies at its next batch
         commit point, losing the in-flight batch *)
  mutable crashed : bool;
  mutable batch_no : int;
}

(* Pack (table, key) into one int; tables are small. *)
let sig_key table key = (key lsl 6) lor table

let sig_disjoint a b =
  let small, big =
    if Hashtbl.length a <= Hashtbl.length b then (a, b) else (b, a)
  in
  try
    (* Whether ANY key of [small] is in [big] does not depend on visit
       order, and the walk mutates nothing. *)
    (* lint: order-insensitive — pure existence scan, order-independent *)
    Hashtbl.iter (fun k () -> if Hashtbl.mem big k then raise Exit) small;
    true
  with Exit -> false

(* ------------------------------------------------------------------ *)
(* Transaction runtime                                                 *)
(* ------------------------------------------------------------------ *)

let make_rt ?entry txn bidx =
  let has_deps =
    Array.exists
      (fun f -> Array.length f.Fragment.data_deps > 0)
      txn.Txn.frags
  in
  let slots =
    if has_deps then
      Array.init (Array.length txn.Txn.frags) (fun _ -> Sim.Ivar.create ())
    else [||]
  in
  txn.Txn.status <- Txn.Active;
  {
    txn;
    bidx;
    slots;
    resolved = Sim.Ivar.create ();
    pending_aborters = txn.Txn.n_abortable;
    deps_on = Vec.create ();
    inserts = [];
    logic_abort = false;
    entry;
  }

let fill_unfilled_slots sh rt =
  Array.iter
    (fun iv -> if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv 0)
    rt.slots

let resolve_arrive sh rt =
  rt.pending_aborters <- rt.pending_aborters - 1;
  if rt.pending_aborters = 0 && not (Sim.Ivar.is_full rt.resolved) then
    Sim.Ivar.fill sh.sim rt.resolved ()

let do_abort sh rt =
  if rt.txn.Txn.status <> Txn.Aborted then begin
    rt.txn.Txn.status <- Txn.Aborted;
    rt.logic_abort <- true;
    if not (Sim.Ivar.is_full rt.resolved) then
      Sim.Ivar.fill sh.sim rt.resolved ();
    (* Unblock any same-txn consumer already waiting on a value slot; the
       garbage value is repaired by the recovery pass (speculative) or
       never written back (conservative: all updates are gated). *)
    fill_unfilled_slots sh rt
  end

(* ------------------------------------------------------------------ *)
(* Executor context                                                    *)
(* ------------------------------------------------------------------ *)

type exec_state = {
  eid : int;
  mutable cur_rt : rt;
  mutable cur_row : Row.t;
  mutable cur_found : bool;
}

let dummy_row = Row.make ~key:(-1) ~nfields:1
let dummy_txn = Txn.make ~tid:(-1) [||]

let dummy_rt =
  {
    txn = dummy_txn;
    bidx = -1;
    slots = [||];
    resolved = Sim.Ivar.create ();
    pending_aborters = 0;
    deps_on = Vec.create ();
    inserts = [];
    logic_abort = false;
    entry = None;
  }

let mark_touched sh slot table row =
  if not row.Row.dirty then begin
    row.Row.dirty <- true;
    Vec.push sh.touched.(slot) (table, row)
  end

(* Field-level speculation state: edges are recorded per (row, field) so
   that transactions touching disjoint fields of a hot row (Payment's
   d_ytd vs NewOrder's d_next_o_id) never cascade into each other. *)
let fstate row =
  if Array.length row.Row.fstate = 0 then
    row.Row.fstate <- Array.make (Array.length row.Row.data) (-1, [], []);
  row.Row.fstate

let add_edge rt b = if b >= 0 && b <> rt.bidx then Vec.push rt.deps_on b

(* Reading field [f]: depend on its last in-batch writer and on every
   pending commutative adder (their deltas are visible in the value), and
   register as a reader (future anti-dependency). *)
let record_read rt row f =
  if row.Row.inserter >= 0 then add_edge rt row.Row.inserter;
  let st = fstate row in
  let w, rs, ads = st.(f) in
  add_edge rt w;
  List.iter (add_edge rt) ads;
  st.(f) <- (w, rt.bidx :: rs, ads)

(* Writing field [f]: depend on the previous writer and adders (so undo
   chains revert in order) and on every reader since (anti-dep). *)
let record_write rt row f =
  if row.Row.inserter >= 0 then add_edge rt row.Row.inserter;
  let st = fstate row in
  let w, rs, ads = st.(f) in
  add_edge rt w;
  List.iter (add_edge rt) rs;
  List.iter (add_edge rt) ads;
  st.(f) <- (rt.bidx, [], [])

(* Commutative add on field [f]: other adds commute (no edges between
   them), but the previous set-writer's undo would clobber us, and prior
   readers must drag us along if they re-execute. *)
let record_add rt row f =
  if row.Row.inserter >= 0 then add_edge rt row.Row.inserter;
  let st = fstate row in
  let w, rs, ads = st.(f) in
  add_edge rt w;
  List.iter (add_edge rt) rs;
  st.(f) <- (w, rs, rt.bidx :: ads)

let make_exec_ctx sh st =
  let costs = sh.cfg.costs in
  let speculative = sh.cfg.mode = Speculative in
  let read (frag : Fragment.t) field =
    Sim.tick sh.sim costs.Costs.row_read;
    if not st.cur_found then 0
    else begin
      let row = st.cur_row in
      match (sh.cfg.isolation, frag.Fragment.mode) with
      | Read_committed, Fragment.Read -> row.Row.committed.(field)
      | _ ->
          if speculative then record_read st.cur_rt row field;
          row.Row.data.(field)
    end
  in
  let write (frag : Fragment.t) field v =
    Sim.tick sh.sim costs.Costs.row_write;
    if st.cur_found then begin
      let row = st.cur_row in
      let rt = st.cur_rt in
      if speculative then begin
        record_write rt row field;
        row.Row.undo <-
          (rt.bidx, field, Row.Uset row.Row.data.(field)) :: row.Row.undo
      end;
      mark_touched sh st.eid frag.Fragment.table row;
      row.Row.data.(field) <- v
    end
  in
  let add (frag : Fragment.t) field d =
    Sim.tick sh.sim costs.Costs.row_write;
    if st.cur_found then begin
      let row = st.cur_row in
      let rt = st.cur_rt in
      if speculative then begin
        record_add rt row field;
        row.Row.undo <- (rt.bidx, field, Row.Uadd d) :: row.Row.undo
      end;
      mark_touched sh st.eid frag.Fragment.table row;
      row.Row.data.(field) <- row.Row.data.(field) + d
    end
  in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick sh.sim costs.Costs.index_insert;
    let rt = st.cur_rt in
    let tbl = Db.table sh.db frag.Fragment.table in
    let home = Db.home sh.db frag.Fragment.table frag.Fragment.key in
    let row = Table.insert tbl ~home ~key payload in
    if speculative then begin
      row.Row.batch_tag <- sh.batch_no;
      row.Row.inserter <- rt.bidx;
      rt.inserts <- (frag.Fragment.table, key) :: rt.inserts
    end;
    if not row.Row.dirty then begin
      row.Row.dirty <- true;
      Vec.push sh.touched.(st.eid) (frag.Fragment.table, row)
    end
  in
  let input fid =
    Sim.tick sh.sim costs.Costs.cas;
    let rt = st.cur_rt in
    if Array.length rt.slots = 0 then 0 else Sim.Ivar.read sh.sim rt.slots.(fid)
  in
  let output fid v =
    let rt = st.cur_rt in
    if Array.length rt.slots > 0 && not (Sim.Ivar.is_full rt.slots.(fid)) then
      Sim.Ivar.fill sh.sim rt.slots.(fid) v
  in
  let found _frag = st.cur_found in
  { Exec.read; write; add; insert; input; output; found }

(* Executor context, with conflict-detector interposition when a
   recorder is active.  Read-committed reads are flagged so the checker
   exempts them from ordering rules, exactly as planning exempts them
   from steal signatures. *)
let make_ctx sh st =
  let ctx = make_exec_ctx sh st in
  match sh.recorder with
  | None -> ctx
  | Some log ->
      Alog.wrap_exec_ctx log
        ~rc_read:(fun (f : Fragment.t) ->
          sh.cfg.isolation = Read_committed
          && f.Fragment.mode = Fragment.Read)
        ctx

(* Lazily reset per-batch row state the first time a row is seen.  Rows
   touched in the previous batch were reset at publish time, so this only
   matters for correctness of [last_writer] tags across batches. *)
let locate sh (frag : Fragment.t) =
  let tbl = Db.table sh.db frag.Fragment.table in
  match Table.find tbl frag.Fragment.key with
  | Some row ->
      Row.reset_batch_state row sh.batch_no;
      Some row
  | None -> None

let exec_entry sh st ctx { rt; frag } =
  let costs = sh.cfg.costs in
  Sim.tick sh.sim costs.Costs.queue_op;
  if rt.txn.Txn.status = Txn.Aborted then
    Sim.tick sh.sim costs.Costs.abort_cleanup
  else begin
    (* Conservative execution: a fragment that updates the database while
       a sibling may still abort waits for the commit-dependency gate. *)
    if
      sh.cfg.mode = Conservative
      && frag.Fragment.commit_dep
      && not (Sim.Ivar.is_full rt.resolved)
    then Sim.Ivar.read sh.sim rt.resolved;
    if rt.txn.Txn.status = Txn.Aborted then
      Sim.tick sh.sim costs.Costs.abort_cleanup
    else begin
      st.cur_rt <- rt;
      (match frag.Fragment.mode with
      | Fragment.Insert ->
          st.cur_row <- dummy_row;
          st.cur_found <- true
      | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
          Sim.tick sh.sim costs.Costs.index_probe;
          match locate sh frag with
          | Some row ->
              st.cur_row <- row;
              st.cur_found <- true
          | None ->
              st.cur_row <- dummy_row;
              st.cur_found <- false));
      Sim.tick sh.sim costs.Costs.logic;
      match sh.wl.Workload.exec ctx rt.txn frag with
      | Exec.Ok -> if frag.Fragment.abortable then resolve_arrive sh rt
      | Exec.Abort ->
          assert frag.Fragment.abortable;
          do_abort sh rt
      | Exec.Blocked -> assert false
    end
  end

(* ------------------------------------------------------------------ *)
(* Queue draining and work stealing                                    *)
(* ------------------------------------------------------------------ *)

(* A steal of queue [cand] from victim [v] is safe iff its key signature
   is disjoint from every other not-yet-finished queue of [v]: then no
   record of [cand] can appear in any queue still in flight on [v]'s
   core, so per-record FIFO order is preserved even though [v] proceeds
   past the stolen priority.  (Queues of other executors never share
   records: home-partition routing pins a record to one executor, and
   round-robined read-committed reads are excluded from signatures
   because they only read committed state.) *)
let steal_safe sh parity v cand =
  let ok = ref true in
  for p' = 0 to sh.cfg.planners - 1 do
    if
      p' <> cand
      && sh.qstate.(parity).(p').(v) <> 2
      && not
           (sig_disjoint sh.qsig.(parity).(cand).(v)
              sh.qsig.(parity).(p').(v))
    then ok := false
  done;
  !ok

(* Pick a queue for an idle executor to steal: the victim with the most
   unclaimed work, then its tail-most (lowest-priority) unclaimed queue
   that passes the disjointness check.  Runs without any Sim call, so
   the find + claim pair is atomic under the cooperative scheduler; the
   caller charges [Costs.steal_scan] per candidate examined (counted in
   [scanned]) after claiming. *)
let find_steal sh ~parity ~thief ~scanned =
  let pn = sh.cfg.planners and en = sh.cfg.executors in
  let qs = sh.queues.(parity) and qstate = sh.qstate.(parity) in
  let load = Array.make en 0 in
  for v = 0 to en - 1 do
    if v <> thief then
      for p = 0 to pn - 1 do
        if qstate.(p).(v) = 0 then
          load.(v) <- load.(v) + Vec.length qs.(p).(v)
      done
  done;
  let found = ref None in
  let more = ref true in
  while !more do
    let v = ref (-1) in
    for u = 0 to en - 1 do
      if load.(u) > 0 && (!v < 0 || load.(u) > load.(!v)) then v := u
    done;
    if !v < 0 then more := false
    else begin
      let v = !v in
      let p = ref (pn - 1) in
      while !found = None && !p >= 0 do
        if qstate.(!p).(v) = 0 && Vec.length qs.(!p).(v) > 0 then begin
          incr scanned;
          if steal_safe sh parity v !p then found := Some (!p, v)
        end;
        decr p
      done;
      if !found <> None then more := false else load.(v) <- 0
    end
  done;
  !found

(* Chain-segment execution.  The home executor fills every segment-0
   start ivar for chains homed at (p, e) when it reaches priority p
   (before draining its own queue), and joins the chains it owns after
   its own queue.  Segments assigned to executor [e] run on a per-batch
   helper thread spawned next to the drain loop, so a hot-key chain
   overlaps with every executor's own-queue work instead of queueing
   behind it (the chain is a serial dependency either way; the helper
   keeps it off the executors' critical path).  Segment entries never
   block — splitting is restricted to dependency-free, non-abortable
   plain row ops — so the only waits are the sg_prev ivars, and those
   cannot cycle: each helper processes its segments in the global
   (prio, home, key, idx) order, making the minimal unfinished segment
   always runnable. *)
let chain_begin sh ~parity p e =
  if sh.chain_starts <> [||] then
    Vec.iter
      (fun iv -> if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sh.sim iv ())
      sh.chain_starts.(parity).(p).(e)

(* Drain queue [q] as executor [st.eid], stamping each entry's queue
   slot when a recorder is attached. *)
let drain_with sh st ctx ~owner ~subseq p q =
  match sh.recorder with
  | None -> Vec.iter (exec_entry sh st ctx) q
  | Some log ->
      Vec.iteri
        (fun i entry ->
          Alog.set_slot log ~thread:st.eid ~owner ~prio:p ~subseq ~pos:i
            ~batch:sh.batch_no;
          exec_entry sh st ctx entry)
        q

(* Helper thread running executor [e]'s assigned chain segments for one
   batch.  The work list is snapshotted at spawn (the plan phase reuses
   the parity-indexed rows two batches later) and the helper gets its
   own exec state/ctx — [exec_state] scratch spans Sim.tick points, so
   it cannot be shared with the concurrently draining executor. *)
let spawn_segment_runner sh e ~parity =
  if sh.segs <> [||] then begin
    let work = Vec.create () in
    for p = 0 to sh.cfg.planners - 1 do
      Vec.iter (fun sg -> Vec.push work (p, sg)) sh.segs.(parity).(p).(e)
    done;
    if Vec.length work > 0 then
      Sim.spawn ~at:(Sim.now sh.sim) sh.sim (fun () ->
          Sim.set_phase sh.sim Sim.Ph_execute;
          let st =
            { eid = e; cur_rt = dummy_rt; cur_row = dummy_row;
              cur_found = false }
          in
          let ctx = make_ctx sh st in
          Vec.iter
            (fun (p, sg) ->
              Sim.Ivar.read sh.sim sg.sg_prev;
              Sim.tick sh.sim sh.cfg.costs.Costs.queue_op;
              drain_with sh st ctx ~owner:sg.sg_home ~subseq:sg.sg_idx p
                sg.sg_entries;
              Sim.Ivar.fill sh.sim sg.sg_done ())
            work)
  end

let chain_join sh ~parity p e =
  sh.chain_joins <> [||]
  && Vec.length sh.chain_joins.(parity).(p).(e) > 0
  && begin
       Vec.iter
         (fun iv -> Sim.Ivar.read sh.sim iv)
         sh.chain_joins.(parity).(p).(e);
       true
     end

(* Execute every queue destined for executor [st.eid] in priority order.
   Without [cfg.steal] this is the oracle drain loop; with it, queues
   are claimed (so a peer can steal ahead of a slow owner) and an
   executor that runs dry turns thief. *)
let drain_queues sh st ctx ~parity =
  let e = st.eid in
  (* [owner] is the executor the queue was planned for; with a recorder
     active each entry is stamped with its queue slot so the conflict
     checker can replay priority order ([owner <> e] marks a steal;
     [subseq >= 0] marks a chain segment). *)
  let drain = drain_with sh st ctx in
  spawn_segment_runner sh e ~parity;
  if not sh.cfg.steal then
    for p = 0 to sh.cfg.planners - 1 do
      chain_begin sh ~parity p e;
      drain ~owner:e ~subseq:(-1) p sh.queues.(parity).(p).(e);
      ignore (chain_join sh ~parity p e)
    done
  else begin
    let qstate = sh.qstate.(parity) in
    (* One completion unit retired; the last one makes the cell
       steal-done.  No Sim call between decrement and flip, so it is
       atomic under the cooperative scheduler. *)
    let finish p v =
      sh.qpend.(parity).(p).(v) <- sh.qpend.(parity).(p).(v) - 1;
      if sh.qpend.(parity).(p).(v) = 0 then qstate.(p).(v) <- 2
    in
    for p = 0 to sh.cfg.planners - 1 do
      chain_begin sh ~parity p e;
      if qstate.(p).(e) = 0 then begin
        qstate.(p).(e) <- 1;
        drain ~owner:e ~subseq:(-1) p sh.queues.(parity).(p).(e);
        finish p e
      end;
      if chain_join sh ~parity p e then finish p e
    done;
    let m = sh.metrics in
    let costs = sh.cfg.costs in
    let more = ref true in
    while !more do
      let scanned = ref 0 in
      m.Metrics.steal_attempts <- m.Metrics.steal_attempts + 1;
      match find_steal sh ~parity ~thief:e ~scanned with
      | None ->
          m.Metrics.steal_rejects <- m.Metrics.steal_rejects + 1;
          if !scanned > 0 then
            Sim.tick sh.sim (!scanned * costs.Costs.steal_scan);
          more := false
      | Some (p, v) ->
          qstate.(p).(v) <- 1;
          m.Metrics.stolen_queues <- m.Metrics.stolen_queues + 1;
          Sim.tick sh.sim
            ((!scanned * costs.Costs.steal_scan) + costs.Costs.queue_op);
          drain ~owner:v ~subseq:(-1) p sh.queues.(parity).(p).(v);
          finish p v
    done
  end

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

(* Order fragments for queue insertion: dependency-free abortable
   fragments go first so that, in conservative mode, an executor blocked
   on a commit-dependency gate can never be queued ahead of the abort
   decision it waits for (the deadlock-freedom argument in DESIGN.md). *)
let plan_order frags =
  let n = Array.length frags in
  if n = 0 then frags
  else begin
  let ordered = Array.make n frags.(0) in
  let i = ref 0 in
  Array.iter
    (fun (f : Fragment.t) ->
      if f.Fragment.abortable && Array.length f.Fragment.data_deps = 0 then begin
        ordered.(!i) <- f;
        incr i
      end)
    frags;
  Array.iter
    (fun (f : Fragment.t) ->
      if not (f.Fragment.abortable && Array.length f.Fragment.data_deps = 0)
      then begin
        ordered.(!i) <- f;
        incr i
      end)
    frags;
  ordered
  end

let plan_order_for_dist = plan_order

let slice_bounds ~batch_size ~planners p =
  let base = batch_size / planners and rem = batch_size mod planners in
  let start = (p * base) + min p rem in
  let count = base + if p < rem then 1 else 0 in
  (start, count)

(* A fragment may enter a hot-key chain only if it can never block a
   foreign executor: no abortable sibling (so no commit gate and no
   abort path), no data-dependency slots anywhere in its transaction,
   plain row op, and not an early fragment (those must keep their
   front-of-queue position). *)
let seg_exec sh home i =
  let en = sh.cfg.executors in
  (home + 1 + (i mod (en - 1))) mod en

(* Plan the [count] transactions at [start..start+count-1] of the batch,
   fetched one at a time via [get] (closed-loop: the workload stream;
   client mode: the entries drained from the admission queue).  [bno] is
   the batch number being planned — under repartitioning it selects the
   routing-map parity, which in the pipelined path differs from
   [sh.batch_no] (the batch still executing). *)
let plan_txns sh ~parity ~bno p ~start ~count ~get rr =
  let costs = sh.cfg.costs in
  let en = sh.cfg.executors in
  let m = sh.metrics in
  let queues = sh.queues.(parity).(p) in
  Array.iter Vec.clear queues;
  if sh.cfg.steal then begin
    Array.iter Hashtbl.reset sh.qsig.(parity).(p);
    Array.fill sh.qstate.(parity).(p) 0 en 0
  end;
  if sh.segs <> [||] then
    for e = 0 to en - 1 do
      Vec.clear sh.chain_starts.(parity).(p).(e);
      Vec.clear sh.chain_joins.(parity).(p).(e);
      Vec.clear sh.segs.(parity).(p).(e)
    done;
  let split_en =
    match sh.cfg.split with Some sc when en > 1 -> Some sc | _ -> None
  in
  let repart =
    match sh.cfg.adapt with
    | Some a when a.repartition && Array.length sh.rmap > 0 -> Some a
    | _ -> None
  in
  let bpar = bno land 1 in
  let is_rc (f : Fragment.t) =
    sh.cfg.isolation = Read_committed && f.Fragment.mode = Fragment.Read
  in
  (* Home-executor routing: the base modulo map, refined through the
     virtual-partition map when repartitioning is on.  Also feeds the
     per-vpart load counters the next rebalance consumes. *)
  let route_exec t k =
    match repart with
    | Some a ->
        let vp = ((Db.home sh.db t k mod en) * a.spread) + (k mod a.spread) in
        sh.vload.(bpar).(vp) <- sh.vload.(bpar).(vp) + 1;
        sh.rmap.(bpar).(vp)
    | None -> Db.home sh.db t k mod en
  in
  (* Pass 1 (splitting only): materialize the slice and count per-key
     routed operations, so pass 2 knows which keys are hot before the
     first fragment is enqueued.  No Sim call happens here; all virtual
     time is charged in pass 2, so the cost model is unchanged. *)
  let slice =
    if count = 0 then [||]
    else begin
      let first = get 0 in
      let a = Array.make count first in
      for j = 1 to count - 1 do
        a.(j) <- get j
      done;
      a
    end
  in
  let franks =
    Array.map (fun ((txn : Txn.t), _) -> plan_order txn.Txn.frags) slice
  in
  let counts : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
  (match split_en with
  | None -> ()
  | Some _ ->
      Array.iteri
        (fun j ((txn : Txn.t), _) ->
          let pure =
            txn.Txn.n_abortable = 0
            && Array.for_all
                 (fun (g : Fragment.t) ->
                   Array.length g.Fragment.data_deps = 0)
                 txn.Txn.frags
          in
          Array.iter
            (fun (f : Fragment.t) ->
              if not (is_rc f) then begin
                let sk = sig_key f.Fragment.table f.Fragment.key in
                let ok =
                  pure
                  && (match f.Fragment.mode with
                     | Fragment.Insert -> false
                     | Fragment.Read | Fragment.Write | Fragment.Rmw -> true)
                  && not f.Fragment.early
                in
                match Hashtbl.find_opt counts sk with
                | Some (c, clean) ->
                    Hashtbl.replace counts sk (c + 1, clean && ok)
                | None -> Hashtbl.add counts sk (1, ok)
              end)
            franks.(j))
        slice);
  (* Chains open lazily at the first routed occurrence of a hot key, so
     creation order follows slice order (deterministic), never hash
     order.  [new_chains] remembers them for join registration. *)
  let chain_tbl : (int, chain) Hashtbl.t = Hashtbl.create 8 in
  let new_chains : chain Vec.t = Vec.create () in
  let chain_for sk home =
    match split_en with
    | None -> None
    | Some sc -> (
        match Hashtbl.find_opt chain_tbl sk with
        | Some ch -> Some ch
        | None -> (
            match Hashtbl.find_opt counts sk with
            | Some (c, true) when c >= sc.hot_threshold ->
                let nsegs =
                  min sc.max_subqueues (max 2 (c / sc.hot_threshold))
                in
                let seg_len = (c + nsegs - 1) / nsegs in
                let start = Sim.Ivar.create () in
                Vec.push sh.chain_starts.(parity).(p).(home) start;
                let seg0 =
                  {
                    sg_home = home;
                    sg_key = sk;
                    sg_idx = 0;
                    sg_entries = Vec.create ();
                    sg_prev = start;
                    sg_done = Sim.Ivar.create ();
                  }
                in
                Vec.push sh.segs.(parity).(p).(seg_exec sh home 0) seg0;
                let ch =
                  {
                    ch_home = home;
                    ch_key = sk;
                    ch_seg_len = seg_len;
                    ch_max_segs = nsegs;
                    ch_last = seg0;
                    ch_nsegs = 1;
                  }
                in
                Hashtbl.add chain_tbl sk ch;
                Vec.push new_chains ch;
                m.Metrics.split_keys <- m.Metrics.split_keys + 1;
                m.Metrics.split_subqueues <- m.Metrics.split_subqueues + 1;
                Some ch
            | _ -> None))
  in
  let chain_push ch entry =
    if
      Vec.length ch.ch_last.sg_entries >= ch.ch_seg_len
      && ch.ch_nsegs < ch.ch_max_segs
    then begin
      let seg =
        {
          sg_home = ch.ch_home;
          sg_key = ch.ch_key;
          sg_idx = ch.ch_nsegs;
          sg_entries = Vec.create ();
          sg_prev = ch.ch_last.sg_done;
          sg_done = Sim.Ivar.create ();
        }
      in
      Vec.push sh.segs.(parity).(p).(seg_exec sh ch.ch_home ch.ch_nsegs) seg;
      ch.ch_nsegs <- ch.ch_nsegs + 1;
      ch.ch_last <- seg;
      m.Metrics.split_subqueues <- m.Metrics.split_subqueues + 1
    end;
    Vec.push ch.ch_last.sg_entries entry
  in
  (* Early (read-only, never-written-table) abortable fragments go to the
     head of their queues so abort decisions resolve before the gated
     updates arrive. *)
  let front = Array.init en (fun _ -> Vec.create ()) in
  (* Pass 2: the original planning loop, now with hot keys diverted into
     chain segments. *)
  for j = 0 to count - 1 do
    Sim.tick sh.sim costs.Costs.txn_overhead;
    let txn, entry = slice.(j) in
    txn.Txn.submit_time <- Sim.now sh.sim;
    txn.Txn.attempts <- txn.Txn.attempts + 1;
    let rt = make_rt ?entry txn (start + j) in
    sh.rts.(parity).(start + j) <- Some rt;
    Array.iter
      (fun (f : Fragment.t) ->
        Sim.tick sh.sim costs.Costs.plan_fragment;
        let rc_read = is_rc f in
        let e =
          if rc_read then begin
            (* Read-committed reads are safe on any core: spread them. *)
            rr := (!rr + 1) mod en;
            !rr
          end
          else route_exec f.Fragment.table f.Fragment.key
        in
        let sk = sig_key f.Fragment.table f.Fragment.key in
        (* RC reads stay out of the signature: they only read committed
           state, so they commute with any steal.  Split keys stay IN:
           the home queue's signature must keep protecting the key's
           cross-priority order while its chain is in flight. *)
        if sh.cfg.steal && not rc_read then
          Hashtbl.replace sh.qsig.(parity).(p).(e) sk ();
        let in_chain =
          (not rc_read)
          &&
          match chain_for sk e with
          | Some ch ->
              chain_push ch { rt; frag = f };
              true
          | None -> false
        in
        if not in_chain then
          if f.Fragment.early && Array.length f.Fragment.data_deps = 0 then
            Vec.push front.(e) { rt; frag = f }
          else Vec.push queues.(e) { rt; frag = f })
      franks.(j)
  done;
  Array.iteri
    (fun e fv ->
      if not (Vec.is_empty fv) then begin
        let main = Vec.to_array queues.(e) in
        Vec.clear queues.(e);
        Vec.iter (fun x -> Vec.push queues.(e) x) fv;
        Array.iter (fun x -> Vec.push queues.(e) x) main
      end)
    front;
  if sh.segs <> [||] then begin
    (* Register chain joins with the home executors and put every
       executor's assigned segments in the global (home, key, idx) order
       the deadlock-freedom argument needs. *)
    Vec.iter
      (fun ch ->
        Vec.push sh.chain_joins.(parity).(p).(ch.ch_home) ch.ch_last.sg_done)
      new_chains;
    for e = 0 to en - 1 do
      Vec.sort
        (fun a b ->
          compare (a.sg_home, a.sg_key, a.sg_idx)
            (b.sg_home, b.sg_key, b.sg_idx))
        sh.segs.(parity).(p).(e)
    done
  end;
  if sh.cfg.steal then
    (* Completion units per queue cell: the drain itself, plus one if
       chain joins are homed there (see [drain_queues]). *)
    for e = 0 to en - 1 do
      sh.qpend.(parity).(p).(e) <-
        (if
           sh.chain_joins <> [||]
           && Vec.length sh.chain_joins.(parity).(p).(e) > 0
         then 2
         else 1)
    done

let plan_slice sh ~parity ~bno ?size p stream rr =
  let batch_size = match size with Some s -> s | None -> sh.cfg.batch_size in
  let start, count =
    slice_bounds ~batch_size ~planners:sh.cfg.planners p
  in
  plan_txns sh ~parity ~bno p ~start ~count
    ~get:(fun _ -> (stream (), None))
    rr

(* Client mode: the batch is whatever [drain] returned at batch-close, so
   its size varies; planners split it the same way they split a fixed
   batch.  A planner whose slice is empty still clears its queues. *)
let plan_slice_clients sh ~parity ~bno p entries rr =
  let start, count =
    slice_bounds ~batch_size:(Array.length entries)
      ~planners:sh.cfg.planners p
  in
  plan_txns sh ~parity ~bno p ~start ~count
    ~get:(fun j ->
      let e = entries.(start + j) in
      (e.Clients.txn, Some e))
    rr

(* ------------------------------------------------------------------ *)
(* Speculative recovery: cascade closure, undo, serial re-execution     *)
(* ------------------------------------------------------------------ *)

let serial_ctx sh recovery_slot undo_log insert_log slots cur_row cur_found =
  let costs = sh.cfg.costs in
  let read (frag : Fragment.t) field =
    Sim.tick sh.sim costs.Costs.row_read;
    if not !cur_found then 0
    else
      match (sh.cfg.isolation, frag.Fragment.mode) with
      | Read_committed, Fragment.Read -> (!cur_row).Row.committed.(field)
      | _ -> (!cur_row).Row.data.(field)
  in
  let write (frag : Fragment.t) field v =
    Sim.tick sh.sim costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      undo_log := (row, Array.copy row.Row.data) :: !undo_log;
      mark_touched sh recovery_slot frag.Fragment.table row;
      row.Row.data.(field) <- v
    end
  in
  let add (frag : Fragment.t) field d =
    Sim.tick sh.sim costs.Costs.row_write;
    if !cur_found then begin
      let row = !cur_row in
      undo_log := (row, Array.copy row.Row.data) :: !undo_log;
      mark_touched sh recovery_slot frag.Fragment.table row;
      row.Row.data.(field) <- row.Row.data.(field) + d
    end
  in
  let insert (frag : Fragment.t) ~key payload =
    Sim.tick sh.sim costs.Costs.index_insert;
    let tbl = Db.table sh.db frag.Fragment.table in
    let home = Db.home sh.db frag.Fragment.table frag.Fragment.key in
    let row = Table.insert tbl ~home ~key payload in
    (* Recovery-pass inserts must land in the touched set too: the WAL
       write set is emitted from it, and a replay that misses an insert
       diverges from the fault-free run. *)
    mark_touched sh recovery_slot frag.Fragment.table row;
    insert_log := (frag.Fragment.table, key) :: !insert_log
  in
  let input fid = slots.(fid) in
  let output fid v = slots.(fid) <- v in
  let found _ = !cur_found in
  { Exec.read; write; add; insert; input; output; found }

let reexec_txn sh recovery_slot rt =
  let costs = sh.cfg.costs in
  let undo_log = ref [] and insert_log = ref [] in
  let slots = Array.make (Array.length rt.txn.Txn.frags) 0 in
  let cur_row = ref dummy_row and cur_found = ref false in
  let ctx = serial_ctx sh recovery_slot undo_log insert_log slots cur_row
              cur_found
  in
  rt.txn.Txn.attempts <- rt.txn.Txn.attempts + 1;
  let outcome =
    let frags = rt.txn.Txn.frags in
    let rec go i =
      if i >= Array.length frags then Exec.Ok
      else begin
        let frag = frags.(i) in
        (match frag.Fragment.mode with
        | Fragment.Insert ->
            cur_row := dummy_row;
            cur_found := true
        | Fragment.Read | Fragment.Write | Fragment.Rmw -> (
            Sim.tick sh.sim costs.Costs.index_probe;
            match locate sh frag with
            | Some row ->
                cur_row := row;
                cur_found := true
            | None ->
                cur_row := dummy_row;
                cur_found := false));
        Sim.tick sh.sim costs.Costs.logic;
        match sh.wl.Workload.exec ctx rt.txn frag with
        | Exec.Ok -> go (i + 1)
        | Exec.Abort -> Exec.Abort
        | Exec.Blocked -> assert false
      end
    in
    go 0
  in
  match outcome with
  | Exec.Ok -> rt.txn.Txn.status <- Txn.Committed
  | Exec.Abort | Exec.Blocked ->
      (* Roll back this attempt's own effects. *)
      List.iter
        (fun (row, saved) ->
          Sim.tick sh.sim costs.Costs.abort_cleanup;
          Row.restore row saved)
        !undo_log;
      List.iter
        (fun (tid, key) -> Table.remove (Db.table sh.db tid) key)
        !insert_log;
      rt.txn.Txn.status <- Txn.Aborted

let recover sh ~parity =
  let rts = sh.rts.(parity) in
  let n = sh.cfg.batch_size in
  let in_a = Array.make n false in
  let any = ref false in
  for b = 0 to n - 1 do
    match rts.(b) with
    | None -> ()
    | Some rt ->
        if rt.logic_abort then begin
          in_a.(b) <- true;
          any := true
        end
        else if Vec.exists (fun d -> in_a.(d)) rt.deps_on then begin
          in_a.(b) <- true;
          any := true
        end
  done;
  if !any then begin
    let costs = sh.cfg.costs in
    (* Undo: walk each affected row's log newest-first, reverting the
       field writes of cascaded transactions.  Per-field WAW edges
       guarantee that any later writer of the same field is cascaded
       too, so reverting in reverse chronological order is exact. *)
    Array.iter
      (fun touched ->
        Vec.iter
          (fun (_, row) ->
            if row.Row.undo <> [] then begin
              let kept =
                List.filter
                  (fun (b, field, uop) ->
                    if in_a.(b) then begin
                      Sim.tick sh.sim costs.Costs.abort_cleanup;
                      (match uop with
                      | Row.Uset old -> row.Row.data.(field) <- old
                      | Row.Uadd d ->
                          row.Row.data.(field) <- row.Row.data.(field) - d);
                      false
                    end
                    else true)
                  row.Row.undo
              in
              row.Row.undo <- kept
            end)
          touched)
      sh.touched;
    (* Remove inserts made by cascaded transactions. *)
    for b = 0 to n - 1 do
      if in_a.(b) then
        match rts.(b) with
        | None -> ()
        | Some rt ->
            List.iter
              (fun (tid, key) ->
                Sim.tick sh.sim costs.Costs.abort_cleanup;
                Table.remove (Db.table sh.db tid) key)
              rt.inserts;
            rt.inserts <- []
    done;
    (* Serial deterministic re-execution in batch order. *)
    let recovery_slot = sh.cfg.executors in
    for b = 0 to n - 1 do
      if in_a.(b) then
        match rts.(b) with
        | None -> ()
        | Some rt ->
            sh.metrics.Metrics.cascades <- sh.metrics.Metrics.cascades + 1;
            reexec_txn sh recovery_slot rt
    done
  end;
  (* Finalize statuses. *)
  for b = 0 to n - 1 do
    match rts.(b) with
    | None -> ()
    | Some rt ->
        if rt.txn.Txn.status = Txn.Active then rt.txn.Txn.status <- Txn.Committed
  done

(* Conservative mode: every surviving transaction commits. *)
let finalize_statuses sh ~parity =
  for i = 0 to sh.cfg.batch_size - 1 do
    match sh.rts.(parity).(i) with
    | Some rt when rt.txn.Txn.status = Txn.Active ->
        rt.txn.Txn.status <- Txn.Committed
    | Some _ | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Between-batch adaptation                                            *)
(* ------------------------------------------------------------------ *)

(* Rebalance the virtual-partition map from the load the planners of
   batch [bno] measured: longest-processing-time-first over the loaded
   vparts, heaviest to the least-loaded executor.  Runs on one thread
   during the recover phase of batch [bno]; it rewrites the parity-[bno]
   map, which the planners of batch [bno + 2] are the next to read, so
   the rewrite can never race a planner (batch [bno + 1] planning uses
   the other parity).  Zero-load vparts keep their mapping. *)
let rebalance sh ~bno =
  match sh.cfg.adapt with
  | Some a when a.repartition && Array.length sh.rmap > 0 ->
      let par = bno land 1 in
      let load = sh.vload.(par) and map = sh.rmap.(par) in
      let nvp = Array.length map in
      let idx = Array.init nvp (fun i -> i) in
      Array.sort
        (fun i j ->
          let c = compare load.(j) load.(i) in
          if c <> 0 then c else compare i j)
        idx;
      let eload = Array.make sh.cfg.executors 0 in
      let moves = ref 0 in
      Array.iter
        (fun vp ->
          if load.(vp) > 0 then begin
            let best = ref 0 in
            for e = 1 to sh.cfg.executors - 1 do
              if eload.(e) < eload.(!best) then best := e
            done;
            Sim.tick sh.sim sh.cfg.costs.Costs.queue_op;
            if map.(vp) <> !best then begin
              incr moves;
              map.(vp) <- !best
            end;
            eload.(!best) <- eload.(!best) + load.(vp)
          end)
        idx;
      Array.fill load 0 nvp 0;
      sh.metrics.Metrics.repart_moves <-
        sh.metrics.Metrics.repart_moves + !moves
  | _ -> ()

(* Pick the size of the next planned batch from the stall split since
   the last decision: fill stalls (executors starved) say planning is
   the bottleneck — grow the batch; drain stalls (planners blocked on a
   busy buffer) say execution is — shrink it.  25% steps, clamped to
   [adapt.min_batch, cfg.batch_size]; the run's total transaction
   budget is conserved exactly. *)
let next_batch_size sh abs =
  let m = sh.metrics in
  let df = m.Metrics.pipe_fill_stall - abs.abs_last_fill
  and dd = m.Metrics.pipe_drain_stall - abs.abs_last_drain in
  abs.abs_last_fill <- m.Metrics.pipe_fill_stall;
  abs.abs_last_drain <- m.Metrics.pipe_drain_stall;
  let min_b =
    match sh.cfg.adapt with
    | Some a -> min a.min_batch sh.cfg.batch_size
    | None -> 1
  in
  let old = abs.abs_cur in
  if df > dd then abs.abs_cur <- min sh.cfg.batch_size (old + max 1 (old / 4))
  else if dd > df then abs.abs_cur <- max min_b (old - max 1 (old / 4));
  if abs.abs_cur <> old then
    m.Metrics.batch_resizes <- m.Metrics.batch_resizes + 1;
  let sz = min abs.abs_cur abs.abs_remaining in
  abs.abs_remaining <- abs.abs_remaining - sz;
  sz

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let publish_slot sh slot =
  Vec.iter
    (fun (_, row) ->
      Row.publish row;
      row.Row.undo <- [];
      row.Row.fstate <- [||];
      row.Row.inserter <- -1)
    sh.touched.(slot);
  Vec.clear sh.touched.(slot)

let account ?clients sh ~parity =
  let now = Sim.now sh.sim in
  let rts = sh.rts.(parity) in
  for b = 0 to sh.cfg.batch_size - 1 do
    match rts.(b) with
    | None -> ()
    | Some rt ->
        rt.txn.Txn.finish_time <- now;
        let m = sh.metrics in
        (match rt.txn.Txn.status with
        | Txn.Committed -> m.Metrics.committed <- m.Metrics.committed + 1
        | Txn.Aborted -> m.Metrics.logic_aborted <- m.Metrics.logic_aborted + 1
        | Txn.Active | Txn.Pending -> assert false);
        Stats.Hist.add m.Metrics.lat (now - rt.txn.Txn.submit_time);
        (match (clients, rt.entry) with
        | Some c, Some e ->
            Clients.complete c e ~ok:(rt.txn.Txn.status = Txn.Committed)
        | _ -> ());
        rts.(b) <- None
  done;
  sh.metrics.Metrics.batches <- sh.metrics.Metrics.batches + 1

(* ------------------------------------------------------------------ *)
(* Durability: group-commit WAL and crash recovery                     *)
(* ------------------------------------------------------------------ *)

(* Emit the batch's write set into the WAL group buffer.  Runs in the
   recover phase, after cascade recovery has settled every row but
   BEFORE publish clears the touched vectors: a touched row's [data] at
   this point is exactly the image publish will install as committed, so
   logging [data] now equals logging [committed] later.  A touched row
   whose key no longer resolves was a rolled-back insert — skipped.  The
   flush itself ([wal_flush]) happens after the publish barrier, so a
   snapshot roll clones the fully published database. *)
let wal_emit sh ~bno =
  match sh.wal with
  | None -> ()
  | Some w ->
      Wal.begin_batch w ~batch_no:bno;
      Array.iter
        (fun touched ->
          Vec.iter
            (fun (tid, (row : Row.t)) ->
              let tbl = Db.table sh.db tid in
              match Table.find tbl row.Row.key with
              | Some r ->
                  Wal.log_effect w ~table:tid
                    ~home:(Table.home_of_key tbl r.Row.key)
                    ~key:r.Row.key r.Row.data
              | None -> ())
            touched)
        sh.touched

(* Stage the batch's change set into the CDC hub at the same seam
   [wal_emit] uses: every status is settled but publish has not yet
   overwritten the [committed] pre-images, so each touched row yields
   exactly (pre-batch committed, post-batch data).  A row whose
   [inserter] is still set was inserted by this batch (publish resets
   the mark); one whose key no longer resolves was a rolled-back insert
   — skipped.  The hub dedupes rows touched from several executor
   slots. *)
let cdc_emit sh =
  match sh.cdc with
  | None -> ()
  | Some c ->
      Array.iter
        (fun touched ->
          Vec.iter
            (fun (tid, (row : Row.t)) ->
              let tbl = Db.table sh.db tid in
              match Table.find tbl row.Row.key with
              | Some r ->
                  if r.Row.inserter >= 0 then
                    Cdc.stage_insert c ~table:tid ~key:r.Row.key
                      ~after:r.Row.data
                  else
                    Cdc.stage c ~table:tid ~key:r.Row.key
                      ~before:r.Row.committed ~after:r.Row.data
              | None -> ())
            touched)
        sh.touched

(* Group commit: append the commit marker and flush the whole batch with
   one modeled fsync.  [txns] counts this batch's committed
   transactions, so the durable-transaction boundary equals the
   committed count at every durable batch.  Called with the batch
   published and every other thread parked short of the next batch's row
   accesses, so the snapshot [Db.clone] inside cannot race a writer. *)
let wal_flush sh ~txns ~bno =
  match sh.wal with
  | None -> ()
  | Some w -> ignore (Wal.commit_batch w ~batch_no:bno ~txns)

(* Seal the batch's feed entry after the publish barrier (and after the
   WAL flush): the database is fully committed, so subscriber snapshot
   catch-up sees exactly the state the feed has reached. *)
let cdc_seal sh ~txns ~bno =
  match sh.cdc with
  | None -> ()
  | Some c -> Cdc.publish c ~batch_no:bno ~txns

let committed_in sh ~parity =
  let n = ref 0 in
  Array.iter
    (function
      | Some rt when rt.txn.Txn.status = Txn.Committed -> incr n
      | Some _ | None -> ())
    sh.rts.(parity);
  !n

(* The crash killed the node mid-batch: the in-flight batch was never
   flushed or accounted, so it is lost.  Model the reboot, rebuild the
   database from the newest snapshot plus the WAL (checksum-validated,
   truncating at the first damaged record), and reconcile the committed
   count to what the log proves durable — any batch acked before its
   group survived the disk (a failing or wedged fsync) is retracted
   here, which is exactly the lost-commit window the durability tests
   measure. *)
let crash_recover sh =
  let m = sh.metrics in
  m.Metrics.crashes <- m.Metrics.crashes + 1;
  (* the reboot cost is charged inside Wal.recover, with the replay *)
  match sh.wal with
  | None -> ()
  | Some w ->
      Wal.recover w sh.db;
      m.Metrics.committed <- Wal.durable_txns w

let crash_due sh =
  match sh.crash_at with
  | Some at -> (not sh.crashed) && Sim.now sh.sim >= at
  | None -> false

(* Copy the simulator's per-phase busy / per-cause idle attribution into
   the run's metrics. *)
let record_sim_breakdown m sim =
  Metrics.record_phases m
    ~plan:(Sim.busy_in sim Sim.Ph_plan)
    ~execute:(Sim.busy_in sim Sim.Ph_execute)
    ~recover:(Sim.busy_in sim Sim.Ph_recover)
    ~publish:(Sim.busy_in sim Sim.Ph_publish)
    ~other:(Sim.busy_in sim Sim.Ph_other);
  Metrics.record_idle m
    ~barrier:(Sim.idle_in sim Sim.Cause_barrier)
    ~ivar:(Sim.idle_in sim Sim.Cause_ivar)
    ~chan:(Sim.idle_in sim Sim.Cause_chan)
    ~sleep:(Sim.idle_in sim Sim.Cause_sleep)

(* Run [f] as engine phase [ph], emitting a span covering its virtual
   extent when tracing.  The span includes wait time inside the phase;
   busy attribution (Sim.busy_in) counts only ticks. *)
let in_phase sim ph tid f =
  Sim.set_phase sim ph;
  let t0 = Sim.now sim in
  f ();
  let tr = Sim.tracer sim in
  if Trace.enabled tr then
    Trace.span tr ~tid ~name:(Sim.phase_name ph) ~ts:t0
      ~dur:(Sim.now sim - t0) ();
  Sim.set_phase sim Sim.Ph_other

(* ------------------------------------------------------------------ *)
(* Lockstep execution (the oracle): plan | execute | recover | publish  *)
(* separated by full barriers, every batch.                             *)
(* ------------------------------------------------------------------ *)

let spawn_lockstep sim sh ?clients ~batches ~streams () =
  let cfg = sh.cfg in
  let nthreads = max cfg.planners cfg.executors in
  let barrier = Sim.Barrier.create nthreads in
  (* Client mode: thread 0 closes each batch by draining the admission
     queue; the resulting (variable-size) batch is shared through
     [pending].  [continue_] flips when the drain comes back empty —
     every client transaction is finally resolved, so no batch can ever
     form again.  All threads read it after the same barrier, keeping
     barrier counts uniform. *)
  let continue_ = ref true in
  let pending = ref [||] in
  for t = 0 to nthreads - 1 do
    Sim.spawn sim (fun () ->
        let st = { eid = t; cur_rt = dummy_rt; cur_row = dummy_row;
                   cur_found = false }
        in
        let ctx = make_ctx sh st in
        let rr = ref t in
        let tr = Sim.tracer sim in
        let queue_depth_counter () =
          if Trace.enabled tr then begin
            let depth = ref 0 in
            for p = 0 to cfg.planners - 1 do
              depth := !depth + Vec.length sh.queues.(0).(p).(t)
            done;
            Trace.counter tr ~tid:t ~name:"queue_depth"
              ~series:("exec" ^ string_of_int t) ~ts:(Sim.now sim)
              ~value:!depth
          end
        in
        let wal_txns = ref 0 in
        let run_batch plan_fn account_fn =
          if t < cfg.planners then in_phase sim Sim.Ph_plan t plan_fn;
          Sim.Barrier.await sim barrier;
          if t < cfg.executors then begin
            queue_depth_counter ();
            in_phase sim Sim.Ph_execute t (fun () ->
                drain_queues sh st ctx ~parity:0)
          end;
          Sim.Barrier.await sim barrier;
          if t = 0 then
            in_phase sim Sim.Ph_recover t (fun () ->
                (* The crash point: thread 0 reaches the batch commit
                   point past the crash time — the in-flight batch dies
                   (never logged, never accounted) and every thread
                   unwinds after the publish barrier. *)
                if crash_due sh then sh.crashed <- true
                else begin
                  if cfg.mode = Speculative then recover sh ~parity:0
                  else finalize_statuses sh ~parity:0;
                  wal_emit sh ~bno:sh.batch_no;
                  cdc_emit sh;
                  wal_txns := committed_in sh ~parity:0;
                  account_fn ();
                  rebalance sh ~bno:sh.batch_no
                end);
          Sim.Barrier.await sim barrier;
          if (not sh.crashed) && (t < cfg.executors || t = 0) then
            in_phase sim Sim.Ph_publish t (fun () ->
                if t < cfg.executors then publish_slot sh t;
                if t = 0 then publish_slot sh cfg.executors);
          Sim.Barrier.await sim barrier;
          (* Group-commit flush after the publish barrier so a snapshot
             roll clones fully published state; the next batch's
             executors are held at the post-plan barrier until thread 0
             arrives, so the flush cannot race a row access. *)
          if t = 0 then
            if sh.crashed then
              in_phase sim Sim.Ph_recover t (fun () -> crash_recover sh)
            else begin
              wal_flush sh ~txns:!wal_txns ~bno:sh.batch_no;
              cdc_seal sh ~txns:!wal_txns ~bno:sh.batch_no
            end
        in
        match clients with
        | None ->
            for b = 0 to batches - 1 do
              if not sh.crashed then begin
                if t = 0 then sh.batch_no <- b;
                run_batch
                  (fun () -> plan_slice sh ~parity:0 ~bno:b t streams.(t) rr)
                  (fun () -> account sh ~parity:0)
              end
            done
        | Some c ->
            (* Every thread runs the same barrier sequence per round:
               thread 0 decides [continue_] strictly before the round
               barrier and everyone reads it strictly after, so the
               decision can never race a thread's loop check (a bare
               [while !continue_] here deadlocks: late checkers exit
               while early checkers park on the round barrier). *)
            let rec loop () =
              if t = 0 then begin
                pending := Clients.drain c ~node:0 ~max:cfg.batch_size;
                continue_ := Array.length !pending > 0;
                if !continue_ then sh.batch_no <- sh.batch_no + 1
              end;
              Sim.Barrier.await sim barrier;
              if !continue_ then begin
                run_batch
                  (fun () ->
                    plan_slice_clients sh ~parity:0 ~bno:sh.batch_no t
                      !pending rr)
                  (fun () -> account ~clients:c sh ~parity:0);
                loop ()
              end
            in
            loop ())
  done;
  nthreads

(* ------------------------------------------------------------------ *)
(* Pipelined execution: dedicated planner and executor threads,        *)
(* double-buffered queues, one hand-off per batch.                     *)
(* ------------------------------------------------------------------ *)

(* Per-batch one-shot synchronisation, lazily created on first access
   (any thread may get there first; creation never yields, so the
   check-then-add pair is atomic under the cooperative scheduler):
     planned(b)    gate(planners)   planners arrive after planning b
     start(b)      bool ivar        executor 0 opens batch b (false = stop)
     exec_done(b)  gate(executors)  executors arrive after draining b
     recovered(b)  unit ivar        recovery + accounting of b is done
     published(b)  gate(executors)  all slots of b are published
     pending(b)    entries ivar     client mode: the drained batch b
   Batch b for an executor: await start(b) -> drain parity (b land 1) ->
   arrive exec_done(b) -> [e0: recover/account, fill recovered(b)] ->
   publish own slot -> arrive published(b) -> [e0: await published(b),
   await planned(b+1), advance batch_no, fill start(b+1)].  A planner
   plans b as soon as recovered(b-2) is filled — the parity buffer is
   guaranteed drained — so planning b overlaps execution of b-1 and
   publish/recovery of b-2 overlaps planning of b.  Publish of b
   completing before start(b+1) is what keeps read-committed reads and
   cross-slot recovery exact: committed images only ever change between
   batches, exactly as in the lockstep path. *)
let spawn_pipelined sim sh ?clients ~batches ~streams () =
  let cfg = sh.cfg in
  let m = sh.metrics in
  let planned_g : (int, Sim.Gate.g) Hashtbl.t = Hashtbl.create 16 in
  let exec_done_g : (int, Sim.Gate.g) Hashtbl.t = Hashtbl.create 16 in
  let published_g : (int, Sim.Gate.g) Hashtbl.t = Hashtbl.create 16 in
  let start_iv : (int, bool Sim.Ivar.iv) Hashtbl.t = Hashtbl.create 16 in
  let recovered_iv : (int, unit Sim.Ivar.iv) Hashtbl.t = Hashtbl.create 16 in
  let pending_iv : (int, Clients.entry array Sim.Ivar.iv) Hashtbl.t =
    Hashtbl.create 16
  in
  (* Auto-batch mode: planner 0 publishes the tuned size of batch b
     through size(b); 0 = the transaction budget is spent, unwind (the
     closed-loop analogue of client mode's empty drain). *)
  let size_iv : (int, int Sim.Ivar.iv) Hashtbl.t = Hashtbl.create 16 in
  let gate tbl ~parties b =
    match Hashtbl.find_opt tbl b with
    | Some g -> g
    | None ->
        let g = Sim.Gate.create parties in
        Hashtbl.add tbl b g;
        g
  in
  let ivar : 'a. (int, 'a Sim.Ivar.iv) Hashtbl.t -> int -> 'a Sim.Ivar.iv =
   fun tbl b ->
    match Hashtbl.find_opt tbl b with
    | Some iv -> iv
    | None ->
        let iv = Sim.Ivar.create () in
        Hashtbl.add tbl b iv;
        iv
  in
  let fill_stall t0 =
    m.Metrics.pipe_fill_stall <-
      m.Metrics.pipe_fill_stall + (Sim.now sim - t0)
  in
  (* Planner threads (trace tids above the executor range). *)
  for p = 0 to cfg.planners - 1 do
    Sim.spawn sim (fun () ->
        let tid = cfg.executors + p in
        let rr = ref p in
        let await_drained b =
          (* The parity buffer for b is reusable once batch b-2 has been
             recovered and accounted. *)
          if b >= 2 then begin
            let t0 = Sim.now sim in
            Sim.Ivar.read sim (ivar recovered_iv (b - 2));
            m.Metrics.pipe_drain_stall <-
              m.Metrics.pipe_drain_stall + (Sim.now sim - t0)
          end
        in
        match (clients, sh.abs) with
        | None, None ->
            for b = 0 to batches - 1 do
              await_drained b;
              in_phase sim Sim.Ph_plan tid (fun () ->
                  plan_slice sh ~parity:(b land 1) ~bno:b p streams.(p) rr);
              Sim.Gate.arrive sim (gate planned_g ~parties:cfg.planners b)
            done
        | None, Some abs ->
            let rec loop b =
              await_drained b;
              if p = 0 then
                Sim.Ivar.fill sim (ivar size_iv b) (next_batch_size sh abs);
              let sz = Sim.Ivar.read sim (ivar size_iv b) in
              if sz = 0 then
                Sim.Gate.arrive sim (gate planned_g ~parties:cfg.planners b)
              else begin
                in_phase sim Sim.Ph_plan tid (fun () ->
                    plan_slice sh ~parity:(b land 1) ~bno:b ~size:sz p
                      streams.(p) rr);
                Sim.Gate.arrive sim (gate planned_g ~parties:cfg.planners b);
                loop (b + 1)
              end
            in
            loop 0
        | Some c, _ ->
            (* Planner 0 closes each batch by draining the admission
               queue and shares it through pending(b); an empty drain
               means every client transaction is finally resolved (the
               executors' accounting wakes the drain), so batch b never
               forms and everyone unwinds. *)
            let rec loop b =
              await_drained b;
              if p = 0 then
                Sim.Ivar.fill sim (ivar pending_iv b)
                  (Clients.drain c ~node:0 ~max:cfg.batch_size);
              let entries = Sim.Ivar.read sim (ivar pending_iv b) in
              if Array.length entries = 0 then
                Sim.Gate.arrive sim (gate planned_g ~parties:cfg.planners b)
              else begin
                in_phase sim Sim.Ph_plan tid (fun () ->
                    plan_slice_clients sh ~parity:(b land 1) ~bno:b p entries
                      rr);
                Sim.Gate.arrive sim (gate planned_g ~parties:cfg.planners b);
                loop (b + 1)
              end
            in
            loop 0)
  done;
  (* Executor threads. *)
  for e = 0 to cfg.executors - 1 do
    Sim.spawn sim (fun () ->
        let st = { eid = e; cur_rt = dummy_rt; cur_row = dummy_row;
                   cur_found = false }
        in
        let ctx = make_ctx sh st in
        let tr = Sim.tracer sim in
        let queue_depth_counter parity =
          if Trace.enabled tr then begin
            let depth = ref 0 in
            for p = 0 to cfg.planners - 1 do
              depth := !depth + Vec.length sh.queues.(parity).(p).(e)
            done;
            Trace.counter tr ~tid:e ~name:"queue_depth"
              ~series:("exec" ^ string_of_int e) ~ts:(Sim.now sim)
              ~value:!depth
          end
        in
        let wal_txns = ref 0 in
        let rec loop b =
          let go =
            if e = 0 then begin
              let go =
                (not sh.crashed)
                && (match (clients, sh.abs) with
                   | None, None ->
                       b < batches
                       && begin
                            let t0 = Sim.now sim in
                            Sim.Gate.await sim
                              (gate planned_g ~parties:cfg.planners b);
                            fill_stall t0;
                            true
                          end
                   | None, Some _ ->
                       let t0 = Sim.now sim in
                       Sim.Gate.await sim
                         (gate planned_g ~parties:cfg.planners b);
                       fill_stall t0;
                       Sim.Ivar.read sim (ivar size_iv b) > 0
                   | Some _, _ ->
                       let t0 = Sim.now sim in
                       Sim.Gate.await sim
                         (gate planned_g ~parties:cfg.planners b);
                       fill_stall t0;
                       Array.length (Sim.Ivar.read sim (ivar pending_iv b))
                       > 0)
              in
              (* batch_no is only read between start(b) and the end of
                 publish(b), so advancing it here cannot race the
                 planners: they never touch rows. *)
              if go then sh.batch_no <- b;
              Sim.Ivar.fill sim (ivar start_iv b) go;
              go
            end
            else begin
              let t0 = Sim.now sim in
              let go = Sim.Ivar.read sim (ivar start_iv b) in
              fill_stall t0;
              go
            end
          in
          if go then begin
            let parity = b land 1 in
            queue_depth_counter parity;
            in_phase sim Sim.Ph_execute e (fun () ->
                drain_queues sh st ctx ~parity);
            Sim.Gate.arrive sim (gate exec_done_g ~parties:cfg.executors b);
            if e = 0 then begin
              Sim.Gate.await sim (gate exec_done_g ~parties:cfg.executors b);
              in_phase sim Sim.Ph_recover e (fun () ->
                  (* The crash point, pipelined: executor 0 reaches batch
                     b's commit point past the crash time — b dies
                     unlogged and unaccounted. *)
                  if crash_due sh then sh.crashed <- true
                  else begin
                    if cfg.mode = Speculative then recover sh ~parity
                    else finalize_statuses sh ~parity;
                    wal_emit sh ~bno:b;
                    cdc_emit sh;
                    wal_txns := committed_in sh ~parity;
                    account ?clients sh ~parity;
                    rebalance sh ~bno:b
                  end);
              Sim.Ivar.fill sim (ivar recovered_iv b) ();
              if sh.crashed then begin
                (* Unblock planners already committed to future batches:
                   they plan into buffers nobody drains and unwind.  The
                   horizon covers the deepest batch number any planner
                   loop can reach. *)
                let horizon =
                  match sh.abs with
                  | Some _ -> (batches * cfg.batch_size) + 2
                  | None -> batches + 2
                in
                for bb = b + 1 to horizon do
                  let iv = ivar recovered_iv bb in
                  if not (Sim.Ivar.is_full iv) then Sim.Ivar.fill sim iv ()
                done
              end
            end
            else ignore (Sim.Ivar.read sim (ivar recovered_iv b));
            if not sh.crashed then
              in_phase sim Sim.Ph_publish e (fun () ->
                  publish_slot sh e;
                  if e = 0 then publish_slot sh cfg.executors);
            Sim.Gate.arrive sim (gate published_g ~parties:cfg.executors b);
            if e = 0 then begin
              Sim.Gate.await sim (gate published_g ~parties:cfg.executors b);
              (* Group-commit flush once every slot of b is published (a
                 snapshot roll clones fully published state); executors
                 of b+1 are still parked on start(b+1), which is filled
                 below in [loop], so the flush cannot race a row
                 access. *)
              if sh.crashed then
                in_phase sim Sim.Ph_recover e (fun () -> crash_recover sh)
              else begin
                wal_flush sh ~txns:!wal_txns ~bno:b;
                cdc_seal sh ~txns:!wal_txns ~bno:b
              end;
              (* Drop sync state no thread can reach again: everything
                 of batch b except recovered(b), which planners of batch
                 b+2 still await. *)
              Hashtbl.remove planned_g b;
              Hashtbl.remove exec_done_g b;
              Hashtbl.remove published_g b;
              Hashtbl.remove start_iv b;
              Hashtbl.remove pending_iv b;
              Hashtbl.remove size_iv b;
              if b >= 2 then Hashtbl.remove recovered_iv (b - 2)
            end;
            loop (b + 1)
          end
        in
        loop 0)
  done;
  cfg.planners + cfg.executors

let run ?sim ?clients ?recorder ?wal ?cdc ?crash_at cfg wl ~batches =
  assert (cfg.planners > 0 && cfg.executors > 0 && cfg.batch_size > 0);
  (match (crash_at, clients) with
  | Some _, Some _ ->
      invalid_arg
        "Quecc.Engine.run: crash faults and open-loop clients cannot be \
         combined (a crashed node strands the admission queue)"
  | _ -> ());
  (match (crash_at, cdc) with
  | Some _, Some _ ->
      invalid_arg
        "Quecc.Engine.run: --cdc cannot be combined with crash faults (a \
         crash-truncated run would feed subscribers retracted commits)"
  | _ -> ());
  (match cfg.split with
  | Some sc -> assert (sc.hot_threshold > 0 && sc.max_subqueues >= 2)
  | None -> ());
  (match cfg.adapt with
  | Some a -> assert (a.spread > 0 && a.min_batch > 0)
  | None -> ());
  let sim =
    match sim with
    | Some s -> s
    | None -> Sim.create ~wake_cost:cfg.costs.Costs.wakeup ()
  in
  let nbuf = if cfg.pipeline then 2 else 1 in
  let split_on = cfg.split <> None && cfg.executors > 1 in
  let seg_matrix () =
    Array.init nbuf (fun _ ->
        Array.init cfg.planners (fun _ ->
            Array.init cfg.executors (fun _ -> Vec.create ())))
  in
  let rmap, vload =
    match cfg.adapt with
    | Some a when a.repartition ->
        let nvp = cfg.executors * a.spread in
        ( Array.init 2 (fun _ -> Array.init nvp (fun vp -> vp / a.spread)),
          Array.init 2 (fun _ -> Array.make nvp 0) )
    | _ -> ([||], [||])
  in
  let abs =
    match cfg.adapt with
    | Some a when a.auto_batch && cfg.pipeline && clients = None ->
        Some
          {
            abs_remaining = batches * cfg.batch_size;
            abs_cur = cfg.batch_size;
            abs_last_fill = 0;
            abs_last_drain = 0;
          }
    | _ -> None
  in
  let sh =
    {
      cfg;
      sim;
      wl;
      db = wl.Workload.db;
      queues =
        Array.init nbuf (fun _ ->
            Array.init cfg.planners (fun _ ->
                Array.init cfg.executors (fun _ -> Vec.create ())));
      rts = Array.init nbuf (fun _ -> Array.make cfg.batch_size None);
      touched = Array.init (cfg.executors + 1) (fun _ -> Vec.create ());
      qstate =
        (if cfg.steal then
           Array.init nbuf (fun _ ->
               Array.init cfg.planners (fun _ ->
                   Array.make cfg.executors 0))
         else [||]);
      qsig =
        (if cfg.steal then
           Array.init nbuf (fun _ ->
               Array.init cfg.planners (fun _ ->
                   Array.init cfg.executors (fun _ -> Hashtbl.create 64)))
         else [||]);
      qpend =
        (if cfg.steal then
           Array.init nbuf (fun _ ->
               Array.init cfg.planners (fun _ ->
                   Array.make cfg.executors 1))
         else [||]);
      chain_starts = (if split_on then seg_matrix () else [||]);
      chain_joins = (if split_on then seg_matrix () else [||]);
      segs = (if split_on then seg_matrix () else [||]);
      rmap;
      vload;
      metrics = Metrics.create ();
      recorder;
      abs;
      wal;
      cdc;
      crash_at;
      crashed = false;
      batch_no = 0;
    }
  in
  if cfg.pipeline then begin
    sh.metrics.Metrics.pipe_fill_threads <- cfg.executors;
    sh.metrics.Metrics.pipe_drain_threads <- cfg.planners
  end;
  let streams =
    match clients with
    | Some _ -> [||]
    | None -> Array.init cfg.planners wl.Workload.new_stream
  in
  let nthreads =
    if cfg.pipeline then spawn_pipelined sim sh ?clients ~batches ~streams ()
    else spawn_lockstep sim sh ?clients ~batches ~streams ()
  in
  let parked =
    match recorder with
    | None -> Sim.run sim
    | Some log -> Alog.with_sim log sim (fun () -> Sim.run sim)
  in
  if parked <> 0 then
    failwith (Printf.sprintf "Quecc.Engine.run: %d threads deadlocked" parked);
  let m = sh.metrics in
  m.Metrics.elapsed <- Sim.horizon sim;
  m.Metrics.busy <- Sim.busy_time sim;
  m.Metrics.idle <- Sim.idle_time sim;
  m.Metrics.threads <- nthreads;
  (match wal with Some w -> Wal.record w m | None -> ());
  record_sim_breakdown m sim;
  m
