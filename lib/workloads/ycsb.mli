(** YCSB-style transactional key-value workload (Cooper et al., SoCC'10),
    embedded as stored procedures the way ExpoDB/DBx1000 do: each
    transaction performs [ops_per_txn] operations on distinct keys drawn
    from a (scrambled) zipfian distribution.

    Knobs map directly onto the paper's experiments: [theta] controls
    contention (Table 2 row 3's YCSB counterpart), [mp_ratio] controls
    multi-partition transactions (row 1), and [abort_ratio]/
    [abort_threshold] inject data-dependent abortable fragments to
    exercise speculative vs conservative execution (section 3.2). *)

type cfg = {
  table_size : int;
  fields : int;
  ops_per_txn : int;
  read_ratio : float;      (** fraction of operations that are pure reads *)
  theta : float;           (** zipfian skew; 0 = uniform *)
  nparts : int;
  mp_ratio : float;        (** fraction of multi-partition transactions *)
  parts_per_txn : int;     (** partitions touched by a multi-partition txn *)
  abort_ratio : float;     (** fraction of txns carrying an abortable fragment *)
  abort_threshold : int;   (** 0-256: P(abort | abortable) ~ threshold/256 *)
  chain_deps : bool;       (** thread a data dependency through the ops *)
  global_zipf : bool;
      (** draw keys zipfian over the whole table instead of folding the
          draw into a per-txn partition choice: the globally hottest
          keys are then shared by every stream, the contention shape
          the adaptive planner's skew experiments target.  Ignores
          [mp_ratio]/[parts_per_txn]. *)
  seed : int;
}

val default : cfg
(** 100k rows, 10 fields, 10 ops, 50% reads, uniform, 4 partitions, no
    multi-partition txns, no aborts. *)

val make : cfg -> Quill_txn.Workload.t
(** Builds and populates the database, returns the workload handle. *)

(* Opcodes, exposed for white-box tests. *)
val op_read : int
val op_rmw : int
val op_write : int
val op_abort_check : int
val op_rmw_dep : int
