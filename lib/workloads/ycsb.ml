open Quill_common
open Quill_storage
open Quill_txn

type cfg = {
  table_size : int;
  fields : int;
  ops_per_txn : int;
  read_ratio : float;
  theta : float;
  nparts : int;
  mp_ratio : float;
  parts_per_txn : int;
  abort_ratio : float;
  abort_threshold : int;
  chain_deps : bool;
  global_zipf : bool;
  seed : int;
}

let default =
  {
    table_size = 100_000;
    fields = 10;
    ops_per_txn = 10;
    read_ratio = 0.5;
    theta = 0.0;
    nparts = 4;
    mp_ratio = 0.0;
    parts_per_txn = 2;
    abort_ratio = 0.0;
    abort_threshold = 0;
    chain_deps = false;
    global_zipf = false;
    seed = 42;
  }

let op_read = 0
let op_rmw = 1
let op_write = 2
let op_abort_check = 3
let op_rmw_dep = 4

let build_db cfg =
  let db = Db.create ~nparts:cfg.nparts in
  let _tid = Db.add_table db ~name:"usertable" ~nfields:cfg.fields
               ~capacity:cfg.table_size
  in
  let tbl = Db.table_by_name db "usertable" in
  let rng = Rng.create (cfg.seed * 7919) in
  Table.iter_dense
    (fun row ->
      for f = 0 to cfg.fields - 1 do
        row.Row.data.(f) <- Rng.int rng 1_000_000
      done;
      Row.publish row)
    tbl;
  db

(* Draw [n] distinct keys respecting the single-/multi-partition choice.
   With [global_zipf] the scrambled-zipfian draw is used as the key
   directly instead of being folded into a chosen partition, so the
   globally hottest keys are hit from every stream — the contention
   shape the adaptive planner (hot-key splitting / repartitioning) is
   designed for. *)
let draw_keys cfg zipf rng n =
  if cfg.global_zipf then begin
    let keys = Array.make n 0 in
    let i = ref 0 in
    while !i < n do
      let key = min (Zipf.sample_scrambled zipf rng) (cfg.table_size - 1) in
      if not (Array.exists (fun k -> k = key) (Array.sub keys 0 !i)) then begin
        keys.(!i) <- key;
        incr i
      end
    done;
    keys
  end
  else begin
  let part_size = (cfg.table_size + cfg.nparts - 1) / cfg.nparts in
  let multi = cfg.nparts > 1 && Rng.chance rng cfg.mp_ratio in
  let parts =
    if multi then begin
      let k = min cfg.parts_per_txn cfg.nparts in
      (* distinct partitions *)
      let chosen = Array.make k (-1) in
      let count = ref 0 in
      while !count < k do
        let p = Rng.int rng cfg.nparts in
        if not (Array.exists (( = ) p) chosen) then begin
          chosen.(!count) <- p;
          incr count
        end
      done;
      chosen
    end
    else [| Rng.int rng cfg.nparts |]
  in
  let keys = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    let p = parts.(!i mod Array.length parts) in
    let base = Zipf.sample_scrambled zipf rng in
    let key = (base mod part_size) + (p * part_size) in
    let key = if key >= cfg.table_size then cfg.table_size - 1 else key in
    if not (Array.exists (fun k -> k = key) (Array.sub keys 0 !i)) then begin
      keys.(!i) <- key;
      incr i
    end
  done;
  keys
  end

let gen_txn cfg zipf table_id rng tid =
  let n = cfg.ops_per_txn in
  let keys = draw_keys cfg zipf rng n in
  let abortable_txn = cfg.abort_ratio > 0.0 && Rng.chance rng cfg.abort_ratio in
  let abort_pos = if abortable_txn then Rng.int rng n else -1 in
  let frags =
    Array.init n (fun i ->
        let key = keys.(i) in
        if i = abort_pos then
          Fragment.make ~fid:i ~table:table_id ~key ~mode:Fragment.Read
            ~op:op_abort_check ~abortable:true
            ~args:[| cfg.abort_threshold |] ()
        else if Rng.chance rng cfg.read_ratio then
          Fragment.make ~fid:i ~table:table_id ~key ~mode:Fragment.Read
            ~op:op_read ()
        else if cfg.chain_deps && i > 0 then
          Fragment.make ~fid:i ~table:table_id ~key ~mode:Fragment.Rmw
            ~op:op_rmw_dep ~data_deps:[| i - 1 |]
            ~args:[| Rng.int rng 1000 |] ()
        else
          Fragment.make ~fid:i ~table:table_id ~key ~mode:Fragment.Rmw
            ~op:op_rmw
            ~args:[| 1 + Rng.int rng 1000 |] ())
  in
  (* Chained deps need every fragment to publish an output; op_read and
     op_rmw both do. *)
  Txn.make ~tid frags

let exec (ctx : Exec.ctx) (_txn : Txn.t) (frag : Fragment.t) : Exec.outcome =
  let op = frag.Fragment.op in
  if op = op_read then begin
    let v = ctx.Exec.read frag 0 in
    ctx.Exec.output frag.Fragment.fid v;
    Exec.Ok
  end
  else if op = op_rmw then begin
    let v = ctx.Exec.read frag 0 in
    ctx.Exec.write frag 0 (v + frag.Fragment.args.(0));
    ctx.Exec.output frag.Fragment.fid v;
    Exec.Ok
  end
  else if op = op_write then begin
    ctx.Exec.write frag 0 frag.Fragment.args.(0);
    ctx.Exec.output frag.Fragment.fid frag.Fragment.args.(0);
    Exec.Ok
  end
  else if op = op_abort_check then begin
    let v = ctx.Exec.read frag 0 in
    ctx.Exec.output frag.Fragment.fid v;
    if v land 255 < frag.Fragment.args.(0) then Exec.Abort else Exec.Ok
  end
  else if op = op_rmw_dep then begin
    let dep = ctx.Exec.input frag.Fragment.data_deps.(0) in
    let v = ctx.Exec.read frag 0 in
    ctx.Exec.write frag 0 (v + (dep land 1023) + frag.Fragment.args.(0));
    ctx.Exec.output frag.Fragment.fid v;
    Exec.Ok
  end
  else invalid_arg "Ycsb.exec: unknown opcode"

let make cfg =
  assert (cfg.table_size > 0 && cfg.ops_per_txn > 0);
  assert (cfg.ops_per_txn <= cfg.table_size);
  let db = build_db cfg in
  let table_id = Db.table_id db "usertable" in
  let zipf = Zipf.create ~theta:cfg.theta cfg.table_size in
  let base = Rng.create cfg.seed in
  let stream_seeds = Array.init 1024 (fun _ -> Rng.next base) in
  let new_stream i =
    let rng = Rng.create stream_seeds.(i mod 1024) in
    let counter = ref 0 in
    fun () ->
      let tid = (!counter * 1024) + (i mod 1024) in
      incr counter;
      gen_txn cfg zipf table_id rng tid
  in
  {
    Workload.name = "ycsb";
    db;
    new_stream;
    exec;
    describe =
      Printf.sprintf
        "YCSB size=%d ops=%d read=%.2f theta=%.2f parts=%d mp=%.2f abort=%.2f"
        cfg.table_size cfg.ops_per_txn cfg.read_ratio cfg.theta cfg.nparts
        cfg.mp_ratio cfg.abort_ratio;
  }
