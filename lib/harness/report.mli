(** Benchmark report rendering: one row per engine/configuration with the
    metrics the paper reports (throughput, latency, aborts). *)

type row = {
  label : string;
  metrics : Quill_txn.Metrics.t;
}

val header : string list

val to_cells : ?baseline:float -> row -> string list
(** [baseline] is a throughput used for the speedup column (defaults to
    the row's own throughput, i.e. 1.00x). *)

val print_table : title:string -> row list -> unit
(** Prints the table with the FIRST row as the speedup baseline (so
    "x vs first" reads as QueCC-relative when QueCC is first). *)

val print_sweep :
  title:string -> param:string -> (string * row list) list -> unit
(** Series output: one table per parameter value. *)

val phase_header : string list

val phase_cells : row -> string list

val print_phase_table : title:string -> row list -> unit
(** Per-phase CPU breakdown (plan/execute/recover/publish/other as % of
    busy time) plus idle time split by wait cause (% of busy+idle). *)

val fault_header : string list
val fault_cells : row -> string list

val print_fault_table : title:string -> row list -> unit
(** Robustness columns: crashes consumed, redone work, recovery time
    (absolute and as % of busy), message retries and suppressed
    duplicates.  {!print_table}/{!print_sweep} append this table
    automatically whenever any row's fault counters are nonzero. *)

val client_header : string list
val client_cells : row -> string list

val print_client_table : title:string -> row list -> unit
(** Overload columns: offered vs goodput rates, admission-queue sheds,
    deadline misses, retry traffic and client-visible latency
    percentiles (queueing + service + retries, from first offer to
    commit).  {!print_table}/{!print_sweep} append this table
    automatically whenever any row ran with the open-loop client
    layer. *)

val rep_header : string list
val rep_cells : row -> string list

val print_rep_table : title:string -> row list -> unit
(** Replication columns: backup count, speculative execution done and
    rolled back, the worst observed commit-marker lag, failover count
    and time, and the replication stream's wire bytes plus fault-plan
    duplicate injections.  {!print_table}/{!print_sweep} append this
    table automatically whenever any row ran with backups. *)

val wal_header : string list
val wal_cells : row -> string list

val print_wal_table : title:string -> row list -> unit
(** Durability columns: durable batch count, average group-commit size,
    log bytes and fsync traffic, snapshot/truncation churn, torn-record
    detections and the recovery-scan time when a crash or disk fault
    hit.  {!print_table}/{!print_sweep} append this table automatically
    whenever any row ran with a WAL. *)

val cdc_header : string list
val cdc_cells : row -> string list

val print_cdc_table : title:string -> row list -> unit
(** CDC columns: canonical feed events and serialized bytes, feed
    entries published, subscription count, the worst observed
    subscriber lag, batches absorbed through catch-up (late join or
    overflow re-seed) and materialized-view refreshes.
    {!print_table}/{!print_sweep} append this table automatically
    whenever any row ran with a CDC hub. *)

val phase_tables : bool ref
(** When true, {!print_table} and {!print_sweep} append the phase
    breakdown after every metrics table (default false). *)

val best_throughput : row list -> float
