type t = Faults | Clients | Dist | Wal | Cdc | Replication

let all = [ Faults; Clients; Dist; Wal; Cdc; Replication ]

let to_string = function
  | Faults -> "faults"
  | Clients -> "clients"
  | Dist -> "dist"
  | Wal -> "wal"
  | Cdc -> "cdc"
  | Replication -> "replication"

let mem = List.mem

let set_to_string caps =
  (* Canonical order regardless of how the engine listed them. *)
  let present = List.filter (fun c -> mem c caps) all in
  "{" ^ String.concat ", " (List.map to_string present) ^ "}"

let require ~engine ~have wanted =
  List.iter
    (fun (cap, feature) ->
      if not (mem cap have) then
        invalid_arg
          (Printf.sprintf
             "Experiment.run: %s requires the '%s' capability, but engine \
              %s provides %s"
             feature (to_string cap) engine (set_to_string have)))
    wanted
