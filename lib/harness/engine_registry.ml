(* The one place engines are named and dispatched.  Each engine family
   registers a [family] record mapping names to [engine] values and
   [engine] values to first-class {!Engine_intf.S} modules; everything
   else (Experiment, the CLI, the bench driver) goes through the
   registry API and never matches on engine constructors. *)

module Qe = Quill_quecc.Engine
module I = Engine_intf
module RC = Engine_intf.Run_cfg
module C = Capability
module F = Quill_faults.Faults

(* Centralized engines consume a fault plan as a single node-0 crash
   time; the WAL turns it into a recoverable mid-batch kill. *)
let crash_at_of = function
  | None -> None
  | Some f -> (
      match F.crashes_for f ~node:0 with
      | [||] -> None
      | cs -> Some cs.(0).F.at)

type engine =
  | Serial
  | Quecc of Qe.exec_mode * Qe.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int
  | Dist_calvin of int

type family = {
  family_names : string list;
      (* names advertised in --help / error messages, registration order *)
  parse : string -> engine option;
  name_of : engine -> string option;
  resolve : engine -> Engine_intf.t option;
  centralized : engine list;
}

let families : family list ref = ref []
let register_family f = families := !families @ [ f ]

let engine_name e =
  match List.find_map (fun f -> f.name_of e) !families with
  | Some s -> s
  | None -> invalid_arg "Engine_registry.engine_name: unregistered engine"

let engine_of_string s = List.find_map (fun f -> f.parse s) !families

let resolve e =
  match List.find_map (fun f -> f.resolve e) !families with
  | Some m -> m
  | None -> invalid_arg "Engine_registry.resolve: unregistered engine"

let names () = List.concat_map (fun f -> f.family_names) !families

(* ------------------------------------------------------------------ *)
(* Family registrations                                                *)
(* ------------------------------------------------------------------ *)

let () =
  register_family
    {
      family_names = [ "serial" ];
      parse = (function "serial" -> Some Serial | _ -> None);
      name_of = (function Serial -> Some "serial" | _ -> None);
      resolve =
        (function
        | Serial ->
            Some
              (module struct
                let name = "serial"
                let caps = [ C.Faults; C.Wal; C.Cdc ]
                let nodes = 1
                let nparts _ = None

                let run ?sim ?clients:_ ?faults ?wal ?cdc ~cfg wl =
                  Quill_protocols.Serial.run ?sim ~costs:cfg.RC.costs ?wal
                    ?cdc
                    ?crash_at:(crash_at_of faults)
                    ~batch_size:cfg.RC.batch_size wl ~txns:cfg.RC.txns
              end : Engine_intf.S)
        | _ -> None);
      centralized = [];
    }

let quecc_module name mode isolation : Engine_intf.t =
  (module struct
    let name = name
    let caps = [ C.Faults; C.Clients; C.Wal; C.Cdc ]
    let nodes = 1
    let nparts _ = None

    let run ?sim ?clients ?faults ?wal ?cdc ~cfg wl =
      Qe.run ?sim ?clients ?recorder:cfg.RC.recorder ?wal ?cdc
        ?crash_at:(crash_at_of faults)
        {
          Qe.planners = cfg.RC.threads;
          executors = cfg.RC.threads;
          batch_size = cfg.RC.batch_size;
          mode;
          isolation;
          costs = cfg.RC.costs;
          pipeline = cfg.RC.exec.RC.pipeline;
          steal = cfg.RC.exec.RC.steal;
          split =
            (match cfg.RC.adaptive.RC.split with
            | Some t -> Some { Qe.default_split with Qe.hot_threshold = t }
            | None -> None);
          adapt =
            (if cfg.RC.adaptive.RC.repart || cfg.RC.adaptive.RC.auto_batch
             then
               Some
                 {
                   Qe.default_adapt with
                   Qe.repartition = cfg.RC.adaptive.RC.repart;
                   auto_batch = cfg.RC.adaptive.RC.auto_batch;
                 }
             else None);
        }
        wl ~batches:cfg.RC.batches
  end)

let () =
  let variants =
    [
      ("quecc", Qe.Speculative, Qe.Serializable);
      ("quecc-cons", Qe.Conservative, Qe.Serializable);
      ("quecc-rc", Qe.Speculative, Qe.Read_committed);
      ("quecc-cons-rc", Qe.Conservative, Qe.Read_committed);
    ]
  in
  register_family
    {
      family_names = List.map (fun (n, _, _) -> n) variants;
      parse =
        (fun s ->
          List.find_map
            (fun (n, m, i) -> if s = n then Some (Quecc (m, i)) else None)
            variants);
      name_of =
        (function
        | Quecc (m, i) ->
            List.find_map
              (fun (n, m', i') -> if m = m' && i = i' then Some n else None)
              variants
        | _ -> None);
      resolve =
        (function
        | Quecc (m, i) ->
            List.find_map
              (fun (n, m', i') ->
                if m = m' && i = i' then Some (quecc_module n m i) else None)
              variants
        | _ -> None);
      centralized = [ Quecc (Qe.Speculative, Qe.Serializable) ];
    }

let nd_module name (cc : (module Quill_protocols.Nd_driver.CC)) :
    Engine_intf.t =
  (module struct
    let name = name
    let caps = [ C.Clients ]
    let nodes = 1
    let nparts _ = None

    let run ?sim ?clients ?faults:_ ?wal:_ ?cdc:_ ~cfg wl =
      Quill_protocols.Nd_driver.run ?sim ?clients cc
        {
          Quill_protocols.Nd_driver.default_cfg with
          Quill_protocols.Nd_driver.workers = cfg.RC.threads;
          costs = cfg.RC.costs;
        }
        wl ~txns:cfg.RC.txns
  end)

let () =
  let variants : (string * engine * (module Quill_protocols.Nd_driver.CC)) list
      =
    [
      ("2pl-nowait", Twopl_nowait, (module Quill_protocols.Twopl.No_wait_cc));
      ("2pl-waitdie", Twopl_waitdie, (module Quill_protocols.Twopl.Wait_die_cc));
      ("silo", Silo, (module Quill_protocols.Silo));
      ("tictoc", Tictoc, (module Quill_protocols.Tictoc));
      ("mvto", Mvto, (module Quill_protocols.Mvto));
    ]
  in
  register_family
    {
      family_names = List.map (fun (n, _, _) -> n) variants;
      parse =
        (fun s ->
          List.find_map
            (fun (n, e, _) -> if s = n then Some e else None)
            variants);
      name_of =
        (fun e ->
          List.find_map
            (fun (n, e', _) -> if e = e' then Some n else None)
            variants);
      resolve =
        (fun e ->
          List.find_map
            (fun (n, e', cc) -> if e = e' then Some (nd_module n cc) else None)
            variants);
      centralized = List.map (fun (_, e, _) -> e) variants;
    }

let () =
  register_family
    {
      family_names = [ "hstore" ];
      parse = (function "hstore" -> Some Hstore | _ -> None);
      name_of = (function Hstore -> Some "hstore" | _ -> None);
      resolve =
        (function
        | Hstore ->
            Some
              (module struct
                let name = "hstore"
                let caps = [ C.Clients ]
                let nodes = 1
                let nparts _ = None

                let run ?sim ?clients ?faults:_ ?wal:_ ?cdc:_ ~cfg wl =
                  Quill_protocols.Hstore.run ?sim ?clients
                    {
                      Quill_protocols.Hstore.workers = cfg.RC.threads;
                      costs = cfg.RC.costs;
                    }
                    wl ~txns:cfg.RC.txns
              end : Engine_intf.S)
        | _ -> None);
      centralized = [ Hstore ];
    }

let () =
  register_family
    {
      family_names = [ "calvin" ];
      parse = (function "calvin" -> Some Calvin | _ -> None);
      name_of = (function Calvin -> Some "calvin" | _ -> None);
      resolve =
        (function
        | Calvin ->
            Some
              (module struct
                let name = "calvin"
                let caps = [ C.Clients ]
                let nodes = 1
                let nparts _ = None

                let run ?sim ?clients ?faults:_ ?wal:_ ?cdc:_ ~cfg wl =
                  Quill_protocols.Calvin.run ?sim ?clients
                    {
                      Quill_protocols.Calvin.workers =
                        max 1 (cfg.RC.threads - 1);
                      batch_size = cfg.RC.batch_size;
                      costs = cfg.RC.costs;
                    }
                    wl ~txns:cfg.RC.txns
              end : Engine_intf.S)
        | _ -> None);
      centralized = [ Calvin ];
    }

(* "dist-quecc-8n" -> Some 8: the node-count suffix [engine_name] prints
   for distributed engines, accepted back on parse for round-tripping. *)
let nodes_suffix ~prefix s =
  let lp = String.length prefix and ls = String.length s in
  if ls > lp && String.sub s 0 lp = prefix && s.[ls - 1] = 'n' then
    int_of_string_opt (String.sub s lp (ls - lp - 1))
  else None

let dist_quecc_module n : Engine_intf.t =
  (module struct
    let name = Printf.sprintf "dist-quecc-%dn" n
    let caps = [ C.Faults; C.Clients; C.Dist; C.Replication ]
    let nodes = n
    let nparts cfg = Some (n * max 1 (cfg.RC.threads / 2))

    let run ?sim ?clients ?faults ?wal:_ ?cdc:_ ~cfg wl =
      let per_role = max 1 (cfg.RC.threads / 2) in
      Quill_dist.Dist_quecc.run ?sim ?faults ?clients
        ?recorder:cfg.RC.recorder
        {
          Quill_dist.Dist_quecc.nodes = n;
          planners = per_role;
          executors = per_role;
          batch_size = cfg.RC.batch_size;
          costs = cfg.RC.costs;
          pipeline = cfg.RC.exec.RC.pipeline;
          replicas = cfg.RC.replication.RC.replicas;
          spec_lag = cfg.RC.replication.RC.spec_lag;
        }
        wl ~batches:cfg.RC.batches
  end)

let dist_calvin_module n : Engine_intf.t =
  (module struct
    let name = Printf.sprintf "dist-calvin-%dn" n
    let caps = [ C.Faults; C.Clients; C.Dist ]
    let nodes = n
    let nparts _ = Some (n * 4)

    let run ?sim ?clients ?faults ?wal:_ ?cdc:_ ~cfg wl =
      Quill_dist.Dist_calvin.run ?sim ?faults ?clients
        {
          Quill_dist.Dist_calvin.nodes = n;
          workers = cfg.RC.threads;
          batch_size = cfg.RC.batch_size;
          costs = cfg.RC.costs;
          pipeline = cfg.RC.exec.RC.pipeline;
        }
        wl ~batches:cfg.RC.batches
  end)

let () =
  register_family
    {
      family_names = [ "dist-quecc"; "dist-quecc-<n>n" ];
      parse =
        (function
        | "dist-quecc" -> Some (Dist_quecc 4)
        | s -> (
            match nodes_suffix ~prefix:"dist-quecc-" s with
            | Some n when n > 0 -> Some (Dist_quecc n)
            | Some _ | None -> None));
      name_of =
        (function
        | Dist_quecc n -> Some (Printf.sprintf "dist-quecc-%dn" n)
        | _ -> None);
      resolve =
        (function Dist_quecc n -> Some (dist_quecc_module n) | _ -> None);
      centralized = [];
    }

let () =
  register_family
    {
      family_names = [ "dist-calvin"; "dist-calvin-<n>n" ];
      parse =
        (function
        | "dist-calvin" -> Some (Dist_calvin 4)
        | s -> (
            match nodes_suffix ~prefix:"dist-calvin-" s with
            | Some n when n > 0 -> Some (Dist_calvin n)
            | Some _ | None -> None));
      name_of =
        (function
        | Dist_calvin n -> Some (Printf.sprintf "dist-calvin-%dn" n)
        | _ -> None);
      resolve =
        (function Dist_calvin n -> Some (dist_calvin_module n) | _ -> None);
      centralized = [];
    }

(* Registration order puts QueCC first, matching the historical
   comparison-table ordering. *)
let all_centralized = List.concat_map (fun f -> f.centralized) !families
