open Quill_sim
open Quill_workloads
module Trace = Quill_trace.Trace
module Metrics = Quill_txn.Metrics
module Faults = Quill_faults.Faults
module Clients = Quill_clients.Clients
module Cdc = Quill_cdc.Cdc
module View = Quill_cdc.View
module Replica = Quill_cdc.Replica
module RC = Engine_intf.Run_cfg

(* The engine variant and its name maps live in Engine_registry; the
   historical API is re-exported here for callers. *)
type engine = Engine_registry.engine =
  | Serial
  | Quecc of Quill_quecc.Engine.exec_mode * Quill_quecc.Engine.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int
  | Dist_calvin of int

let engine_name = Engine_registry.engine_name
let engine_of_string = Engine_registry.engine_of_string
let all_centralized = Engine_registry.all_centralized

type workload_spec = Ycsb of Ycsb.cfg | Tpcc of Tpcc.cfg

type t = {
  name : string;
  engine : engine;
  workload : workload_spec;
  threads : int;
  txns : int;
  batch_size : int;
  costs : Costs.t;
  faults : Faults.spec;
  clients : Clients.cfg option;
  pipeline : bool;
  steal : bool;
  split : int option;
  adapt_repart : bool;
  adapt_batch : bool;
  replicas : int;
  spec_lag : int;
  wal : bool;
  snapshot_every : int;
  cdc : bool;
  views : bool;
}

let make ?name ?(threads = 8) ?(txns = 20_000) ?(batch_size = 1024)
    ?(costs = Costs.default) ?(faults = Faults.none) ?clients
    ?(pipeline = false) ?(steal = false) ?split ?(adapt_repart = false)
    ?(adapt_batch = false) ?(replicas = 0) ?(spec_lag = 1) ?(wal = false)
    ?(snapshot_every = 8) ?(cdc = false) ?(views = false) engine workload =
  let name =
    match name with Some n -> n | None -> engine_name engine
  in
  {
    name;
    engine;
    workload;
    threads;
    txns;
    batch_size;
    costs;
    faults;
    clients;
    pipeline;
    steal;
    split;
    adapt_repart;
    adapt_batch;
    replicas;
    spec_lag;
    wal;
    snapshot_every;
    cdc;
    views;
  }

let build_workload = function
  | Ycsb cfg -> Quill_workloads.Ycsb.make cfg
  | Tpcc cfg -> Quill_workloads.Tpcc.make cfg

(* Distributed engines need nparts tied to the cluster shape; rebuild the
   workload spec with the right partitioning. *)
let respec_parts spec nparts =
  match spec with
  | Ycsb cfg -> Ycsb { cfg with Quill_workloads.Ycsb.nparts }
  | Tpcc cfg -> Tpcc { cfg with Quill_workloads.Tpcc_defs.nparts }

(* Round the requested transaction count to a whole number of batches
   (nearest, at least one batch).  The batch engines can only process
   whole batches; giving the per-transaction engines the same effective
   count keeps throughput comparisons apples-to-apples (previously Quecc
   at the 20_000/1024 defaults silently ran 19_456 transactions while
   Serial ran 20_000). *)
let batches t = max 1 ((t.txns + (t.batch_size / 2)) / t.batch_size)
let effective_txns t = batches t * t.batch_size

let run ?(tracer = Trace.null) ?recorder ?on_workload ?on_cdc t =
  Trace.begin_process tracer t.name;
  let batches = batches t in
  let txns = batches * t.batch_size in
  let (module M : Engine_intf.S) = Engine_registry.resolve t.engine in
  let cdc_on = t.cdc || t.views in
  (* THE capability chokepoint: every requested optional feature is
     checked against the engine's capability set here, and nowhere
     else.  An engine's [run] never receives an argument outside its
     set, so no feature flag is ever silently ignored; the CLI maps the
     [Invalid_argument] to exit code 2. *)
  Capability.require ~engine:M.name ~have:M.caps
    (List.concat
       [
         (if Faults.active t.faults then
            [ (Capability.Faults, "a fault plan (--faults)") ]
          else []);
         (if Faults.net_active t.faults then
            [
              ( Capability.Dist,
                "network faults (drop/dup/delay/partition)" );
            ]
          else []);
         (if t.clients <> None then
            [ (Capability.Clients, "the open-loop client layer (--arrival)") ]
          else []);
         (if t.wal then [ (Capability.Wal, "--wal") ] else []);
         (if cdc_on then [ (Capability.Cdc, "--cdc/--views") ] else []);
         (if t.replicas > 0 then
            [ (Capability.Replication, "--replicas") ]
          else []);
       ]);
  (* Cross-feature constraints (combinations of features the engine
     individually supports). *)
  if t.snapshot_every < 1 then
    invalid_arg "Experiment.run: --snapshot-every must be >= 1";
  let dist = Capability.mem Capability.Dist M.caps in
  (* Crash and disk faults on a centralized engine are only survivable
     through the WAL. *)
  if
    (Faults.disk_active t.faults || t.faults.Faults.crashes <> [])
    && (not dist) && not t.wal
  then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: crash/disk faults on %s need --wal (nothing \
          durable to recover from otherwise)"
         M.name);
  if Faults.active t.faults then
    Faults.check_nodes t.faults ~nodes:M.nodes ~name:M.name;
  if t.faults.Faults.crashes <> [] && (not dist) && t.clients <> None then
    invalid_arg
      "Experiment.run: crash faults and open-loop clients cannot be \
       combined on a centralized engine (a crashed node strands the \
       admission queue)";
  if
    cdc_on
    && (Faults.disk_active t.faults || t.faults.Faults.crashes <> [])
  then
    invalid_arg
      "Experiment.run: --cdc cannot be combined with crash/disk faults \
       (the feed is a commit stream; a crash-truncated run would feed \
       subscribers retracted commits)";
  let rcfg =
    {
      RC.threads = t.threads;
      txns;
      batches;
      batch_size = t.batch_size;
      costs = t.costs;
      exec = { RC.pipeline = t.pipeline; steal = t.steal };
      adaptive =
        {
          RC.split = t.split;
          repart = t.adapt_repart;
          auto_batch = t.adapt_batch;
        };
      replication = { RC.replicas = t.replicas; spec_lag = t.spec_lag };
      recorder;
    }
  in
  (* Engines that pin nparts to the cluster shape get the workload
     rebuilt; everything shares one workload instance so the open-loop
     client generators draw from the same streams the engine would. *)
  let spec =
    match M.nparts rcfg with
    | Some nparts -> respec_parts t.workload nparts
    | None -> t.workload
  in
  let wl = build_workload spec in
  let sim = Sim.create ~wake_cost:t.costs.Costs.wakeup ~tracer () in
  Option.iter (fun f -> f wl) on_workload;
  (* The client layer owns the offered-transaction count: the experiment's
     batch-rounded [txns] target overrides whatever the cfg carried so
     that --txns means the same thing open- and closed-loop. *)
  let clients =
    Option.map
      (fun ccfg ->
        Clients.create ~sim ~nodes:M.nodes wl
          { ccfg with Clients.total = txns })
      t.clients
  in
  (* The WAL is built over the same workload database the engine runs
     on; disk faults from the plan are armed here so both the engine's
     flushes and the recovery scan see them. *)
  let wal =
    if not t.wal then None
    else
      Some
        (Quill_wal.Wal.create
           ~disk:
             {
               Quill_wal.Wal.torn_rec = t.faults.Faults.torn_rec;
               fsync_fail_at = t.faults.Faults.fsync_fail_at;
               corrupt_off = t.faults.Faults.corrupt_off;
             }
           ~sim ~costs:t.costs ~snapshot_every:t.snapshot_every
           wl.Quill_txn.Workload.db)
  in
  (* The CDC hub hangs off the same commit seam as the WAL.  Two
     in-repo consumers exercise it end-to-end: a bounded-staleness
     read-replica cache (always, when CDC is on) and an incrementally
     maintained per-partition aggregate view (--views), verified
     against a full recompute at every caught-up point. *)
  let cdc_hub =
    if not cdc_on then None
    else Some (Cdc.create ~sim ~costs:t.costs wl.Quill_txn.Workload.db)
  in
  let replica =
    Option.map
      (fun hub ->
        let r = Replica.create wl.Quill_txn.Workload.db in
        ignore
          (Cdc.subscribe hub ~name:"replica" ~apply_every:4
             (Replica.consumer r));
        r)
      cdc_hub
  in
  let view =
    if not t.views then None
    else
      Option.map
        (fun hub ->
          let v =
            View.create ~verify:true ~table:0 ~field:0
              wl.Quill_txn.Workload.db
          in
          ignore (Cdc.subscribe hub ~name:"view" (View.consumer v));
          v)
        cdc_hub
  in
  let m = M.run ~sim ?clients ~faults:t.faults ?wal ?cdc:cdc_hub ~cfg:rcfg wl in
  Option.iter (fun c -> Clients.record c m) clients;
  (match cdc_hub with
  | Some hub ->
      Cdc.finish hub;
      Cdc.record hub m;
      Option.iter (fun v -> View.record v m) view;
      Option.iter
        (fun r ->
          if not (Replica.consistent_with r wl.Quill_txn.Workload.db) then
            failwith
              (Printf.sprintf
                 "Experiment.run: CDC replica diverged from committed \
                  state on %s"
                 M.name))
        replica;
      Option.iter (fun f -> f hub) on_cdc
  | None -> ());
  m.Metrics.effective_txns <- txns;
  m
