open Quill_sim
open Quill_workloads
module Trace = Quill_trace.Trace
module Metrics = Quill_txn.Metrics
module Faults = Quill_faults.Faults
module Clients = Quill_clients.Clients

(* The engine variant and its name maps live in Engine_registry; the
   historical API is re-exported here for callers. *)
type engine = Engine_registry.engine =
  | Serial
  | Quecc of Quill_quecc.Engine.exec_mode * Quill_quecc.Engine.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int
  | Dist_calvin of int

let engine_name = Engine_registry.engine_name
let engine_of_string = Engine_registry.engine_of_string
let all_centralized = Engine_registry.all_centralized

type workload_spec = Ycsb of Ycsb.cfg | Tpcc of Tpcc.cfg

type t = {
  name : string;
  engine : engine;
  workload : workload_spec;
  threads : int;
  txns : int;
  batch_size : int;
  costs : Costs.t;
  faults : Faults.spec;
  clients : Clients.cfg option;
  pipeline : bool;
  steal : bool;
  split : int option;
  adapt_repart : bool;
  adapt_batch : bool;
  replicas : int;
  spec_lag : int;
  wal : bool;
  snapshot_every : int;
}

let make ?name ?(threads = 8) ?(txns = 20_000) ?(batch_size = 1024)
    ?(costs = Costs.default) ?(faults = Faults.none) ?clients
    ?(pipeline = false) ?(steal = false) ?split ?(adapt_repart = false)
    ?(adapt_batch = false) ?(replicas = 0) ?(spec_lag = 1) ?(wal = false)
    ?(snapshot_every = 8) engine workload =
  let name =
    match name with Some n -> n | None -> engine_name engine
  in
  {
    name;
    engine;
    workload;
    threads;
    txns;
    batch_size;
    costs;
    faults;
    clients;
    pipeline;
    steal;
    split;
    adapt_repart;
    adapt_batch;
    replicas;
    spec_lag;
    wal;
    snapshot_every;
  }

let build_workload = function
  | Ycsb cfg -> Quill_workloads.Ycsb.make cfg
  | Tpcc cfg -> Quill_workloads.Tpcc.make cfg

(* Distributed engines need nparts tied to the cluster shape; rebuild the
   workload spec with the right partitioning. *)
let respec_parts spec nparts =
  match spec with
  | Ycsb cfg -> Ycsb { cfg with Quill_workloads.Ycsb.nparts }
  | Tpcc cfg -> Tpcc { cfg with Quill_workloads.Tpcc_defs.nparts }

(* Round the requested transaction count to a whole number of batches
   (nearest, at least one batch).  The batch engines can only process
   whole batches; giving the per-transaction engines the same effective
   count keeps throughput comparisons apples-to-apples (previously Quecc
   at the 20_000/1024 defaults silently ran 19_456 transactions while
   Serial ran 20_000). *)
let batches t = max 1 ((t.txns + (t.batch_size / 2)) / t.batch_size)
let effective_txns t = batches t * t.batch_size

let run ?(tracer = Trace.null) ?recorder ?on_workload t =
  Trace.begin_process tracer t.name;
  let batches = batches t in
  let txns = batches * t.batch_size in
  let (module M : Engine_intf.S) = Engine_registry.resolve t.engine in
  if Faults.active t.faults && not M.supports_faults then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: fault plans need an engine with fault support \
          (the distributed engines, or a WAL-capable centralized engine \
          with --wal), not %s"
         M.name);
  if t.wal && not M.supports_wal then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: --wal needs a WAL-capable engine (serial or \
          the quecc family), not %s"
         M.name);
  if t.snapshot_every < 1 then
    invalid_arg "Experiment.run: --snapshot-every must be >= 1";
  (* Network faults address cluster nodes; a centralized engine has no
     links to drop.  Crash and disk faults on a centralized engine are
     only survivable through the WAL. *)
  if Faults.net_active t.faults && not M.supports_dist then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: network faults (drop/dup/delay/partition) need \
          a distributed engine, not %s"
         M.name);
  if
    (Faults.disk_active t.faults || t.faults.Faults.crashes <> [])
    && (not M.supports_dist)
    && not t.wal
  then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: crash/disk faults on %s need --wal (nothing \
          durable to recover from otherwise)"
         M.name);
  if Faults.active t.faults then
    Faults.check_nodes t.faults ~nodes:M.nodes ~name:M.name;
  if t.faults.Faults.crashes <> [] && (not M.supports_dist)
     && t.clients <> None
  then
    invalid_arg
      "Experiment.run: crash faults and open-loop clients cannot be \
       combined on a centralized engine (a crashed node strands the \
       admission queue)";
  if t.clients <> None && not M.supports_clients then
    invalid_arg
      (Printf.sprintf
         "Experiment.run: the %s baseline does not take an open-loop \
          client layer"
         M.name);
  (* Replication is a dist-quecc capability; every other engine would
     silently drop the redundancy the user asked for. *)
  if t.replicas > 0 then (
    match t.engine with
    | Dist_quecc _ -> ()
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Experiment.run: --replicas needs the dist-quecc engine, not %s"
             M.name));
  let rcfg =
    {
      Engine_intf.threads = t.threads;
      txns;
      batches;
      batch_size = t.batch_size;
      costs = t.costs;
      pipeline = t.pipeline;
      steal = t.steal;
      split = t.split;
      adapt_repart = t.adapt_repart;
      adapt_batch = t.adapt_batch;
      replicas = t.replicas;
      spec_lag = t.spec_lag;
      recorder;
    }
  in
  (* Engines that pin nparts to the cluster shape get the workload
     rebuilt; everything shares one workload instance so the open-loop
     client generators draw from the same streams the engine would. *)
  let spec =
    match M.nparts rcfg with
    | Some nparts -> respec_parts t.workload nparts
    | None -> t.workload
  in
  let wl = build_workload spec in
  let sim = Sim.create ~wake_cost:t.costs.Costs.wakeup ~tracer () in
  Option.iter (fun f -> f wl) on_workload;
  (* The client layer owns the offered-transaction count: the experiment's
     batch-rounded [txns] target overrides whatever the cfg carried so
     that --txns means the same thing open- and closed-loop. *)
  let clients =
    Option.map
      (fun ccfg ->
        Clients.create ~sim ~nodes:M.nodes wl
          { ccfg with Clients.total = txns })
      t.clients
  in
  (* The WAL is built over the same workload database the engine runs
     on; disk faults from the plan are armed here so both the engine's
     flushes and the recovery scan see them. *)
  let wal =
    if not t.wal then None
    else
      Some
        (Quill_wal.Wal.create
           ~disk:
             {
               Quill_wal.Wal.torn_rec = t.faults.Faults.torn_rec;
               fsync_fail_at = t.faults.Faults.fsync_fail_at;
               corrupt_off = t.faults.Faults.corrupt_off;
             }
           ~sim ~costs:t.costs ~snapshot_every:t.snapshot_every
           wl.Quill_txn.Workload.db)
  in
  let m = M.run ~sim ?clients ~faults:t.faults ?wal ~cfg:rcfg wl in
  Option.iter (fun c -> Clients.record c m) clients;
  m.Metrics.effective_txns <- txns;
  m
