open Quill_sim
open Quill_workloads
module Qe = Quill_quecc.Engine
module Trace = Quill_trace.Trace
module Metrics = Quill_txn.Metrics
module Faults = Quill_faults.Faults
module Clients = Quill_clients.Clients

type engine =
  | Serial
  | Quecc of Qe.exec_mode * Qe.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int
  | Dist_calvin of int

let engine_name = function
  | Serial -> "serial"
  | Quecc (Qe.Speculative, Qe.Serializable) -> "quecc"
  | Quecc (Qe.Conservative, Qe.Serializable) -> "quecc-cons"
  | Quecc (Qe.Speculative, Qe.Read_committed) -> "quecc-rc"
  | Quecc (Qe.Conservative, Qe.Read_committed) -> "quecc-cons-rc"
  | Twopl_nowait -> "2pl-nowait"
  | Twopl_waitdie -> "2pl-waitdie"
  | Silo -> "silo"
  | Tictoc -> "tictoc"
  | Mvto -> "mvto"
  | Hstore -> "hstore"
  | Calvin -> "calvin"
  | Dist_quecc n -> Printf.sprintf "dist-quecc-%dn" n
  | Dist_calvin n -> Printf.sprintf "dist-calvin-%dn" n

(* "dist-quecc-8n" -> Some 8: the node-count suffix [engine_name] prints
   for distributed engines, accepted back on parse for round-tripping. *)
let nodes_suffix ~prefix s =
  let lp = String.length prefix and ls = String.length s in
  if ls > lp && String.sub s 0 lp = prefix && s.[ls - 1] = 'n' then
    int_of_string_opt (String.sub s lp (ls - lp - 1))
  else None

let engine_of_string = function
  | "serial" -> Some Serial
  | "quecc" -> Some (Quecc (Qe.Speculative, Qe.Serializable))
  | "quecc-cons" -> Some (Quecc (Qe.Conservative, Qe.Serializable))
  | "quecc-rc" -> Some (Quecc (Qe.Speculative, Qe.Read_committed))
  | "quecc-cons-rc" -> Some (Quecc (Qe.Conservative, Qe.Read_committed))
  | "2pl-nowait" -> Some Twopl_nowait
  | "2pl-waitdie" -> Some Twopl_waitdie
  | "silo" -> Some Silo
  | "tictoc" -> Some Tictoc
  | "mvto" -> Some Mvto
  | "hstore" -> Some Hstore
  | "calvin" -> Some Calvin
  | "dist-quecc" -> Some (Dist_quecc 4)
  | "dist-calvin" -> Some (Dist_calvin 4)
  | s -> (
      match nodes_suffix ~prefix:"dist-quecc-" s with
      | Some n when n > 0 -> Some (Dist_quecc n)
      | Some _ | None -> (
          match nodes_suffix ~prefix:"dist-calvin-" s with
          | Some n when n > 0 -> Some (Dist_calvin n)
          | Some _ | None -> None))

let all_centralized =
  [
    Quecc (Qe.Speculative, Qe.Serializable);
    Twopl_nowait;
    Twopl_waitdie;
    Silo;
    Tictoc;
    Mvto;
    Hstore;
    Calvin;
  ]

type workload_spec = Ycsb of Ycsb.cfg | Tpcc of Tpcc.cfg

type t = {
  name : string;
  engine : engine;
  workload : workload_spec;
  threads : int;
  txns : int;
  batch_size : int;
  costs : Costs.t;
  faults : Faults.spec;
  clients : Clients.cfg option;
}

let make ?name ?(threads = 8) ?(txns = 20_000) ?(batch_size = 1024)
    ?(costs = Costs.default) ?(faults = Faults.none) ?clients engine workload =
  let name =
    match name with Some n -> n | None -> engine_name engine
  in
  { name; engine; workload; threads; txns; batch_size; costs; faults; clients }

let build_workload = function
  | Ycsb cfg -> Quill_workloads.Ycsb.make cfg
  | Tpcc cfg -> Quill_workloads.Tpcc.make cfg

(* Distributed engines need nparts = nodes * executors; rebuild the
   workload spec with the right partitioning. *)
let respec_parts spec nparts =
  match spec with
  | Ycsb cfg -> Ycsb { cfg with Quill_workloads.Ycsb.nparts }
  | Tpcc cfg -> Tpcc { cfg with Quill_workloads.Tpcc_defs.nparts }

(* Round the requested transaction count to a whole number of batches
   (nearest, at least one batch).  The batch engines can only process
   whole batches; giving the per-transaction engines the same effective
   count keeps throughput comparisons apples-to-apples (previously Quecc
   at the 20_000/1024 defaults silently ran 19_456 transactions while
   Serial ran 20_000). *)
let batches t = max 1 ((t.txns + (t.batch_size / 2)) / t.batch_size)
let effective_txns t = batches t * t.batch_size

let run ?(tracer = Trace.null) t =
  Trace.begin_process tracer t.name;
  let batches = batches t in
  let txns = batches * t.batch_size in
  (match t.engine with
  | Dist_quecc _ | Dist_calvin _ -> ()
  | _ ->
      if Faults.active t.faults then
        invalid_arg
          (Printf.sprintf
             "Experiment.run: fault plans only apply to the distributed \
              engines, not %s"
             (engine_name t.engine)));
  (match (t.engine, t.clients) with
  | Serial, Some _ ->
      invalid_arg
        "Experiment.run: the serial baseline does not take an open-loop \
         client layer"
  | _ -> ());
  (* The distributed engines need nparts tied to the cluster shape;
     everything shares one workload instance so the open-loop client
     generators draw from the same streams the engine would. *)
  let spec, nodes =
    match t.engine with
    | Dist_quecc nodes ->
        (respec_parts t.workload (nodes * max 1 (t.threads / 2)), nodes)
    | Dist_calvin nodes -> (respec_parts t.workload (nodes * 4), nodes)
    | _ -> (t.workload, 1)
  in
  let wl = build_workload spec in
  let sim = Sim.create ~wake_cost:t.costs.Costs.wakeup ~tracer () in
  (* The client layer owns the offered-transaction count: the experiment's
     batch-rounded [txns] target overrides whatever the cfg carried so
     that --txns means the same thing open- and closed-loop. *)
  let clients =
    Option.map
      (fun ccfg -> Clients.create ~sim ~nodes wl { ccfg with Clients.total = txns })
      t.clients
  in
  let m =
    match t.engine with
    | Serial -> Quill_protocols.Serial.run ~sim ~costs:t.costs wl ~txns
    | Quecc (mode, isolation) ->
        let cfg =
          {
            Qe.planners = t.threads;
            executors = t.threads;
            batch_size = t.batch_size;
            mode;
            isolation;
            costs = t.costs;
          }
        in
        Qe.run ~sim ?clients cfg wl ~batches
    | Twopl_nowait | Twopl_waitdie | Silo | Tictoc | Mvto ->
        let cfg =
          { Quill_protocols.Nd_driver.default_cfg with
            Quill_protocols.Nd_driver.workers = t.threads; costs = t.costs }
        in
        let m : (module Quill_protocols.Nd_driver.CC) =
          match t.engine with
          | Twopl_nowait -> (module Quill_protocols.Twopl.No_wait_cc)
          | Twopl_waitdie -> (module Quill_protocols.Twopl.Wait_die_cc)
          | Silo -> (module Quill_protocols.Silo)
          | Tictoc -> (module Quill_protocols.Tictoc)
          | Mvto -> (module Quill_protocols.Mvto)
          | _ -> assert false
        in
        Quill_protocols.Nd_driver.run ~sim ?clients m cfg wl ~txns
    | Hstore ->
        Quill_protocols.Hstore.run ~sim ?clients
          { Quill_protocols.Hstore.workers = t.threads; costs = t.costs }
          wl ~txns
    | Calvin ->
        Quill_protocols.Calvin.run ~sim ?clients
          {
            Quill_protocols.Calvin.workers = max 1 (t.threads - 1);
            batch_size = t.batch_size;
            costs = t.costs;
          }
          wl ~txns
    | Dist_quecc nodes ->
        let per_role = max 1 (t.threads / 2) in
        Quill_dist.Dist_quecc.run ~sim ~faults:t.faults ?clients
          {
            Quill_dist.Dist_quecc.nodes;
            planners = per_role;
            executors = per_role;
            batch_size = t.batch_size;
            costs = t.costs;
          }
          wl ~batches
    | Dist_calvin nodes ->
        Quill_dist.Dist_calvin.run ~sim ~faults:t.faults ?clients
          {
            Quill_dist.Dist_calvin.nodes;
            workers = t.threads;
            batch_size = t.batch_size;
            costs = t.costs;
          }
          wl ~batches
  in
  Option.iter (fun c -> Clients.record c m) clients;
  m.Metrics.effective_txns <- txns;
  m
