open Quill_common
open Quill_txn

type row = {
  label : string;
  metrics : Metrics.t;
}

let header =
  [
    "engine"; "tput (txn/s)"; "p50 lat"; "p99 lat"; "cc-aborts"; "commits";
    "util"; "msgs"; "x vs first";
  ]

let fmt_lat ns =
  if ns >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

let to_cells ?baseline r =
  let m = r.metrics in
  let tput = Metrics.throughput m in
  let base = match baseline with Some b -> b | None -> tput in
  [
    r.label;
    Tablefmt.fmt_si tput;
    fmt_lat (Stats.Hist.percentile m.Metrics.lat 50.0);
    fmt_lat (Stats.Hist.percentile m.Metrics.lat 99.0);
    string_of_int m.Metrics.cc_aborts;
    string_of_int m.Metrics.committed;
    Printf.sprintf "%.2f" (Metrics.utilization m);
    string_of_int m.Metrics.msgs;
    (if base > 0.0 then Printf.sprintf "%.2fx" (tput /. base) else "-");
  ]

(* Per-phase breakdown: where each engine's CPU time went (plan /
   execute / recover / publish) and what its idle time waited on. *)
(* The pipeline columns ride at the END of the row so downstream parsers
   keyed on the leading column indices (the chaos-smoke CI job) keep
   working. *)
let phase_header =
  [
    "engine"; "plan"; "execute"; "recover"; "publish"; "other"; "busy%";
    "idle:barrier"; "idle:ivar"; "idle:chan"; "idle:sleep"; "fill-stall/thr";
    "drain-stall/thr"; "stolen"; "steal a/r"; "split k/q"; "repart"; "resize";
  ]

let pct part whole =
  if whole <= 0 then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int part /. float_of_int whole)

let phase_cells r =
  let m = r.metrics in
  let span = m.Metrics.busy + m.Metrics.idle in
  [
    r.label;
    pct m.Metrics.plan_busy m.Metrics.busy;
    pct m.Metrics.exec_busy m.Metrics.busy;
    pct m.Metrics.recover_busy m.Metrics.busy;
    pct m.Metrics.publish_busy m.Metrics.busy;
    pct m.Metrics.other_busy m.Metrics.busy;
    pct m.Metrics.busy span;
    pct m.Metrics.idle_barrier span;
    pct m.Metrics.idle_ivar span;
    pct m.Metrics.idle_chan span;
    pct m.Metrics.idle_sleep span;
    (* Stall cells are per-contributing-thread averages (absolute time),
       not % of the aggregate span: engines stall in very different
       numbers of threads (dist-calvin: one sequencer per node;
       dist-quecc: a planner pool per node), so raw sums were off by the
       thread-count ratio and never engine-comparable. *)
    fmt_lat (Metrics.fill_stall_avg m);
    fmt_lat (Metrics.drain_stall_avg m);
    string_of_int m.Metrics.stolen_queues;
    Printf.sprintf "%d/%d" m.Metrics.steal_attempts m.Metrics.steal_rejects;
    Printf.sprintf "%d/%d" m.Metrics.split_keys m.Metrics.split_subqueues;
    string_of_int m.Metrics.repart_moves;
    string_of_int m.Metrics.batch_resizes;
  ]

let print_phase_table ~title rows =
  Printf.printf "\n== %s: phase breakdown ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:phase_header (List.map phase_cells rows)

(* Robustness columns: crash/recovery work and message-fault traffic.
   Only meaningful (and only printed automatically) when a fault plan
   actually fired. *)
let fault_header =
  [
    "engine"; "crashes"; "redone"; "recover time"; "recover%"; "retries";
    "dup-drops";
  ]

let fault_cells r =
  let m = r.metrics in
  [
    r.label;
    string_of_int m.Metrics.crashes;
    string_of_int m.Metrics.redone;
    fmt_lat m.Metrics.recover_busy;
    pct m.Metrics.recover_busy m.Metrics.busy;
    string_of_int m.Metrics.msg_retries;
    string_of_int m.Metrics.msg_dup_drops;
  ]

let print_fault_table ~title rows =
  Printf.printf "\n== %s: fault tolerance ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:fault_header (List.map fault_cells rows)

let any_faulted rows = List.exists (fun r -> Metrics.faulted r.metrics) rows

(* Overload columns: offered vs goodput, admission-control drops and
   client-visible latency.  Only meaningful (and only printed
   automatically) when a run used the open-loop client layer. *)
let client_header =
  [
    "engine"; "offered/s"; "goodput/s"; "shed"; "dl-miss"; "retries";
    "retry-exh"; "qmax"; "c-p50"; "c-p95"; "c-p99";
  ]

let client_cells r =
  let m = r.metrics in
  let cpct p = fmt_lat (Stats.Hist.percentile m.Metrics.client_lat p) in
  [
    r.label;
    Tablefmt.fmt_si (Metrics.offered_rate m);
    Tablefmt.fmt_si (Metrics.goodput m);
    string_of_int m.Metrics.shed;
    string_of_int m.Metrics.deadline_miss;
    string_of_int m.Metrics.client_retries;
    string_of_int m.Metrics.retry_exhausted;
    string_of_int m.Metrics.qmax;
    cpct 50.0;
    cpct 95.0;
    cpct 99.0;
  ]

let print_client_table ~title rows =
  Printf.printf "\n== %s: offered load vs goodput ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:client_header (List.map client_cells rows)

let any_clients rows = List.exists (fun r -> Metrics.clients_active r.metrics) rows

(* Replication columns: backup speculation and failover accounting plus
   the replication stream's wire traffic.  Only meaningful (and only
   printed automatically) when a run had backups attached. *)
let rep_header =
  [
    "engine"; "replicas"; "spec-exec"; "spec-wasted"; "lag-max"; "failovers";
    "failover time"; "msg-bytes"; "dups-sent";
  ]

let rep_cells r =
  let m = r.metrics in
  [
    r.label;
    string_of_int m.Metrics.replicas;
    string_of_int m.Metrics.spec_executed;
    string_of_int m.Metrics.spec_wasted;
    string_of_int m.Metrics.rep_lag_max;
    string_of_int m.Metrics.failovers;
    (if m.Metrics.failovers > 0 then fmt_lat m.Metrics.failover_time else "-");
    Tablefmt.fmt_si (float_of_int m.Metrics.msg_bytes);
    string_of_int m.Metrics.msg_dups_sent;
  ]

let print_rep_table ~title rows =
  Printf.printf "\n== %s: replication ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:rep_header (List.map rep_cells rows)

let any_replicated rows =
  List.exists (fun r -> Metrics.replicated r.metrics) rows

(* Durability columns: group-commit amortization, snapshot/truncation
   churn and what recovery cost when a crash or disk fault hit.  Only
   meaningful (and only printed automatically) when a run had a WAL. *)
let wal_header =
  [
    "engine"; "durable-b"; "group-avg"; "wal-bytes"; "fsyncs"; "fsync-fail";
    "snaps"; "truncs"; "torn"; "recovery";
  ]

let wal_cells r =
  let m = r.metrics in
  [
    r.label;
    string_of_int m.Metrics.durable_batches;
    Printf.sprintf "%.1f" (Metrics.wal_group_size m);
    Tablefmt.fmt_si (float_of_int m.Metrics.wal_bytes);
    string_of_int m.Metrics.wal_fsyncs;
    string_of_int m.Metrics.wal_fsync_fails;
    string_of_int m.Metrics.snapshots;
    string_of_int m.Metrics.wal_truncations;
    string_of_int m.Metrics.torn_records;
    (if m.Metrics.recovery_time > 0 then fmt_lat m.Metrics.recovery_time
     else "-");
  ]

let print_wal_table ~title rows =
  Printf.printf "\n== %s: durability ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:wal_header (List.map wal_cells rows)

let any_walled rows = List.exists (fun r -> Metrics.walled r.metrics) rows

(* CDC columns: feed volume, subscription lag and catch-up work, and
   materialized-view refreshes.  Only meaningful (and only printed
   automatically) when a run had a CDC hub attached. *)
let cdc_header =
  [
    "engine"; "events"; "feed-bytes"; "cdc-b"; "subs"; "sub-lag-max";
    "catchup-b"; "view-refr";
  ]

let cdc_cells r =
  let m = r.metrics in
  [
    r.label;
    string_of_int m.Metrics.cdc_events;
    Tablefmt.fmt_si (float_of_int m.Metrics.cdc_bytes);
    string_of_int m.Metrics.cdc_batches;
    string_of_int m.Metrics.cdc_subs;
    string_of_int m.Metrics.cdc_lag_max;
    string_of_int m.Metrics.cdc_catchup;
    string_of_int m.Metrics.view_refreshes;
  ]

let print_cdc_table ~title rows =
  Printf.printf "\n== %s: change data capture ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | rows -> Tablefmt.print ~header:cdc_header (List.map cdc_cells rows)

let any_cdc rows = List.exists (fun r -> Metrics.cdc_active r.metrics) rows

(* When set, [print_table] and [print_sweep] follow every metrics table
   with the phase breakdown (the CLI/bench --phase-table flag). *)
let phase_tables = ref false

let print_table ~title rows =
  Printf.printf "\n== %s ==\n" title;
  (match rows with
  | [] -> print_endline "(no rows)"
  | first :: _ ->
      let base = Metrics.throughput first.metrics in
      Tablefmt.print ~header
        (List.map (fun r -> to_cells ~baseline:base r) rows));
  if !phase_tables && rows <> [] then
    Tablefmt.print ~header:phase_header (List.map phase_cells rows);
  if any_faulted rows then
    Tablefmt.print ~header:fault_header (List.map fault_cells rows);
  if any_clients rows then
    Tablefmt.print ~header:client_header (List.map client_cells rows);
  if any_replicated rows then
    Tablefmt.print ~header:rep_header (List.map rep_cells rows);
  if any_walled rows then
    Tablefmt.print ~header:wal_header (List.map wal_cells rows);
  if any_cdc rows then
    Tablefmt.print ~header:cdc_header (List.map cdc_cells rows)

let print_sweep ~title ~param series =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (value, rows) ->
      Printf.printf "-- %s = %s --\n" param value;
      match rows with
      | [] -> ()
      | first :: _ ->
          let base = Metrics.throughput first.metrics in
          Tablefmt.print ~header
            (List.map (fun r -> to_cells ~baseline:base r) rows);
          if !phase_tables then
            Tablefmt.print ~header:phase_header (List.map phase_cells rows);
          if any_faulted rows then
            Tablefmt.print ~header:fault_header (List.map fault_cells rows);
          if any_clients rows then
            Tablefmt.print ~header:client_header (List.map client_cells rows);
          if any_replicated rows then
            Tablefmt.print ~header:rep_header (List.map rep_cells rows);
          if any_walled rows then
            Tablefmt.print ~header:wal_header (List.map wal_cells rows);
          if any_cdc rows then
            Tablefmt.print ~header:cdc_header (List.map cdc_cells rows))
    series

let best_throughput rows =
  List.fold_left
    (fun acc r -> Float.max acc (Metrics.throughput r.metrics))
    0.0 rows
