(** One-stop experiment runner: pick an engine, a workload and a scale,
    get metrics.  Used by the CLI, the examples and the benchmark
    harness so that every consumer measures the same way.

    Engine naming and dispatch live in {!Engine_registry}; the aliases
    here are re-exports. *)

type engine = Engine_registry.engine =
  | Serial
  | Quecc of Quill_quecc.Engine.exec_mode * Quill_quecc.Engine.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int   (** nodes *)
  | Dist_calvin of int  (** nodes *)

val engine_name : engine -> string
val engine_of_string : string -> engine option
val all_centralized : engine list
(** Every single-node engine, QueCC first. *)

type workload_spec =
  | Ycsb of Quill_workloads.Ycsb.cfg
  | Tpcc of Quill_workloads.Tpcc.cfg

type t = {
  name : string;
  engine : engine;
  workload : workload_spec;
  threads : int;       (** virtual cores (per node for distributed) *)
  txns : int;          (** total transactions to process *)
  batch_size : int;
  costs : Quill_sim.Costs.t;
  faults : Quill_faults.Faults.spec;
      (** deterministic fault plan; {!Quill_faults.Faults.none} (the
          default) runs fault-free.  Requires the [Faults] capability
          (network faults additionally [Dist]) — {!run} raises
          [Invalid_argument] otherwise. *)
  clients : Quill_clients.Clients.cfg option;
      (** open-loop client layer: when set, seeded arrival generators
          feed a bounded admission queue that the engine drains, instead
          of the engine pulling from the workload closed-loop.  The
          cfg's [total] is overridden with the experiment's batch-rounded
          [txns] so [--txns] means the same thing in both modes.
          Requires the [Clients] capability — {!run} raises
          [Invalid_argument] otherwise (the serial baseline). *)
  pipeline : bool;
      (** QueCC: overlap planning of batch [N+1] with execution of
          batch [N] (see {!Quill_quecc.Engine.cfg}); ignored by engines
          without a planning phase. *)
  steal : bool;
      (** QueCC: executor work stealing on queue imbalance; implies
          nothing without [pipeline] but composes with either path. *)
  split : int option;
      (** QueCC: hot-key queue splitting threshold (per-planner per-key
          op count that triggers sub-queues); [None] = off.  See
          {!Quill_quecc.Engine.split_cfg}. *)
  adapt_repart : bool;
      (** QueCC: dynamic repartitioning of key→executor routing between
          batches, driven by queue-depth counters. *)
  adapt_batch : bool;
      (** QueCC: batch-size auto-tuning from pipeline stall counters
          (pipelined closed-loop runs only; schedule-altering, so not
          bit-identical with the fixed-size run). *)
  replicas : int;
      (** HA: backup nodes receiving the planned-batch stream and commit
          markers (0 = off).  Requires the [Replication] capability
          (dist-quecc) — {!run} raises [Invalid_argument] for a positive
          value elsewhere: the redundancy must not be silently
          dropped. *)
  spec_lag : int;
      (** dist-quecc HA: how many batches past the newest commit marker
          a backup may speculatively execute (>= 1, default 1). *)
  wal : bool;
      (** durable group-commit write-ahead log: every committed batch's
          row images are logged and flushed with one modeled fsync at
          the batch commit point.  Requires the [Wal] capability (serial
          and the quecc family) — {!run} raises [Invalid_argument]
          otherwise.  Required for crash or disk faults on a centralized
          engine. *)
  snapshot_every : int;
      (** WAL snapshot period in durable batches (>= 1, default 8):
          after every [snapshot_every]-th durable batch the database is
          snapshotted and the log truncated. *)
  cdc : bool;
      (** ordered change-data-capture: a {!Quill_cdc.Cdc} hub is hooked
          at the engine's batch commit point and a bounded-staleness
          read-replica subscription consumes the feed
          ([apply_every = 4]); replica consistency is asserted after the
          run.  Requires the [Cdc] capability (serial and the quecc
          family) — {!run} raises [Invalid_argument] otherwise, and
          cannot be combined with crash/disk faults (a truncated run
          would feed subscribers retracted commits). *)
  views : bool;
      (** additionally maintain a materialized per-partition aggregate
          view (SUM of table 0, field 0 — [w_ytd] for TPC-C) over the
          feed, verified against a full recompute at every caught-up
          point.  Implies [cdc]. *)
}

val make :
  ?name:string ->
  ?threads:int ->
  ?txns:int ->
  ?batch_size:int ->
  ?costs:Quill_sim.Costs.t ->
  ?faults:Quill_faults.Faults.spec ->
  ?clients:Quill_clients.Clients.cfg ->
  ?pipeline:bool ->
  ?steal:bool ->
  ?split:int ->
  ?adapt_repart:bool ->
  ?adapt_batch:bool ->
  ?replicas:int ->
  ?spec_lag:int ->
  ?wal:bool ->
  ?snapshot_every:int ->
  ?cdc:bool ->
  ?views:bool ->
  engine ->
  workload_spec ->
  t

val batches : t -> int
(** [txns] rounded to the nearest whole number of batches (at least 1). *)

val effective_txns : t -> int
(** The transaction count actually submitted: [batches t * batch_size].
    The same effective count is given to every engine, batch-oriented or
    per-transaction, so throughput comparisons stay apples-to-apples. *)

val run :
  ?tracer:Quill_trace.Trace.t ->
  ?recorder:Quill_analysis.Access_log.t ->
  ?on_workload:(Quill_txn.Workload.t -> unit) ->
  ?on_cdc:(Quill_cdc.Cdc.t -> unit) ->
  t ->
  Quill_txn.Metrics.t
(** Builds a fresh database, runs, returns metrics.

    Every optional feature the experiment requests is validated against
    the engine's {!Capability} set in one place, here, before the
    engine runs; [Invalid_argument] names the engine, the offending
    feature and the engine's capability set.  An engine never receives
    a flag outside its set, so no request is ever silently ignored.

    [on_workload] is called with the internally built workload just
    before the engine runs, letting callers hold a reference for
    post-run inspection (e.g. the committed-state checksum the skew
    sweep compares across adaptive and baseline runs).  [on_cdc] is
    called with the CDC hub after the run completes and the feed is
    drained (CDC runs only) — the hook the determinism tests use to
    capture feed digests.  Deterministic: the same [t] always yields
    the same metrics, with or without a tracer ([tracer] defaults to
    the disabled {!Quill_trace.Trace.null} and never affects virtual
    time).  [recorder] likewise never affects virtual time: it threads
    the conflict-detector access log through engines that support it
    (the QueCC family) for {!Quill_analysis.Conflict_check}. *)
