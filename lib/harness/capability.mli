(** Engine capability set.

    One value per optional feature an engine can honor.  Engines
    advertise a capability {e set} ({!Engine_intf.S.caps}) instead of
    per-feature booleans, and {!Experiment.run} validates every
    requested feature against it in one chokepoint — an engine is never
    handed (and never silently ignores) a feature it cannot honor. *)

type t =
  | Faults       (** consumes an active fault plan ([--faults]) *)
  | Clients      (** open-loop client layer ([--arrival ...]) *)
  | Dist         (** multi-node: network faults address real links *)
  | Wal          (** durable group-commit WAL ([--wal]) *)
  | Cdc          (** ordered commit-stream subscriptions ([--cdc]) *)
  | Replication  (** HA queue replication ([--replicas N]) *)

val all : t list
(** Every capability, in canonical order. *)

val to_string : t -> string
(** Lower-case name, e.g. ["wal"]. *)

val set_to_string : t list -> string
(** Canonically ordered, e.g. ["{faults, clients, wal, cdc}"]. *)

val mem : t -> t list -> bool

val require : engine:string -> have:t list -> (t * string) list -> unit
(** [require ~engine ~have wanted] checks every [(capability, feature
    description)] pair and raises [Invalid_argument] naming the engine
    and its full capability set on the first one missing from [have].
    The CLI maps the exception to exit code 2. *)
