(** First-class-module engine API.

    Every engine family adapts its native [run] to this shape and
    registers with {!Engine_registry}; the harness ({!Experiment.run}),
    the CLI and the bench driver dispatch through the registry instead
    of per-engine [match] arms. *)

type run_cfg = {
  threads : int;       (** virtual cores (per node for distributed) *)
  txns : int;          (** effective transaction count (whole batches) *)
  batches : int;       (** [txns / batch_size] *)
  batch_size : int;
  costs : Quill_sim.Costs.t;
  pipeline : bool;     (** overlap planning and execution (QueCC family) *)
  steal : bool;        (** executor work stealing (QueCC family) *)
  split : int option;
      (** QueCC hot-key queue splitting: per-planner per-key op count
          that triggers sub-queues; [None] = off.  Kept as a plain int
          (not the engine's [split_cfg]) so the harness stays
          engine-agnostic; engines without a split path ignore it. *)
  adapt_repart : bool;
      (** QueCC dynamic repartitioning of key→executor routing between
          batches (queue-depth driven). *)
  adapt_batch : bool;
      (** QueCC batch-size auto-tuning from pipeline stall counters
          (pipelined closed-loop runs only). *)
  replicas : int;
      (** HA queue replication: backup nodes receiving the planned-batch
          stream and commit markers (dist-quecc only; 0 = off).
          {!Experiment.run} rejects a positive value for engines without
          a replication layer. *)
  spec_lag : int;
      (** how many batches past the newest commit marker a backup may
          speculatively execute (>= 1). *)
  recorder : Quill_analysis.Access_log.t option;
      (** conflict-detector access recorder ([--check-conflicts]);
          engines that support it record row accesses with queue-slot
          attribution.  [None] (the default) costs nothing. *)
}

module type S = sig
  val name : string
  (** Canonical registry name. *)

  val supports_faults : bool
  (** Accepts an active fault plan ([?faults]). *)

  val supports_clients : bool
  (** Accepts the open-loop client layer ([?clients]). *)

  val supports_dist : bool
  (** A multi-node engine ([nodes] > 1 possible). *)

  val supports_wal : bool
  (** Can thread a durable group-commit WAL ([?wal]) through its batch
      commit points; implies crash + disk-fault recovery support for
      centralized engines. *)

  val nodes : int
  (** Cluster size (1 for centralized engines); sizes the client
      layer's per-node admission queues. *)

  val nparts : run_cfg -> int option
  (** Partition count the workload must be rebuilt with when the engine
      pins it to the cluster shape; [None] runs the workload as given. *)

  val run :
    ?sim:Quill_sim.Sim.t ->
    ?clients:Quill_clients.Clients.t ->
    ?faults:Quill_faults.Faults.spec ->
    ?wal:Quill_wal.Wal.t ->
    cfg:run_cfg ->
    Quill_txn.Workload.t ->
    Quill_txn.Metrics.t
  (** Callers must check the capability flags first: an engine ignores
      [?clients] / [?faults] / [?wal] it does not support. *)
end

type t = (module S)
