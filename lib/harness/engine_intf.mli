(** First-class-module engine API.

    Every engine family adapts its native [run] to this shape and
    registers with {!Engine_registry}; the harness ({!Experiment.run}),
    the CLI and the bench driver dispatch through the registry instead
    of per-engine [match] arms.  Optional features (faults, clients,
    WAL, CDC, replication) are validated against the engine's
    {!S.caps} capability set in {!Experiment.run}'s single chokepoint,
    so a [run] implementation never receives — and never has to
    silently ignore — an argument it does not support. *)

module Run_cfg : sig
  type exec_cfg = {
    pipeline : bool;  (** overlap planning and execution (QueCC family) *)
    steal : bool;     (** executor work stealing (QueCC family) *)
  }

  type adaptive_cfg = {
    split : int option;
        (** QueCC hot-key queue splitting: per-planner per-key op count
            that triggers sub-queues; [None] = off.  Kept as a plain
            int (not the engine's [split_cfg]) so the harness stays
            engine-agnostic. *)
    repart : bool;
        (** QueCC dynamic repartitioning of key→executor routing
            between batches (queue-depth driven). *)
    auto_batch : bool;
        (** QueCC batch-size auto-tuning from pipeline stall counters
            (pipelined closed-loop runs only). *)
  }

  type replication_cfg = {
    replicas : int;
        (** HA queue replication: backup nodes receiving the
            planned-batch stream and commit markers (0 = off). *)
    spec_lag : int;
        (** how many batches past the newest commit marker a backup may
            speculatively execute (>= 1). *)
  }

  type t = {
    threads : int;     (** virtual cores (per node for distributed) *)
    txns : int;        (** effective transaction count (whole batches) *)
    batches : int;     (** [txns / batch_size] *)
    batch_size : int;
    costs : Quill_sim.Costs.t;
    exec : exec_cfg;
    adaptive : adaptive_cfg;
    replication : replication_cfg;
    recorder : Quill_analysis.Access_log.t option;
        (** conflict-detector access recorder ([--check-conflicts]);
            engines that support it record row accesses with queue-slot
            attribution.  [None] (the default) costs nothing. *)
  }

  val default : t
  (** Baseline configuration (8 threads, 20 batches of 1024, default
      costs, every optional sub-record off) — construction sites
      override just the fields they care about, so adding a feature no
      longer touches every caller. *)
end

type run_cfg = Run_cfg.t

module type S = sig
  val name : string
  (** Canonical registry name. *)

  val caps : Capability.t list
  (** The optional features this engine honors; everything else is
      rejected by {!Experiment.run}'s capability chokepoint before
      [run] is reached. *)

  val nodes : int
  (** Cluster size (1 for centralized engines); sizes the client
      layer's per-node admission queues. *)

  val nparts : run_cfg -> int option
  (** Partition count the workload must be rebuilt with when the engine
      pins it to the cluster shape; [None] runs the workload as given. *)

  val run :
    ?sim:Quill_sim.Sim.t ->
    ?clients:Quill_clients.Clients.t ->
    ?faults:Quill_faults.Faults.spec ->
    ?wal:Quill_wal.Wal.t ->
    ?cdc:Quill_cdc.Cdc.t ->
    cfg:run_cfg ->
    Quill_txn.Workload.t ->
    Quill_txn.Metrics.t
  (** Every optional argument is guaranteed consistent with [caps] by
      the time this is called. *)
end

type t = (module S)
