open Quill_workloads
module E = Experiment
module Qe = Quill_quecc.Engine

let scaled scale n ~min_v = max min_v (int_of_float (float_of_int n *. scale))

(* Tracer shared by every run of the suite (bench --trace); the default
   null tracer records nothing. *)
let tracer = ref Quill_trace.Trace.null

(* When set (bench/CLI --check-conflicts), every QueCC-family run in the
   suite records its row accesses and is replayed through
   Conflict_check when it completes; a violation fails the whole suite.
   Engines outside the family run unrecorded — the detector's rules are
   about planned queues, which only the QueCC engines have. *)
let check_conflicts = ref false

let records_conflicts (engine : E.engine) =
  match engine with
  | E.Quecc _ | E.Dist_quecc _ -> true
  | E.Serial | E.Twopl_nowait | E.Twopl_waitdie | E.Silo | E.Tictoc
  | E.Mvto | E.Hstore | E.Calvin | E.Dist_calvin _ ->
      false

let run_exp ?on_workload e =
  if not (!check_conflicts && records_conflicts e.E.engine) then
    E.run ~tracer:!tracer ?on_workload e
  else begin
    let module CC = Quill_analysis.Conflict_check in
    let log = Quill_analysis.Access_log.create () in
    let m = E.run ~tracer:!tracer ~recorder:log ?on_workload e in
    let r = CC.check_log log in
    Format.printf "[conflict-check] %s: %a@." e.E.name CC.pp_report r;
    if not (CC.ok r) then
      failwith
        (Printf.sprintf
           "conflict-check: %d planned-order violations in %s"
           (List.length r.CC.violations) e.E.name);
    m
  end

let run_row engine spec ~threads ~txns ~batch_size =
  let e = E.make ~threads ~txns ~batch_size engine spec in
  { Report.label = E.engine_name e.E.engine; metrics = run_exp e }

(* ------------------------------------------------------------------ *)

let table2_row1 ?(scale = 1.0) () =
  let txns = scaled scale 12_288 ~min_v:2048 in
  let size = scaled scale 200_000 ~min_v:20_000 in
  let series =
    List.map
      (fun mp ->
        let spec =
          E.Ycsb
            {
              Ycsb.default with
              Ycsb.table_size = size;
              nparts = 8;
              theta = 0.0;
              mp_ratio = mp;
              parts_per_txn = 4;
            }
        in
        let rows =
          [
            run_row (E.Quecc (Qe.Speculative, Qe.Serializable)) spec
              ~threads:8 ~txns ~batch_size:2048;
            run_row E.Hstore spec ~threads:8 ~txns ~batch_size:2048;
          ]
        in
        (Printf.sprintf "%.0f%%" (mp *. 100.0), rows))
      [ 0.0; 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]
  in
  Report.print_sweep
    ~title:
      "Table 2 row 1: QueCC vs H-Store, YCSB multi-partition (4 parts/txn, \
       8 cores)"
    ~param:"multi-partition txns" series

let table2_row2 ?(scale = 1.0) () =
  let txns = scaled scale 20_480 ~min_v:4096 in
  let size = scaled scale 320_000 ~min_v:32_000 in
  let spec mp nparts =
    E.Ycsb
      {
        Ycsb.default with
        Ycsb.table_size = size;
        nparts;
        theta = 0.0;
        mp_ratio = mp;
        parts_per_txn = 2;
      }
  in
  let series =
    List.map
      (fun mp ->
        let rows =
          [
            (* 16 virtual cores per node: 8 planners + 8 executors. *)
            run_row (E.Dist_quecc 4) (spec mp 32) ~threads:16 ~txns
              ~batch_size:4096;
            run_row (E.Dist_calvin 4) (spec mp 16) ~threads:16 ~txns
              ~batch_size:4096;
          ]
        in
        (Printf.sprintf "%.0f%%" (mp *. 100.0), rows))
      [ 0.0; 0.2 ]
  in
  Report.print_sweep
    ~title:
      "Table 2 row 2: distributed QueCC vs Calvin, YCSB uniform (4 nodes x \
       16 cores)"
    ~param:"multi-node txns" series

let table2_row3 ?(scale = 1.0) () =
  let txns = scaled scale 16_384 ~min_v:2048 in
  let series =
    List.map
      (fun w ->
        let spec =
          E.Tpcc
            (Tpcc.payment_mix
               { Tpcc.default with Tpcc_defs.warehouses = w; nparts = 8 })
        in
        let engines =
          [
            E.Quecc (Qe.Conservative, Qe.Serializable);
            E.Quecc (Qe.Speculative, Qe.Serializable);
            E.Twopl_nowait;
            E.Twopl_waitdie;
            E.Silo;
            E.Tictoc;
            E.Mvto;
          ]
        in
        let rows =
          List.map
            (fun e -> run_row e spec ~threads:8 ~txns ~batch_size:1024)
            engines
        in
        (string_of_int w, rows))
      [ 1; 4 ]
  in
  Report.print_sweep
    ~title:
      "Table 2 row 3: QueCC vs non-deterministic protocols, TPC-C \
       NewOrder/Payment (8 cores)"
    ~param:"warehouses" series

(* ------------------------------------------------------------------ *)

let fig_contention ?(scale = 1.0) () =
  let txns = scaled scale 16_384 ~min_v:2048 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let series =
    List.map
      (fun theta ->
        let spec =
          E.Ycsb
            { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta }
        in
        let rows =
          List.map
            (fun e -> run_row e spec ~threads:8 ~txns ~batch_size:2048)
            E.all_centralized
        in
        (Printf.sprintf "%.2f" theta, rows))
      [ 0.0; 0.6; 0.9; 0.99 ]
  in
  Report.print_sweep
    ~title:"Contention sweep: YCSB zipfian theta (8 cores)" ~param:"theta"
    series

let fig_scalability ?(scale = 1.0) () =
  let txns = scaled scale 16_384 ~min_v:2048 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let series =
    List.map
      (fun threads ->
        let spec =
          E.Ycsb
            {
              Ycsb.default with
              Ycsb.table_size = size;
              nparts = threads;
              theta = 0.9;
            }
        in
        let rows =
          List.map
            (fun e -> run_row e spec ~threads ~txns ~batch_size:2048)
            [
              E.Quecc (Qe.Speculative, Qe.Serializable);
              E.Silo;
              E.Twopl_nowait;
              E.Calvin;
            ]
        in
        (string_of_int threads, rows))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Report.print_sweep ~title:"Scalability: YCSB theta=0.9" ~param:"cores"
    series

let fig_modes ?(scale = 1.0) () =
  let txns = scaled scale 16_384 ~min_v:2048 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let series =
    List.map
      (fun abort_ratio ->
        let spec =
          E.Ycsb
            {
              Ycsb.default with
              Ycsb.table_size = size;
              nparts = 8;
              theta = 0.6;
              abort_ratio;
              abort_threshold = 128;
              chain_deps = true;
            }
        in
        let rows =
          List.map
            (fun (label, mode, iso) ->
              let e = E.make ~threads:8 ~txns ~batch_size:2048
                        (E.Quecc (mode, iso)) spec
              in
              { Report.label; metrics = run_exp e })
            [
              ("speculative/serializable", Qe.Speculative, Qe.Serializable);
              ("conservative/serializable", Qe.Conservative, Qe.Serializable);
              ("speculative/read-committed", Qe.Speculative, Qe.Read_committed);
              ( "conservative/read-committed",
                Qe.Conservative,
                Qe.Read_committed );
            ]
        in
        (Printf.sprintf "%.0f%%" (abort_ratio *. 100.0), rows))
      [ 0.0; 0.02; 0.1 ]
  in
  Report.print_sweep
    ~title:
      "Execution modes & isolation ablation (paper section 3.2): YCSB with \
       abortable fragments"
    ~param:"abortable txns" series

let fig_latency ?(scale = 1.0) () =
  let txns = scaled scale 16_384 ~min_v:2048 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let spec =
    E.Ycsb
      { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta = 0.9 }
  in
  let rows =
    List.map
      (fun e -> run_row e spec ~threads:8 ~txns ~batch_size:2048)
      [
        E.Quecc (Qe.Speculative, Qe.Serializable);
        E.Calvin;
        E.Silo;
        E.Twopl_nowait;
      ]
  in
  Report.print_table
    ~title:"Latency distribution: YCSB theta=0.9 (batching vs per-txn)" rows

let fig_batch ?(scale = 1.0) () =
  let txns = scaled scale 32_768 ~min_v:8192 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let spec =
    E.Ycsb
      { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta = 0.9 }
  in
  let rows =
    List.map
      (fun batch_size ->
        let e =
          E.make
            ~name:(Printf.sprintf "quecc-batch-%d" batch_size)
            ~threads:8 ~txns ~batch_size
            (E.Quecc (Qe.Speculative, Qe.Serializable))
            spec
        in
        { Report.label = e.E.name; metrics = run_exp e })
      [ 128; 512; 2048; 8192 ]
  in
  Report.print_table
    ~title:
      "Batch-size sensitivity: larger batches amortize planning but pay        latency (YCSB theta=0.9, 8 cores)"
    rows

(* Pipelined batch execution: the PR's headline experiment.  Each theta
   runs QueCC with the pipeline off, on, and on-with-stealing on the
   same workload spec, so the off row is the oracle both for state
   (bit-identical per seed, covered by the test suite) and for the
   speedup the sweep table shows.  The distributed engines get the
   lag-1 variant at low contention.  [json] additionally dumps every
   row as machine-readable JSON — the CI perf-trajectory artifact. *)
let pipeline ?(scale = 1.0) ?json () =
  let module M = Quill_txn.Metrics in
  let txns = scaled scale 16_384 ~min_v:4096 in
  let size = scaled scale 200_000 ~min_v:20_000 in
  let results = ref [] in
  let row engine label ~theta ~pipeline ~steal ~threads ~batch_size spec =
    let e = E.make ~threads ~txns ~batch_size ~pipeline ~steal engine spec in
    let m = run_exp e in
    results := (E.engine_name engine, theta, pipeline, steal, m) :: !results;
    { Report.label; metrics = m }
  in
  let series =
    List.map
      (fun theta ->
        let spec =
          E.Ycsb
            { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta }
        in
        let quecc = E.Quecc (Qe.Speculative, Qe.Serializable) in
        let r = row quecc ~theta ~threads:8 ~batch_size:1024 in
        let rows =
          [
            (* lint: engine-name-ok — report row label, not dispatch *)
            r "quecc" ~pipeline:false ~steal:false spec;
            r "quecc+pipe" ~pipeline:true ~steal:false spec;
            r "quecc+pipe+steal" ~pipeline:true ~steal:true spec;
          ]
        in
        (Printf.sprintf "theta=%.2f" theta, rows))
      [ 0.0; 0.6; 0.9 ]
  in
  Report.print_sweep
    ~title:
      "Pipelined batches: planning of batch N+1 overlapped with execution \
       of batch N (YCSB, 8 cores, committed state identical per seed)"
    ~param:"contention" series;
  let dspec =
    E.Ycsb
      {
        Ycsb.default with
        Ycsb.table_size = size;
        nparts = 16;
        theta = 0.0;
        mp_ratio = 0.2;
        parts_per_txn = 2;
      }
  in
  let drows =
    let r = row ~theta:0.0 ~steal:false ~threads:8 ~batch_size:2048 in
    [
      (* lint: engine-name-ok — report row label, not dispatch *)
      r (E.Dist_quecc 4) "dist-quecc" ~pipeline:false dspec;
      r (E.Dist_quecc 4) "dist-quecc+pipe" ~pipeline:true dspec;
      (* lint: engine-name-ok — report row label, not dispatch *)
      r (E.Dist_calvin 4) "dist-calvin" ~pipeline:false dspec;
      r (E.Dist_calvin 4) "dist-calvin+pipe" ~pipeline:true dspec;
    ]
  in
  Report.print_table
    ~title:
      "Distributed lag-1 pipelining: plan/sequence batch N+1 during batch \
       N (YCSB theta=0, 20% multi-node, 4 nodes)"
    drows;
  match json with
  | None -> ()
  | Some path ->
      (* OCaml evaluates list elements right-to-left, so [results]
         accumulates in a surprising order; sort on the identifying
         fields for a stable artifact. *)
      let rows =
        List.sort
          (fun (n1, t1, p1, s1, _) (n2, t2, p2, s2, _) ->
            compare (n1, t1, p1, s1) (n2, t2, p2, s2))
          !results
      in
      let n = List.length rows in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"pipeline\",\n  \"scale\": %g,\n  \"rows\": [\n"
        scale;
      List.iteri
        (fun i (name, theta, pipe, steal, m) ->
          Printf.fprintf oc
            "    {\"engine\": %S, \"theta\": %g, \"pipeline\": %b, \
             \"steal\": %b, \"tput\": %.1f, \"committed\": %d, \
             \"fill_stall\": %d, \"drain_stall\": %d, \
             \"stolen_queues\": %d}%s\n"
            name theta pipe steal (M.throughput m) m.M.committed
            m.M.pipe_fill_stall m.M.pipe_drain_stall m.M.stolen_queues
            (if i = n - 1 then "" else ",");
          )
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "pipeline: wrote %s\n" path

(* Adaptive planning under skew: QueCC with hot-key queue splitting and
   dynamic repartitioning against the plain planner, on a YCSB variant
   whose zipfian draw is global (the same hottest keys from every
   stream — the worst case for static key→executor routing).  The plain
   row at each theta is the state oracle: splitting and repartitioning
   are schedule-preserving, so the committed-state checksum must match
   it bit-for-bit (also dumped to [json] for the CI skew-smoke job,
   alongside the split/repartition counters the job asserts fire). *)
let skew ?(scale = 1.0) ?json () =
  let module M = Quill_txn.Metrics in
  let txns = scaled scale 16_384 ~min_v:4096 in
  let size = scaled scale 100_000 ~min_v:10_000 in
  let results = ref [] in
  let quecc = E.Quecc (Qe.Speculative, Qe.Serializable) in
  let row label ~theta ~split ~adapt_repart spec =
    let e =
      E.make ~threads:8 ~txns ~batch_size:1024 ?split ~adapt_repart quecc
        spec
    in
    let wl_ref = ref None in
    let m = run_exp ~on_workload:(fun wl -> wl_ref := Some wl) e in
    let chk =
      match !wl_ref with
      | Some wl -> Quill_storage.Db.checksum wl.Quill_txn.Workload.db
      | None -> 0
    in
    results := (theta, split, adapt_repart, chk, m) :: !results;
    { Report.label; metrics = m }
  in
  let series =
    List.map
      (fun theta ->
        let spec =
          E.Ycsb
            {
              Ycsb.default with
              Ycsb.table_size = size;
              nparts = 8;
              theta;
              global_zipf = true;
            }
        in
        let rows =
          [
            (* lint: engine-name-ok — report row label, not dispatch *)
            row "quecc" ~theta ~split:None ~adapt_repart:false spec;
            row "quecc+split" ~theta ~split:(Some 32) ~adapt_repart:false
              spec;
            row "quecc+split+repart" ~theta ~split:(Some 32)
              ~adapt_repart:true spec;
          ]
        in
        (Printf.sprintf "theta=%.2f" theta, rows))
      [ 0.0; 0.6; 0.9 ]
  in
  Report.print_sweep
    ~title:
      "Adaptive planning under skew: hot-key queue splitting and dynamic \
       repartitioning vs the static planner (YCSB global-zipf, 8 cores, \
       committed state identical per seed)"
    ~param:"contention" series;
  match json with
  | None -> ()
  | Some path ->
      let rows =
        List.sort
          (fun (t1, s1, r1, _, _) (t2, s2, r2, _, _) ->
            compare (t1, s1, r1) (t2, s2, r2))
          !results
      in
      let n = List.length rows in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"skew\",\n  \"scale\": %g,\n  \"rows\": [\n"
        scale;
      List.iteri
        (fun i (theta, split, repart, chk, m) ->
          Printf.fprintf oc
            "    {\"engine\": \"quecc\", \"theta\": %g, \"split\": %d, \
             \"repart\": %b, \"tput\": %.1f, \"committed\": %d, \
             \"split_keys\": %d, \"split_subqueues\": %d, \
             \"repart_moves\": %d, \"db_checksum\": %d}%s\n"
            theta
            (match split with Some t -> t | None -> 0)
            repart (M.throughput m) m.M.committed m.M.split_keys
            m.M.split_subqueues m.M.repart_moves chk
            (if i = n - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "skew: wrote %s\n" path

(* One crash mid-run on node 1 plus 1% drop and 1% duplication: the
   EXPERIMENTS.md robustness headline.  The crash time is tuned to land
   inside the execution window of BOTH engines even at the minimum
   scale: dist-quecc finishes a 2048-txn run in ~600us of virtual time,
   so the crash must come well before that (dist-calvin runs ~8x
   longer; see the fault table's crashes column for confirmation it
   fired). *)
let default_fault_plan =
  match
    Quill_faults.Faults.parse
      "crash@t=200us:node=1:down=200us,drop=0.01,dup=0.01,seed=7"
  with
  | Ok s -> s
  | Error _ -> assert false

let fault_tolerance ?(scale = 1.0) ?(plan = default_fault_plan) () =
  let txns = scaled scale 8_192 ~min_v:2048 in
  let size = scaled scale 64_000 ~min_v:8_000 in
  let spec =
    E.Ycsb
      {
        Ycsb.default with
        Ycsb.table_size = size;
        nparts = 16;
        theta = 0.6;
        mp_ratio = 0.2;
        parts_per_txn = 2;
      }
  in
  let row engine faults =
    let e = E.make ~threads:8 ~txns ~batch_size:1024 ~faults engine spec in
    {
      Report.label = E.engine_name e.E.engine;
      metrics = run_exp e;
    }
  in
  let engines = [ E.Dist_quecc 4; E.Dist_calvin 4 ] in
  let series =
    [
      ("none", List.map (fun e -> row e Quill_faults.Faults.none) engines);
      ( Quill_faults.Faults.to_string plan,
        List.map (fun e -> row e plan) engines );
    ]
  in
  Report.print_sweep
    ~title:
      "Fault tolerance: dist-quecc (queue replay) vs dist-calvin (sequencer \
       replay) under an identical fault plan (4 nodes x 8 cores)"
    ~param:"fault plan" series

(* HA replication and leader failover (ISSUE 8 headline): a single-node
   dist-quecc leader streams its planned queues to two backups that
   speculatively execute behind a bounded commit-marker lag.  Three rows:
   the unreplicated baseline, the replicated fault-free run (the
   replication tax), and the replicated run with the leader killed
   mid-run (the failover bill).  All three must commit the same
   transactions to the same state — replication is visibility-deferred
   speculation over the same deterministic plan, and failover loses
   nothing the leader ever acknowledged.  [json] dumps per-row
   checksums, failover_ns and the fault-free epoch_ns for the CI
   failover-smoke job; [plan] overrides the probed mid-run crash.

   Rows run through [E.run] directly: replication does not compose with
   the conflict recorder (the backups replay txns outside the planned
   queue attribution), so the suite-wide --check-conflicts flag must not
   attach one here. *)
let failover ?(scale = 1.0) ?json ?plan () =
  let module M = Quill_txn.Metrics in
  let txns = scaled scale 8_192 ~min_v:2048 in
  let size = scaled scale 64_000 ~min_v:8_000 in
  let spec =
    E.Ycsb
      {
        Ycsb.default with
        Ycsb.table_size = size;
        nparts = 2;
        theta = 0.6;
        mp_ratio = 0.2;
      }
  in
  let results = ref [] in
  let row label ~replicas ~faults =
    let e =
      E.make ~threads:4 ~txns ~batch_size:1024 ~faults ~replicas ~spec_lag:2
        (E.Dist_quecc 1) spec
    in
    let wl_ref = ref None in
    let m = E.run ~tracer:!tracer ~on_workload:(fun wl -> wl_ref := Some wl) e in
    let chk =
      match !wl_ref with
      | Some wl -> Quill_storage.Db.checksum wl.Quill_txn.Workload.db
      | None -> 0
    in
    results := !results @ [ (label, replicas, chk, m) ];
    ({ Report.label; metrics = m }, m)
  in
  let base, _ = row "dist-quecc-1n" ~replicas:0 ~faults:Quill_faults.Faults.none in
  let ha, mha = row "+2 replicas" ~replicas:2 ~faults:Quill_faults.Faults.none in
  let epoch_ns = mha.M.elapsed / max 1 (E.batches (E.make (E.Dist_quecc 1) spec ~txns ~batch_size:1024)) in
  let plan =
    match plan with
    | Some p -> p
    | None ->
        (* kill the leader in the middle of the replicated run *)
        {
          Quill_faults.Faults.none with
          Quill_faults.Faults.seed = 7;
          crashes =
            [
              {
                Quill_faults.Faults.node = 0;
                at = mha.M.elapsed / 2;
                down = 1;
              };
            ];
        }
  in
  let crash, _ = row "+2 replicas, leader crash" ~replicas:2 ~faults:plan in
  Report.print_table
    ~title:
      "HA replication: speculative backups and leader failover \
       (dist-quecc 1 leader + 2 backups, 4 cores, spec-lag 2; committed \
       state identical across all rows)"
    [ base; ha; crash ];
  match json with
  | None -> ()
  | Some path ->
      let n = List.length !results in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": \"failover\",\n\
        \  \"scale\": %g,\n\
        \  \"epoch_ns\": %d,\n\
        \  \"rows\": [\n"
        scale epoch_ns;
      List.iteri
        (fun i (label, replicas, chk, m) ->
          Printf.fprintf oc
            "    {\"label\": %S, \"replicas\": %d, \"tput\": %.1f, \
             \"committed\": %d, \"crashes\": %d, \"failovers\": %d, \
             \"failover_ns\": %d, \"spec_executed\": %d, \"spec_wasted\": \
             %d, \"rep_lag_max\": %d, \"db_checksum\": %d}%s\n"
            label replicas (M.throughput m) m.M.committed m.M.crashes
            m.M.failovers m.M.failover_time m.M.spec_executed m.M.spec_wasted
            m.M.rep_lag_max chk
            (if i = n - 1 then "" else ","))
        !results;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "failover: wrote %s\n" path

(* Durability (ISSUE 9 headline): QueCC's planned queues already fix the
   commit order, so durability is one group-commit fsync per batch — the
   WAL logs each batch's row images and hardens them at the batch commit
   point.  Four rows: the no-WAL baseline (what durability costs), the
   WAL run (the overhead must stay small at theta 0), the serial engine
   with the same group-commit log, and the WAL run killed mid-run.  The
   crashed run recovers from the newest snapshot plus the log and must
   land bit-identical to a fault-free run truncated to the same durable
   boundary — that oracle run is re-executed here and the checksums
   compared.  [json] dumps per-row counters plus the oracle comparison
   for the CI durability-smoke job.

   Rows run through [E.run] directly: the WAL's commit-point index
   probes happen outside planned-queue attribution, so the suite-wide
   --check-conflicts recorder must not attach here (same reason as
   [failover]). *)
let durability ?(scale = 1.0) ?json () =
  let module M = Quill_txn.Metrics in
  let module F = Quill_faults.Faults in
  let txns = scaled scale 8_192 ~min_v:2048 in
  let size = scaled scale 64_000 ~min_v:8_000 in
  let ycfg =
    { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta = 0.0 }
  in
  let spec = E.Ycsb ycfg in
  let threads = 8 and batch_size = 512 in
  let results = ref [] in
  let run_one label engine ~txns ~wal ~faults =
    let e =
      E.make ~name:label ~threads ~txns ~batch_size ~faults ~wal
        ~snapshot_every:8 engine spec
    in
    let wl_ref = ref None in
    let m = E.run ~tracer:!tracer ~on_workload:(fun wl -> wl_ref := Some wl) e in
    let chk =
      match !wl_ref with
      | Some wl -> Quill_storage.Db.checksum wl.Quill_txn.Workload.db
      | None -> 0
    in
    (m, chk)
  in
  let row label engine ~txns ~wal ~faults =
    let m, chk = run_one label engine ~txns ~wal ~faults in
    results := !results @ [ (label, wal, chk, m) ];
    ({ Report.label; metrics = m }, m, chk)
  in
  let quecc = E.Quecc (Qe.Speculative, Qe.Serializable) in
  let base, mbase, _ =
    (* lint: engine-name-ok — report row label, not dispatch *)
    row "quecc" quecc ~txns ~wal:false ~faults:F.none
  in
  let walled, mwal, _ = row "quecc --wal" quecc ~txns ~wal:true ~faults:F.none in
  let serial_r, _, _ =
    row "serial --wal" E.Serial ~txns ~wal:true ~faults:F.none
  in
  (* kill the WAL run in the middle; recovery happens inside the run *)
  let plan =
    {
      F.none with
      F.seed = 9;
      crashes = [ { F.node = 0; at = mwal.M.elapsed / 2; down = 1 } ];
    }
  in
  let crash_r, mcrash, crash_chk =
    row "quecc --wal, crash" quecc ~txns ~wal:true ~faults:plan
  in
  (* Oracle: a fault-free run over the same streams, truncated to the
     crashed run's durable boundary.  Bit-identity at that boundary is
     the whole durability claim. *)
  let durable_txns = mcrash.M.durable_batches * batch_size in
  let oracle_chk, oracle_committed =
    if durable_txns = 0 then
      (* nothing durable: recovery must yield the pristine loaded db *)
      ( Quill_storage.Db.checksum
          (Ycsb.make ycfg).Quill_txn.Workload.db,
        0 )
    else
      let m, chk =
        run_one "oracle" quecc ~txns:durable_txns ~wal:false ~faults:F.none
      in
      (chk, m.M.committed)
  in
  let state_match =
    crash_chk = oracle_chk && mcrash.M.committed = oracle_committed
  in
  let overhead_pct =
    100.0 *. (1.0 -. (M.throughput mwal /. M.throughput mbase))
  in
  Report.print_table
    ~title:
      "Durability: batch-aligned group-commit WAL (YCSB theta=0, 8 cores; \
       snapshot every 8 batches; crashed run recovers to the last durable \
       batch)"
    [ base; walled; serial_r; crash_r ];
  Printf.printf
    "durability: WAL overhead %.1f%%; crash recovered %d batches \
     (%d txns), state %s the truncated fault-free run\n"
    overhead_pct mcrash.M.durable_batches mcrash.M.committed
    (if state_match then "matches" else "DIVERGES FROM");
  match json with
  | None -> ()
  | Some path ->
      let n = List.length !results in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": \"durability\",\n\
        \  \"scale\": %g,\n\
        \  \"overhead_pct\": %.2f,\n\
        \  \"crash\": {\"durable_batches\": %d, \"durable_txns\": %d, \
         \"recovered_committed\": %d, \"oracle_committed\": %d, \
         \"recovered_checksum\": %d, \"oracle_checksum\": %d, \
         \"state_match\": %b, \"recovery_ns\": %d},\n\
        \  \"rows\": [\n"
        scale overhead_pct mcrash.M.durable_batches durable_txns
        mcrash.M.committed oracle_committed crash_chk oracle_chk state_match
        mcrash.M.recovery_time;
      List.iteri
        (fun i (label, wal, chk, m) ->
          Printf.fprintf oc
            "    {\"label\": %S, \"wal\": %b, \"tput\": %.1f, \
             \"committed\": %d, \"durable_batches\": %d, \"wal_bytes\": %d, \
             \"fsyncs\": %d, \"fsync_fails\": %d, \"snapshots\": %d, \
             \"truncations\": %d, \"torn\": %d, \"crashes\": %d, \
             \"recovery_ns\": %d, \"db_checksum\": %d}%s\n"
            label wal (M.throughput m) m.M.committed m.M.durable_batches
            m.M.wal_bytes m.M.wal_fsyncs m.M.wal_fsync_fails m.M.snapshots
            m.M.wal_truncations m.M.torn_records m.M.crashes m.M.recovery_time
            chk
            (if i = n - 1 then "" else ","))
        !results;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "durability: wrote %s\n" path

(* CDC (ISSUE 10 headline): QueCC's planning phase fixes the commit
   order before execution starts, so the change stream is a pure
   function of the input batches — the CDC feed must come out
   byte-identical across lockstep, pipelined, stealing and split-queue
   runs of the same seed, and the subscription hub must cost little at
   the commit point.  Rows: the no-CDC quecc baseline, quecc --cdc
   (replica subscription), quecc --cdc --views (replica + verified
   materialized view), the same three alternate quecc schedules with
   --cdc, and serial --cdc (group-commit feed; its batch boundaries
   differ, so its digest is reported but not compared).  The feed digest
   of every quecc-family row must match, the view must equal a full
   recompute at every caught-up point (View verifies internally and the
   run fails on divergence), and the CDC overhead must stay within
   budget.  [json] dumps digests + counters for the CI cdc-smoke job. *)
let cdc ?(scale = 1.0) ?json () =
  let module M = Quill_txn.Metrics in
  let module Cdc = Quill_cdc.Cdc in
  let txns = scaled scale 8_192 ~min_v:2048 in
  let size = scaled scale 64_000 ~min_v:8_000 in
  let spec =
    E.Ycsb
      { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta = 0.6 }
  in
  let threads = 8 and batch_size = 512 in
  let results = ref [] in
  let row label engine ~cdc ~views ?(pipeline = false) ?(steal = false)
      ?split () =
    let e =
      E.make ~name:label ~threads ~txns ~batch_size ~cdc ~views ~pipeline
        ~steal ?split engine spec
    in
    let feed = ref None in
    let m =
      E.run ~tracer:!tracer
        ~on_cdc:(fun h ->
          feed := Some (Cdc.digest h, Cdc.feed_bytes h, Cdc.events h))
        e
    in
    results := !results @ [ (label, !feed, m) ];
    ({ Report.label; metrics = m }, m, !feed)
  in
  let quecc = E.Quecc (Qe.Speculative, Qe.Serializable) in
  let base, mbase, _ =
    (* lint: engine-name-ok — report row label, not dispatch *)
    row "quecc" quecc ~cdc:false ~views:false ()
  in
  let cdc_r, mcdc, feed0 = row "quecc --cdc" quecc ~cdc:true ~views:false () in
  let views_r, mviews, feed_v =
    row "quecc --cdc --views" quecc ~cdc:true ~views:true ()
  in
  let pipe_r, _, feed_p =
    row "pipelined --cdc" quecc ~cdc:true ~views:false ~pipeline:true ()
  in
  let steal_r, _, feed_s =
    row "pipelined+steal --cdc" quecc ~cdc:true ~views:false ~pipeline:true
      ~steal:true ()
  in
  let split_r, _, feed_sp =
    row "split --cdc" quecc ~cdc:true ~views:false ~split:16 ()
  in
  let serial_r, _, _ = row "serial --cdc" E.Serial ~cdc:true ~views:false () in
  let digest = function Some (d, _, _) -> d | None -> 0 in
  let deterministic =
    List.for_all
      (fun f -> digest f = digest feed0 && digest feed0 <> 0)
      [ feed_v; feed_p; feed_s; feed_sp ]
  in
  let view_ok = mviews.M.view_refreshes > 0 in
  let overhead_pct =
    100.0 *. (1.0 -. (M.throughput mcdc /. M.throughput mbase))
  in
  Report.print_table
    ~title:
      "CDC: ordered commit-stream subscriptions (YCSB theta=0.6, 8 cores; \
       replica at staleness 4; view verified against recompute)"
    [ base; cdc_r; views_r; pipe_r; steal_r; split_r; serial_r ];
  Printf.printf
    "cdc: feed %s across lockstep/pipelined/steal/split (digest %08x); \
     view=recompute %s; overhead %.1f%%\n"
    (if deterministic then "byte-identical" else "DIVERGES")
    (digest feed0)
    (if view_ok then "held" else "NOT EXERCISED")
    overhead_pct;
  if not deterministic then
    failwith "cdc: feed digests diverge across quecc schedules";
  (match json with
  | None -> ()
  | Some path ->
      let n = List.length !results in
      let oc = open_out path in
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": \"cdc\",\n\
        \  \"scale\": %g,\n\
        \  \"overhead_pct\": %.2f,\n\
        \  \"deterministic\": %b,\n\
        \  \"view_ok\": %b,\n\
        \  \"rows\": [\n"
        scale overhead_pct deterministic view_ok;
      List.iteri
        (fun i (label, feed, m) ->
          let d, bytes, events =
            match feed with Some f -> f | None -> (0, 0, 0)
          in
          Printf.fprintf oc
            "    {\"label\": %S, \"tput\": %.1f, \"committed\": %d, \
             \"digest\": %d, \"feed_bytes\": %d, \"events\": %d, \
             \"batches\": %d, \"subs\": %d, \"lag_max\": %d, \
             \"catchup\": %d, \"view_refreshes\": %d}%s\n"
            label (M.throughput m) m.M.committed d bytes events
            m.M.cdc_batches m.M.cdc_subs m.M.cdc_lag_max m.M.cdc_catchup
            m.M.view_refreshes
            (if i = n - 1 then "" else ","))
        !results;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "cdc: wrote %s\n" path)

(* ------------------------------------------------------------------ *)

module C = Quill_clients.Clients

(* The overload sweep (ISSUE 4 headline): open-loop clients offer
   0.25x..4x of each engine's own closed-loop saturation throughput and
   the table contrasts plateau (admission control sheds / deadlines
   drop the excess, goodput holds) with collapse (Block bounds the
   queue but stalls the offered stream).  Anchoring the multipliers on
   a per-engine closed-loop probe keeps "2x saturation" meaningful for
   engines an order of magnitude apart in peak throughput.

   [arrival] pins an absolute arrival process for every row instead of
   the multiplier sweep; [admission] collapses the per-policy QueCC
   variants to a single policy for every engine; [deadline] / [retries]
   override the deadline-row budget and the retry policy. *)
let overload ?(scale = 1.0) ?arrival ?admission ?deadline ?retries () =
  let txns = scaled scale 8_192 ~min_v:2048 in
  let size = scaled scale 64_000 ~min_v:8_000 in
  let spec =
    E.Ycsb { Ycsb.default with Ycsb.table_size = size; nparts = 8; theta = 0.6 }
  in
  let threads = 8 and batch_size = 512 in
  let engines =
    [ E.Quecc (Qe.Speculative, Qe.Serializable); E.Calvin; E.Twopl_nowait ]
  in
  let probe =
    List.map
      (fun eng ->
        let e = E.make ~threads ~txns ~batch_size eng spec in
        (eng, run_exp e))
      engines
  in
  let sat eng =
    Float.max 1.0 (Quill_txn.Metrics.throughput (List.assoc eng probe))
  in
  (* Deadline budget: the closed-loop QueCC p99 — the SLO a capacity
     plan would set from the engine's profile at saturation.  Roomy
     below saturation, but shorter than the residency of a full
     admission queue, so overload shows up as deadline misses rather
     than silently-late commits. *)
  let dl =
    match deadline with
    | Some d -> d
    | None ->
        let quecc_m = List.assoc (List.hd engines) probe in
        max 200_000
          (Quill_common.Stats.Hist.percentile quecc_m.Quill_txn.Metrics.lat 99.0)
  in
  let max_retries, backoff =
    match retries with Some r -> r | None -> (3, 2_000)
  in
  let depth = match admission with Some (_, d) -> d | None -> 1024 in
  let variants =
    match admission with
    | Some (policy, _) -> List.map (fun eng -> (eng, policy)) engines
    | None ->
        [
          (List.nth engines 0, C.Shed_oldest);
          (List.nth engines 0, C.Deadline);
          (List.nth engines 0, C.Block);
          (List.nth engines 1, C.Shed_oldest);
          (List.nth engines 2, C.Shed_oldest);
        ]
  in
  let row ~mult (eng, policy) =
    let arrival =
      match arrival with
      | Some a -> a
      | None -> C.Poisson (mult *. sat eng)
    in
    let ccfg =
      {
        C.default with
        C.arrival;
        depth;
        policy;
        deadline = (if policy = C.Deadline then dl else 0);
        max_retries;
        backoff;
      }
    in
    let label =
      Printf.sprintf "%s+%s" (E.engine_name eng) (C.policy_name policy)
    in
    let e =
      E.make ~name:label ~threads ~txns ~batch_size ~clients:ccfg eng spec
    in
    { Report.label; metrics = run_exp e }
  in
  let series =
    match arrival with
    | Some a ->
        [ (C.arrival_to_string a, List.map (row ~mult:1.0) variants) ]
    | None ->
        List.map
          (fun mult ->
            (Printf.sprintf "%.2fx" mult, List.map (row ~mult) variants))
          [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
  in
  Report.print_sweep
    ~title:
      "Overload: open-loop clients at a multiple of each engine's saturation \
       throughput (YCSB theta=0.6, 8 cores)"
    ~param:"offered load" series

let all ?(scale = 1.0) () =
  table2_row1 ~scale ();
  table2_row2 ~scale ();
  table2_row3 ~scale ();
  fig_contention ~scale ();
  fig_scalability ~scale ();
  fig_modes ~scale ();
  fig_latency ~scale ();
  fig_batch ~scale ();
  pipeline ~scale ();
  skew ~scale ();
  fault_tolerance ~scale ();
  failover ~scale ();
  durability ~scale ();
  cdc ~scale ();
  overload ~scale ()
