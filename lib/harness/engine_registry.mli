(** The engine registry: the one place engine names are parsed, printed
    and dispatched.

    Each engine family registers a {!family} record at module-load time;
    {!Experiment.run}, the CLI and the bench driver resolve engines to
    first-class {!Engine_intf.S} modules through it and never match on
    engine constructors themselves. *)

type engine =
  | Serial
  | Quecc of Quill_quecc.Engine.exec_mode * Quill_quecc.Engine.isolation
  | Twopl_nowait
  | Twopl_waitdie
  | Silo
  | Tictoc
  | Mvto
  | Hstore
  | Calvin
  | Dist_quecc of int   (** nodes *)
  | Dist_calvin of int  (** nodes *)

type family = {
  family_names : string list;
      (** names advertised in [--help] / error messages (patterns like
          ["dist-quecc-<n>n"] stand for the parameterized forms) *)
  parse : string -> engine option;
  name_of : engine -> string option;
  resolve : engine -> Engine_intf.t option;
  centralized : engine list;
      (** members of {!all_centralized}, comparison-table order *)
}

val register_family : family -> unit
(** Append a family; later families only see names earlier ones
    rejected. *)

val engine_name : engine -> string
(** Canonical name; round-trips through {!engine_of_string}.  Raises
    [Invalid_argument] for an unregistered engine. *)

val engine_of_string : string -> engine option

val resolve : engine -> Engine_intf.t
(** Raises [Invalid_argument] for an unregistered engine. *)

val names : unit -> string list
(** Every advertised engine name, registration order (for [--help] and
    error messages). *)

val all_centralized : engine list
(** Every single-node engine, QueCC first. *)
