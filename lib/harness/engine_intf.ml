(* First-class-module engine API: every engine family exposes the same
   [run] shape plus a capability set, so the harness, the CLI and the
   bench dispatch generically instead of growing per-engine match arms
   (see Engine_registry). *)

module Run_cfg = struct
  type exec_cfg = { pipeline : bool; steal : bool }

  type adaptive_cfg = {
    split : int option;
        (* QueCC hot-key queue splitting: per-planner per-key op count
           that triggers a split; None = off.  Plain int (not the
           engine's record) so the harness stays engine-agnostic. *)
    repart : bool;  (* dynamic repartitioning between batches *)
    auto_batch : bool;  (* batch-size auto-tuning (pipelined runs) *)
  }

  type replication_cfg = {
    replicas : int;  (* backup nodes receiving the planned-batch stream *)
    spec_lag : int;
        (* how many batches past the newest commit marker a backup may
           speculatively execute (>= 1) *)
  }

  type t = {
    threads : int;
    txns : int;
    batches : int;
    batch_size : int;
    costs : Quill_sim.Costs.t;
    exec : exec_cfg;
    adaptive : adaptive_cfg;
    replication : replication_cfg;
    recorder : Quill_analysis.Access_log.t option;
        (* conflict-detector access recorder (--check-conflicts) *)
  }

  let default =
    {
      threads = 8;
      txns = 20_480;
      batches = 20;
      batch_size = 1024;
      costs = Quill_sim.Costs.default;
      exec = { pipeline = false; steal = false };
      adaptive = { split = None; repart = false; auto_batch = false };
      replication = { replicas = 0; spec_lag = 1 };
      recorder = None;
    }
end

type run_cfg = Run_cfg.t

module type S = sig
  val name : string
  (* Canonical registry name ([engine_name] of the resolved engine). *)

  val caps : Capability.t list
  (* The optional features this engine honors.  Experiment.run's
     chokepoint rejects any requested feature outside this set, so a
     [run] implementation only ever sees arguments it supports. *)

  val nodes : int
  (* Cluster size (1 for centralized engines); sizes the client layer's
     per-node admission queues. *)

  val nparts : run_cfg -> int option
  (* Partition count the workload must be rebuilt with when the engine
     pins it to the cluster shape; None = run on the workload as given. *)

  val run :
    ?sim:Quill_sim.Sim.t ->
    ?clients:Quill_clients.Clients.t ->
    ?faults:Quill_faults.Faults.spec ->
    ?wal:Quill_wal.Wal.t ->
    ?cdc:Quill_cdc.Cdc.t ->
    cfg:run_cfg ->
    Quill_txn.Workload.t ->
    Quill_txn.Metrics.t
end

type t = (module S)
