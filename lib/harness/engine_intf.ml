(* First-class-module engine API: every engine family exposes the same
   [run] shape plus capability flags, so the harness, the CLI and the
   bench dispatch generically instead of growing per-engine match arms
   (see Engine_registry). *)

type run_cfg = {
  threads : int;
  txns : int;
  batches : int;
  batch_size : int;
  costs : Quill_sim.Costs.t;
  pipeline : bool;
  steal : bool;
  split : int option;
      (* QueCC hot-key queue splitting: per-planner per-key op count
         that triggers a split; None = off.  Plain int (not the engine's
         record) so the harness stays engine-agnostic; engines that
         don't split ignore it. *)
  adapt_repart : bool;
      (* QueCC dynamic repartitioning between batches *)
  adapt_batch : bool;
      (* QueCC batch-size auto-tuning (pipelined runs) *)
  replicas : int;
      (* HA queue replication: backup nodes receiving the planned-batch
         stream (dist-quecc only; 0 = off).  Engines without a
         replication layer reject a positive value rather than silently
         dropping the redundancy the user asked for. *)
  spec_lag : int;
      (* how many batches past the newest commit marker a backup may
         speculatively execute (>= 1) *)
  recorder : Quill_analysis.Access_log.t option;
      (* conflict-detector access recorder (--check-conflicts); engines
         that support it thread row accesses through the log *)
}

module type S = sig
  val name : string
  (* Canonical registry name ([engine_name] of the resolved engine). *)

  val supports_faults : bool
  val supports_clients : bool
  val supports_dist : bool

  val supports_wal : bool
  (* Whether the engine can thread a durable group-commit WAL (--wal)
     through its batch commit points; implies crash + disk-fault
     recovery support for centralized engines. *)

  val nodes : int
  (* Cluster size (1 for centralized engines); sizes the client layer's
     per-node admission queues. *)

  val nparts : run_cfg -> int option
  (* Partition count the workload must be rebuilt with when the engine
     pins it to the cluster shape; None = run on the workload as given. *)

  val run :
    ?sim:Quill_sim.Sim.t ->
    ?clients:Quill_clients.Clients.t ->
    ?faults:Quill_faults.Faults.spec ->
    ?wal:Quill_wal.Wal.t ->
    cfg:run_cfg ->
    Quill_txn.Workload.t ->
    Quill_txn.Metrics.t
end

type t = (module S)
