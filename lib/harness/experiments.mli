(** The paper's experiment suite (see DESIGN.md's experiment index).

    Each function regenerates one table row or figure: it builds the
    workloads, runs every engine involved, and prints the report table.
    [scale] trades precision for wall-clock time: 1.0 is the full
    configuration used in EXPERIMENTS.md, smaller values shrink
    transaction counts and table sizes proportionally (minimum sizes are
    enforced). *)

val tracer : Quill_trace.Trace.t ref
(** Tracer used for every run of the suite (default: the disabled null
    tracer).  Set it to an enabled tracer to capture the whole suite in
    one trace file. *)

val check_conflicts : bool ref
(** When set (bench/CLI [--check-conflicts]), every QueCC-family run in
    the suite records its row accesses and is replayed through
    {!Quill_analysis.Conflict_check} after it completes; a per-run
    [\[conflict-check\]] summary is printed and any violation fails the
    suite with an exception.  Recording never affects virtual time, so
    results are identical to an unchecked run. *)

val table2_row1 : ?scale:float -> unit -> unit
(** Centralized QueCC vs deterministic H-Store, YCSB multi-partition
    sweep (paper: two orders of magnitude at high MP%). *)

val table2_row2 : ?scale:float -> unit -> unit
(** Distributed QueCC vs Calvin, YCSB uniform low contention
    (paper: 22x). *)

val table2_row3 : ?scale:float -> unit -> unit
(** Centralized QueCC vs non-deterministic protocols, TPC-C 1 warehouse
    (paper: 3x over the best). *)

val fig_contention : ?scale:float -> unit -> unit
(** Supplementary: all centralized engines across zipfian theta. *)

val fig_scalability : ?scale:float -> unit -> unit
(** Supplementary: throughput vs virtual core count, YCSB theta=0.9. *)

val fig_modes : ?scale:float -> unit -> unit
(** Supplementary ablation: speculative vs conservative execution and
    serializable vs read-committed isolation under injected aborts
    (paper section 3.2). *)

val fig_latency : ?scale:float -> unit -> unit
(** Supplementary: latency distribution comparison. *)

val fig_batch : ?scale:float -> unit -> unit
(** Supplementary: QueCC batch-size sensitivity — larger batches amortize
    planning/coordination but add commit latency. *)

val pipeline : ?scale:float -> ?json:string -> unit -> unit
(** Pipelined batch execution: QueCC with the double-buffered pipeline
    off / on / on-with-work-stealing across zipfian theta, plus the
    distributed engines' lag-1 variant — the off rows are the oracle
    for the speedup shown (committed state is bit-identical per seed;
    the test suite asserts it).  [json] also writes every row to a
    machine-readable JSON file (the CI [BENCH_pipeline.json]
    perf-trajectory artifact). *)

val skew : ?scale:float -> ?json:string -> unit -> unit
(** Adaptive planning under skew: QueCC plain vs hot-key queue splitting
    ([--split]) vs splitting + dynamic repartitioning ([--adapt repart])
    across zipfian theta on a global-zipf YCSB (the same hottest keys
    hit from every stream).  The plain row per theta is the state
    oracle — the adaptive mechanisms are schedule-preserving, so the
    committed-state checksums must match bit-for-bit.  [json] writes
    every row (throughput, split/repartition counters, checksum) to a
    machine-readable file (the CI [BENCH_skew.json] artifact; the
    skew-smoke job asserts the counters fire and the checksums agree). *)

val default_fault_plan : Quill_faults.Faults.spec
(** One node-1 crash mid-run, 1% drop, 1% duplication, seed 7. *)

val fault_tolerance :
  ?scale:float -> ?plan:Quill_faults.Faults.spec -> unit -> unit
(** Robustness headline: dist-quecc (queue replay) vs dist-calvin
    (sequencer-log replay) with and without an identical fault plan
    ([plan] defaults to {!default_fault_plan}); the fault table rows
    report crashes, redone work and recovery time. *)

val failover :
  ?scale:float -> ?json:string -> ?plan:Quill_faults.Faults.spec -> unit -> unit
(** HA replication headline: a single-node dist-quecc leader with two
    speculative backups (spec-lag 2), three rows — unreplicated
    baseline, replicated fault-free (the replication tax), and
    replicated with the leader killed mid-run (failover).  All rows
    commit the same transactions to the same state; the replication
    table reports speculation, rollback and failover time.  [json]
    writes per-row checksums, [failover_ns] and the fault-free
    [epoch_ns] (the CI [BENCH_failover.json] artifact; the
    failover-smoke job asserts zero lost commits, nonzero speculation
    and sub-epoch failover).  [plan] overrides the probed mid-run
    leader crash. *)

val durability :
  ?scale:float -> ?json:string -> unit -> unit
(** Durability headline: batch-aligned group-commit WAL on the
    centralized engines.  Four rows at YCSB theta=0 — QueCC without a
    WAL (baseline), QueCC with the WAL (the overhead, one modeled fsync
    per batch), serial with the same group-commit log, and the QueCC
    WAL run killed mid-run.  The crashed run recovers from the newest
    snapshot plus the log; its recovered state is compared checksum-wise
    against a fault-free run truncated to the same durable boundary
    (bit-identity at the last durable batch).  [json] writes per-row
    WAL counters, the overhead percentage and the oracle comparison
    (the CI [BENCH_durability.json] artifact; the durability-smoke job
    asserts nonzero recovery, zero lost/double commits and bounded
    overhead). *)

val cdc : ?scale:float -> ?json:string -> unit -> unit
(** CDC headline: ordered commit-stream subscriptions.  Seven rows at
    YCSB theta=0.6 — QueCC without CDC (baseline), QueCC [--cdc]
    (bounded-staleness replica subscription), QueCC [--cdc --views]
    (replica plus a materialized per-partition aggregate view verified
    against a full recompute at every caught-up point), the pipelined /
    pipelined+stealing / split-queue schedules with [--cdc], and serial
    [--cdc] (group-commit feed).  The feed digests of every
    QueCC-family row must be byte-identical — the planning phase fixes
    the commit order, so the change stream is a pure function of the
    input — and the run fails otherwise.  [json] writes per-row digests,
    feed counters and the overhead percentage (the CI [BENCH_cdc.json]
    artifact; the cdc-smoke job asserts a live feed, digest equality,
    the view invariant and bounded overhead). *)

val overload :
  ?scale:float ->
  ?arrival:Quill_clients.Clients.arrival ->
  ?admission:Quill_clients.Clients.policy * int ->
  ?deadline:int ->
  ?retries:int * int ->
  unit ->
  unit
(** Overload robustness headline (plateau vs collapse): a closed-loop
    probe measures each engine's saturation throughput, then open-loop
    clients offer 0.25x/0.5x/1x/2x/4x of it under Shed, Deadline and
    Block admission (QueCC) and Shed (Calvin, 2PL-NoWait).  The client
    table reports offered vs goodput, sheds, deadline misses, retries
    and client-visible latency.  [arrival] pins one absolute arrival
    process instead of the multiplier sweep; [admission] uses a single
    [(policy, depth)] for every engine; [deadline] overrides the
    deadline-row budget (ns); [retries] is [(max_retries, backoff_ns)]. *)

val all : ?scale:float -> unit -> unit
