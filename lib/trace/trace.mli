(** Virtual-time tracing with a Chrome trace-event exporter.

    Spans, counters and instant markers are recorded against the
    simulator's nanosecond clock and exported in the Chrome trace-event
    JSON format (load the file in chrome://tracing or
    {{:https://ui.perfetto.dev}Perfetto}).

    The tracer is zero-cost when disabled: {!null} is a shared sentinel
    whose {!enabled} flag is false and every recording function is a
    no-op on it.  Recording never advances simulated time, so a run with
    tracing on is bit-identical (virtual times, metrics, database state)
    to the same run with tracing off. *)

type t

val null : t
(** The disabled tracer; recording on it does nothing. *)

val create : unit -> t
(** A fresh enabled tracer with no events. *)

val enabled : t -> bool
(** Guard for any non-trivial event-argument computation at call sites. *)

val num_events : t -> int

val begin_process : t -> string -> unit
(** Start a new logical process (Chrome [pid]) named [name]; subsequent
    events belong to it.  Lets several runs share one trace file and
    render as separate swim-lane groups. *)

val span :
  t -> tid:int -> ?cat:string -> name:string -> ts:int -> dur:int -> unit ->
  unit
(** Complete span ([ph:"X"]) on thread [tid], starting at virtual ns
    [ts] and lasting [dur] ns.  [cat] defaults to ["phase"]. *)

val counter :
  t -> tid:int -> name:string -> series:string -> ts:int -> value:int -> unit
(** Counter sample ([ph:"C"]): the value of [series] under counter
    [name] at virtual ns [ts]. *)

val instant : t -> tid:int -> name:string -> ts:int -> unit

val to_chrome_json : t -> string
(** The whole trace as one JSON object:
    [{"displayTimeUnit":"ns","traceEvents":[...]}].  [ts]/[dur] are
    emitted in (fractional) microseconds as the format requires. *)

val write_file : t -> string -> unit
