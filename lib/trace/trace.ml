(* Virtual-time tracing: spans, counters, and instants recorded against
   the simulator's nanosecond clock, exported in the Chrome trace-event
   JSON format (load in chrome://tracing or https://ui.perfetto.dev).

   The tracer is zero-cost when disabled: [null] is a shared sentinel
   whose [enabled] flag is false, every recording function checks that
   flag first, and callers guard any event-argument computation behind
   [enabled t].  Nothing here ever advances simulated time, so a run
   with tracing on is bit-identical (in virtual time and in results) to
   the same run with tracing off. *)

open Quill_common

type event =
  | Span of { pid : int; tid : int; cat : string; name : string;
              ts : int; dur : int }
  | Counter of { pid : int; tid : int; name : string; series : string;
                 ts : int; value : int }
  | Instant of { pid : int; tid : int; name : string; ts : int }
  | Process_name of { pid : int; name : string }

type t = {
  enabled : bool;
  events : event Vec.t;
  mutable pid : int;    (* current logical process (one per traced run) *)
}

let null = { enabled = false; events = Vec.create (); pid = 0 }
let create () = { enabled = true; events = Vec.create (); pid = 0 }
let enabled t = t.enabled
let num_events t = Vec.length t.events

(* Start a new logical process; subsequent events belong to it.  Used by
   the harness so several runs can share one trace file and still render
   as separate swim-lane groups. *)
let begin_process t name =
  if t.enabled then begin
    t.pid <- t.pid + 1;
    Vec.push t.events (Process_name { pid = t.pid; name })
  end

let span t ~tid ?(cat = "phase") ~name ~ts ~dur () =
  if t.enabled then
    Vec.push t.events (Span { pid = t.pid; tid; cat; name; ts; dur })

let counter t ~tid ~name ~series ~ts ~value =
  if t.enabled then
    Vec.push t.events (Counter { pid = t.pid; tid; name; series; ts; value })

let instant t ~tid ~name ~ts =
  if t.enabled then Vec.push t.events (Instant { pid = t.pid; tid; name; ts })

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome expects [ts]/[dur] in microseconds; our virtual clock is in
   nanoseconds, so emit fractional microseconds. *)
let us ns = float_of_int ns /. 1e3

let add_event buf = function
  | Span { pid; tid; cat; name; ts; dur } ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"%s","ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f}|}
        (escape name) (escape cat) pid tid (us ts) (us dur)
  | Counter { pid; tid; name; series; ts; value } ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"counter","ph":"C","pid":%d,"tid":%d,"ts":%.3f,"args":{"%s":%d}}|}
        (escape name) pid tid (us ts) (escape series) value
  | Instant { pid; tid; name; ts } ->
      Printf.bprintf buf
        {|{"name":"%s","cat":"instant","ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f}|}
        (escape name) pid tid (us ts)
  | Process_name { pid; name } ->
      Printf.bprintf buf
        {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}|}
        pid (escape name)

let to_chrome_json t =
  let buf = Buffer.create (4096 + (96 * Vec.length t.events)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Vec.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      add_event buf e)
    t.events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))
