open Quill_common

type crash = { node : int; at : int; down : int }
type partition = { a : int; b : int; from_t : int; until_t : int }

type spec = {
  seed : int;
  drop : float;
  dup : float;
  delay_p : float;
  delay_by : int;
  crashes : crash list;
  partitions : partition list;
  max_retries : int;
  rto : int;
  torn_rec : int option;
  fsync_fail_at : int option;
  corrupt_off : int option;
}

let none =
  {
    seed = 0;
    drop = 0.0;
    dup = 0.0;
    delay_p = 0.0;
    delay_by = 100_000;
    crashes = [];
    partitions = [];
    max_retries = 8;
    rto = 50_000;
    torn_rec = None;
    fsync_fail_at = None;
    corrupt_off = None;
  }

let disk_active s =
  s.torn_rec <> None || s.fsync_fail_at <> None || s.corrupt_off <> None

let net_active s =
  s.drop > 0.0 || s.dup > 0.0 || s.delay_p > 0.0 || s.partitions <> []

let active s = net_active s || s.crashes <> [] || disk_active s

(* ------------------------------------------------------------------ *)
(* Spec string parsing                                                 *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let time_str ns =
  if ns > 0 && ns mod 1_000_000 = 0 then string_of_int (ns / 1_000_000) ^ "ms"
  else if ns > 0 && ns mod 1_000 = 0 then string_of_int (ns / 1_000) ^ "us"
  else string_of_int ns ^ "ns"

(* "5ms" -> 5_000_000 ns; bare numbers are ns. *)
let parse_time s =
  let len = String.length s in
  let split n mul = (String.sub s 0 (len - n), mul) in
  let num, mul =
    if len > 2 && String.sub s (len - 2) 2 = "ns" then split 2 1.
    else if len > 2 && String.sub s (len - 2) 2 = "us" then split 2 1e3
    else if len > 2 && String.sub s (len - 2) 2 = "ms" then split 2 1e6
    else if len > 1 && s.[len - 1] = 's' then split 1 1e9
    else (s, 1.)
  in
  match float_of_string_opt num with
  | Some f when f >= 0. -> int_of_float ((f *. mul) +. 0.5)
  | _ -> failf "bad time %S (want NUM[ns|us|ms|s])" s

let parse s =
  let prob k v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> f
    | _ -> failf "%s wants a probability in [0,1], got %S" k v
  in
  let nat k v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> i
    | _ -> failf "%s wants a non-negative integer, got %S" k v
  in
  let kv a =
    match String.index_opt a '=' with
    | Some i ->
        (String.sub a 0 i, String.sub a (i + 1) (String.length a - i - 1))
    | None -> (a, "")
  in
  let sp = ref none in
  (* The clause a bare key like [node=] or [until=] attaches to. *)
  let ctx = ref `Top in
  let with_crash f =
    match (!ctx, !sp.crashes) with
    | `Crash, c :: rest -> sp := { !sp with crashes = f c :: rest }
    | _ -> failf "crash field outside a crash@ clause"
  in
  let with_part f =
    match (!ctx, !sp.partitions) with
    | `Part, p :: rest -> sp := { !sp with partitions = f p :: rest }
    | _ -> failf "partition field outside a part@ clause"
  in
  let atom a =
    match String.index_opt a '@' with
    | Some i -> (
        let head = String.sub a 0 i in
        let k, v = kv (String.sub a (i + 1) (String.length a - i - 1)) in
        let want_t () =
          if k <> "t" then failf "%s@ wants t=TIME, got %S" head a
        in
        let once what = function
          | Some _ -> failf "duplicate %s@ clause (at most one per plan)" what
          | None -> ()
        in
        match head with
        | "crash" ->
            want_t ();
            sp :=
              {
                !sp with
                crashes =
                  { node = 0; at = parse_time v; down = 500_000 } :: !sp.crashes;
              };
            ctx := `Crash
        | "part" ->
            want_t ();
            sp :=
              {
                !sp with
                partitions =
                  { a = 0; b = 1; from_t = parse_time v; until_t = -1 }
                  :: !sp.partitions;
              };
            ctx := `Part
        | "torn" ->
            if k <> "rec" then failf "torn@ wants rec=N, got %S" a;
            once "torn" !sp.torn_rec;
            sp := { !sp with torn_rec = Some (nat "torn@rec" v) };
            ctx := `Top
        | "fsync-fail" ->
            want_t ();
            once "fsync-fail" !sp.fsync_fail_at;
            sp := { !sp with fsync_fail_at = Some (parse_time v) };
            ctx := `Top
        | "corrupt" ->
            if k <> "off" then failf "corrupt@ wants off=N, got %S" a;
            once "corrupt" !sp.corrupt_off;
            sp := { !sp with corrupt_off = Some (nat "corrupt@off" v) };
            ctx := `Top
        | _ -> failf "unknown fault clause %S" a)
    | None -> (
        let k, v = kv a in
        match k with
        | "drop" ->
            sp := { !sp with drop = prob k v };
            ctx := `Top
        | "dup" ->
            sp := { !sp with dup = prob k v };
            ctx := `Top
        | "delay" ->
            sp := { !sp with delay_p = prob k v };
            ctx := `Delay
        | "by" when !ctx = `Delay -> sp := { !sp with delay_by = parse_time v }
        | "seed" -> (
            ctx := `Top;
            match int_of_string_opt v with
            | Some i -> sp := { !sp with seed = i }
            | None -> failf "seed wants an integer, got %S" v)
        | "retries" ->
            sp := { !sp with max_retries = nat k v };
            ctx := `Top
        | "rto" ->
            sp := { !sp with rto = parse_time v };
            ctx := `Top
        | "node" -> with_crash (fun c -> { c with node = nat k v })
        | "down" -> with_crash (fun c -> { c with down = parse_time v })
        | "a" -> with_part (fun p -> { p with a = nat k v })
        | "b" -> with_part (fun p -> { p with b = nat k v })
        | "until" -> with_part (fun p -> { p with until_t = parse_time v })
        | _ -> failf "unknown fault key %S" a)
  in
  try
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ':')
    |> List.map String.trim
    |> List.filter (fun a -> a <> "")
    |> List.iter atom;
    List.iter
      (fun p ->
        if p.until_t < 0 then failf "part@ clause needs until=TIME";
        if p.until_t < p.from_t then failf "part@ until before t";
        if p.a = p.b then failf "part@ wants two distinct nodes")
      !sp.partitions;
    List.iter
      (fun (c : crash) ->
        if c.at <= 0 then
          failf "crash@ wants a positive virtual time, got t=%s" (time_str c.at);
        if c.down <= 0 then
          failf "crash@ wants a positive down time, got down=%s"
            (time_str c.down))
      !sp.crashes;
    let rec check_dup_crash = function
      | [] -> ()
      | (c : crash) :: rest ->
          if List.exists (fun (c' : crash) -> c'.node = c.node) rest then
            failf "duplicate crash@ spec for node %d (one crash per node)"
              c.node;
          check_dup_crash rest
    in
    check_dup_crash !sp.crashes;
    (match !sp.fsync_fail_at with
    | Some at when at <= 0 ->
        failf "fsync-fail@ wants a positive virtual time, got t=%s"
          (time_str at)
    | _ -> ());
    Ok
      {
        !sp with
        crashes = List.rev !sp.crashes;
        partitions = List.rev !sp.partitions;
      }
  with Bad m -> Error m

let to_string s =
  let buf = Buffer.create 64 in
  let add fmt =
    Printf.ksprintf
      (fun x ->
        if Buffer.length buf > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf x)
      fmt
  in
  List.iter
    (fun c ->
      add "crash@t=%s:node=%d:down=%s" (time_str c.at) c.node (time_str c.down))
    s.crashes;
  List.iter
    (fun p ->
      add "part@t=%s:a=%d:b=%d:until=%s" (time_str p.from_t) p.a p.b
        (time_str p.until_t))
    s.partitions;
  (match s.torn_rec with Some r -> add "torn@rec=%d" r | None -> ());
  (match s.fsync_fail_at with
  | Some t -> add "fsync-fail@t=%s" (time_str t)
  | None -> ());
  (match s.corrupt_off with Some o -> add "corrupt@off=%d" o | None -> ());
  if s.drop > 0.0 then add "drop=%g" s.drop;
  if s.dup > 0.0 then add "dup=%g" s.dup;
  if s.delay_p > 0.0 then add "delay=%g:by=%s" s.delay_p (time_str s.delay_by);
  if s.max_retries <> none.max_retries then add "retries=%d" s.max_retries;
  if s.rto <> none.rto then add "rto=%s" (time_str s.rto);
  add "seed=%d" s.seed;
  Buffer.contents buf

let pp fmt s = Format.pp_print_string fmt (to_string s)

let check_nodes s ~nodes ~name =
  let chk what n =
    if n < 0 || n >= nodes then
      invalid_arg
        (Printf.sprintf "%s: fault plan %s node %d of a %d-node cluster" name
           what n nodes)
  in
  List.iter (fun c -> chk "crashes" c.node) s.crashes;
  List.iter
    (fun p ->
      chk "partitions" p.a;
      chk "partitions" p.b)
    s.partitions

let crashes_for s ~node =
  List.filter (fun c -> c.node = node) s.crashes
  |> List.sort (fun c1 c2 -> compare (c1.at, c1.down) (c2.at, c2.down))
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

type t = { sp : spec; rng : Rng.t }
type verdict = { extra_delay : int; retries : int; duplicate : bool }

let make sp = { sp; rng = Rng.create sp.seed }
let spec t = t.sp

(* Remaining ns until the src<->dst link heals, 0 when it is up. *)
let partitioned sp ~src ~dst ~now =
  List.fold_left
    (fun acc p ->
      if
        ((p.a = src && p.b = dst) || (p.a = dst && p.b = src))
        && now >= p.from_t && now < p.until_t
      then max acc (p.until_t - now)
      else acc)
    0 sp.partitions

let on_send t ~src ~dst ~now =
  let sp = t.sp in
  let retries = ref 0 and extra = ref 0 in
  (* Each drop costs one retransmit timeout; the timeout doubles per
     retry.  The guards keep the RNG untouched at zero probability so a
     drop=0 plan is draw-for-draw identical to no plan at all. *)
  if sp.drop > 0.0 then begin
    let rto = ref sp.rto in
    while !retries < sp.max_retries && Rng.chance t.rng sp.drop do
      incr retries;
      extra := !extra + !rto;
      rto := min (!rto * 2) (64 * sp.rto)
    done
  end;
  if sp.delay_p > 0.0 && Rng.chance t.rng sp.delay_p then
    extra := !extra + sp.delay_by;
  let heal = partitioned sp ~src ~dst ~now in
  if heal > !extra then extra := heal;
  let duplicate = sp.dup > 0.0 && Rng.chance t.rng sp.dup in
  { extra_delay = !extra; retries = !retries; duplicate }
