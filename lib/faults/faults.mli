(** Seedable, fully deterministic fault plans.

    A fault plan describes everything that can go wrong in a simulated
    cluster run: node crashes at fixed virtual times, per-message drop /
    duplicate / extra-delay probabilities, and per-link partitions over
    virtual-time windows.  All probabilistic decisions are drawn from a
    single {!Quill_common.Rng} stream seeded by the plan, and every
    decision is keyed off virtual time — never wall-clock — so the same
    spec (including its seed) yields a bit-identical run, with or
    without tracing enabled.

    Spec string grammar (clauses separated by [','], clause fields by
    [':'], times accept [ns]/[us]/[ms]/[s] suffixes, default ns):

    {v
      crash@t=TIME[:node=N][:down=TIME]   crash node N at virtual TIME,
                                          reboot after down (default 500us)
      part@t=TIME:a=N:b=N:until=TIME      partition link N<->N over a window
      drop=P                              per-message drop probability
      dup=P                               per-message duplicate probability
      delay=P[:by=TIME]                   extra-delay probability / amount
      torn@rec=K                          the K-th WAL record ever appended
                                          persists only half its bytes and
                                          the disk wedges (later flushes
                                          are lost)
      fsync-fail@t=TIME                   every fsync at/after virtual TIME
                                          fails, discarding its buffer
      corrupt@off=N                       flip one bit of WAL byte N
                                          (applied at recovery scan)
      seed=N                              RNG seed for the drop/dup/delay draws
      retries=N                           retransmit cap (default 8)
      rto=TIME                            initial retransmit timeout (50us)
    v}

    Example: ["crash@t=5ms:node=1,drop=0.01,seed=7"]. *)

type crash = { node : int; at : int; down : int }
(** Crash [node] at virtual time [at]; it reboots [down] ns later. *)

type partition = { a : int; b : int; from_t : int; until_t : int }
(** The link between [a] and [b] is down for [from_t <= now < until_t];
    traffic sent during the window is delivered after it heals. *)

type spec = {
  seed : int;
  drop : float;  (** per-message drop probability in [0,1] *)
  dup : float;  (** per-message duplicate probability in [0,1] *)
  delay_p : float;  (** probability a message takes an extra delay *)
  delay_by : int;  (** the extra delay, ns *)
  crashes : crash list;
  partitions : partition list;
  max_retries : int;  (** retransmit cap per message *)
  rto : int;  (** initial retransmit timeout, ns; doubles per retry *)
  torn_rec : int option;
      (** WAL disk fault: the [K]-th record ever appended is torn — only
          half its bytes reach the platter and the disk wedges (every
          later flush is silently lost) *)
  fsync_fail_at : int option;
      (** WAL disk fault: every fsync issued at/after this virtual time
          fails, discarding the records it would have made durable *)
  corrupt_off : int option;
      (** WAL disk fault: one bit of the byte at this absolute log
          offset is flipped before the recovery scan reads it *)
}

val none : spec
(** The empty plan: no faults, seed 0, default retry parameters. *)

val active : spec -> bool
(** [active s] is [true] when [s] can affect a run (any nonzero
    probability, crash, partition, or disk fault).  Engines treat
    inactive specs exactly like no spec at all. *)

val net_active : spec -> bool
(** True when the plan carries message-level faults (drop / dup / delay /
    partition) — these only apply to engines with a network. *)

val disk_active : spec -> bool
(** True when the plan carries a WAL disk fault (torn record, failing
    fsync, or corrupted byte) — these only apply to runs with a WAL. *)

val parse : string -> (spec, string) result
(** Parse the spec grammar above.  The error string is a one-line
    human-readable diagnostic. *)

val to_string : spec -> string
(** Canonical spec string; [parse (to_string s)] round-trips. *)

val pp : Format.formatter -> spec -> unit

val crashes_for : spec -> node:int -> crash array
(** The crashes planned for [node], sorted by ascending [at]. *)

val check_nodes : spec -> nodes:int -> name:string -> unit
(** Raise [Invalid_argument] (prefixed with [name]) if the plan names a
    crash or partition node outside [0, nodes). *)

(** {1 Runtime} *)

type t
(** Mutable fault-plan runtime: the spec plus the RNG stream for the
    per-message draws.  Create one per run ({!make}); the draw order is
    the deterministic [Net.send] order of the simulation. *)

type verdict = {
  extra_delay : int;  (** add to the link latency (retransmits, delay, partition heal) *)
  retries : int;  (** how many retransmissions the delay models *)
  duplicate : bool;  (** deliver a second copy *)
}

val make : spec -> t
val spec : t -> spec

val on_send : t -> src:int -> dst:int -> now:int -> verdict
(** Decide the fate of one message sent on link [src -> dst] at virtual
    time [now].  Messages are never lost outright: a "dropped" message
    is retransmitted with exponential backoff (capped at
    [max_retries]), so delivery is guaranteed and no protocol deadlocks
    on a lost message — the cost of loss shows up as delay and retry
    counts instead. *)
