(** Virtual-time durable write-ahead log with batch-aligned group commit.

    QueCC's deterministic batch commit order makes durability nearly
    free (Gray, "Queues Are Databases"): every committed batch's row
    effects are buffered while the batch executes and flushed with a
    {e single} modeled [fsync] at the batch commit point — one disk
    barrier per batch, not per transaction.  The log is a byte-faithful
    model: checksummed, length-prefixed records

    {v
      [payload_len:4 LE][type:1][payload][crc32:4 LE]
    v}

    with three record types — batch header, per-row effect
    (table/home/key/payload), batch commit marker (batch number +
    transaction count).  The crc covers the type byte and the payload,
    so a torn tail, a failed flush, or a flipped bit is {e detected} at
    recovery rather than silently loaded.

    Periodic snapshots ([Db.clone] every [snapshot_every] durable
    batches, plus one at creation) truncate the log behind the snapshot
    barrier, bounding both replay time and log size.  {!recover}
    rebuilds a database from the newest snapshot plus a replay of every
    complete, checksum-valid commit group in the remaining log; the
    scan truncates at the first invalid record and degrades to the last
    durable batch — never aborts, never loads garbage.

    Disk faults (threaded from the [torn@rec=K] / [fsync-fail@t=TIME] /
    [corrupt@off=N] clauses of {!Quill_faults.Faults}, but expressed
    here as a plain record so this library stays fault-plan-agnostic)
    model a half-written record followed by a wedged disk, flushes that
    fail outright, and at-rest bit rot. *)

type disk = {
  torn_rec : int option;
      (** the K-th record ever appended (0-based, counted across
          truncations) persists only half its bytes, and the disk
          wedges: every later flush is silently lost *)
  fsync_fail_at : int option;
      (** every flush issued at/after this virtual time fails,
          discarding the records it would have made durable *)
  corrupt_off : int option;
      (** flip one bit of the byte at this absolute offset into the
          post-truncation log, just before the recovery scan reads it *)
}

val no_disk_faults : disk

type t

val create :
  ?disk:disk ->
  sim:Quill_sim.Sim.t ->
  costs:Quill_sim.Costs.t ->
  snapshot_every:int ->
  Quill_storage.Db.t ->
  t
(** A fresh log for one run.  Takes the initial snapshot ([Db.clone] of
    the database as given — the loaded, pre-run state) so recovery
    always has a base.  [snapshot_every] >= 1 is the snapshot period in
    durable batches. *)

val begin_batch : t -> batch_no:int -> unit
(** Append the batch-header record to the in-memory group buffer. *)

val log_effect : t -> table:int -> home:int -> key:int -> int array -> unit
(** Append one row effect (the row's post-batch committed payload) to
    the group buffer.  Nothing reaches the modeled disk until
    {!commit_batch} flushes. *)

val commit_batch : t -> batch_no:int -> txns:int -> bool
(** Append the commit marker, then flush the whole group with one
    modeled fsync (cost: [wal_fsync + bytes * wal_byte/1000] virtual
    ns).  Returns [true] when the marker is durable — the flush
    succeeded and no record of the group was torn.  On a durable commit
    the log may roll into a new snapshot + truncation per
    [snapshot_every].  On failure the group is lost (as it would be on
    real hardware) and the durable boundary stays where it was. *)

val durable_batch : t -> int
(** Highest batch number whose commit marker is durable; -1 when only
    the initial snapshot exists. *)

val durable_txns : t -> int
(** Total transactions covered by durable commit markers (including
    batches folded into snapshots). *)

val recover : t -> Quill_storage.Db.t -> unit
(** Crash recovery: overwrite [db] from the newest snapshot, then scan
    the log and apply every complete, checksum-valid commit group.  The
    scan stops and truncates at the first invalid record (torn tail,
    bad crc, impossible length); effects of a batch with no valid
    commit marker are discarded.  Afterwards {!durable_batch} /
    {!durable_txns} reflect what was actually recovered (which is how
    the run's committed count is reconciled).  Ticks [crash_reboot]
    plus [wal_byte]-per-scanned-byte plus [row_write] per applied
    effect; the total is also accumulated into the [recovery_time]
    metric. *)

val log_size : t -> int
(** Durable log bytes currently on the modeled disk (post-truncation). *)

val record : t -> Quill_txn.Metrics.t -> unit
(** Add this log's counters (bytes, fsyncs + failures, group sizes,
    snapshots, truncations, torn records, recovery time, durable
    batches) into a metrics record. *)
