module Sim = Quill_sim.Sim
module Costs = Quill_sim.Costs
module Db = Quill_storage.Db
module Table = Quill_storage.Table
module Row = Quill_storage.Row
module Metrics = Quill_txn.Metrics

type disk = {
  torn_rec : int option;
  fsync_fail_at : int option;
  corrupt_off : int option;
}

let no_disk_faults = { torn_rec = None; fsync_fail_at = None; corrupt_off = None }

(* Record types.  The framing is [payload_len:4 LE][type:1][payload]
   [crc32:4 LE]; the crc covers the type byte and the payload, so a
   flipped bit anywhere in the record (or a wrong length walking the
   scan into garbage) fails validation. *)
let t_header = 1   (* payload: batch_no:8 *)
let t_effect = 2   (* payload: table:4 home:4 key:8 nfields:4 fields:8xn *)
let t_commit = 3   (* payload: batch_no:8 txns:8 *)

type t = {
  sim : Sim.t;
  costs : Costs.t;
  disk : disk;
  snapshot_every : int;
  db : Db.t;  (* the live database the run mutates; snapshot source *)
  log : Buffer.t;  (* bytes on the modeled disk (since last truncation) *)
  pending : (int * string) Queue.t;  (* (rec_no, record) awaiting flush *)
  mutable pending_bytes : int;
  mutable rec_no : int;  (* records ever appended, across truncations *)
  mutable wedged : bool;  (* a torn write killed the disk *)
  mutable snapshot : Db.t;
  mutable snap_batch : int;
  mutable snap_txns : int;
  mutable durable_batch : int;
  mutable durable_txns : int;
  (* counters for Metrics *)
  mutable bytes_appended : int;
  mutable fsyncs : int;
  mutable fsync_fails : int;
  mutable group_txns : int;
  mutable snapshots : int;
  mutable truncations : int;
  mutable torn_records : int;
  mutable recovery_time : int;
}

let create ?(disk = no_disk_faults) ~sim ~costs ~snapshot_every db =
  if snapshot_every < 1 then
    invalid_arg
      (Printf.sprintf "Wal.create: snapshot_every must be >= 1, got %d"
         snapshot_every);
  {
    sim;
    costs;
    disk;
    snapshot_every;
    db;
    log = Buffer.create 4096;
    pending = Queue.create ();
    pending_bytes = 0;
    rec_no = 0;
    wedged = false;
    (* The creation-time snapshot: recovery always has a base, even
       before the first snapshot roll. *)
    snapshot = Db.clone db;
    snap_batch = -1;
    snap_txns = 0;
    durable_batch = -1;
    durable_txns = 0;
    bytes_appended = 0;
    fsyncs = 0;
    fsync_fails = 0;
    group_txns = 0;
    snapshots = 0;
    truncations = 0;
    torn_records = 0;
    recovery_time = 0;
  }

let durable_batch t = t.durable_batch
let durable_txns t = t.durable_txns
let log_size t = Buffer.length t.log

(* djb2 over the type byte + payload, masked to 32 bits. *)
let crc s off len =
  let h = ref 5381 in
  for i = off to off + len - 1 do
    h := (((!h lsl 5) + !h) + Char.code (String.unsafe_get s i)) land 0xffff_ffff
  done;
  !h

let scratch = Buffer.create 256

let append t ty payload =
  Buffer.clear scratch;
  Buffer.add_int32_le scratch (Int32.of_int (String.length payload));
  Buffer.add_char scratch (Char.chr ty);
  Buffer.add_string scratch payload;
  let body = Buffer.contents scratch in
  let c = crc body 4 (1 + String.length payload) in
  Buffer.clear scratch;
  Buffer.add_string scratch body;
  Buffer.add_int32_le scratch (Int32.of_int c);
  let rec_bytes = Buffer.contents scratch in
  Queue.add (t.rec_no, rec_bytes) t.pending;
  t.rec_no <- t.rec_no + 1;
  t.pending_bytes <- t.pending_bytes + String.length rec_bytes;
  t.bytes_appended <- t.bytes_appended + String.length rec_bytes

let payload_buf = Buffer.create 256

let begin_batch t ~batch_no =
  Buffer.clear payload_buf;
  Buffer.add_int64_le payload_buf (Int64.of_int batch_no);
  append t t_header (Buffer.contents payload_buf)

let log_effect t ~table ~home ~key payload =
  Buffer.clear payload_buf;
  Buffer.add_int32_le payload_buf (Int32.of_int table);
  Buffer.add_int32_le payload_buf (Int32.of_int home);
  Buffer.add_int64_le payload_buf (Int64.of_int key);
  Buffer.add_int32_le payload_buf (Int32.of_int (Array.length payload));
  Array.iter
    (fun v -> Buffer.add_int64_le payload_buf (Int64.of_int v))
    payload;
  append t t_effect (Buffer.contents payload_buf)

(* One modeled fsync of the whole pending group.  A failing fsync is
   reported to the caller; a torn write is NOT — the record loses half
   its bytes, the disk wedges, and only the recovery scan's checksums
   find out.  Either way the group buffer is consumed. *)
let flush t =
  let bytes = t.pending_bytes in
  Sim.tick t.sim (t.costs.Costs.wal_fsync + bytes * t.costs.Costs.wal_byte / 1000);
  let fail =
    match t.disk.fsync_fail_at with
    | Some at -> Sim.now t.sim >= at
    | None -> false
  in
  let fully_persisted = ref true in
  if fail then begin
    t.fsync_fails <- t.fsync_fails + 1;
    fully_persisted := false;
    Queue.clear t.pending
  end
  else begin
    t.fsyncs <- t.fsyncs + 1;
    Queue.iter
      (fun (rno, rec_bytes) ->
        if t.wedged then fully_persisted := false
        else
          match t.disk.torn_rec with
          | Some k when rno = k ->
              Buffer.add_substring t.log rec_bytes 0
                (String.length rec_bytes / 2);
              t.wedged <- true;
              fully_persisted := false
          | _ -> Buffer.add_string t.log rec_bytes)
      t.pending;
    Queue.clear t.pending
  end;
  t.pending_bytes <- 0;
  (not fail, !fully_persisted)

let commit_batch t ~batch_no ~txns =
  Buffer.clear payload_buf;
  Buffer.add_int64_le payload_buf (Int64.of_int batch_no);
  Buffer.add_int64_le payload_buf (Int64.of_int txns);
  append t t_commit (Buffer.contents payload_buf);
  let reported_ok, durable = flush t in
  if reported_ok then t.group_txns <- t.group_txns + txns;
  if durable then begin
    t.durable_batch <- batch_no;
    t.durable_txns <- t.durable_txns + txns;
    (* Roll a snapshot every [snapshot_every] durable batches and
       truncate the log behind it: replay never has to cross a snapshot
       barrier, so recovery time and log size stay bounded. *)
    if (batch_no + 1) mod t.snapshot_every = 0 then begin
      Sim.tick t.sim t.costs.Costs.wal_fsync;
      t.snapshot <- Db.clone t.db;
      t.snap_batch <- batch_no;
      t.snap_txns <- t.durable_txns;
      Buffer.clear t.log;
      t.snapshots <- t.snapshots + 1;
      t.truncations <- t.truncations + 1
    end
  end;
  durable

(* ------------------------------------------------------------------ *)
(* Recovery                                                            *)
(* ------------------------------------------------------------------ *)

let apply_effect db ~table ~home ~key payload =
  let tbl = Db.table db table in
  match Table.find tbl key with
  | Some row ->
      let n = Array.length payload in
      Array.blit payload 0 row.Row.data 0 n;
      Array.blit payload 0 row.Row.committed 0 n;
      row.Row.dirty <- false
  | None -> ignore (Table.insert tbl ~home ~key payload)

let recover t db =
  let bytes = Bytes.of_string (Buffer.contents t.log) in
  (* At-rest bit rot lands between the last flush and the scan. *)
  (match t.disk.corrupt_off with
  | Some off when off >= 0 && off < Bytes.length bytes ->
      Bytes.set bytes off
        (Char.chr (Char.code (Bytes.get bytes off) lxor 0x10))
  | _ -> ());
  Db.overwrite_from ~src:t.snapshot db;
  let len = Bytes.length bytes in
  let s = Bytes.unsafe_to_string bytes in
  let pos = ref 0 in
  let cur_batch = ref min_int in
  let effects = ref [] in  (* current batch's effects, newest first *)
  let applied = ref 0 in
  let last_batch = ref t.snap_batch in
  let replayed_txns = ref t.snap_txns in
  let invalid = ref false in
  while (not !invalid) && !pos < len do
    let p = !pos in
    if p + 9 > len then invalid := true
    else begin
      let plen = Int32.to_int (Bytes.get_int32_le bytes p) in
      if plen < 0 || p + 9 + plen > len then invalid := true
      else begin
        let ty = Char.code (Bytes.get bytes (p + 4)) in
        (* the crc is a full 32-bit value: mask away the sign extension
           Int32.to_int gives crcs with bit 31 set *)
        let stored =
          Int32.to_int (Bytes.get_int32_le bytes (p + 5 + plen))
          land 0xffff_ffff
        in
        if crc s (p + 4) (1 + plen) <> stored then invalid := true
        else begin
          let i64 off = Int64.to_int (Bytes.get_int64_le bytes off) in
          let i32 off = Int32.to_int (Bytes.get_int32_le bytes off) in
          let base = p + 5 in
          if ty = t_header then begin
            cur_batch := i64 base;
            effects := []
          end
          else if ty = t_effect then begin
            let table = i32 base and home = i32 (base + 4) in
            let key = i64 (base + 8) in
            let nf = i32 (base + 16) in
            if plen <> 20 + (8 * nf) then invalid := true
            else begin
              let payload = Array.init nf (fun i -> i64 (base + 20 + (8 * i))) in
              effects := (table, home, key, payload) :: !effects
            end
          end
          else if ty = t_commit then begin
            let bno = i64 base and txns = i64 (base + 8) in
            if bno <> !cur_batch then invalid := true
            else begin
              List.iter
                (fun (table, home, key, payload) ->
                  apply_effect db ~table ~home ~key payload;
                  incr applied)
                (List.rev !effects);
              effects := [];
              last_batch := bno;
              replayed_txns := !replayed_txns + txns
            end
          end
          else invalid := true;
          if not !invalid then pos := p + 9 + plen
        end
      end
    end
  done;
  (* Truncate at the first invalid record: the damaged tail is never
     loaded, and the log ends exactly at the last valid record. *)
  if !invalid then begin
    t.torn_records <- t.torn_records + 1;
    t.truncations <- t.truncations + 1;
    Buffer.clear t.log;
    Buffer.add_subbytes t.log bytes 0 !pos
  end;
  let cost =
    t.costs.Costs.crash_reboot
    + (!pos * t.costs.Costs.wal_byte / 1000)
    + (!applied * t.costs.Costs.row_write)
  in
  Sim.tick t.sim cost;
  t.recovery_time <- t.recovery_time + cost;
  t.durable_batch <- !last_batch;
  t.durable_txns <- !replayed_txns

let record t (m : Metrics.t) =
  m.Metrics.wal_bytes <- m.Metrics.wal_bytes + t.bytes_appended;
  m.Metrics.wal_fsyncs <- m.Metrics.wal_fsyncs + t.fsyncs;
  m.Metrics.wal_fsync_fails <- m.Metrics.wal_fsync_fails + t.fsync_fails;
  m.Metrics.wal_group_txns <- m.Metrics.wal_group_txns + t.group_txns;
  m.Metrics.snapshots <- m.Metrics.snapshots + t.snapshots;
  m.Metrics.wal_truncations <- m.Metrics.wal_truncations + t.truncations;
  m.Metrics.torn_records <- m.Metrics.torn_records + t.torn_records;
  m.Metrics.recovery_time <- m.Metrics.recovery_time + t.recovery_time;
  m.Metrics.durable_batches <- t.durable_batch + 1
