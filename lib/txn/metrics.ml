open Quill_common

type t = {
  mutable committed : int;
  mutable logic_aborted : int;
  mutable cc_aborts : int;
  mutable cascades : int;
  lat : Stats.Hist.t;
  mutable elapsed : int;
  mutable busy : int;
  mutable idle : int;
  mutable threads : int;
  mutable batches : int;
  mutable msgs : int;
  mutable effective_txns : int;
  (* Per-phase busy breakdown (virtual ns charged while the phase was
     active); phases not applicable to an engine stay 0. *)
  mutable plan_busy : int;
  mutable exec_busy : int;
  mutable recover_busy : int;
  mutable publish_busy : int;
  mutable other_busy : int;
  (* Idle time split by the primitive waited on. *)
  mutable idle_barrier : int;
  mutable idle_ivar : int;
  mutable idle_chan : int;
  mutable idle_sleep : int;
  (* Fault-injection / recovery counters; stay 0 on fault-free runs. *)
  mutable crashes : int;
  mutable redone : int;
  mutable msg_retries : int;
  mutable msg_dup_drops : int;
  (* Pipelined-execution counters; stay 0 on non-pipelined runs.  Fill
     stalls: executor idle waiting for the next planned batch (pipeline
     starved); drain stalls: planner idle waiting for a queue buffer to
     drain (pipeline backed up).  [stolen_queues] counts whole execution
     queues stolen by idle executors (cfg.steal). *)
  mutable pipe_fill_stall : int;
  mutable pipe_drain_stall : int;
  (* Threads contributing to each stall sum (executors for fill,
     planners for drain).  The raw sums grow with the thread count, so
     cross-engine comparisons must divide by these; see
     [fill_stall_avg] / [drain_stall_avg]. *)
  mutable pipe_fill_threads : int;
  mutable pipe_drain_threads : int;
  mutable stolen_queues : int;
  (* Work-stealing visibility: [steal_attempts] counts find-steal scans,
     [steal_rejects] the scans that found no provably-disjoint queue —
     so "steal did nothing" is distinguishable from "steal never ran". *)
  mutable steal_attempts : int;
  mutable steal_rejects : int;
  (* Adaptive-planning counters (QueCC cfg.split / cfg.adapt). *)
  mutable split_keys : int;      (* hot keys split into sub-queue chains *)
  mutable split_subqueues : int; (* chain segments created *)
  mutable repart_moves : int;    (* virtual partitions remapped between batches *)
  mutable batch_resizes : int;   (* auto-tuner batch-size adjustments *)
  (* Replication / failover counters (HA runs); stay 0 when replicas=0.
     [rep_lag_max] is the widest batch gap a backup ever observed between
     the newest fully-received batch and the newest committed one —
     bounded by the configured speculation lag.  [spec_wasted] counts
     speculatively executed transactions undone because their batch never
     committed before a failover. *)
  mutable replicas : int;
  mutable spec_executed : int;
  mutable spec_wasted : int;
  mutable rep_lag_max : int;
  mutable failovers : int;
  mutable failover_time : int;   (* virtual ns: crash detect -> resume *)
  (* Network-traffic totals (distributed engines): payload bytes sent and
     duplicate copies injected by the fault plan. *)
  mutable msg_bytes : int;
  mutable msg_dups_sent : int;
  (* WAL / durability counters; stay 0 on runs without --wal.
     [wal_group_txns] accumulates the transaction count of every durable
     group commit (so group size = wal_group_txns / wal_fsyncs);
     [durable_batches] is the number of batches whose commit marker hit
     the platter; [recovery_time] is the virtual ns the post-crash
     snapshot-restore + log-replay pass took. *)
  mutable wal_bytes : int;
  mutable wal_fsyncs : int;
  mutable wal_fsync_fails : int;
  mutable wal_group_txns : int;
  mutable snapshots : int;
  mutable wal_truncations : int;
  mutable torn_records : int;
  mutable durable_batches : int;
  mutable recovery_time : int;
  (* Change-data-capture / subscription counters; stay 0 without --cdc.
     [cdc_events] counts canonical feed events (one per distinct dirty
     (table, key) per batch); [cdc_lag_max] is the widest batch gap any
     subscriber's cursor ever trailed the commit point by;
     [cdc_catchup] counts batches subscribers absorbed through ring
     replay or snapshot re-seed (late joins + overflow recovery);
     [view_refreshes] counts incremental materialized-view refresh
     operations. *)
  mutable cdc_events : int;
  mutable cdc_bytes : int;
  mutable cdc_batches : int;
  mutable cdc_subs : int;
  mutable cdc_lag_max : int;
  mutable cdc_catchup : int;
  mutable view_refreshes : int;
  (* Open-loop client / admission counters; stay 0 on closed-loop runs. *)
  mutable offered : int;
  mutable shed : int;
  mutable deadline_miss : int;
  mutable client_retries : int;
  mutable retry_exhausted : int;
  mutable qmax : int;
  client_lat : Stats.Hist.t;
}

let create () =
  {
    committed = 0;
    logic_aborted = 0;
    cc_aborts = 0;
    cascades = 0;
    lat = Stats.Hist.create ();
    elapsed = 0;
    busy = 0;
    idle = 0;
    threads = 0;
    batches = 0;
    msgs = 0;
    effective_txns = 0;
    plan_busy = 0;
    exec_busy = 0;
    recover_busy = 0;
    publish_busy = 0;
    other_busy = 0;
    idle_barrier = 0;
    idle_ivar = 0;
    idle_chan = 0;
    idle_sleep = 0;
    crashes = 0;
    redone = 0;
    msg_retries = 0;
    msg_dup_drops = 0;
    pipe_fill_stall = 0;
    pipe_drain_stall = 0;
    pipe_fill_threads = 0;
    pipe_drain_threads = 0;
    stolen_queues = 0;
    steal_attempts = 0;
    steal_rejects = 0;
    split_keys = 0;
    split_subqueues = 0;
    repart_moves = 0;
    batch_resizes = 0;
    replicas = 0;
    spec_executed = 0;
    spec_wasted = 0;
    rep_lag_max = 0;
    failovers = 0;
    failover_time = 0;
    msg_bytes = 0;
    msg_dups_sent = 0;
    wal_bytes = 0;
    wal_fsyncs = 0;
    wal_fsync_fails = 0;
    wal_group_txns = 0;
    snapshots = 0;
    wal_truncations = 0;
    torn_records = 0;
    durable_batches = 0;
    recovery_time = 0;
    cdc_events = 0;
    cdc_bytes = 0;
    cdc_batches = 0;
    cdc_subs = 0;
    cdc_lag_max = 0;
    cdc_catchup = 0;
    view_refreshes = 0;
    offered = 0;
    shed = 0;
    deadline_miss = 0;
    client_retries = 0;
    retry_exhausted = 0;
    qmax = 0;
    client_lat = Stats.Hist.create ();
  }

let record_phases t ~plan ~execute ~recover ~publish ~other =
  t.plan_busy <- plan;
  t.exec_busy <- execute;
  t.recover_busy <- recover;
  t.publish_busy <- publish;
  t.other_busy <- other

let record_idle t ~barrier ~ivar ~chan ~sleep =
  t.idle_barrier <- barrier;
  t.idle_ivar <- ivar;
  t.idle_chan <- chan;
  t.idle_sleep <- sleep

let phase_busy t = t.plan_busy + t.exec_busy + t.recover_busy + t.publish_busy

let throughput t =
  if t.elapsed <= 0 then 0.0
  else float_of_int t.committed /. (float_of_int t.elapsed /. 1e9)

let abort_rate t =
  let attempts = t.committed + t.cc_aborts in
  if attempts = 0 then 0.0 else float_of_int t.cc_aborts /. float_of_int attempts

let utilization t =
  let span = t.elapsed * t.threads in
  if span <= 0 then 0.0 else float_of_int t.busy /. float_of_int span

let pp fmt t =
  Format.fprintf fmt
    "commits=%d aborts(logic)=%d aborts(cc)=%d tput=%.0f txn/s p50=%dns p99=%dns util=%.2f"
    t.committed t.logic_aborted t.cc_aborts (throughput t)
    (Stats.Hist.percentile t.lat 50.0)
    (Stats.Hist.percentile t.lat 99.0)
    (utilization t)

let pp_phases fmt t =
  let pct part whole =
    if whole <= 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  Format.fprintf fmt
    "busy: plan=%d exec=%d recover=%d publish=%d other=%d (phases=%.1f%%); \
     idle: barrier=%d ivar=%d chan=%d sleep=%d"
    t.plan_busy t.exec_busy t.recover_busy t.publish_busy t.other_busy
    (pct (phase_busy t) t.busy)
    t.idle_barrier t.idle_ivar t.idle_chan t.idle_sleep

let faulted t =
  t.crashes > 0 || t.redone > 0 || t.msg_retries > 0 || t.msg_dup_drops > 0

let pp_faults fmt t =
  Format.fprintf fmt
    "crashes=%d redone=%d recover_busy=%dns retries=%d dup_drops=%d" t.crashes
    t.redone t.recover_busy t.msg_retries t.msg_dup_drops

let pipelined t =
  t.pipe_fill_stall > 0 || t.pipe_drain_stall > 0 || t.stolen_queues > 0

(* Per-thread stall averages: the raw sums add one elapsed-sized term
   per participating thread, so engines with different planner/executor
   counts are only comparable after normalization. *)
let fill_stall_avg t = t.pipe_fill_stall / max 1 t.pipe_fill_threads
let drain_stall_avg t = t.pipe_drain_stall / max 1 t.pipe_drain_threads

let adaptive t =
  t.split_keys > 0 || t.split_subqueues > 0 || t.repart_moves > 0
  || t.batch_resizes > 0

let pp_pipeline fmt t =
  Format.fprintf fmt
    "fill_stall=%dns/thr drain_stall=%dns/thr stolen=%d \
     steal_attempts=%d steal_rejects=%d"
    (fill_stall_avg t) (drain_stall_avg t) t.stolen_queues t.steal_attempts
    t.steal_rejects

let pp_adaptive fmt t =
  Format.fprintf fmt
    "split_keys=%d split_subqueues=%d repart_moves=%d batch_resizes=%d"
    t.split_keys t.split_subqueues t.repart_moves t.batch_resizes

let replicated t = t.replicas > 0

let pp_replication fmt t =
  Format.fprintf fmt
    "replicas=%d spec_exec=%d spec_wasted=%d lag_max=%d failovers=%d \
     failover_time=%dns bytes=%d dups_sent=%d"
    t.replicas t.spec_executed t.spec_wasted t.rep_lag_max t.failovers
    t.failover_time t.msg_bytes t.msg_dups_sent

let walled t = t.wal_fsyncs > 0 || t.wal_bytes > 0 || t.wal_fsync_fails > 0

let wal_group_size t =
  if t.wal_fsyncs = 0 then 0.0
  else float_of_int t.wal_group_txns /. float_of_int t.wal_fsyncs

let pp_wal fmt t =
  Format.fprintf fmt
    "wal_bytes=%d fsyncs=%d (fails=%d) group=%.0ftxn snapshots=%d \
     truncations=%d torn=%d durable_batches=%d recovery=%dns"
    t.wal_bytes t.wal_fsyncs t.wal_fsync_fails (wal_group_size t) t.snapshots
    t.wal_truncations t.torn_records t.durable_batches t.recovery_time

let cdc_active t = t.cdc_subs > 0 || t.cdc_events > 0 || t.cdc_batches > 0

let pp_cdc fmt t =
  Format.fprintf fmt
    "cdc_events=%d bytes=%d batches=%d subs=%d lag_max=%d catchup=%d \
     view_refreshes=%d"
    t.cdc_events t.cdc_bytes t.cdc_batches t.cdc_subs t.cdc_lag_max
    t.cdc_catchup t.view_refreshes

let clients_active t = t.offered > 0

let goodput t =
  if t.elapsed <= 0 then 0.0
  else float_of_int t.committed /. (float_of_int t.elapsed /. 1e9)

let offered_rate t =
  if t.elapsed <= 0 then 0.0
  else float_of_int t.offered /. (float_of_int t.elapsed /. 1e9)

let pp_clients fmt t =
  Format.fprintf fmt
    "offered=%d (%.0f/s) goodput=%.0f/s shed=%d dl_miss=%d retries=%d \
     retry_exh=%d qmax=%d c-p50=%dns c-p99=%dns"
    t.offered (offered_rate t) (goodput t) t.shed t.deadline_miss
    t.client_retries t.retry_exhausted t.qmax
    (Stats.Hist.percentile t.client_lat 50.0)
    (Stats.Hist.percentile t.client_lat 99.0)
