(** Run metrics shared by every engine. *)

type t = {
  mutable committed : int;
  mutable logic_aborted : int;  (** transactions whose final outcome is abort *)
  mutable cc_aborts : int;      (** concurrency-control aborts / retries (ND) *)
  mutable cascades : int;       (** speculative cascade re-executions *)
  lat : Quill_common.Stats.Hist.t;  (** commit latency, virtual ns *)
  mutable elapsed : int;        (** virtual ns covered by the run *)
  mutable busy : int;           (** CPU ns charged *)
  mutable idle : int;
  mutable threads : int;        (** virtual cores used *)
  mutable batches : int;
  mutable msgs : int;           (** messages sent (distributed engines) *)
  mutable effective_txns : int;
      (** transactions actually submitted (the harness rounds the
          requested count to whole batches; 0 when run outside it) *)
  mutable plan_busy : int;      (** busy ns attributed to the plan phase *)
  mutable exec_busy : int;
  mutable recover_busy : int;
  mutable publish_busy : int;
  mutable other_busy : int;     (** busy ns outside any labelled phase *)
  mutable idle_barrier : int;   (** idle ns waiting on barriers *)
  mutable idle_ivar : int;
  mutable idle_chan : int;
  mutable idle_sleep : int;     (** explicit sleeps (backoff) *)
  mutable crashes : int;        (** node crashes consumed from the fault plan *)
  mutable redone : int;
      (** units of work re-executed during recovery (queue entries for
          dist-quecc, sequencer-log transactions for dist-calvin) *)
  mutable msg_retries : int;    (** retransmissions implied by dropped messages *)
  mutable msg_dup_drops : int;  (** duplicate messages suppressed at receivers *)
  mutable pipe_fill_stall : int;
      (** executor idle ns waiting for the next planned batch (pipelined
          runs only; the pipeline ran dry) *)
  mutable pipe_drain_stall : int;
      (** planner idle ns waiting for a queue buffer to free up
          (pipelined runs only; the pipeline backed up) *)
  mutable pipe_fill_threads : int;
      (** threads whose waits feed [pipe_fill_stall] (executors); the
          raw sum grows with this count, so cross-engine comparisons
          use {!fill_stall_avg} *)
  mutable pipe_drain_threads : int;
      (** threads whose waits feed [pipe_drain_stall] (planners /
          sequencers); see {!drain_stall_avg} *)
  mutable stolen_queues : int;  (** whole queues stolen by idle executors *)
  mutable steal_attempts : int; (** find-steal disjointness scans run *)
  mutable steal_rejects : int;  (** scans that found no safely-stealable queue *)
  mutable split_keys : int;     (** hot keys split into sub-queue chains *)
  mutable split_subqueues : int;(** sub-queue chain segments created *)
  mutable repart_moves : int;   (** virtual partitions remapped between batches *)
  mutable batch_resizes : int;  (** auto-tuner batch-size adjustments *)
  mutable replicas : int;       (** backup nodes receiving the queue stream *)
  mutable spec_executed : int;
      (** transactions a backup speculatively executed ahead of the
          leader's commit marker *)
  mutable spec_wasted : int;
      (** speculatively executed transactions undone at failover because
          their batch never fully committed *)
  mutable rep_lag_max : int;
      (** widest received-vs-committed batch gap any backup observed;
          bounded by the configured speculation lag *)
  mutable failovers : int;      (** leader failovers performed *)
  mutable failover_time : int;  (** virtual ns from crash detection to resume *)
  mutable msg_bytes : int;      (** payload bytes sent (distributed engines) *)
  mutable msg_dups_sent : int;  (** duplicate copies injected by the fault plan *)
  mutable wal_bytes : int;      (** WAL bytes appended (durable or not) *)
  mutable wal_fsyncs : int;     (** group-commit flushes that succeeded *)
  mutable wal_fsync_fails : int;(** flushes failed by the disk-fault plan *)
  mutable wal_group_txns : int;
      (** transactions covered by successful flushes; group size =
          [wal_group_txns / wal_fsyncs] *)
  mutable snapshots : int;      (** periodic [Db.clone] snapshots taken *)
  mutable wal_truncations : int;(** log truncations behind a snapshot *)
  mutable torn_records : int;
      (** invalid records detected (and truncated at) by the recovery
          scan's checksum / length validation *)
  mutable durable_batches : int;(** batches whose commit marker is durable *)
  mutable recovery_time : int;
      (** virtual ns of snapshot restore + log replay after a crash *)
  mutable cdc_events : int;
      (** canonical change-feed events published (one per distinct
          dirty (table, key) per batch) *)
  mutable cdc_bytes : int;      (** serialized change-feed bytes *)
  mutable cdc_batches : int;    (** change-feed entries published *)
  mutable cdc_subs : int;       (** subscriptions registered on the feed *)
  mutable cdc_lag_max : int;
      (** widest batch gap any subscriber's cursor ever trailed the
          commit point by *)
  mutable cdc_catchup : int;
      (** batches subscribers absorbed via ring replay or snapshot
          re-seed (late joins + queue-overflow recovery) *)
  mutable view_refreshes : int;
      (** incremental materialized-view refresh operations *)
  mutable offered : int;        (** transactions offered by open-loop clients *)
  mutable shed : int;           (** admissions dropped by the overload policy *)
  mutable deadline_miss : int;  (** transactions dropped past their deadline *)
  mutable client_retries : int; (** abort->retry resubmissions *)
  mutable retry_exhausted : int;(** transactions dropped after the retry budget *)
  mutable qmax : int;           (** peak admission-queue depth observed *)
  client_lat : Quill_common.Stats.Hist.t;
      (** client-observed latency: first offer -> commit, virtual ns *)
}

val create : unit -> t

val record_phases :
  t -> plan:int -> execute:int -> recover:int -> publish:int -> other:int ->
  unit

val record_idle : t -> barrier:int -> ivar:int -> chan:int -> sleep:int -> unit

val phase_busy : t -> int
(** Busy ns covered by the four labelled phases (excludes [other_busy]). *)

val throughput : t -> float
(** Committed transactions per virtual second. *)

val abort_rate : t -> float
(** cc aborts / (commits + cc aborts): wasted-execution fraction. *)

val utilization : t -> float
val pp : Format.formatter -> t -> unit

val pp_phases : Format.formatter -> t -> unit
(** One-line per-phase busy / per-cause idle breakdown. *)

val faulted : t -> bool
(** True when any fault/recovery counter is nonzero. *)

val pp_faults : Format.formatter -> t -> unit
(** One-line crash / redone-work / message-fault summary. *)

val pipelined : t -> bool
(** True when any pipeline counter is nonzero (the run overlapped
    planning and execution, or stole queues). *)

val fill_stall_avg : t -> int
(** [pipe_fill_stall] per contributing thread: comparable across engines
    with different executor counts. *)

val drain_stall_avg : t -> int
(** [pipe_drain_stall] per contributing thread. *)

val adaptive : t -> bool
(** True when any adaptive-planning counter is nonzero (hot-key splits,
    repartition moves or batch resizes happened). *)

val pp_pipeline : Format.formatter -> t -> unit
(** One-line fill-stall / drain-stall / steal summary (stalls shown
    per contributing thread). *)

val pp_adaptive : Format.formatter -> t -> unit
(** One-line split / repartition / batch-resize summary. *)

val replicated : t -> bool
(** True when the run streamed queues to backup replicas. *)

val pp_replication : Format.formatter -> t -> unit
(** One-line replication / speculation / failover summary. *)

val walled : t -> bool
(** True when the run appended to (or tried to flush) a WAL. *)

val wal_group_size : t -> float
(** Mean transactions per successful group-commit flush. *)

val pp_wal : Format.formatter -> t -> unit
(** One-line WAL bytes / fsync / snapshot / truncation / recovery
    summary. *)

val cdc_active : t -> bool
(** True when the run published a change feed or had subscribers. *)

val pp_cdc : Format.formatter -> t -> unit
(** One-line feed / subscription-lag / catch-up / view summary. *)

val clients_active : t -> bool
(** True when the run was driven by open-loop clients (offered > 0). *)

val goodput : t -> float
(** Committed transactions per virtual second (same as throughput; the
    client tables use the offered-vs-goodput framing). *)

val offered_rate : t -> float
(** Offered transactions per virtual second. *)

val pp_clients : Format.formatter -> t -> unit
(** One-line offered/goodput/shed/deadline/retry/latency summary. *)
