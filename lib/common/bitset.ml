type t = {
  words : int array;
  n : int;
  mutable card : int;
}

let word_bits = Sys.int_size - 1

let create n =
  assert (n >= 0);
  { words = Array.make ((n / word_bits) + 1) 0; n; card = 0 }

let capacity t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add t i =
  check t i;
  if not (mem t i) then begin
    t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits));
    t.card <- t.card + 1
  end

let remove t i =
  check t i;
  if mem t i then begin
    t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits));
    t.card <- t.card - 1
  end

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.card <- 0

let cardinal t = t.card

let disjoint a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let ok = ref true in
  for w = 0 to n - 1 do
    if a.words.(w) land b.words.(w) <> 0 then ok := false
  done;
  !ok

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0 then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc
