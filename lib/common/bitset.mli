(** Fixed-capacity bitset (dense int sets for txn / partition ids). *)

type t

val create : int -> t
(** [create n] holds members of [\[0, n)], initially empty. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val clear : t -> unit
val cardinal : t -> int

(** [disjoint a b] is true when the sets share no member. *)
val disjoint : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
