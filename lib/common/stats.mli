(** Online statistics and latency histograms for the benchmark harness. *)

(** Welford online mean / variance accumulator. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end

(** Log-scale histogram for latency distributions (HdrHistogram-style, base
    bucketing by powers of two with linear sub-buckets).  Values are
    arbitrary non-negative integers (we use virtual nanoseconds). *)
module Hist : sig
  type t

  val create : unit -> t

  val add : t -> int -> unit
  (** Record one value.  Raises [Invalid_argument] on negative input —
      latency math that goes negative is a bug and must fail loudly,
      not be silently clamped into bucket 0. *)

  val merge_into : dst:t -> t -> unit
  val count : t -> int
  val mean : t -> float
  val percentile : t -> float -> int
  (** [percentile h 99.0] is an upper bound for the p99 value (bucket
      upper edge), 0 when empty. *)

  val max_value : t -> int

  (* Bucket mapping, exposed for white-box property tests: every value
     lands in a bucket whose upper edge is at least the value. *)
  val index_of : int -> int
  val upper_edge : int -> int
end
