module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity;
      total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = if t.n = 0 then 0.0 else t.min_v
  let max t = if t.n = 0 then 0.0 else t.max_v
  let total t = t.total
end

module Hist = struct
  (* 64 power-of-two magnitude groups x 16 linear sub-buckets. *)
  let sub_bits = 4
  let sub = 1 lsl sub_bits

  type t = {
    buckets : int array;
    mutable n : int;
    mutable sum : float;
    mutable max_v : int;
  }

  let create () = { buckets = Array.make (64 * sub) 0; n = 0; sum = 0.0; max_v = 0 }

  let rec msb x acc = if x <= 1 then acc else msb (x lsr 1) (acc + 1)

  let index_of v =
    if v < sub then v
    else begin
      let m = msb v 0 in
      let shift = m - sub_bits in
      let linear = (v lsr shift) - sub in
      (((m - sub_bits) + 1) * sub) + linear
    end

  let upper_edge idx =
    if idx < sub then idx
    else begin
      let group = (idx / sub) - 1 in
      let linear = idx mod sub in
      ((sub + linear + 1) lsl group) - 1
    end

  let add t v =
    if v < 0 then invalid_arg "Stats.Hist.add: negative value";
    let idx = index_of v in
    let idx = if idx >= Array.length t.buckets then Array.length t.buckets - 1 else idx in
    t.buckets.(idx) <- t.buckets.(idx) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. float_of_int v;
    if v > t.max_v then t.max_v <- v

  let merge_into ~dst src =
    Array.iteri (fun i c -> dst.buckets.(i) <- dst.buckets.(i) + c) src.buckets;
    dst.n <- dst.n + src.n;
    dst.sum <- dst.sum +. src.sum;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let percentile t p =
    if t.n = 0 then 0
    else begin
      let target =
        let raw = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
        if raw < 1 then 1 else if raw > t.n then t.n else raw
      in
      let rec go i seen =
        if i >= Array.length t.buckets then t.max_v
        else begin
          let seen = seen + t.buckets.(i) in
          if seen >= target then min (upper_edge i) t.max_v else go (i + 1) seen
        end
      in
      go 0 0
    end

  let max_value t = t.max_v
end
