(* Open-loop client layer: flag parsing, admission policies, retry
   semantics (aborted-then-retried commits exactly once, against a
   serial-oracle state), and bit-identical determinism of overloaded
   runs for a given seed. *)

open Quill_common
open Quill_storage
open Quill_txn
open Quill_workloads
module C = Quill_clients.Clients
module Sim = Quill_sim.Sim
module Qe = Quill_quecc.Engine
module E = Quill_harness.Experiment

(* ------------------------- flag parsing ------------------------- *)

let arrival_ok s =
  match C.parse_arrival s with
  | Ok a -> a
  | Error e -> Alcotest.failf "parse_arrival %S failed: %s" s e

let test_parse_time () =
  List.iter
    (fun (s, ns) -> Tutil.check_int ("parse_time " ^ s) ns (C.parse_time s))
    [
      ("500ns", 500); ("2us", 2_000); ("1.5ms", 1_500_000);
      ("1s", 1_000_000_000); ("300", 300); ("0", 0);
    ];
  List.iter
    (fun s ->
      match C.parse_time s with
      | exception _ -> ()
      | v -> Alcotest.failf "expected parse_time %S to raise, got %d" s v)
    [ "oops"; "-3us"; "5miles"; "" ]

let test_parse_arrival () =
  (match arrival_ok "250000" with
  | C.Poisson r -> Tutil.check_bool "poisson rate" true (r = 250_000.0)
  | a -> Alcotest.failf "expected Poisson, got %s" (C.arrival_to_string a));
  (match arrival_ok "burst:1e6:100us:50us" with
  | C.Bursty { rate; on_ns; off_ns } ->
      Tutil.check_bool "burst rate" true (rate = 1e6);
      Tutil.check_int "burst on" 100_000 on_ns;
      Tutil.check_int "burst off" 50_000 off_ns
  | a -> Alcotest.failf "expected Bursty, got %s" (C.arrival_to_string a));
  (* to_string round-trips through the parser *)
  List.iter
    (fun s ->
      let a = arrival_ok s in
      Tutil.check_bool ("round-trip " ^ s) true
        (arrival_ok (C.arrival_to_string a) = a))
    [ "250000"; "2.5e6"; "burst:1e6:100us:50us" ];
  List.iter
    (fun s ->
      match C.parse_arrival s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error e ->
          Tutil.check_bool "one-line diagnostic" true
            (String.length e > 0 && not (String.contains e '\n')))
    [ "0"; "-5"; "fast"; "burst:1e6:100us"; "burst:0:1us:1us" ]

let test_parse_admission () =
  List.iter
    (fun (s, want) ->
      match C.parse_admission s with
      | Ok got -> Tutil.check_bool ("admission " ^ s) true (got = want)
      | Error e -> Alcotest.failf "parse_admission %S failed: %s" s e)
    [
      ("block", (C.Block, C.default.C.depth));
      ("shed:256", (C.Shed_oldest, 256));
      ("shed-oldest:4", (C.Shed_oldest, 4));
      ("shed-newest", (C.Shed_newest, C.default.C.depth));
      ("deadline:64", (C.Deadline, 64));
    ];
  List.iter
    (fun s ->
      match C.parse_admission s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ "fifo"; "block:0"; "shed:-4"; "shed:many"; "a:b:c" ]

let test_parse_retries () =
  List.iter
    (fun (s, want) ->
      match C.parse_retries s with
      | Ok got -> Tutil.check_bool ("retries " ^ s) true (got = want)
      | Error e -> Alcotest.failf "parse_retries %S failed: %s" s e)
    [ ("3", (3, C.default.C.backoff)); ("5:4us", (5, 4_000)); ("0", (0, C.default.C.backoff)) ];
  List.iter
    (fun s ->
      match C.parse_retries s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ "-1"; "many"; "3:fast"; "3:2us:junk" ]

(* ------------------------- admission policies ------------------------- *)

(* Drive the client layer directly: one consumer thread plays engine,
   taking entries and resolving them [service_ns] apart.  Returns the
   recorded metrics; a deadlocked sim would make Sim.run return
   nonzero, which we assert against. *)
let run_policy ?(total = 64) ?(service_ns = 1_000) ?(ok = fun _ -> true) cfg =
  let wl = Ycsb.make (Tutil.small_ycsb ()) in
  let sim = Sim.create () in
  let c = C.create ~sim ~nodes:1 wl { cfg with C.total } in
  Sim.spawn sim (fun () ->
      let rec go () =
        match C.take c ~node:0 with
        | None -> ()
        | Some e ->
            Sim.tick sim service_ns;
            C.complete c e ~ok:(ok e);
            go ()
      in
      go ());
  let parked = Sim.run sim in
  Tutil.check_int "no deadlocked threads" 0 parked;
  Tutil.check_bool "exhausted at end" true (C.exhausted c);
  let m = Metrics.create () in
  C.record c m;
  m

(* Every offered transaction resolves exactly one way. *)
let check_conservation (m : Metrics.t) =
  Tutil.check_int "offered = completions + shed + misses + exhausted"
    m.Metrics.offered
    (Stats.Hist.count m.Metrics.client_lat
    + m.Metrics.shed + m.Metrics.deadline_miss + m.Metrics.retry_exhausted)

let overload_cfg policy =
  {
    C.default with
    C.arrival = C.Poisson 1e9 (* ~1ns gaps: far beyond service rate *);
    clients = 2;
    depth = 4;
    policy;
  }

let test_block_backpressure () =
  let m = run_policy (overload_cfg C.Block) in
  Tutil.check_int "offered all" 64 m.Metrics.offered;
  Tutil.check_int "block never sheds" 0 m.Metrics.shed;
  Tutil.check_int "every txn served" 64
    (Stats.Hist.count m.Metrics.client_lat);
  Tutil.check_bool "queue bounded by depth" true (m.Metrics.qmax <= 4);
  check_conservation m

let test_shed_oldest () =
  let m = run_policy (overload_cfg C.Shed_oldest) in
  Tutil.check_int "offered all" 64 m.Metrics.offered;
  Tutil.check_bool "overload sheds" true (m.Metrics.shed > 0);
  Tutil.check_bool "some still served" true
    (Stats.Hist.count m.Metrics.client_lat > 0);
  Tutil.check_bool "queue bounded by depth" true (m.Metrics.qmax <= 4);
  check_conservation m

let test_shed_newest () =
  let m = run_policy (overload_cfg C.Shed_newest) in
  Tutil.check_bool "overload sheds" true (m.Metrics.shed > 0);
  Tutil.check_bool "queue bounded by depth" true (m.Metrics.qmax <= 4);
  check_conservation m

let test_deadline_misses () =
  (* Queue residency under overload far exceeds the 2us budget: expired
     entries must be purged as misses, not served late. *)
  let m =
    run_policy { (overload_cfg C.Deadline) with C.deadline = 2_000 }
  in
  Tutil.check_bool "expired entries dropped" true
    (m.Metrics.deadline_miss > 0);
  check_conservation m

let test_retry_budget_exhaustion () =
  (* Engine rejects everything: each entry burns its full retry budget
     (bounded backoff, so the run terminates) and is finally retired. *)
  let m =
    run_policy ~total:16 ~ok:(fun _ -> false)
      {
        C.default with
        C.arrival = C.Poisson 1e6;
        clients = 2;
        depth = 64;
        policy = C.Block;
        max_retries = 2;
      }
  in
  Tutil.check_int "all retries spent" (16 * 2) m.Metrics.client_retries;
  Tutil.check_int "every txn exhausted" 16 m.Metrics.retry_exhausted;
  Tutil.check_int "nothing committed" 0
    (Stats.Hist.count m.Metrics.client_lat);
  check_conservation m

let test_create_validates () =
  let wl = Ycsb.make (Tutil.small_ycsb ()) in
  let sim = Sim.create () in
  let bad cfg =
    match C.create ~sim ~nodes:1 wl cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad { C.default with C.depth = 0 };
  bad { C.default with C.clients = 0 };
  bad { C.default with C.arrival = C.Poisson 0.0 };
  bad { C.default with C.max_retries = -1 };
  bad { C.default with C.total = -1 }

(* --------------- retried abort commits exactly once --------------- *)

(* Custom workload whose single fragment aborts on a transaction's
   first attempt and succeeds on the second.  If the client retry loop
   double-planned or double-applied, row state would show +2 deltas;
   the serial oracle is "every row gets exactly one +7". *)
let test_retry_commits_exactly_once () =
  let total = 64 in
  let db = Db.create ~nparts:2 in
  let table_id = Db.add_table db ~name:"t" ~nfields:1 ~capacity:total in
  let tbl = Db.table_by_name db "t" in
  Table.iter_dense
    (fun row ->
      row.Row.data.(0) <- 1000 + row.Row.key;
      Row.publish row)
    tbl;
  let gen g =
    let f =
      Fragment.make ~fid:0 ~table:table_id ~key:g ~mode:Fragment.Rmw ~op:0
        ~abortable:true ~args:[| 7 |] ()
    in
    Txn.make ~tid:g [| f |]
  in
  let streams = 2 in
  let new_stream i =
    let counter = ref 0 in
    fun () ->
      let g = (!counter * streams) + i in
      incr counter;
      gen g
  in
  let exec (ctx : Exec.ctx) (txn : Txn.t) (frag : Fragment.t) =
    if txn.Txn.attempts = 1 then Exec.Abort
    else begin
      let v = ctx.Exec.read frag 0 in
      ctx.Exec.write frag 0 (v + frag.Fragment.args.(0));
      Exec.Ok
    end
  in
  let wl =
    {
      Workload.name = "flaky-once";
      db;
      new_stream;
      exec;
      describe = "aborts on first attempt, commits on retry";
    }
  in
  let sim = Sim.create () in
  let c =
    C.create ~sim ~nodes:1 wl
      {
        C.default with
        C.arrival = C.Poisson 1e7;
        clients = streams;
        depth = 128;
        policy = C.Block;
        max_retries = 3;
        total;
      }
  in
  let m =
    (* Conservative mode: a logic abort is final for the attempt (the
       speculative recovery path would re-execute in-engine and mask
       the abort from the client layer). *)
    Qe.run ~sim ~clients:c
      {
        Qe.planners = 2;
        executors = 2;
        batch_size = 16;
        mode = Qe.Conservative;
        isolation = Qe.Serializable;
        costs = Quill_sim.Costs.default;
        pipeline = false;
        steal = false;
        split = None;
        adapt = None;
      }
      wl ~batches:0
  in
  C.record c m;
  Tutil.check_int "every txn committed" total m.Metrics.committed;
  Tutil.check_int "every txn aborted exactly once" total
    m.Metrics.logic_aborted;
  Tutil.check_int "every txn retried exactly once" total
    m.Metrics.client_retries;
  Tutil.check_int "no retry budget exhausted" 0 m.Metrics.retry_exhausted;
  Tutil.check_int "nothing shed" 0 m.Metrics.shed;
  (* serial-oracle state: one +7 per row, never zero, never double *)
  Table.iter_dense
    (fun row ->
      Tutil.check_int
        (Printf.sprintf "row %d applied exactly once" row.Row.key)
        (1000 + row.Row.key + 7)
        row.Row.committed.(0))
    tbl

(* ------------------------- determinism ------------------------- *)

let client_fingerprint wl (m : Metrics.t) =
  ( Db.checksum wl.Workload.db,
    m.Metrics.elapsed,
    m.Metrics.committed,
    m.Metrics.offered,
    m.Metrics.shed,
    m.Metrics.deadline_miss,
    m.Metrics.client_retries,
    m.Metrics.retry_exhausted,
    m.Metrics.qmax,
    Stats.Hist.count m.Metrics.client_lat )

(* Overloaded open-loop quecc run, abortable fragments exercising the
   retry path: bit-identical for a given seed. *)
let quecc_overloaded seed =
  let wl =
    Ycsb.make
      (Tutil.small_ycsb ~table_size:2_000 ~abort_ratio:0.05
         ~seed:(seed + 1) ())
  in
  let sim = Sim.create () in
  let c =
    C.create ~sim ~nodes:1 wl
      {
        C.default with
        C.arrival = C.Poisson 1e7;
        depth = 32;
        policy = C.Shed_oldest;
        max_retries = 2;
        seed;
        total = 512;
      }
  in
  let m =
    Qe.run ~sim ~clients:c
      {
        Qe.planners = 2;
        executors = 2;
        batch_size = 64;
        mode = Qe.Speculative;
        isolation = Qe.Serializable;
        costs = Quill_sim.Costs.default;
        pipeline = false;
        steal = false;
        split = None;
        adapt = None;
      }
      wl ~batches:0
  in
  C.record c m;
  client_fingerprint wl m

let prop_same_seed_same_overloaded_run =
  QCheck.Test.make ~name:"same client seed => bit-identical overloaded run"
    ~count:5
    QCheck.(int_range 0 1000)
    (fun seed -> quecc_overloaded seed = quecc_overloaded seed)

(* Pipelined client mode falls back to sequential batch handling (the
   next batch's admission depends on the previous batch's completions),
   but the flag must still be accepted and leave the run bit-identical:
   with Block admission deep enough never to shed, no deadline and no
   aborts, the committed state is the serial execution of the admission
   order however the batches are cut. *)
let test_pipeline_clients_identical () =
  let run pipeline =
    let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ()) in
    let sim = Sim.create () in
    let c =
      C.create ~sim ~nodes:1 wl
        {
          C.default with
          C.arrival = C.Poisson 1e7;
          depth = 1024;
          policy = C.Block;
          total = 512;
        }
    in
    let m =
      Qe.run ~sim ~clients:c
        {
          Qe.planners = 2;
          executors = 2;
          batch_size = 64;
          mode = Qe.Speculative;
          isolation = Qe.Serializable;
          costs = Quill_sim.Costs.default;
          pipeline;
          steal = false;
          split = None;
          adapt = None;
        }
        wl ~batches:0
    in
    C.record c m;
    (Db.checksum wl.Workload.db, m.Metrics.committed, m.Metrics.offered)
  in
  let c0, n0, o0 = run false in
  let c1, n1, o1 = run true in
  Tutil.check_int "same commits" n0 n1;
  Tutil.check_int "same offered" o0 o1;
  Tutil.check_bool "same committed state" true (c0 = c1)

let test_dist_same_seed_identical () =
  let run () =
    let wl =
      Ycsb.make
        (Tutil.small_ycsb ~table_size:2_000 ~nparts:4 ~mp_ratio:0.3 ())
    in
    let sim = Sim.create () in
    let c =
      C.create ~sim ~nodes:2 wl
        {
          C.default with
          C.arrival = C.Poisson 5e6;
          depth = 64;
          policy = C.Shed_oldest;
          total = 512;
        }
    in
    let m =
      Quill_dist.Dist_quecc.run ~sim ~clients:c
        {
          Quill_dist.Dist_quecc.nodes = 2;
          planners = 2;
          executors = 2;
          batch_size = 128;
          costs = Quill_sim.Costs.default;
          pipeline = false;
          replicas = 0;
          spec_lag = 1;
        }
        wl ~batches:0
    in
    C.record c m;
    client_fingerprint wl m
  in
  Tutil.check_bool "dist-quecc open-loop deterministic" true (run () = run ())

(* --------------------- harness integration --------------------- *)

let test_serial_rejects_clients () =
  let e =
    E.make ~threads:2 ~txns:256 ~batch_size:128 ~clients:C.default E.Serial
      (E.Ycsb (Tutil.small_ycsb ()))
  in
  Alcotest.check_raises "serial baseline rejects the client layer"
    (Invalid_argument
       "Experiment.run: the open-loop client layer (--arrival) requires \
        the 'clients' capability, but engine serial provides {faults, wal, \
        cdc}")
    (fun () -> ignore (E.run e))

let test_experiment_runs_clients () =
  (* The harness path end to end: every engine family processes an
     open-loop run and reports client counters. *)
  List.iter
    (fun engine ->
      let e =
        E.make ~threads:2 ~txns:256 ~batch_size:64
          ~clients:
            { C.default with C.arrival = C.Poisson 1e7; depth = 32;
              policy = C.Shed_oldest }
          engine
          (E.Ycsb (Tutil.small_ycsb ()))
      in
      let m = E.run e in
      Tutil.check_bool
        (E.engine_name engine ^ " reports offered")
        true
        (Metrics.clients_active m && m.Metrics.offered = 256);
      Tutil.check_bool
        (E.engine_name engine ^ " commits some work")
        true (m.Metrics.committed > 0))
    [
      E.Quecc (Qe.Speculative, Qe.Serializable);
      E.Twopl_nowait;
      E.Hstore;
      E.Calvin;
      E.Dist_quecc 2;
      E.Dist_calvin 2;
    ]

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "clients"
    [
      ( "parsing",
        [
          Alcotest.test_case "time grammar" `Quick test_parse_time;
          Alcotest.test_case "arrival" `Quick test_parse_arrival;
          Alcotest.test_case "admission" `Quick test_parse_admission;
          Alcotest.test_case "retries" `Quick test_parse_retries;
        ] );
      ( "policies",
        [
          Alcotest.test_case "block = backpressure" `Quick
            test_block_backpressure;
          Alcotest.test_case "shed-oldest" `Quick test_shed_oldest;
          Alcotest.test_case "shed-newest" `Quick test_shed_newest;
          Alcotest.test_case "deadline misses" `Quick test_deadline_misses;
          Alcotest.test_case "retry budget exhaustion" `Quick
            test_retry_budget_exhaustion;
          Alcotest.test_case "cfg validation" `Quick test_create_validates;
        ] );
      ( "retries",
        [
          Alcotest.test_case "aborted-then-retried commits exactly once"
            `Quick test_retry_commits_exactly_once;
        ] );
      ( "determinism",
        [
          qc prop_same_seed_same_overloaded_run;
          Alcotest.test_case "pipelined clients identical" `Quick
            test_pipeline_clients_identical;
          Alcotest.test_case "dist-quecc same seed identical" `Quick
            test_dist_same_seed_identical;
        ] );
      ( "harness",
        [
          Alcotest.test_case "serial rejects clients" `Quick
            test_serial_rejects_clients;
          Alcotest.test_case "all engines run open-loop" `Quick
            test_experiment_runs_clients;
        ] );
    ]
