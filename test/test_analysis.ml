(* quill-check battery: the determinism lint (rule-by-rule, waiver
   lifecycle) and the planned-order conflict detector (mutation tests
   proving each rule actually fires on an injected violation, plus an
   engine sweep proving real runs are violation-free and that recording
   never perturbs committed state). *)

open Quill_storage
open Quill_txn
open Quill_workloads
module L = Quill_analysis.Lint
module A = Quill_analysis.Access_log
module CC = Quill_analysis.Conflict_check
module Engine = Quill_quecc.Engine
module Dq = Quill_dist.Dist_quecc
module Sim = Quill_sim.Sim

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let rules fs = List.map (fun f -> f.L.f_rule) fs
let lint ?engine_names src = L.lint_source ~file:"test/fake.ml" ?engine_names src

let test_lint_d1 () =
  Tutil.check_bool "Random.int flagged" true
    (rules (lint "let x = Random.int 5") = [ "D1" ]);
  Tutil.check_bool "Random.self_init flagged" true
    (rules (lint "let () = Random.self_init ()") = [ "D1" ]);
  Tutil.check_bool "rng.ml allowlisted" true
    (L.lint_source ~file:"lib/common/rng.ml" "let x = Random.int 5" = []);
  Tutil.check_bool "Common.Rng clean" true
    (lint "let x = Quill_common.Rng.int r 5" = [])

let test_lint_d2 () =
  Tutil.check_bool "gettimeofday flagged" true
    (rules (lint "let t = Unix.gettimeofday ()") = [ "D2" ]);
  Tutil.check_bool "Sys.time flagged" true
    (rules (lint "let t = Sys.time ()") = [ "D2" ]);
  Tutil.check_bool "trace.ml allowlisted" true
    (L.lint_source ~file:"lib/trace/trace.ml" "let t = Unix.gettimeofday ()"
    = [])

let test_lint_d3_waivers () =
  Tutil.check_bool "Hashtbl.iter flagged" true
    (rules (lint "let () = Hashtbl.iter f h") = [ "D3" ]);
  Tutil.check_bool "Hashtbl.fold flagged" true
    (rules (lint "let x = Hashtbl.fold f h []") = [ "D3" ]);
  Tutil.check_bool "justified waiver above suppresses" true
    (lint "(* lint: order-insensitive -- commutative sum *)\n\
           let x = Hashtbl.fold f h []"
    = []);
  Tutil.check_bool "justified waiver on the line suppresses" true
    (lint "let () = Hashtbl.iter f h (* lint: order-insensitive -- scan *)"
    = []);
  (* A waiver with no justification still suppresses the hit but is
     itself a W2 finding, so the tree keeps failing until someone says
     why. *)
  Tutil.check_bool "unjustified waiver -> W2" true
    (rules (lint "(* lint: order-insensitive *)\nlet () = Hashtbl.iter f h")
    = [ "W2" ]);
  Tutil.check_bool "stale waiver -> W1" true
    (rules (lint "(* lint: order-insensitive -- nothing here *)\nlet x = 1")
    = [ "W1" ]);
  Tutil.check_bool "unknown keyword -> W1" true
    (rules (lint "(* lint: no-such-rule -- hm *)\nlet x = 1") = [ "W1" ]);
  Tutil.check_bool "waiver two lines up does not reach" true
    (rules
       (lint
          "(* lint: order-insensitive -- too far away *)\n\
           let y = 1\n\
           let () = Hashtbl.iter f h")
    = [ "W1"; "D3" ]);
  (* prose that merely mentions the syntax is not a waiver *)
  Tutil.check_bool "mention in prose ignored" true
    (lint "(* see the lint: rules in DESIGN.md *)\nlet x = 1" = [])

let test_lint_d4 () =
  let en = [ "quecc"; "dist-quecc" ] in
  Tutil.check_bool "engine literal flagged" true
    (rules (lint ~engine_names:en "let e = \"quecc\"") = [ "D4" ]);
  Tutil.check_bool "engine literal in pattern flagged" true
    (rules
       (lint ~engine_names:en
          "let f = function \"dist-quecc\" -> 1 | _ -> 0")
    = [ "D4" ]);
  Tutil.check_bool "other strings clean" true
    (lint ~engine_names:en "let s = \"quecc-like\"" = []);
  Tutil.check_bool "registry allowlisted" true
    (L.lint_source ~file:"lib/harness/engine_registry.ml" ~engine_names:en
       "let e = \"quecc\""
    = [])

let test_lint_d5 () =
  Tutil.check_bool "Obj.magic flagged" true
    (rules (lint "let x = Obj.magic 0") = [ "D5" ]);
  Tutil.check_bool "phys-eq flagged" true
    (rules (lint "let b = a == c") = [ "D5" ]);
  Tutil.check_bool "structural eq clean" true (lint "let b = a = c" = []);
  Tutil.check_bool "pcommon.ml allowlisted" true
    (L.lint_source ~file:"lib/protocols/pcommon.ml" "let b = a == c" = [])

let test_lint_d6_e0 () =
  Tutil.check_bool "missing mli -> D6" true
    (rules (L.lint_source ~file:"lib/x/y.ml" ~expect_mli:true "let x = 1")
    = [ "D6" ]);
  Tutil.check_bool "parse error -> E0" true
    (rules (lint "let let let") = [ "E0" ])

(* ------------------------------------------------------------------ *)
(* Conflict detector: mutation tests on synthetic logs                 *)
(* ------------------------------------------------------------------ *)

(* A hand-driven log: we control the clock, phase and thread id, and
   stamp queue slots exactly as an engine drain loop would.  Each test
   injects one specific ordering violation and asserts the matching
   rule (and only it) fires — proof the detector detects. *)
let make_log () =
  let phase = ref Sim.Ph_execute and tid = ref 0 in
  let log = A.create () in
  A.attach log
    ~now:(fun () -> 0)
    ~phase:(fun () -> !phase)
    ~tid:(fun () -> !tid);
  (log, phase, tid)

let slot log ?(subseq = -1) ~thread ~owner ~prio ~pos () =
  A.set_slot log ~thread ~owner ~prio ~subseq ~pos ~batch:0

let vrules r = List.map (fun v -> v.CC.v_rule) r.CC.violations

let test_cc_priority_order () =
  (* in planned order: prio 0 then prio 1 -> clean *)
  let log, _, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  slot log ~thread:0 ~owner:0 ~prio:1 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  Tutil.check_bool "in-order writes clean" true (CC.ok (CC.check_log log));
  (* mutation: same two writes executed against planned order *)
  let log, _, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:1 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  let r = CC.check_log log in
  Tutil.check_bool "out-of-order write caught, exactly once" true
    (vrules r = [ CC.Priority_order ]);
  (* position within one queue orders too *)
  let log, _, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:5 ();
  A.record_row log ~table:0 ~key:3 ~op:A.Write;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:2 ();
  A.record_row log ~table:0 ~key:3 ~op:A.Read;
  Tutil.check_bool "pos-inverted read-after-write caught" true
    (vrules (CC.check_log log) = [ CC.Priority_order ])

let test_cc_exemptions () =
  (* read-read pairs never conflict *)
  let log, _, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:1 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Read;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Read;
  Tutil.check_bool "read-read out of order is fine" true
    (CC.ok (CC.check_log log));
  (* a committed-image read at a lower slot than an already-executed
     write commutes: served from the committed image, not the write *)
  let log, _, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:1 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Committed_read;
  Tutil.check_bool "rc-read exempt" true (CC.ok (CC.check_log log));
  (* recovery replay legitimately re-executes out of global order *)
  let log, phase, _ = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:1 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  phase := Sim.Ph_recover;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  Tutil.check_bool "recovery replay exempt" true (CC.ok (CC.check_log log))

let test_cc_plan_access () =
  let log, phase, _ = make_log () in
  phase := Sim.Ph_plan;
  A.record_row log ~table:0 ~key:1 ~op:A.Read;
  Tutil.check_bool "row access during planning caught" true
    (vrules (CC.check_log log) = [ CC.Plan_access ]);
  let log, phase, _ = make_log () in
  phase := Sim.Ph_plan;
  A.record_probe log ~table:"usertable" ~key:1 ~insert:false;
  Tutil.check_bool "storage probe during planning caught" true
    (vrules (CC.check_log log) = [ CC.Plan_access ]);
  (* execute-phase probes are not planning accesses *)
  let log, _, _ = make_log () in
  A.record_probe log ~table:"usertable" ~key:1 ~insert:false;
  Tutil.check_bool "execute-phase probe fine" true (CC.ok (CC.check_log log))

let test_cc_cross_owner () =
  let log, _, tid = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  tid := 1;
  slot log ~thread:1 ~owner:1 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:7 ~op:A.Write;
  Tutil.check_bool "same key planned into two owners caught" true
    (List.mem CC.Cross_owner (vrules (CC.check_log log)))

let test_cc_steal_overlap () =
  (* thread 1 steals owner 2's queue while thread 0 is concurrently
     draining its own queue that shares key 9 -> signatures were not
     disjoint.  Reads keep Cross_owner out of the picture: the steal
     rule must catch this on its own. *)
  let log, _, tid = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:1 ~op:A.Read;
  tid := 1;
  slot log ~thread:1 ~owner:2 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:9 ~op:A.Read;
  tid := 0;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:1 ();
  A.record_row log ~table:0 ~key:9 ~op:A.Read;
  let r = CC.check_log log in
  Tutil.check_int "steal observed" 1 r.CC.r_stolen;
  Tutil.check_bool "overlapping steal caught" true
    (vrules r = [ CC.Steal_overlap ]);
  (* same shape with disjoint keys: a legitimate steal, no violation *)
  let log, _, tid = make_log () in
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:1 ~op:A.Read;
  tid := 1;
  slot log ~thread:1 ~owner:2 ~prio:0 ~pos:0 ();
  A.record_row log ~table:0 ~key:9 ~op:A.Read;
  tid := 0;
  slot log ~thread:0 ~owner:0 ~prio:0 ~pos:1 ();
  A.record_row log ~table:0 ~key:2 ~op:A.Read;
  let r = CC.check_log log in
  Tutil.check_int "steal still observed" 1 r.CC.r_stolen;
  Tutil.check_bool "disjoint steal clean" true (CC.ok r)

(* ------------------------------------------------------------------ *)
(* Engine sweep: real runs are violation-free and recording is free    *)
(* ------------------------------------------------------------------ *)

let run_quecc ?(mode = Engine.Speculative) ?(isolation = Engine.Serializable)
    ?(pipeline = false) ?(steal = false) ?split ?adapt ?recorder cfg
    ~batch_size =
  let wl = Ycsb.make cfg in
  let m =
    Engine.run ?recorder
      { Engine.planners = 4; executors = 4; batch_size; mode; isolation;
        costs = Quill_sim.Costs.default; pipeline; steal; split; adapt }
      wl ~batches:4
  in
  (Db.checksum wl.Workload.db, m)

let check_recorded_run name ?mode ?isolation ?pipeline ?steal ?split ?adapt
    cfg ~batch_size =
  let base, _ =
    run_quecc ?mode ?isolation ?pipeline ?steal ?split ?adapt cfg ~batch_size
  in
  let log = A.create () in
  let chk, m =
    run_quecc ?mode ?isolation ?pipeline ?steal ?split ?adapt ~recorder:log
      cfg ~batch_size
  in
  let r = CC.check_log log in
  if not (CC.ok r) then
    Format.eprintf "%s: %a@." name CC.pp_report r;
  Tutil.check_bool (name ^ ": zero violations") true (CC.ok r);
  Tutil.check_bool (name ^ ": accesses recorded") true (r.CC.r_rows > 0);
  Tutil.check_bool (name ^ ": state bit-identical under recording") true
    (base = chk);
  (r, m)

let contended () = Tutil.small_ycsb ~table_size:4_000 ~nparts:4 ~theta:0.9 ()

let test_sweep_modes () =
  List.iter
    (fun (name, mode, isolation) ->
      ignore
        (check_recorded_run name ~mode ~isolation (contended ())
           ~batch_size:128))
    [
      ("spec-ser", Engine.Speculative, Engine.Serializable);
      ("cons-ser", Engine.Conservative, Engine.Serializable);
      ("spec-rc", Engine.Speculative, Engine.Read_committed);
      ("cons-rc", Engine.Conservative, Engine.Read_committed);
    ]

let test_sweep_pipeline () =
  ignore
    (check_recorded_run "pipeline" ~pipeline:true (contended ())
       ~batch_size:128);
  ignore
    (check_recorded_run "pipeline+steal" ~pipeline:true ~steal:true
       (Tutil.small_ycsb ~table_size:10_000 ~nparts:1 ~theta:0.0
          ~read_ratio:0.0 ())
       ~batch_size:32)

let test_sweep_steal () =
  (* the steal-conservation configuration: single-partition routing
     starves three executors, so steals must fire — and the checker's
     independently reconstructed steal count must agree with the
     engine's own metric. *)
  let cfg =
    Tutil.small_ycsb ~table_size:10_000 ~nparts:1 ~theta:0.0 ~read_ratio:0.0
      ()
  in
  let r, m = check_recorded_run "steal" ~steal:true cfg ~batch_size:32 in
  Tutil.check_bool "steals fired" true (m.Metrics.stolen_queues > 0);
  Tutil.check_int "checker sees every steal" m.Metrics.stolen_queues
    r.CC.r_stolen

let test_sweep_split () =
  (* Hot-key splitting under global zipf: the checker must reconstruct
     the sub-queue chains (C3 per-key order) and find no violations, and
     its independent segment count must agree with the engine's
     split_subqueues metric. *)
  let cfg =
    Tutil.small_ycsb ~table_size:2_000 ~nparts:4 ~theta:0.9 ~global_zipf:true
      ()
  in
  let split = Some { Engine.hot_threshold = 8; max_subqueues = 4 } in
  let r, m = check_recorded_run "split" ?split cfg ~batch_size:128 in
  Tutil.check_bool "splits fired" true (m.Metrics.split_keys > 0);
  Tutil.check_int "checker sees every sub-queue segment"
    m.Metrics.split_subqueues r.CC.r_segments;
  (* splitting + stealing together: split keys stay in the steal
     signatures (the home queue must keep protecting the key's
     cross-priority order while its chain is in flight), so under global
     hotness most candidate steals are rightly rejected — the joint
     invariant is exact accounting, not forced firing: every steal the
     engine counts is one the checker independently reconstructs, with
     segments riding in the same batches. *)
  let cfg_steal =
    Tutil.small_ycsb ~table_size:10_000 ~nparts:1 ~theta:0.9 ~global_zipf:true
      ~read_ratio:0.0 ()
  in
  let r2, m2 =
    check_recorded_run "split+steal" ~steal:true ?split cfg_steal
      ~batch_size:128
  in
  Tutil.check_bool "splits fired alongside stealing" true
    (m2.Metrics.split_keys > 0);
  Tutil.check_bool "steals attempted" true (m2.Metrics.steal_attempts > 0);
  Tutil.check_int "accepted steals = attempts - rejects"
    (m2.Metrics.steal_attempts - m2.Metrics.steal_rejects)
    m2.Metrics.stolen_queues;
  Tutil.check_int "steal count exact with segments present"
    m2.Metrics.stolen_queues r2.CC.r_stolen

let test_sweep_dist () =
  let cfg =
    Tutil.small_ycsb ~table_size:4_000 ~nparts:4 ~theta:0.6 ~mp_ratio:0.3 ()
  in
  List.iter
    (fun (name, pipeline) ->
      let run ?recorder () =
        let wl = Ycsb.make cfg in
        let m =
          Dq.run ?recorder
            { Dq.nodes = 2; planners = 2; executors = 2; batch_size = 128;
              costs = Quill_sim.Costs.default; pipeline; replicas = 0;
              spec_lag = 1 }
            wl ~batches:3
        in
        (Db.checksum wl.Workload.db, m)
      in
      let base, _ = run () in
      let log = A.create () in
      let chk, _ = run ~recorder:log () in
      let r = CC.check_log log in
      if not (CC.ok r) then Format.eprintf "%s: %a@." name CC.pp_report r;
      Tutil.check_bool (name ^ ": zero violations") true (CC.ok r);
      Tutil.check_bool (name ^ ": accesses recorded") true (r.CC.r_rows > 0);
      Tutil.check_bool (name ^ ": state bit-identical under recording") true
        (base = chk))
    [ ("dist", false); ("dist+pipe", true) ]

(* Randomized sweep: any seed/contention/pipeline/steal combination is
   violation-free and commits identical state with the recorder on. *)
let qcheck_sweep =
  QCheck.Test.make ~count:8 ~name:"recorded runs conflict-free (random cfg)"
    QCheck.(
      quad (int_bound 999) (int_bound 95) bool bool)
    (fun (seed, theta_pct, pipeline, steal) ->
      let nparts = if steal then 1 else 4 in
      let cfg =
        Tutil.small_ycsb ~table_size:4_000 ~nparts
          ~theta:(float_of_int theta_pct /. 100.)
          ~seed:(seed + 1) ()
      in
      let base, _ = run_quecc ~pipeline ~steal cfg ~batch_size:64 in
      let log = A.create () in
      let chk, _ =
        run_quecc ~pipeline ~steal ~recorder:log cfg ~batch_size:64
      in
      CC.ok (CC.check_log log) && base = chk)

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "D1 random" `Quick test_lint_d1;
          Alcotest.test_case "D2 wall clock" `Quick test_lint_d2;
          Alcotest.test_case "D3 + waiver lifecycle" `Quick
            test_lint_d3_waivers;
          Alcotest.test_case "D4 engine names" `Quick test_lint_d4;
          Alcotest.test_case "D5 magic / phys-eq" `Quick test_lint_d5;
          Alcotest.test_case "D6 / E0" `Quick test_lint_d6_e0;
        ] );
      ( "conflict-check",
        [
          Alcotest.test_case "priority order mutations" `Quick
            test_cc_priority_order;
          Alcotest.test_case "exemptions" `Quick test_cc_exemptions;
          Alcotest.test_case "plan access mutations" `Quick
            test_cc_plan_access;
          Alcotest.test_case "cross owner mutation" `Quick
            test_cc_cross_owner;
          Alcotest.test_case "steal overlap mutations" `Quick
            test_cc_steal_overlap;
        ] );
      ( "engine-sweep",
        [
          Alcotest.test_case "modes x isolation" `Quick test_sweep_modes;
          Alcotest.test_case "pipeline" `Quick test_sweep_pipeline;
          Alcotest.test_case "steal accounting" `Quick test_sweep_steal;
          Alcotest.test_case "split accounting" `Quick test_sweep_split;
          Alcotest.test_case "dist-quecc" `Quick test_sweep_dist;
          QCheck_alcotest.to_alcotest qcheck_sweep;
        ] );
    ]
