(* Durable group-commit WAL: batch-aligned logging must be state-neutral,
   crash recovery must rebuild exactly the serial-oracle state at the
   last durable batch, and a damaged log tail (torn record, corrupted
   byte, failing fsync) must be detected and truncated, never silently
   loaded. *)

open Quill_storage
open Quill_txn
open Quill_workloads
module Engine = Quill_quecc.Engine
module Wal = Quill_wal.Wal
module Sim = Quill_sim.Sim
module Costs = Quill_sim.Costs
module Serial = Quill_protocols.Serial
module E = Quill_harness.Experiment
module Faults = Quill_faults.Faults

let quecc_cfg ?(planners = 4) ?(executors = 4) ?(batch_size = 128)
    ?(pipeline = false) () =
  {
    Engine.planners;
    executors;
    batch_size;
    mode = Engine.Speculative;
    isolation = Engine.Serializable;
    costs = Costs.default;
    pipeline;
    steal = false;
    split = None;
    adapt = None;
  }

(* Run quecc with a WAL attached (and optionally a crash), recording the
   generated transactions so the serial oracle can replay them. *)
let run_wal ?disk ?crash_at ?(snapshot_every = 4) ?(planners = 4)
    ?(executors = 4) ?(batch_size = 128) ?(batches = 4) ?(pipeline = false)
    cfg =
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let costs = Costs.default in
  let sim = Sim.create ~wake_cost:costs.Costs.wakeup () in
  let w = Wal.create ?disk ~sim ~costs ~snapshot_every wl.Workload.db in
  let m =
    Engine.run ~sim ~wal:w ?crash_at
      (quecc_cfg ~planners ~executors ~batch_size ~pipeline ())
      wl_rec ~batches
  in
  (wl, logs, m, w)

let run_plain ?(planners = 4) ?(executors = 4) ?(batch_size = 128)
    ?(batches = 4) ?(pipeline = false) cfg =
  let wl = Ycsb.make cfg in
  let m =
    Engine.run
      (quecc_cfg ~planners ~executors ~batch_size ~pipeline ())
      wl ~batches
  in
  (wl, m)

(* Serial-oracle state after the first [batches] batches of the recorded
   streams (the durable prefix a recovered run must reproduce). *)
let oracle_state cfg logs ~streams ~batch_size ~batches =
  let wl = Ycsb.make cfg in
  let txns = Tutil.batch_order logs ~streams ~batch_size ~batches in
  let m = Serial.run_txns wl txns in
  (Db.checksum wl.Workload.db, m)

(* ------------------------- state neutrality ------------------------- *)

let test_wal_is_state_neutral () =
  let cfg = Tutil.small_ycsb () in
  let wl_w, _, mw, _ = run_wal ~snapshot_every:2 cfg in
  let wl_p, mp = run_plain cfg in
  Tutil.check_bool "same final state with and without WAL" true
    (Db.checksum wl_w.Workload.db = Db.checksum wl_p.Workload.db);
  Tutil.check_int "same commits" mp.Metrics.committed mw.Metrics.committed;
  Tutil.check_int "every batch durable" 4 mw.Metrics.durable_batches;
  Tutil.check_int "one fsync per batch" 4 mw.Metrics.wal_fsyncs;
  Tutil.check_int "group txns = commits" mw.Metrics.committed
    mw.Metrics.wal_group_txns;
  Tutil.check_int "snapshot every 2 of 4 batches" 2 mw.Metrics.snapshots;
  Tutil.check_int "truncated behind each snapshot" 2
    mw.Metrics.wal_truncations

(* ------------------------- crash recovery ------------------------- *)

let check_crash_recovers ?(pipeline = false) name cfg =
  let _, mprobe = run_plain ~pipeline cfg in
  let crash_at = mprobe.Metrics.elapsed / 2 in
  let wl, logs, m, w =
    run_wal ~crash_at ~snapshot_every:2 ~pipeline cfg
  in
  Tutil.check_int (name ^ ": crashed once") 1 m.Metrics.crashes;
  let durable = m.Metrics.durable_batches in
  Tutil.check_bool (name ^ ": lost the in-flight tail") true (durable < 4);
  let oracle, ms =
    oracle_state cfg logs ~streams:4 ~batch_size:128 ~batches:durable
  in
  Tutil.check_bool
    (name ^ ": recovered state = serial oracle at the durable boundary")
    true
    (Db.checksum wl.Workload.db = oracle);
  Tutil.check_int (name ^ ": no lost or double commits")
    ms.Metrics.committed m.Metrics.committed;
  Tutil.check_int (name ^ ": committed = durable txns")
    (Wal.durable_txns w) m.Metrics.committed

let test_crash_recovers_lockstep () =
  check_crash_recovers "lockstep" (Tutil.small_ycsb ())

let test_crash_recovers_pipelined () =
  check_crash_recovers ~pipeline:true "pipelined" (Tutil.small_ycsb ())

let test_crash_recovers_with_inserts () =
  (* abort_ratio > 0 exercises recovery-pass cascades and rolled-back
     effects around the WAL write set *)
  check_crash_recovers "aborts" (Tutil.small_ycsb ~abort_ratio:0.1 ())

(* Random seeds x crash points x snapshot intervals: the recovered state
   always equals the serial oracle at the last durable batch. *)
let prop_crash_recovers_to_oracle =
  QCheck.Test.make
    ~name:"crash x snapshot interval -> serial oracle at durable boundary"
    ~count:8
    QCheck.(triple (int_range 0 1000) (int_range 1 9) (int_range 1 4))
    (fun (seed, frac10, snapshot_every) ->
      let cfg = Tutil.small_ycsb ~table_size:2_000 ~seed () in
      let _, mprobe =
        run_plain ~planners:2 ~executors:2 ~batch_size:64 cfg
      in
      let crash_at = max 1 (mprobe.Metrics.elapsed * frac10 / 10) in
      let wl, logs, m, _ =
        run_wal ~crash_at ~snapshot_every ~planners:2 ~executors:2
          ~batch_size:64 cfg
      in
      let durable = m.Metrics.durable_batches in
      let oracle, ms =
        oracle_state cfg logs ~streams:2 ~batch_size:64 ~batches:durable
      in
      Db.checksum wl.Workload.db = oracle
      && m.Metrics.committed = ms.Metrics.committed)

(* ------------------------- damaged log tails ------------------------- *)

(* A WAL over a hand-built db: batch 0 writes keys 0..19 with payload k,
   batch 1 overwrites them with 100+k. *)
let toy_wal ?disk ~snapshot_every () =
  let sim = Sim.create () in
  let db = Db.create ~nparts:2 in
  let _t = Db.add_table db ~name:"t" ~nfields:4 ~capacity:128 in
  let w = ref None in
  Sim.spawn sim (fun () ->
      let wal = Wal.create ?disk ~sim ~costs:Costs.default ~snapshot_every db in
      w := Some wal;
      for b = 0 to 1 do
        Wal.begin_batch wal ~batch_no:b;
        for k = 0 to 19 do
          Wal.log_effect wal ~table:0 ~home:0 ~key:k
            (Array.make 4 ((100 * b) + k))
        done;
        ignore (Wal.commit_batch wal ~batch_no:b ~txns:20)
      done;
      Wal.recover wal db);
  ignore (Sim.run sim);
  (Option.get !w, db)

let committed0 db key =
  match Table.find (Db.table db 0) key with
  | Some row -> row.Row.committed.(0)
  | None -> -1

let test_clean_log_replays_fully () =
  let w, db = toy_wal ~snapshot_every:8 () in
  Tutil.check_int "both batches durable" 1 (Wal.durable_batch w);
  Tutil.check_int "all txns durable" 40 (Wal.durable_txns w);
  Tutil.check_int "batch-1 image wins" 105 (committed0 db 5)

let test_torn_tail_truncated () =
  (* record 23 is the first effect of batch 1 (header 0, effects 1..20,
     commit 21, header 22): the torn write wedges the disk mid-batch-1,
     so only batch 0 survives and the tail is cut, not loaded. *)
  let w, db = toy_wal ~disk:{ Wal.no_disk_faults with Wal.torn_rec = Some 23 }
      ~snapshot_every:8 ()
  in
  Tutil.check_int "only batch 0 durable" 0 (Wal.durable_batch w);
  Tutil.check_int "only batch 0's txns" 20 (Wal.durable_txns w);
  Tutil.check_int "batch-0 image, not the torn batch's" 5 (committed0 db 5);
  Tutil.check_bool "torn record detected" true
    (let m = Metrics.create () in
     Wal.record w m;
     m.Metrics.torn_records = 1 && m.Metrics.wal_truncations = 1)

let test_corrupt_byte_truncates () =
  (* flip a bit inside batch 1's region: the crc check fails there and
     recovery keeps exactly the valid prefix *)
  let w, db =
    toy_wal
      ~disk:{ Wal.no_disk_faults with Wal.corrupt_off = Some 1_000 }
      ~snapshot_every:8 ()
  in
  Tutil.check_bool "corruption detected, prefix kept" true
    (Wal.durable_batch w < 1);
  Tutil.check_bool "corrupted tail never loaded" true (committed0 db 5 < 100);
  let m = Metrics.create () in
  Wal.record w m;
  Tutil.check_int "counted as a torn/corrupt record" 1 m.Metrics.torn_records

let test_fsync_fail_degrades () =
  (* every flush fails from t=1: the run itself completes (in-memory
     commits are unaffected) but nothing becomes durable *)
  let cfg = Tutil.small_ycsb () in
  let wl = Ycsb.make cfg in
  let costs = Costs.default in
  let sim = Sim.create ~wake_cost:costs.Costs.wakeup () in
  let w =
    Wal.create
      ~disk:{ Wal.no_disk_faults with Wal.fsync_fail_at = Some 1 }
      ~sim ~costs ~snapshot_every:4 wl.Workload.db
  in
  let m = Serial.run ~sim ~costs ~wal:w wl ~txns:512 in
  Tutil.check_int "run completes" 512 m.Metrics.committed;
  Tutil.check_bool "flushes failed" true (m.Metrics.wal_fsync_fails > 0);
  Tutil.check_int "nothing durable" 0 m.Metrics.durable_batches

(* ------------------------- serial engine ------------------------- *)

let test_serial_crash_recovers () =
  let cfg = Tutil.small_ycsb () in
  let probe = Serial.run (Ycsb.make cfg) ~txns:1024 in
  let crash_at = probe.Metrics.elapsed / 2 in
  let wl = Ycsb.make cfg in
  let costs = Costs.default in
  let sim = Sim.create ~wake_cost:costs.Costs.wakeup () in
  let w = Wal.create ~sim ~costs ~snapshot_every:2 wl.Workload.db in
  let m =
    Serial.run ~sim ~costs ~wal:w ~crash_at ~batch_size:128 wl ~txns:1024
  in
  Tutil.check_int "crashed once" 1 m.Metrics.crashes;
  Tutil.check_int "committed = durable txns" (Wal.durable_txns w)
    m.Metrics.committed;
  Tutil.check_bool "durable prefix only" true (m.Metrics.committed < 1024);
  (* the durable prefix is the first N txns of stream 0: a fresh serial
     run of exactly N must land on the same state *)
  let wl2 = Ycsb.make cfg in
  let m2 = Serial.run wl2 ~txns:m.Metrics.committed in
  Tutil.check_int "oracle commits" m.Metrics.committed m2.Metrics.committed;
  Tutil.check_bool "recovered state = truncated serial run" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

(* ------------------------- harness validation ------------------------- *)

let test_experiment_validation () =
  let spec = E.Ycsb (Tutil.small_ycsb ()) in
  let crash_plan =
    {
      Faults.none with
      Faults.crashes = [ { Faults.node = 0; at = 1_000; down = 1 } ];
    }
  in
  Alcotest.check_raises "--wal rejected off the WAL engines"
    (Invalid_argument
       "Experiment.run: --wal requires the 'wal' capability, but engine \
        silo provides {clients}")
    (fun () ->
      ignore
        (E.run (E.make ~threads:2 ~txns:256 ~batch_size:128 ~wal:true E.Silo spec)));
  Alcotest.check_raises "crash without --wal rejected"
    (Invalid_argument
       "Experiment.run: crash/disk faults on quecc need --wal (nothing \
        durable to recover from otherwise)")
    (fun () ->
      ignore
        (E.run
           (E.make ~threads:2 ~txns:256 ~batch_size:128 ~faults:crash_plan
              (E.Quecc (Engine.Speculative, Engine.Serializable))
              spec)));
  Alcotest.check_raises "snapshot period must be positive"
    (Invalid_argument "Experiment.run: --snapshot-every must be >= 1")
    (fun () ->
      ignore
        (E.run
           (E.make ~threads:2 ~txns:256 ~batch_size:128 ~wal:true
              ~snapshot_every:0
              (E.Quecc (Engine.Speculative, Engine.Serializable))
              spec)));
  Alcotest.check_raises "net faults stay distributed-only"
    (Invalid_argument
       "Experiment.run: network faults (drop/dup/delay/partition) requires \
        the 'dist' capability, but engine quecc provides {faults, clients, \
        wal, cdc}")
    (fun () ->
      ignore
        (E.run
           (E.make ~threads:2 ~txns:256 ~batch_size:128 ~wal:true
              ~faults:{ Faults.none with Faults.drop = 0.01 }
              (E.Quecc (Engine.Speculative, Engine.Serializable))
              spec)));
  Alcotest.check_raises "crash + open-loop clients rejected"
    (Invalid_argument
       "Experiment.run: crash faults and open-loop clients cannot be \
        combined on a centralized engine (a crashed node strands the \
        admission queue)")
    (fun () ->
      ignore
        (E.run
           (E.make ~threads:2 ~txns:256 ~batch_size:128 ~wal:true
              ~faults:crash_plan ~clients:Quill_clients.Clients.default
              (E.Quecc (Engine.Speculative, Engine.Serializable))
              spec)))

(* A crash fault through the full harness path commits exactly the
   durable prefix instead of exiting. *)
let test_experiment_crash_path () =
  let spec = E.Ycsb (Tutil.small_ycsb ()) in
  let probe =
    E.run
      (E.make ~threads:4 ~txns:512 ~batch_size:128 ~wal:true
         (E.Quecc (Engine.Speculative, Engine.Serializable))
         spec)
  in
  let plan =
    {
      Faults.none with
      Faults.crashes =
        [ { Faults.node = 0; at = probe.Metrics.elapsed / 2; down = 1 } ];
    }
  in
  let m =
    E.run
      (E.make ~threads:4 ~txns:512 ~batch_size:128 ~wal:true ~faults:plan
         (E.Quecc (Engine.Speculative, Engine.Serializable))
         spec)
  in
  Tutil.check_int "crashed once" 1 m.Metrics.crashes;
  Tutil.check_bool "durable prefix committed" true
    (m.Metrics.committed < probe.Metrics.committed);
  Tutil.check_int "whole durable batches" 0 (m.Metrics.committed mod 128)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "wal"
    [
      ( "group-commit",
        [
          Alcotest.test_case "state-neutral + counters" `Quick
            test_wal_is_state_neutral;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "lockstep" `Quick test_crash_recovers_lockstep;
          Alcotest.test_case "pipelined" `Quick
            test_crash_recovers_pipelined;
          Alcotest.test_case "with aborts" `Quick
            test_crash_recovers_with_inserts;
          Alcotest.test_case "serial engine" `Quick
            test_serial_crash_recovers;
          qc prop_crash_recovers_to_oracle;
        ] );
      ( "damaged-tails",
        [
          Alcotest.test_case "clean log replays fully" `Quick
            test_clean_log_replays_fully;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "corrupt byte truncated" `Quick
            test_corrupt_byte_truncates;
          Alcotest.test_case "fsync failure degrades" `Quick
            test_fsync_fail_degrades;
        ] );
      ( "harness",
        [
          Alcotest.test_case "validation" `Quick test_experiment_validation;
          Alcotest.test_case "crash path" `Quick test_experiment_crash_path;
        ] );
    ]
