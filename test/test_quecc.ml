(* The queue-oriented engine's correctness battery.

   The central oracle: for any input batch sequence, the engine's final
   committed state must equal serial execution of the same transactions
   in batch order — that is the determinism property the paper claims,
   and it must hold for every configuration (planner/executor counts,
   batch sizes, execution modes, isolation levels for the state written
   by updates, contention levels, abort rates, data-dependency chains,
   multi-partition ratios). *)

open Quill_storage
open Quill_txn
open Quill_workloads
module Engine = Quill_quecc.Engine

let run_engine ?(mode = Engine.Speculative) ?(isolation = Engine.Serializable)
    ?(planners = 4) ?(executors = 4) ?(batch_size = 128) ?(batches = 4)
    ?(pipeline = false) ?(steal = false) ?split ?adapt cfg =
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m =
    Engine.run
      { Engine.planners; executors; batch_size; mode; isolation;
        costs = Quill_sim.Costs.default; pipeline; steal; split; adapt }
      wl_rec ~batches
  in
  (wl, logs, m)

let serial_state cfg logs ~streams ~batch_size ~batches =
  let wl = Ycsb.make cfg in
  let txns = Tutil.batch_order logs ~streams ~batch_size ~batches in
  let m = Quill_protocols.Serial.run_txns wl txns in
  (Db.checksum wl.Workload.db, m, txns)

let check_against_oracle ?mode ?isolation ?(planners = 4) ?(executors = 4)
    ?(batch_size = 128) ?(batches = 4) ?(pipeline = false) ?(steal = false)
    ?split ?adapt name cfg =
  let wl, logs, m =
    run_engine ?mode ?isolation ~planners ~executors ~batch_size ~batches
      ~pipeline ~steal ?split ?adapt cfg
  in
  let oracle, m_serial, _ =
    serial_state cfg logs ~streams:planners ~batch_size ~batches
  in
  Tutil.check_int (name ^ ": commits match serial")
    m_serial.Metrics.committed m.Metrics.committed;
  Tutil.check_int (name ^ ": aborts match serial")
    m_serial.Metrics.logic_aborted m.Metrics.logic_aborted;
  Tutil.check_bool (name ^ ": state equals serial") true
    (Db.checksum wl.Workload.db = oracle)

(* ------------------------- oracle equivalence ------------------------- *)

let test_oracle_uniform () =
  check_against_oracle "uniform" (Tutil.small_ycsb ~theta:0.0 ())

let test_oracle_skewed () =
  check_against_oracle "skewed" (Tutil.small_ycsb ~theta:0.9 ())

let test_oracle_extreme_skew () =
  check_against_oracle "extreme skew"
    (Tutil.small_ycsb ~table_size:64 ~theta:0.0 ~mp_ratio:1.0 ())

let test_oracle_aborts () =
  check_against_oracle "aborts"
    (Tutil.small_ycsb ~abort_ratio:0.2 ~theta:0.9 ())

let test_oracle_chain_deps () =
  check_against_oracle "chain deps"
    (Tutil.small_ycsb ~chain_deps:true ~theta:0.8 ())

let test_oracle_aborts_and_deps () =
  check_against_oracle "aborts+deps"
    (Tutil.small_ycsb ~abort_ratio:0.15 ~chain_deps:true ~theta:0.8
       ~mp_ratio:0.5 ())

let test_oracle_conservative () =
  check_against_oracle ~mode:Engine.Conservative "conservative"
    (Tutil.small_ycsb ~abort_ratio:0.2 ~chain_deps:true ~theta:0.9 ())

let test_oracle_asymmetric_threads () =
  check_against_oracle ~planners:3 ~executors:5 "3 planners 5 executors"
    (Tutil.small_ycsb ~theta:0.7 ~abort_ratio:0.1 ());
  check_against_oracle ~planners:6 ~executors:2 "6 planners 2 executors"
    (Tutil.small_ycsb ~theta:0.7 ~abort_ratio:0.1 ())

let test_oracle_single_thread () =
  check_against_oracle ~planners:1 ~executors:1 "1x1"
    (Tutil.small_ycsb ~abort_ratio:0.1 ~chain_deps:true ())

let test_oracle_uneven_batch () =
  (* batch size not divisible by planner count *)
  check_against_oracle ~planners:3 ~executors:3 ~batch_size:100 "uneven slices"
    (Tutil.small_ycsb ())

(* The same state must arise regardless of the thread configuration:
   determinism across physical layouts, not just runs. *)
let test_state_independent_of_executors () =
  let cfg = Tutil.small_ycsb ~theta:0.9 ~abort_ratio:0.1 () in
  let c_of executors =
    let wl, _, _ = run_engine ~planners:4 ~executors cfg in
    Db.checksum wl.Workload.db
  in
  let base = c_of 1 in
  List.iter
    (fun e -> Tutil.check_bool "same state any executor count" true
        (c_of e = base))
    [ 2; 4; 8 ]

let test_run_to_run_determinism () =
  let cfg = Tutil.small_ycsb ~theta:0.99 ~abort_ratio:0.1 ~chain_deps:true () in
  let wl1, _, m1 = run_engine cfg in
  let wl2, _, m2 = run_engine cfg in
  Tutil.check_bool "state" true
    (Db.checksum wl1.Workload.db = Db.checksum wl2.Workload.db);
  Tutil.check_int "commits" m1.Metrics.committed m2.Metrics.committed;
  Tutil.check_int "elapsed (virtual time) identical" m1.Metrics.elapsed
    m2.Metrics.elapsed

let test_speculative_equals_conservative () =
  let cfg = Tutil.small_ycsb ~theta:0.9 ~abort_ratio:0.25 ~chain_deps:true () in
  let wl1, _, m1 = run_engine ~mode:Engine.Speculative cfg in
  let wl2, _, m2 = run_engine ~mode:Engine.Conservative cfg in
  Tutil.check_bool "same final state" true
    (Db.checksum wl1.Workload.db = Db.checksum wl2.Workload.db);
  Tutil.check_int "same commits" m1.Metrics.committed m2.Metrics.committed;
  Tutil.check_int "conservative never cascades" 0 m2.Metrics.cascades

(* ------------------------- engine behaviour ------------------------- *)

let test_no_cc_aborts () =
  let _, _, m = run_engine (Tutil.small_ycsb ~theta:0.99 ()) in
  Tutil.check_int "concurrency-control-free" 0 m.Metrics.cc_aborts

let test_all_txns_accounted () =
  let _, _, m =
    run_engine ~batch_size:128 ~batches:5
      (Tutil.small_ycsb ~abort_ratio:0.3 ())
  in
  Tutil.check_int "committed + aborted = total" (128 * 5)
    (m.Metrics.committed + m.Metrics.logic_aborted);
  Tutil.check_int "batches" 5 m.Metrics.batches

let test_additive_invariant () =
  (* With write-only RMW(+delta) fragments, the final sum of field 0
     equals the initial sum plus all committed deltas. *)
  let cfg = Tutil.small_ycsb ~theta:0.9 ~read_ratio:0.0 ~abort_ratio:0.2 () in
  let wl = Ycsb.make cfg in
  let initial = Tutil.sum_field0 wl.Workload.db "usertable" in
  let wl_rec, logs = Tutil.record wl in
  let _ =
    Engine.run
      { Engine.default_cfg with Engine.planners = 4; executors = 4;
        batch_size = 128 }
      wl_rec ~batches:4
  in
  let txns = Tutil.batch_order logs ~streams:4 ~batch_size:128 ~batches:4 in
  let delta = Tutil.ycsb_committed_delta txns in
  Tutil.check_int "sum conserved" (initial + delta)
    (Tutil.sum_field0 wl.Workload.db "usertable")

let test_read_committed_runs () =
  (* RC relaxes isolation; the update-side state must still be exact for
     workloads whose writes don't depend on reads (read_ratio split). *)
  let cfg = Tutil.small_ycsb ~theta:0.9 ~read_ratio:0.6 () in
  let wl, _, m =
    run_engine ~isolation:Engine.Read_committed ~batches:3 cfg
  in
  Tutil.check_int "all committed" (128 * 3) m.Metrics.committed;
  (* RMW deltas don't depend on reads, so even RC state matches serial
     when there are no aborts. *)
  let wl2, logs2, _ = run_engine ~isolation:Engine.Serializable ~batches:3 cfg in
  ignore logs2;
  Tutil.check_bool "same committed state" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let test_latency_batch_shaped () =
  let _, _, m = run_engine ~batches:4 (Tutil.small_ycsb ()) in
  let p50 = Quill_common.Stats.Hist.percentile m.Metrics.lat 50.0 in
  let p99 = Quill_common.Stats.Hist.percentile m.Metrics.lat 99.0 in
  Tutil.check_bool "p50 > 0" true (p50 > 0);
  Tutil.check_bool "p99 >= p50" true (p99 >= p50)

let test_more_cores_not_slower () =
  let cfg = Tutil.small_ycsb ~table_size:16_000 ~nparts:8 ~theta:0.0 () in
  let tput threads =
    let wl = Ycsb.make cfg in
    let m =
      Engine.run
        { Engine.default_cfg with Engine.planners = threads;
          executors = threads; batch_size = 512 }
        wl ~batches:4
    in
    Metrics.throughput m
  in
  let t1 = tput 1 and t8 = tput 8 in
  Tutil.check_bool
    (Printf.sprintf "8 cores (%.0f) beat 1 core (%.0f) by 3x+" t8 t1)
    true
    (t8 > 3.0 *. t1)

(* Conservative-mode abort purity.  Each transaction updates its own pair
   of keys: fragment 0 is a gated update (commit_dep — a sibling may
   abort), fragment 1 is the sole abortable fragment and also writes, so
   its write is the transaction's only non-commit_dep update.  Rows are
   seeded so the abort decision is a pure function of the initial state;
   an aborting transaction must leave both of its rows — live and
   committed copies — exactly as seeded. *)
let test_conservative_abort_purity () =
  let streams = 2 and batch_size = 8 and batches = 2 in
  let total = batch_size * batches in
  let db = Db.create ~nparts:2 in
  let table_id = Db.add_table db ~name:"t" ~nfields:1 ~capacity:(2 * total) in
  let tbl = Db.table_by_name db "t" in
  Table.iter_dense
    (fun row ->
      row.Row.data.(0) <- 1000 + row.Row.key;
      Row.publish row)
    tbl;
  let op_gated = 0 and op_maybe_abort = 1 in
  let gen g =
    let f0 =
      Fragment.make ~fid:0 ~table:table_id ~key:(2 * g) ~mode:Fragment.Rmw
        ~op:op_gated ~args:[| 100 |] ()
    in
    let f1 =
      Fragment.make ~fid:1 ~table:table_id
        ~key:((2 * g) + 1)
        ~mode:Fragment.Rmw ~op:op_maybe_abort ~abortable:true ~args:[| 7 |] ()
    in
    Txn.make ~tid:g [| f0; f1 |]
  in
  let new_stream i =
    let counter = ref 0 in
    fun () ->
      let g = (!counter * streams) + i in
      incr counter;
      gen g
  in
  let exec (ctx : Exec.ctx) (_txn : Txn.t) (frag : Fragment.t) =
    let v = ctx.Exec.read frag 0 in
    ctx.Exec.output frag.Fragment.fid v;
    if frag.Fragment.op = op_gated then begin
      ctx.Exec.write frag 0 (v + frag.Fragment.args.(0));
      Exec.Ok
    end
    else if v mod 3 = 0 then Exec.Abort
    else begin
      ctx.Exec.write frag 0 (v + frag.Fragment.args.(0));
      Exec.Ok
    end
  in
  let wl =
    {
      Workload.name = "abort-purity";
      db;
      new_stream;
      exec;
      describe = "paired gated/abortable updates";
    }
  in
  let m =
    Engine.run
      { Engine.default_cfg with
        Engine.planners = streams; executors = 4; batch_size;
        mode = Engine.Conservative; isolation = Engine.Serializable }
      wl ~batches
  in
  let expected_aborts = ref 0 in
  for g = 0 to total - 1 do
    let r0 = Table.dense tbl (2 * g) and r1 = Table.dense tbl ((2 * g) + 1) in
    let init0 = 1000 + (2 * g) and init1 = 1000 + (2 * g) + 1 in
    if init1 mod 3 = 0 then begin
      incr expected_aborts;
      Tutil.check_int "aborted: gated update absent (committed)" init0
        r0.Row.committed.(0);
      Tutil.check_int "aborted: gated update absent (live)" init0
        r0.Row.data.(0);
      Tutil.check_int "aborted: abortable write absent (committed)" init1
        r1.Row.committed.(0);
      Tutil.check_int "aborted: abortable write absent (live)" init1
        r1.Row.data.(0)
    end
    else begin
      Tutil.check_int "committed: gated update applied" (init0 + 100)
        r0.Row.committed.(0);
      Tutil.check_int "committed: abortable write applied" (init1 + 7)
        r1.Row.committed.(0)
    end
  done;
  Tutil.check_bool "test exercises both outcomes" true
    (!expected_aborts > 0 && !expected_aborts < total);
  Tutil.check_int "abort count" !expected_aborts m.Metrics.logic_aborted;
  Tutil.check_int "commit count" (total - !expected_aborts)
    m.Metrics.committed;
  Tutil.check_int "conservative never speculates" 0 m.Metrics.cascades

(* ------------------------- pipelined batches ------------------------- *)

(* The pipelined schedule must be invisible in the committed state:
   the serial oracle holds for the double-buffered path exactly as it
   does for the lockstep one. *)
let test_pipeline_oracle () =
  check_against_oracle ~pipeline:true "pipelined uniform"
    (Tutil.small_ycsb ~theta:0.0 ());
  check_against_oracle ~pipeline:true "pipelined aborts+deps"
    (Tutil.small_ycsb ~abort_ratio:0.15 ~chain_deps:true ~theta:0.8
       ~mp_ratio:0.5 ());
  check_against_oracle ~pipeline:true ~mode:Engine.Conservative
    "pipelined conservative"
    (Tutil.small_ycsb ~abort_ratio:0.2 ~chain_deps:true ~theta:0.9 ());
  check_against_oracle ~pipeline:true ~steal:true ~planners:3 ~executors:5
    "pipelined+steal asymmetric"
    (Tutil.small_ycsb ~theta:0.7 ~abort_ratio:0.1 ())

(* Overlap buys real virtual time on a planning-heavy schedule; the
   bench pipeline sweep documents ~1.25x at full scale, the test
   guards a conservative floor at its smaller scale. *)
let test_pipeline_faster () =
  let cfg = Tutil.small_ycsb ~table_size:20_000 ~nparts:8 ~theta:0.0 () in
  let tput pipeline =
    let wl = Ycsb.make cfg in
    let m =
      Engine.run
        { Engine.default_cfg with Engine.planners = 4; executors = 4;
          batch_size = 512; pipeline }
        wl ~batches:6
    in
    Metrics.throughput m
  in
  let t0 = tput false and t1 = tput true in
  Tutil.check_bool
    (Printf.sprintf "pipelined (%.0f) beats lockstep (%.0f) by 1.1x+" t1 t0)
    true
    (t1 > 1.1 *. t0)

(* Work stealing needs genuine imbalance with sparse key overlap to
   fire: a single-partition workload homes every queue on executor 0,
   leaving the rest idle, and small batches over a 10k-row uniform
   keyspace keep queue signatures disjoint.  The steal must be
   invisible: serial-oracle state, and (write-only RMW workload) every
   committed delta applied exactly once — nothing lost or doubled. *)
let test_steal_conservation () =
  let cfg =
    Tutil.small_ycsb ~table_size:10_000 ~nparts:1 ~theta:0.0
      ~read_ratio:0.0 ()
  in
  let wl = Ycsb.make cfg in
  let initial = Tutil.sum_field0 wl.Workload.db "usertable" in
  let wl_rec, logs = Tutil.record wl in
  let m =
    Engine.run
      { Engine.default_cfg with Engine.planners = 4; executors = 4;
        batch_size = 32; steal = true }
      wl_rec ~batches:4
  in
  Tutil.check_bool "steals fired" true (m.Metrics.stolen_queues > 0);
  let oracle, m_serial, txns =
    serial_state cfg logs ~streams:4 ~batch_size:32 ~batches:4
  in
  Tutil.check_int "commits match serial" m_serial.Metrics.committed
    m.Metrics.committed;
  Tutil.check_bool "state equals serial" true
    (Db.checksum wl.Workload.db = oracle);
  let delta = Tutil.ycsb_committed_delta txns in
  Tutil.check_int "sum conserved" (initial + delta)
    (Tutil.sum_field0 wl.Workload.db "usertable")

(* ------------------------- adaptive planning ------------------------- *)

(* A global-zipf skew so the same hottest keys land in every stream: the
   contention shape hot-key splitting targets.  Low thresholds make the
   mechanisms fire at test scale. *)
let skewed_cfg ?(seed = 42) () =
  Tutil.small_ycsb ~table_size:2_000 ~nparts:4 ~theta:0.9 ~global_zipf:true
    ~seed ()

let tiny_split = Some { Engine.hot_threshold = 8; max_subqueues = 4 }

(* Splitting must be invisible in the committed state: the serial oracle
   holds exactly as for the plain engine, and the counters prove the
   mechanism actually engaged. *)
let test_split_fires () =
  let cfg = skewed_cfg () in
  let wl, logs, m = run_engine ?split:tiny_split cfg in
  Tutil.check_bool "split fired" true (m.Metrics.split_keys > 0);
  Tutil.check_bool "subqueues >= split keys" true
    (m.Metrics.split_subqueues >= m.Metrics.split_keys);
  let oracle, m_serial, _ =
    serial_state cfg logs ~streams:4 ~batch_size:128 ~batches:4
  in
  Tutil.check_int "commits match serial" m_serial.Metrics.committed
    m.Metrics.committed;
  Tutil.check_bool "state equals serial" true
    (Db.checksum wl.Workload.db = oracle)

let test_repart_fires () =
  let cfg = skewed_cfg () in
  let adapt =
    Some { Engine.default_adapt with Engine.repartition = true;
           auto_batch = false }
  in
  let wl, logs, m = run_engine ?split:tiny_split ?adapt cfg in
  Tutil.check_bool "repartitioning fired" true (m.Metrics.repart_moves > 0);
  let oracle, m_serial, _ =
    serial_state cfg logs ~streams:4 ~batch_size:128 ~batches:4
  in
  Tutil.check_int "commits match serial" m_serial.Metrics.committed
    m.Metrics.committed;
  Tutil.check_bool "state equals serial" true
    (Db.checksum wl.Workload.db = oracle)

(* The acceptance property: same seed, adaptive planning on vs off, the
   committed state must be bit-identical across random workload shapes,
   modes and isolation levels, lockstep and pipelined, with and without
   stealing. *)
let prop_adaptive_bit_identical =
  QCheck.Test.make
    ~name:"split+repart == plain committed state on random configs" ~count:10
    QCheck.(
      quad (int_range 0 1000) (int_range 0 99) (int_range 0 30) bool)
    (fun (seed, theta_pct, abort_pct, pipeline) ->
      let cfg =
        Tutil.small_ycsb ~table_size:512 ~nparts:4
          ~theta:(float_of_int theta_pct /. 100.0)
          ~abort_ratio:(float_of_int abort_pct /. 100.0)
          ~chain_deps:(seed mod 2 = 0) ~global_zipf:true ~seed ()
      in
      let mode =
        if seed mod 3 = 0 then Engine.Conservative else Engine.Speculative
      in
      let isolation =
        if seed mod 2 = 0 then Engine.Read_committed
        else Engine.Serializable
      in
      let steal = seed mod 5 = 0 in
      let fp adaptive =
        let split = if adaptive then tiny_split else None in
        let adapt =
          if adaptive then
            Some { Engine.default_adapt with Engine.repartition = true;
                   auto_batch = false }
          else None
        in
        let wl, _, m =
          run_engine ~mode ~isolation ~batch_size:64 ~batches:3 ~pipeline
            ~steal ?split ?adapt cfg
        in
        ( Db.checksum wl.Workload.db,
          m.Metrics.committed,
          m.Metrics.logic_aborted )
      in
      fp false = fp true)

(* Batch auto-tuning deliberately alters the schedule (it is NOT
   bit-identical to the fixed-size run), but it must stay deterministic
   run-to-run and conserve the transaction count: shrinking a batch
   defers the remainder, it never drops or duplicates work. *)
let test_autobatch_deterministic_and_conserving () =
  let cfg = skewed_cfg () in
  let adapt =
    Some { Engine.default_adapt with Engine.repartition = false;
           auto_batch = true; min_batch = 32 }
  in
  let run () =
    run_engine ~pipeline:true ~batch_size:128 ~batches:4 ?adapt cfg
  in
  let wl1, _, m1 = run () in
  let wl2, _, m2 = run () in
  Tutil.check_bool "run-to-run state identical" true
    (Db.checksum wl1.Workload.db = Db.checksum wl2.Workload.db);
  Tutil.check_int "run-to-run commits identical" m1.Metrics.committed
    m2.Metrics.committed;
  Tutil.check_int "run-to-run elapsed identical" m1.Metrics.elapsed
    m2.Metrics.elapsed;
  Tutil.check_int "committed + aborted = total" (128 * 4)
    (m1.Metrics.committed + m1.Metrics.logic_aborted)

let prop_pipeline_bit_identical =
  QCheck.Test.make
    ~name:"pipelined == lockstep committed state on random configs" ~count:10
    QCheck.(
      quad (int_range 0 1000) (int_range 0 99) (int_range 0 30) bool)
    (fun (seed, theta_pct, abort_pct, steal) ->
      let cfg =
        Tutil.small_ycsb ~table_size:512 ~nparts:4
          ~theta:(float_of_int theta_pct /. 100.0)
          ~abort_ratio:(float_of_int abort_pct /. 100.0)
          ~chain_deps:(seed mod 2 = 0) ~seed ()
      in
      let mode =
        if seed mod 3 = 0 then Engine.Conservative else Engine.Speculative
      in
      let isolation =
        if seed mod 2 = 0 then Engine.Read_committed
        else Engine.Serializable
      in
      let fp pipeline =
        let wl, _, m =
          run_engine ~mode ~isolation ~batch_size:64 ~batches:3 ~pipeline
            ~steal cfg
        in
        ( Db.checksum wl.Workload.db,
          m.Metrics.committed,
          m.Metrics.logic_aborted )
      in
      fp false = fp true)

(* ------------------------- property tests ------------------------- *)

let prop_oracle_random_configs =
  QCheck.Test.make ~name:"engine == serial oracle on random configs" ~count:12
    QCheck.(
      quad (int_range 0 1000) (int_range 0 90) (int_range 0 30) (int_range 1 4))
    (fun (seed, theta_pct, abort_pct, planners) ->
      let cfg =
        Tutil.small_ycsb ~table_size:512 ~nparts:4
          ~theta:(float_of_int theta_pct /. 100.0)
          ~abort_ratio:(float_of_int abort_pct /. 100.0)
          ~chain_deps:(seed mod 2 = 0) ~seed ()
      in
      let wl = Ycsb.make cfg in
      let wl_rec, logs = Tutil.record wl in
      let _ =
        Engine.run
          { Engine.default_cfg with
            Engine.planners; executors = 4; batch_size = 64;
            mode = (if seed mod 3 = 0 then Engine.Conservative
                    else Engine.Speculative);
            isolation = Engine.Serializable }
          wl_rec ~batches:3
      in
      let wl_oracle = Ycsb.make cfg in
      let txns =
        Tutil.batch_order logs ~streams:planners ~batch_size:64 ~batches:3
      in
      let _ = Quill_protocols.Serial.run_txns wl_oracle txns in
      Db.checksum wl.Workload.db = Db.checksum wl_oracle.Workload.db)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "quecc"
    [
      ( "oracle",
        [
          Alcotest.test_case "uniform" `Quick test_oracle_uniform;
          Alcotest.test_case "skewed" `Quick test_oracle_skewed;
          Alcotest.test_case "extreme skew + mp" `Quick
            test_oracle_extreme_skew;
          Alcotest.test_case "aborts" `Quick test_oracle_aborts;
          Alcotest.test_case "chain deps" `Quick test_oracle_chain_deps;
          Alcotest.test_case "aborts + deps" `Quick test_oracle_aborts_and_deps;
          Alcotest.test_case "conservative" `Quick test_oracle_conservative;
          Alcotest.test_case "asymmetric threads" `Quick
            test_oracle_asymmetric_threads;
          Alcotest.test_case "single thread" `Quick test_oracle_single_thread;
          Alcotest.test_case "uneven batch slices" `Quick
            test_oracle_uneven_batch;
          qc prop_oracle_random_configs;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "state independent of executor count" `Quick
            test_state_independent_of_executors;
          Alcotest.test_case "run-to-run" `Quick test_run_to_run_determinism;
          Alcotest.test_case "speculative == conservative" `Quick
            test_speculative_equals_conservative;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "pipelined oracle" `Quick test_pipeline_oracle;
          Alcotest.test_case "pipelined faster" `Quick test_pipeline_faster;
          Alcotest.test_case "steal conservation" `Quick
            test_steal_conservation;
          qc prop_pipeline_bit_identical;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "split fires + oracle" `Quick test_split_fires;
          Alcotest.test_case "repartition fires + oracle" `Quick
            test_repart_fires;
          Alcotest.test_case "auto-batch deterministic + conserving" `Quick
            test_autobatch_deterministic_and_conserving;
          qc prop_adaptive_bit_identical;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "conservative abort purity" `Quick
            test_conservative_abort_purity;
          Alcotest.test_case "no cc aborts" `Quick test_no_cc_aborts;
          Alcotest.test_case "all txns accounted" `Quick
            test_all_txns_accounted;
          Alcotest.test_case "additive invariant" `Quick
            test_additive_invariant;
          Alcotest.test_case "read-committed" `Quick test_read_committed_runs;
          Alcotest.test_case "latency sane" `Quick test_latency_batch_shaped;
          Alcotest.test_case "scales with cores" `Slow
            test_more_cores_not_slower;
        ] );
    ]
