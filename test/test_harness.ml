(* Harness plumbing: every engine is runnable through the one-stop
   experiment API, names round-trip, and reports render. *)

open Quill_txn
module E = Quill_harness.Experiment
module Qe = Quill_quecc.Engine

let tiny_ycsb = E.Ycsb (Tutil.small_ycsb ~table_size:1_000 ~nparts:4 ())

let tiny_tpcc =
  E.Tpcc (Tutil.small_tpcc ~warehouses:1 ~nparts:4 ~payment_only:true ())

let test_engine_names_roundtrip () =
  List.iter
    (fun e ->
      match E.engine_of_string (E.engine_name e) with
      | Some e' ->
          Alcotest.(check string)
            "roundtrip" (E.engine_name e) (E.engine_name e')
      | None -> Alcotest.failf "no parse for %s" (E.engine_name e))
    (E.Serial :: E.Dist_quecc 2 :: E.Dist_calvin 8 :: E.all_centralized)

(* The registry is the one source of truth for names: everything it
   advertises (bar the <n> patterns, which stand for a family) must
   parse, resolve to a runnable module, and round-trip through its
   canonical name; capability flags must match the family. *)
let test_registry_names_resolve () =
  let module R = Quill_harness.Engine_registry in
  let advertised = R.names () in
  Tutil.check_bool "registry advertises engines" true
    (List.length advertised >= 10);
  List.iter
    (fun n ->
      if not (String.contains n '<') then
        match R.engine_of_string n with
        | None -> Alcotest.failf "advertised name %s does not parse" n
        | Some e -> (
            let (module M : Quill_harness.Engine_intf.S) = R.resolve e in
            Tutil.check_bool (n ^ " resolves to a named module") true
              (String.length M.name > 0);
            let canonical = R.engine_name e in
            match R.engine_of_string canonical with
            | Some e' ->
                Tutil.check_bool (n ^ " canonical round-trips") true (e = e')
            | None ->
                Alcotest.failf "canonical %s of %s does not parse" canonical n))
    advertised;
  let module Cap = Quill_harness.Capability in
  List.iter
    (fun e ->
      let (module M : Quill_harness.Engine_intf.S) = R.resolve e in
      let has c = Cap.mem c M.caps in
      (* fault support comes from having a network to fault (the dist
         engines) or a WAL to recover from (serial, the quecc family) *)
      Tutil.check_bool
        (R.engine_name e ^ " fault support iff distributed or WAL-capable")
        (has Cap.Dist || has Cap.Wal)
        (has Cap.Faults);
      Tutil.check_bool
        (R.engine_name e ^ " WAL support stays centralized")
        true
        ((not (has Cap.Wal)) || not (has Cap.Dist));
      (* the CDC hub stages at the WAL seam, so the capabilities travel
         together *)
      Tutil.check_bool
        (R.engine_name e ^ " CDC support implies WAL support")
        true
        ((not (has Cap.Cdc)) || has Cap.Wal))
    (R.Dist_quecc 4 :: R.Dist_calvin 2 :: R.all_centralized)

(* The capability chokepoint, exhaustively: every engine x every
   capability either honors the feature with an observable effect in
   the metrics, or rejects the request with [Invalid_argument] before
   the engine runs.  No third outcome (the old "silently ignored")
   exists. *)
let test_capability_sweep () =
  let module R = Quill_harness.Engine_registry in
  let module Cap = Quill_harness.Capability in
  let module F = Quill_faults.Faults in
  let module C = Quill_clients.Clients in
  let mk = E.make ~threads:4 ~txns:512 ~batch_size:128 in
  List.iter
    (fun engine ->
      let (module M : Quill_harness.Engine_intf.S) = R.resolve engine in
      let name = R.engine_name engine in
      let exp_for cap =
        match cap with
        | Cap.Faults ->
            (* a crash mid-run; centralized engines recover via the WAL,
               so the cross-feature rule adds --wal when available *)
            let wal = Cap.mem Cap.Wal M.caps in
            let probe = E.run (mk ~name engine tiny_ycsb) in
            let plan =
              {
                F.none with
                F.crashes =
                  [
                    {
                      F.node = M.nodes - 1;
                      at = probe.Metrics.elapsed / 2;
                      down = 1;
                    };
                  ];
              }
            in
            mk ~name ~faults:plan ~wal engine tiny_ycsb
        | Cap.Clients ->
            mk ~name
              ~clients:{ C.default with C.arrival = C.Poisson 1e6 }
              engine tiny_ycsb
        | Cap.Dist ->
            mk ~name ~faults:{ F.none with F.drop = 0.2 } engine tiny_ycsb
        | Cap.Wal -> mk ~name ~wal:true engine tiny_ycsb
        | Cap.Cdc -> mk ~name ~cdc:true engine tiny_ycsb
        | Cap.Replication ->
            (* replication wants a single-node leader (a cross-feature
               constraint below the capability check), so exercise the
               capability on the family's 1-node shape *)
            let engine =
              match engine with
              | R.Dist_quecc _ -> R.Dist_quecc 1
              | e -> e
            in
            mk ~name ~replicas:2 engine tiny_ycsb
      in
      let effect_of cap (m : Metrics.t) =
        match cap with
        | Cap.Faults -> m.Metrics.crashes > 0
        | Cap.Clients -> m.Metrics.offered > 0
        | Cap.Dist -> m.Metrics.msg_retries > 0
        | Cap.Wal -> m.Metrics.wal_fsyncs > 0
        | Cap.Cdc -> m.Metrics.cdc_events > 0
        | Cap.Replication -> Metrics.replicated m
      in
      List.iter
        (fun cap ->
          let supported = Cap.mem cap M.caps in
          let what = name ^ " x " ^ Cap.to_string cap in
          match E.run (exp_for cap) with
          | m ->
              Tutil.check_bool (what ^ ": accepted iff supported") true
                supported;
              Tutil.check_bool (what ^ ": honored with effect") true
                (effect_of cap m)
          | exception Invalid_argument msg ->
              Tutil.check_bool
                (what ^ ": rejected iff unsupported (" ^ msg ^ ")")
                false supported;
              (* the rejection must name the engine so the exit-2
                 message is actionable *)
              Tutil.check_bool (what ^ ": rejection names engine") true
                (Tutil.contains msg M.name))
        Cap.all)
    (R.Dist_quecc 2 :: R.Dist_calvin 2 :: R.all_centralized)

let test_dist_suffix_parse () =
  let check_parse s expect =
    match E.engine_of_string s with
    | Some e -> Alcotest.(check string) s expect (E.engine_name e)
    | None -> Alcotest.failf "no parse for %s" s
  in
  check_parse "dist-quecc-4n" "dist-quecc-4n";
  check_parse "dist-quecc-16n" "dist-quecc-16n";
  check_parse "dist-calvin-8n" "dist-calvin-8n";
  List.iter
    (fun s ->
      Tutil.check_bool (s ^ " rejected") true (E.engine_of_string s = None))
    [
      "dist-quecc-0n";
      "dist-quecc--1n";
      "dist-quecc-xn";
      "dist-quecc-4";
      "dist-quecc-n";
      "dist-calvin-";
    ]

let test_all_engines_run_ycsb () =
  List.iter
    (fun engine ->
      let exp =
        E.make ~threads:4 ~txns:512 ~batch_size:128 engine tiny_ycsb
      in
      let m = E.run exp in
      Tutil.check_int
        (E.engine_name engine ^ " completes all txns")
        512
        (m.Metrics.committed + m.Metrics.logic_aborted))
    (E.Serial :: E.Dist_quecc 2 :: E.Dist_calvin 2 :: E.all_centralized)

let test_all_engines_run_tpcc () =
  List.iter
    (fun engine ->
      let exp = E.make ~threads:4 ~txns:256 ~batch_size:64 engine tiny_tpcc in
      let m = E.run exp in
      Tutil.check_bool
        (E.engine_name engine ^ " commits most txns")
        true
        (m.Metrics.committed > 200))
    [
      E.Serial;
      E.Quecc (Qe.Speculative, Qe.Serializable);
      E.Quecc (Qe.Conservative, Qe.Serializable);
      E.Twopl_nowait;
      E.Silo;
      E.Tictoc;
      E.Mvto;
      E.Hstore;
      E.Calvin;
    ]

let test_experiment_determinism () =
  let exp =
    E.make ~threads:4 ~txns:512 ~batch_size:128
      (E.Quecc (Qe.Speculative, Qe.Serializable))
      tiny_ycsb
  in
  let m1 = E.run exp and m2 = E.run exp in
  Tutil.check_int "same commits" m1.Metrics.committed m2.Metrics.committed;
  Tutil.check_int "same virtual time" m1.Metrics.elapsed m2.Metrics.elapsed

(* 500 requested txns round to 4 whole batches of 128 = 512, and every
   engine -- batch-oriented or per-txn -- must process that same count. *)
let test_effective_txns_equal () =
  let engines =
    [ E.Quecc (Qe.Speculative, Qe.Serializable); E.Serial; E.Silo ]
  in
  List.iter
    (fun engine ->
      let exp = E.make ~threads:4 ~txns:500 ~batch_size:128 engine tiny_ycsb in
      Tutil.check_int "batches" 4 (E.batches exp);
      Tutil.check_int "effective" 512 (E.effective_txns exp);
      let m = E.run exp in
      Tutil.check_int
        (E.engine_name engine ^ " records effective count")
        512 m.Metrics.effective_txns;
      Tutil.check_int
        (E.engine_name engine ^ " processes effective count")
        512
        (m.Metrics.committed + m.Metrics.logic_aborted))
    engines;
  (* 64 requested with batch 128 rounds up to one whole batch. *)
  let exp =
    E.make ~threads:4 ~txns:64 ~batch_size:128
      (E.Quecc (Qe.Speculative, Qe.Serializable))
      tiny_ycsb
  in
  Tutil.check_int "small run rounds up" 128 (E.effective_txns exp)

let test_trace_export_and_phases () =
  let exp =
    E.make ~threads:4 ~txns:512 ~batch_size:128
      (E.Quecc (Qe.Speculative, Qe.Serializable))
      tiny_ycsb
  in
  let tracer = Quill_trace.Trace.create () in
  let m = E.run ~tracer exp in
  Tutil.check_bool "trace captured events" true
    (Quill_trace.Trace.num_events tracer > 0);
  (match Tutil.json_error (Quill_trace.Trace.to_chrome_json tracer) with
  | None -> ()
  | Some err -> Alcotest.failf "trace JSON malformed: %s" err);
  (* Phase attribution covers (almost) all of QueCC's busy time. *)
  Tutil.check_bool "phases cover >= 95% of busy" true
    (Metrics.phase_busy m * 100 >= m.Metrics.busy * 95);
  Tutil.check_int "phase + other = busy" m.Metrics.busy
    (Metrics.phase_busy m + m.Metrics.other_busy);
  Tutil.check_int "idle causes partition idle" m.Metrics.idle
    (m.Metrics.idle_barrier + m.Metrics.idle_ivar + m.Metrics.idle_chan
   + m.Metrics.idle_sleep);
  (* Tracing must not perturb the simulation. *)
  let m' = E.run exp in
  Tutil.check_int "same commits with tracing off" m'.Metrics.committed
    m.Metrics.committed;
  Tutil.check_int "same virtual time with tracing off" m'.Metrics.elapsed
    m.Metrics.elapsed

let test_report_rendering () =
  let m = Metrics.create () in
  m.Metrics.committed <- 1234;
  m.Metrics.elapsed <- 1_000_000_000;
  Quill_common.Stats.Hist.add m.Metrics.lat 5_000;
  let cells =
    Quill_harness.Report.to_cells { Quill_harness.Report.label = "x"; metrics = m }
  in
  Tutil.check_int "cell count" (List.length Quill_harness.Report.header)
    (List.length cells);
  Alcotest.(check string) "label" "x" (List.hd cells);
  Alcotest.(check string) "tput si" "1.23k" (List.nth cells 1);
  (* speedup vs explicit baseline *)
  let cells2 =
    Quill_harness.Report.to_cells ~baseline:617.0
      { Quill_harness.Report.label = "x"; metrics = m }
  in
  Alcotest.(check string) "speedup" "2.00x" (List.nth cells2 8)

let () =
  Alcotest.run "harness"
    [
      ( "experiment",
        [
          Alcotest.test_case "engine names roundtrip" `Quick
            test_engine_names_roundtrip;
          Alcotest.test_case "registry names resolve" `Quick
            test_registry_names_resolve;
          Alcotest.test_case "capability sweep" `Quick test_capability_sweep;
          Alcotest.test_case "dist suffix parse" `Quick test_dist_suffix_parse;
          Alcotest.test_case "all engines run ycsb" `Quick
            test_all_engines_run_ycsb;
          Alcotest.test_case "all engines run tpcc" `Quick
            test_all_engines_run_tpcc;
          Alcotest.test_case "determinism" `Quick test_experiment_determinism;
          Alcotest.test_case "effective txns equal" `Quick
            test_effective_txns_equal;
          Alcotest.test_case "trace export and phases" `Quick
            test_trace_export_and_phases;
        ] );
      ( "report",
        [ Alcotest.test_case "rendering" `Quick test_report_rendering ] );
    ]
