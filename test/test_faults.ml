(* Fault plans and recovery: spec parsing, timeout-aware channels, the
   faulted network (validation, duplicate suppression, retransmission),
   determinism under faults, and crash-recovery state oracles. *)

open Quill_storage
open Quill_txn
open Quill_workloads
module Faults = Quill_faults.Faults
module Sim = Quill_sim.Sim
module Net = Quill_dist.Net
module Dq = Quill_dist.Dist_quecc
module Dc = Quill_dist.Dist_calvin

(* ------------------------- spec parsing ------------------------- *)

let parse_ok s =
  match Faults.parse s with
  | Ok sp -> sp
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_full () =
  let sp =
    parse_ok
      "crash@t=5ms:node=1:down=250us,part@t=1ms:a=0:b=2:until=3ms,drop=0.02,\
       dup=0.01,delay=0.1:by=20us,seed=9,retries=4,rto=10us"
  in
  Tutil.check_int "seed" 9 sp.Faults.seed;
  Tutil.check_int "retries" 4 sp.Faults.max_retries;
  Tutil.check_int "rto" 10_000 sp.Faults.rto;
  Tutil.check_bool "drop" true (sp.Faults.drop = 0.02);
  Tutil.check_bool "dup" true (sp.Faults.dup = 0.01);
  Tutil.check_bool "delay_p" true (sp.Faults.delay_p = 0.1);
  Tutil.check_int "delay_by" 20_000 sp.Faults.delay_by;
  (match sp.Faults.crashes with
  | [ c ] ->
      Tutil.check_int "crash node" 1 c.Faults.node;
      Tutil.check_int "crash at" 5_000_000 c.Faults.at;
      Tutil.check_int "crash down" 250_000 c.Faults.down
  | l -> Alcotest.failf "expected 1 crash, got %d" (List.length l));
  match sp.Faults.partitions with
  | [ p ] ->
      Tutil.check_int "part a" 0 p.Faults.a;
      Tutil.check_int "part b" 2 p.Faults.b;
      Tutil.check_int "part from" 1_000_000 p.Faults.from_t;
      Tutil.check_int "part until" 3_000_000 p.Faults.until_t
  | l -> Alcotest.failf "expected 1 partition, got %d" (List.length l)

let test_parse_round_trip () =
  let specs =
    [
      "crash@t=200us:node=1:down=200us,drop=0.01,dup=0.01,seed=7";
      "drop=0.5,seed=3";
      "crash@t=1ms,crash@t=2ms:node=2";
      "part@t=1ms:a=0:b=1:until=2ms,delay=0.2:by=1ms";
    ]
  in
  List.iter
    (fun s ->
      let sp = parse_ok s in
      let sp2 = parse_ok (Faults.to_string sp) in
      Tutil.check_bool
        (Printf.sprintf "round-trip %S via %S" s (Faults.to_string sp))
        true (sp = sp2))
    specs

let test_parse_errors () =
  List.iter
    (fun s ->
      match Faults.parse s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error e ->
          Tutil.check_bool "one-line diagnostic" true
            (String.length e > 0 && not (String.contains e '\n')))
    [
      "crash@t=oops";
      "drop=high";
      "drop=1.5";
      "part@t=1ms:a=0:b=1";
      (* missing until *)
      "bogus=3";
      "crash";
      "dup=0.1:by=3ms";
      (* by only valid on delay *)
    ]

let test_parse_crash_validation () =
  (* Exact one-liner diagnostics for the crash@ sanity checks: a crash
     at t<=0 can never fire, down<=0 is a no-op, and a second crash@ for
     the same node would silently shadow the first. *)
  List.iter
    (fun (s, want) ->
      match Faults.parse s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error e -> Alcotest.(check string) s want e)
    [
      ("crash@t=0", "crash@ wants a positive virtual time, got t=0ns");
      ("crash@t=-1ms", "bad time \"-1ms\" (want NUM[ns|us|ms|s])");
      ( "crash@t=5ms:down=0",
        "crash@ wants a positive down time, got down=0ns" );
      ( "crash@t=1ms:node=2,crash@t=2ms:node=2:down=1us",
        "duplicate crash@ spec for node 2 (one crash per node)" );
    ];
  (* ... while crashes on distinct nodes parse and round-trip. *)
  let sp =
    parse_ok "crash@t=1ms:node=0:down=10us,crash@t=2ms:node=1:down=10us"
  in
  Tutil.check_int "two crashes kept" 2 (List.length sp.Faults.crashes);
  let sp2 = parse_ok (Faults.to_string sp) in
  Tutil.check_bool "distinct-node crashes round-trip" true (sp = sp2)

let test_parse_disk () =
  let sp = parse_ok "torn@rec=12,fsync-fail@t=2ms,corrupt@off=4096,seed=3" in
  Tutil.check_bool "torn" true (sp.Faults.torn_rec = Some 12);
  Tutil.check_bool "fsync-fail" true (sp.Faults.fsync_fail_at = Some 2_000_000);
  Tutil.check_bool "corrupt" true (sp.Faults.corrupt_off = Some 4096);
  Tutil.check_bool "disk faults are active" true (Faults.disk_active sp);
  Tutil.check_bool "but not network faults" false (Faults.net_active sp);
  (* round-trip through the canonical string *)
  let sp2 = parse_ok (Faults.to_string sp) in
  Tutil.check_bool "disk clauses round-trip" true (sp = sp2)

let test_parse_disk_errors () =
  (* malformed and duplicate disk clauses are rejected with one-line
     diagnostics (the CLI surfaces these verbatim at exit 2) *)
  List.iter
    (fun (s, want) ->
      match Faults.parse s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error e -> Alcotest.(check string) s want e)
    [
      ("torn@t=5", "torn@ wants rec=N, got \"torn@t=5\"");
      ( "torn@rec=1,torn@rec=2",
        "duplicate torn@ clause (at most one per plan)" );
      ( "fsync-fail@t=0",
        "fsync-fail@ wants a positive virtual time, got t=0ns" );
      ( "fsync-fail@t=1ms,fsync-fail@t=2ms",
        "duplicate fsync-fail@ clause (at most one per plan)" );
      ("corrupt@rec=1", "corrupt@ wants off=N, got \"corrupt@rec=1\"");
      ( "corrupt@off=1,corrupt@off=2",
        "duplicate corrupt@ clause (at most one per plan)" );
    ];
  (* negative operands never parse *)
  List.iter
    (fun s ->
      match Faults.parse s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error e ->
          Tutil.check_bool "one-line diagnostic" true
            (String.length e > 0 && not (String.contains e '\n')))
    [ "torn@rec=-1"; "corrupt@off=-3"; "fsync-fail@t=-1ms" ]

let test_active () =
  Tutil.check_bool "none inactive" false (Faults.active Faults.none);
  Tutil.check_bool "seed-only inactive" false
    (Faults.active { Faults.none with Faults.seed = 99 });
  Tutil.check_bool "drop active" true
    (Faults.active { Faults.none with Faults.drop = 0.01 });
  Tutil.check_bool "crash active" true
    (Faults.active
       { Faults.none with
         Faults.crashes = [ { Faults.node = 0; at = 1; down = 1 } ] })

let test_check_nodes () =
  let sp = parse_ok "crash@t=1ms:node=5" in
  Alcotest.check_raises "crash node out of range"
    (Invalid_argument "boom: fault plan crashes node 5 of a 4-node cluster")
    (fun () -> Faults.check_nodes sp ~nodes:4 ~name:"boom")

(* ---------------------- Sim.Chan.recv_timeout ---------------------- *)

let test_recv_timeout_delivery () =
  let sim = Sim.create () in
  let ch = Sim.Chan.create () in
  let got = ref None in
  Sim.spawn sim (fun () ->
      got := Sim.Chan.recv_timeout sim ch ~timeout:10_000);
  Sim.spawn sim (fun () ->
      Sim.sleep sim 2_000;
      Sim.Chan.send sim ch 42);
  ignore (Sim.run sim);
  Tutil.check_bool "delivered before deadline" true (!got = Some 42)

let test_recv_timeout_expires () =
  let sim = Sim.create () in
  let ch : int Sim.Chan.ch = Sim.Chan.create () in
  let got = ref (Some 0) in
  let at = ref 0 in
  Sim.spawn sim (fun () ->
      got := Sim.Chan.recv_timeout sim ch ~timeout:5_000;
      at := Sim.now sim);
  ignore (Sim.run sim);
  Tutil.check_bool "timed out" true (!got = None);
  Tutil.check_bool "clock advanced to deadline" true (!at >= 5_000)

let test_recv_timeout_late_message_kept () =
  (* A message that arrives after the deadline times out the first
     receiver but is still delivered to a later plain recv. *)
  let sim = Sim.create () in
  let ch = Sim.Chan.create () in
  let first = ref (Some 0) and second = ref 0 in
  Sim.spawn sim (fun () ->
      first := Sim.Chan.recv_timeout sim ch ~timeout:1_000;
      second := Sim.Chan.recv sim ch);
  Sim.spawn sim (fun () -> Sim.Chan.send ~delay:8_000 sim ch 7);
  ignore (Sim.run sim);
  Tutil.check_bool "first timed out" true (!first = None);
  Tutil.check_int "late message preserved" 7 !second

let test_recv_timeout_negative_rejected () =
  let sim = Sim.create () in
  let ch : int Sim.Chan.ch = Sim.Chan.create () in
  Sim.spawn sim (fun () ->
      Alcotest.check_raises "negative timeout"
        (Invalid_argument "Sim.Chan.recv_timeout: negative timeout")
        (fun () -> ignore (Sim.Chan.recv_timeout sim ch ~timeout:(-1))));
  ignore (Sim.run sim)

(* ----------------------------- Net ----------------------------- *)

let with_net ?faults ~nodes f =
  let sim = Sim.create () in
  let net = Net.create ?faults sim Quill_sim.Costs.zero ~nodes in
  f sim net;
  ignore (Sim.run sim)

let test_net_validates_indices () =
  with_net ~nodes:3 (fun sim net ->
      Sim.spawn sim (fun () ->
          Alcotest.check_raises "bad dst"
            (Invalid_argument
               "Net.send: destination node 3 out of range for a 3-node \
                cluster")
            (fun () -> Net.send net ~src:0 ~dst:3 ~bytes:8 ());
          Alcotest.check_raises "bad src"
            (Invalid_argument
               "Net.send: source node -1 out of range for a 3-node cluster")
            (fun () -> Net.send net ~src:(-1) ~dst:0 ~bytes:8 ());
          Alcotest.check_raises "bad recv node"
            (Invalid_argument
               "Net.recv: receiving node 7 out of range for a 3-node cluster")
            (fun () -> ignore (Net.recv net ~node:7))));
  Alcotest.check_raises "bad node count"
    (Invalid_argument "Net.create: node count must be positive") (fun () ->
      let sim = Sim.create () in
      ignore (Net.create sim Quill_sim.Costs.zero ~nodes:0))

let test_net_dup_suppression () =
  (* dup=1.0: every remote message is sent twice and delivered once. *)
  let faults = Faults.make { Faults.none with Faults.dup = 1.0; seed = 5 } in
  let n = 16 in
  let received = ref 0 in
  with_net ~faults ~nodes:2 (fun sim net ->
      Sim.spawn sim (fun () ->
          for i = 1 to n do
            Net.send net ~src:0 ~dst:1 ~bytes:8 i
          done);
      Sim.spawn sim (fun () ->
          for _ = 1 to n do
            ignore (Net.recv net ~node:1)
          done;
          (* nothing fresh left: only suppressed duplicates remain *)
          (match Net.recv_timeout net ~node:1 ~timeout:1_000_000 with
          | None -> ()
          | Some _ -> Alcotest.fail "duplicate escaped suppression");
          received := n));
  Tutil.check_int "all fresh messages received" n !received

let test_net_drop_is_delay_not_loss () =
  (* drop=0.9: heavy loss, yet every message is still delivered
     (retransmission model), just later and with retries counted. *)
  let faults =
    Faults.make
      { Faults.none with Faults.drop = 0.9; seed = 2; rto = 10_000 }
  in
  let n = 32 in
  let sum = ref 0 in
  let retries = ref 0 in
  let sim = Sim.create () in
  let net = Net.create ~faults sim Quill_sim.Costs.zero ~nodes:2 in
  Sim.spawn sim (fun () ->
      for i = 1 to n do
        Net.send net ~src:0 ~dst:1 ~bytes:8 i
      done);
  Sim.spawn sim (fun () ->
      for _ = 1 to n do
        sum := !sum + Net.recv net ~node:1
      done;
      retries := Net.messages_retried net);
  ignore (Sim.run sim);
  Tutil.check_int "every message delivered exactly once" (n * (n + 1) / 2)
    !sum;
  Tutil.check_bool "losses surfaced as retries" true (!retries > 0)

(* ------------------- determinism under faults ------------------- *)

let dq_cfg ?(nodes = 2) ?(batch_size = 128) ?(pipeline = false)
    ?(replicas = 0) ?(spec_lag = 1) () =
  { Dq.nodes; planners = 2; executors = 2; batch_size; pipeline;
    costs = Quill_sim.Costs.default; replicas; spec_lag }

let dc_cfg ?(nodes = 2) ?(batch_size = 128) ?(pipeline = false) () =
  { Dc.nodes; workers = 2; batch_size; costs = Quill_sim.Costs.default;
    pipeline }

let ycsb_for ?(seed = 11) () =
  Tutil.small_ycsb ~table_size:4_000 ~nparts:4 ~theta:0.6 ~mp_ratio:0.3 ~seed
    ()

let fingerprint wl (m : Metrics.t) =
  ( Db.checksum wl.Workload.db,
    m.Metrics.elapsed,
    m.Metrics.committed,
    m.Metrics.msgs,
    m.Metrics.crashes,
    m.Metrics.redone,
    m.Metrics.msg_retries,
    m.Metrics.msg_dup_drops )

let test_zero_rate_plan_is_fault_free () =
  (* drop=0.0, no crashes: bit-identical to running with no plan. *)
  let run faults =
    let wl = Ycsb.make (ycsb_for ()) in
    let m = Dq.run ~faults (dq_cfg ()) wl ~batches:3 in
    fingerprint wl m
  in
  let zero = { Faults.none with Faults.seed = 123; max_retries = 3 } in
  Tutil.check_bool "zero-rate plan == no plan" true
    (run Faults.none = run zero)

let prop_same_seed_same_run =
  QCheck.Test.make ~name:"same fault seed => identical metrics" ~count:5
    QCheck.(int_range 0 1000)
    (fun fseed ->
      let plan =
        {
          Faults.none with
          Faults.seed = fseed;
          drop = 0.05;
          dup = 0.05;
          crashes = [ { Faults.node = 1; at = 100_000; down = 30_000 } ];
        }
      in
      let run () =
        let wl = Ycsb.make (ycsb_for ~seed:(fseed + 1) ()) in
        let m = Dq.run ~faults:plan (dq_cfg ()) wl ~batches:2 in
        fingerprint wl m
      in
      run () = run ())

(* ------------------------ crash recovery ------------------------ *)

(* Probe the fault-free run's virtual duration, then crash node 1
   mid-run and demand the exact fault-free Serial-oracle state. *)
let probe_elapsed run =
  let m = run Faults.none in
  m.Metrics.elapsed

let test_dq_crash_recovers_to_oracle () =
  let cfg = ycsb_for () in
  let run faults =
    let wl = Ycsb.make cfg in
    Dq.run ~faults (dq_cfg ()) wl ~batches:3
  in
  let elapsed = probe_elapsed run in
  let plan =
    {
      Faults.none with
      Faults.seed = 3;
      crashes = [ { Faults.node = 1; at = elapsed / 3; down = 20_000 } ];
    }
  in
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m = Dq.run ~faults:plan (dq_cfg ()) wl_rec ~batches:3 in
  Tutil.check_int "crash fired" 1 m.Metrics.crashes;
  Tutil.check_bool "recovery visible in phase accounting" true
    (m.Metrics.recover_busy > 0);
  let wl2 = Ycsb.make cfg in
  let txns = Tutil.epoch_order logs ~streams:4 ~batch_size:128 ~batches:3 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits match oracle" m2.Metrics.committed
    m.Metrics.committed;
  Tutil.check_bool "state matches fault-free oracle" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let test_dc_crash_recovers_to_oracle () =
  let cfg = ycsb_for () in
  let run faults =
    let wl = Ycsb.make cfg in
    Dc.run ~faults (dc_cfg ()) wl ~batches:3
  in
  let elapsed = probe_elapsed run in
  let plan =
    {
      Faults.none with
      Faults.seed = 4;
      crashes = [ { Faults.node = 1; at = elapsed / 2; down = 20_000 } ];
    }
  in
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m = Dc.run ~faults:plan (dc_cfg ()) wl_rec ~batches:3 in
  Tutil.check_int "crash fired" 1 m.Metrics.crashes;
  let wl2 = Ycsb.make cfg in
  let txns = Tutil.epoch_order logs ~streams:2 ~batch_size:128 ~batches:3 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits match oracle" m2.Metrics.committed
    m.Metrics.committed;
  Tutil.check_bool "state matches fault-free oracle" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

(* Crash recovery composed with the pipelined planner (PR 5): a node
   crash mid-run with planning/execution overlap must still converge to
   the exact fault-free Serial-oracle state, on both dist engines. *)
let prop_crash_pipeline_oracle =
  QCheck.Test.make ~name:"crash x pipeline -> oracle state (both engines)"
    ~count:4
    QCheck.(pair (int_range 2 5) bool)
    (fun (denom, calvin) ->
      let cfg = ycsb_for ~seed:(denom + if calvin then 50 else 0) () in
      let run_dist ?faults wl =
        if calvin then Dc.run ?faults (dc_cfg ~pipeline:true ()) wl ~batches:3
        else Dq.run ?faults (dq_cfg ~pipeline:true ()) wl ~batches:3
      in
      let probe = run_dist (Ycsb.make cfg) in
      let plan =
        {
          Faults.none with
          Faults.seed = denom;
          crashes =
            [
              {
                Faults.node = 1;
                at = probe.Metrics.elapsed / denom;
                down = 20_000;
              };
            ];
        }
      in
      let wl = Ycsb.make cfg in
      let wl_rec, logs = Tutil.record wl in
      let m = run_dist ~faults:plan wl_rec in
      let wl2 = Ycsb.make cfg in
      let streams = if calvin then 2 else 4 in
      let txns = Tutil.epoch_order logs ~streams ~batch_size:128 ~batches:3 in
      let m2 = Quill_protocols.Serial.run_txns wl2 txns in
      m.Metrics.crashes = 1
      && m.Metrics.committed = m2.Metrics.committed
      && Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

(* Crash recovery composed with the hot-key split flag (PR 7) through
   the harness: the full --pipeline --split cfg surface must survive a
   mid-run crash with the fault-free committed state, on both dist
   engines. *)
let test_crash_with_split_flag () =
  List.iter
    (fun engine ->
      let run faults =
        let held = ref None in
        let e =
          Quill_harness.Experiment.make ~threads:4 ~txns:384 ~batch_size:128
            ~faults ~pipeline:true ~split:8 engine
            (Quill_harness.Experiment.Ycsb (ycsb_for ()))
        in
        let m =
          Quill_harness.Experiment.run
            ~on_workload:(fun wl -> held := Some wl)
            e
        in
        ((Option.get !held).Workload.db |> Db.checksum, m)
      in
      let chk0, m0 = run Faults.none in
      let plan =
        {
          Faults.none with
          Faults.seed = 9;
          crashes =
            [ { Faults.node = 1; at = m0.Metrics.elapsed / 2; down = 20_000 } ];
        }
      in
      let chk, m = run plan in
      let name = Quill_harness.Experiment.engine_name engine in
      Tutil.check_int (name ^ ": crash fired") 1 m.Metrics.crashes;
      Tutil.check_int
        (name ^ ": commits match fault-free")
        m0.Metrics.committed m.Metrics.committed;
      Tutil.check_bool (name ^ ": state matches fault-free") true (chk0 = chk))
    [
      Quill_harness.Experiment.Dist_quecc 2;
      Quill_harness.Experiment.Dist_calvin 2;
    ]

let test_no_double_commit_under_duplication () =
  (* Aggressive duplication + drops: sequence numbers must suppress the
     copies, so every transaction still commits or aborts exactly once
     and the final state matches the fault-free run. *)
  let cfg = ycsb_for () in
  let run faults =
    let wl = Ycsb.make cfg in
    let m = Dq.run ~faults (dq_cfg ()) wl ~batches:3 in
    (Db.checksum wl.Workload.db, m)
  in
  let chk0, m0 = run Faults.none in
  let plan =
    { Faults.none with Faults.seed = 8; dup = 0.5; drop = 0.1 }
  in
  let chk, m = run plan in
  Tutil.check_bool "duplicates actually injected" true
    (m.Metrics.msg_dup_drops > 0);
  Tutil.check_int "commit count unchanged" m0.Metrics.committed
    m.Metrics.committed;
  Tutil.check_int "every txn decided exactly once" (3 * 128)
    (m.Metrics.committed + m.Metrics.logic_aborted);
  Tutil.check_bool "state unchanged by dup/drop noise" true (chk0 = chk)

(* ------------------- HA replication / failover ------------------- *)

(* nodes = 1 (the HA leader) with 2 executors wants a 2-part database. *)
let ycsb_ha ?(seed = 11) () =
  Tutil.small_ycsb ~table_size:4_000 ~nparts:2 ~theta:0.6 ~mp_ratio:0.3 ~seed
    ()

let ha_cfg ?(pipeline = false) ?(replicas = 2) ?(spec_lag = 1) () =
  dq_cfg ~nodes:1 ~pipeline ~replicas ~spec_lag ()

let test_ha_fault_free_matches_unreplicated () =
  (* Streaming queues to backups and gating commits on their acks slows
     the clock but must not change any outcome: same commits, same
     committed state as the unreplicated run. *)
  let cfg = ycsb_ha () in
  let run replicas =
    let wl = Ycsb.make cfg in
    let m = Dq.run (ha_cfg ~replicas ()) wl ~batches:3 in
    (Db.checksum wl.Workload.db, m)
  in
  let chk0, m0 = run 0 in
  let chk, m = run 2 in
  Tutil.check_bool "same committed state" true (chk0 = chk);
  Tutil.check_int "same commits" m0.Metrics.committed m.Metrics.committed;
  Tutil.check_int "replicas surfaced" 2 m.Metrics.replicas;
  Tutil.check_bool "backups speculatively executed every txn" true
    (m.Metrics.spec_executed = 2 * 3 * 128);
  Tutil.check_int "no failover" 0 m.Metrics.failovers;
  Tutil.check_int "nothing wasted" 0 m.Metrics.spec_wasted;
  Tutil.check_bool "replication bytes on the wire" true
    (m.Metrics.msg_bytes > 0)

let test_ha_failover_matches_fault_free () =
  (* Kill the leader mid-run: the elected backup must finish the run
     with the exact fault-free committed state — zero lost and zero
     double commits — and goodput must recover within an epoch. *)
  let cfg = ycsb_ha () in
  let run faults =
    let wl = Ycsb.make cfg in
    let m = Dq.run ~faults (ha_cfg ()) wl ~batches:3 in
    (Db.checksum wl.Workload.db, m)
  in
  let chk0, m0 = run Faults.none in
  let epoch = m0.Metrics.elapsed / 3 in
  let plan =
    {
      Faults.none with
      Faults.seed = 3;
      crashes = [ { Faults.node = 0; at = m0.Metrics.elapsed / 3; down = 1 } ];
    }
  in
  let chk, m = run plan in
  Tutil.check_int "crash fired" 1 m.Metrics.crashes;
  Tutil.check_int "one failover" 1 m.Metrics.failovers;
  Tutil.check_bool "zero lost, zero double commits" true
    (m.Metrics.committed = m0.Metrics.committed);
  Tutil.check_bool "committed state bit-identical to fault-free" true
    (chk0 = chk);
  Tutil.check_bool "speculation did real work" true
    (m.Metrics.spec_executed > 0);
  Tutil.check_bool
    (Printf.sprintf "failover %dns within one epoch %dns"
       m.Metrics.failover_time epoch)
    true
    (m.Metrics.failover_time > 0 && m.Metrics.failover_time < epoch)

let test_ha_failover_deterministic () =
  let cfg = ycsb_ha () in
  let probe = Dq.run (ha_cfg ()) (Ycsb.make cfg) ~batches:3 in
  let plan =
    {
      Faults.none with
      Faults.seed = 5;
      crashes =
        [ { Faults.node = 0; at = probe.Metrics.elapsed / 2; down = 1 } ];
    }
  in
  let run () =
    let wl = Ycsb.make cfg in
    let m = Dq.run ~faults:plan (ha_cfg ()) wl ~batches:3 in
    ( fingerprint wl m,
      m.Metrics.failovers,
      m.Metrics.failover_time,
      m.Metrics.spec_executed,
      m.Metrics.spec_wasted )
  in
  Tutil.check_bool "same seed => identical failover run" true (run () = run ())

let test_ha_spec_lag_bound () =
  (* The observed replication lag never exceeds the configured bound,
     and a wider bound is actually usable under pipelining. *)
  List.iter
    (fun (pipeline, spec_lag) ->
      let wl = Ycsb.make (ycsb_ha ()) in
      let m = Dq.run (ha_cfg ~pipeline ~spec_lag ()) wl ~batches:4 in
      Tutil.check_bool
        (Printf.sprintf "lag_max %d <= spec_lag %d (pipeline=%b)"
           m.Metrics.rep_lag_max spec_lag pipeline)
        true
        (m.Metrics.rep_lag_max >= 1 && m.Metrics.rep_lag_max <= spec_lag))
    [ (false, 1); (false, 2); (true, 1); (true, 2); (true, 4) ]

let test_ha_pipeline_failover () =
  (* Leader crash mid-run with the lag-1 pipeline on: still the exact
     fault-free state. *)
  let cfg = ycsb_ha ~seed:17 () in
  let run faults =
    let wl = Ycsb.make cfg in
    let m = Dq.run ~faults (ha_cfg ~pipeline:true ~spec_lag:2 ()) wl ~batches:4 in
    (Db.checksum wl.Workload.db, m)
  in
  let chk0, m0 = run Faults.none in
  let plan =
    {
      Faults.none with
      Faults.seed = 7;
      crashes = [ { Faults.node = 0; at = m0.Metrics.elapsed / 2; down = 1 } ];
    }
  in
  let chk, m = run plan in
  Tutil.check_int "one failover" 1 m.Metrics.failovers;
  Tutil.check_bool "commits preserved" true
    (m.Metrics.committed = m0.Metrics.committed);
  Tutil.check_bool "state preserved" true (chk0 = chk)

let test_ha_validation () =
  let wl () = Ycsb.make (ycsb_for ()) in
  Alcotest.check_raises "replication wants a single-node leader"
    (Invalid_argument "Dist_quecc.run: --replicas wants a single-node leader")
    (fun () ->
      ignore (Dq.run (dq_cfg ~nodes:2 ~replicas:1 ()) (wl ()) ~batches:1));
  Alcotest.check_raises "spec_lag must be positive"
    (Invalid_argument "Dist_quecc.run: spec_lag must be >= 1")
    (fun () ->
      ignore
        (Dq.run
           (dq_cfg ~nodes:1 ~replicas:1 ~spec_lag:0 ())
           (Ycsb.make (ycsb_ha ()))
           ~batches:1));
  let e =
    Quill_harness.Experiment.make ~threads:4 ~txns:256 ~batch_size:128
      ~replicas:2 Quill_harness.Experiment.Silo
      (Quill_harness.Experiment.Ycsb (ycsb_for ()))
  in
  Alcotest.check_raises "replicas rejected off dist-quecc"
    (Invalid_argument
       "Experiment.run: --replicas requires the 'replication' capability, \
        but engine silo provides {clients}")
    (fun () -> ignore (Quill_harness.Experiment.run e))

let test_faults_rejected_on_centralized () =
  let e =
    Quill_harness.Experiment.make ~threads:2 ~txns:256 ~batch_size:128
      ~faults:{ Faults.none with Faults.drop = 0.01 }
      Quill_harness.Experiment.Silo
      (Quill_harness.Experiment.Ycsb (ycsb_for ()))
  in
  Alcotest.check_raises "centralized engines reject fault plans"
    (Invalid_argument
       "Experiment.run: a fault plan (--faults) requires the 'faults' \
        capability, but engine silo provides {clients}")
    (fun () -> ignore (Quill_harness.Experiment.run e))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "full grammar" `Quick test_parse_full;
          Alcotest.test_case "round-trip" `Quick test_parse_round_trip;
          Alcotest.test_case "diagnostics" `Quick test_parse_errors;
          Alcotest.test_case "crash validation" `Quick
            test_parse_crash_validation;
          Alcotest.test_case "disk clauses" `Quick test_parse_disk;
          Alcotest.test_case "disk diagnostics" `Quick
            test_parse_disk_errors;
          Alcotest.test_case "active" `Quick test_active;
          Alcotest.test_case "node validation" `Quick test_check_nodes;
        ] );
      ( "recv-timeout",
        [
          Alcotest.test_case "delivery" `Quick test_recv_timeout_delivery;
          Alcotest.test_case "expiry" `Quick test_recv_timeout_expires;
          Alcotest.test_case "late message kept" `Quick
            test_recv_timeout_late_message_kept;
          Alcotest.test_case "negative rejected" `Quick
            test_recv_timeout_negative_rejected;
        ] );
      ( "net",
        [
          Alcotest.test_case "index validation" `Quick
            test_net_validates_indices;
          Alcotest.test_case "duplicate suppression" `Quick
            test_net_dup_suppression;
          Alcotest.test_case "drop is delay, not loss" `Quick
            test_net_drop_is_delay_not_loss;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "zero-rate plan == fault-free" `Quick
            test_zero_rate_plan_is_fault_free;
          qc prop_same_seed_same_run;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "dist-quecc crash -> oracle state" `Quick
            test_dq_crash_recovers_to_oracle;
          Alcotest.test_case "dist-calvin crash -> oracle state" `Quick
            test_dc_crash_recovers_to_oracle;
          qc prop_crash_pipeline_oracle;
          Alcotest.test_case "crash x split flag (both engines)" `Quick
            test_crash_with_split_flag;
          Alcotest.test_case "no double commits under duplication" `Quick
            test_no_double_commit_under_duplication;
          Alcotest.test_case "centralized engines reject plans" `Quick
            test_faults_rejected_on_centralized;
        ] );
      ( "ha",
        [
          Alcotest.test_case "fault-free == unreplicated" `Quick
            test_ha_fault_free_matches_unreplicated;
          Alcotest.test_case "leader crash -> fault-free state" `Quick
            test_ha_failover_matches_fault_free;
          Alcotest.test_case "failover deterministic" `Quick
            test_ha_failover_deterministic;
          Alcotest.test_case "spec-lag bound" `Quick test_ha_spec_lag_bound;
          Alcotest.test_case "pipelined failover" `Quick
            test_ha_pipeline_failover;
          Alcotest.test_case "cfg validation" `Quick test_ha_validation;
        ] );
    ]
