(* Shared helpers for the test suites. *)

open Quill_common
open Quill_txn

(* Wrap a workload so every generated transaction is recorded per stream;
   [batch_order] then reconstructs the exact global order an engine with
   planner-major slicing processed. *)
let record (wl : Workload.t) =
  let logs : (int, Txn.t Vec.t) Hashtbl.t = Hashtbl.create 8 in
  let new_stream i =
    let s = wl.Workload.new_stream i in
    let v =
      match Hashtbl.find_opt logs i with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          Hashtbl.replace logs i v;
          v
    in
    fun () ->
      let t = s () in
      Vec.push v t;
      t
  in
  ({ wl with Workload.new_stream }, logs)

(* Global batch order for a planner-major engine: batch b consists of the
   b-th slice of every stream in stream order. *)
let batch_order logs ~streams ~batch_size ~batches =
  (* Mirror the engines' slice_bounds: the remainder goes to the first
     [batch_size mod streams] planners. *)
  let base = batch_size / streams and rem = batch_size mod streams in
  let count p = base + if p < rem then 1 else 0 in
  let acc = ref [] in
  for b = 0 to batches - 1 do
    for p = 0 to streams - 1 do
      let v = Hashtbl.find logs p in
      for j = 0 to count p - 1 do
        acc := Vec.get v ((b * count p) + j) :: !acc
      done
    done
  done;
  List.rev !acc

(* Epoch order for the distributed engines: per batch, node-major, then
   planner-major within the node. *)
let epoch_order logs ~streams ~batch_size ~batches =
  batch_order logs ~streams ~batch_size ~batches

let small_ycsb ?(table_size = 4_000) ?(nparts = 4) ?(theta = 0.6)
    ?(mp_ratio = 0.2) ?(abort_ratio = 0.0) ?(chain_deps = false)
    ?(read_ratio = 0.5) ?(global_zipf = false) ?(seed = 42) () =
  {
    Quill_workloads.Ycsb.default with
    Quill_workloads.Ycsb.table_size;
    nparts;
    theta;
    mp_ratio;
    abort_ratio;
    abort_threshold = 100;
    chain_deps;
    read_ratio;
    global_zipf;
    seed;
  }

let small_tpcc ?(warehouses = 1) ?(nparts = 4) ?(seed = 9)
    ?(payment_only = false) () =
  let cfg =
    {
      Quill_workloads.Tpcc.default with
      Quill_workloads.Tpcc_defs.warehouses;
      nparts;
      items = 2_000;
      customers_per_district = 300;
      seed;
    }
  in
  if payment_only then Quill_workloads.Tpcc.payment_mix cfg else cfg

(* Sum of committed YCSB RMW deltas: the additive invariant oracle.  Every
   Rmw fragment with op op_rmw adds args.(0) to field 0; op_rmw_dep adds
   args.(0) + (dep value & 1023) which is not statically known, so the
   invariant tests use chain_deps = false workloads. *)
let ycsb_committed_delta txns =
  List.fold_left
    (fun acc (t : Txn.t) ->
      if t.Txn.status = Txn.Committed then
        Array.fold_left
          (fun acc (f : Fragment.t) ->
            if
              f.Fragment.op = Quill_workloads.Ycsb.op_rmw
              && f.Fragment.mode = Fragment.Rmw
            then acc + f.Fragment.args.(0)
            else acc)
          acc t.Txn.frags
      else acc)
    0 txns

let sum_field0 db name =
  let acc = ref 0 in
  Quill_storage.Table.iter_dense
    (fun row -> acc := !acc + row.Quill_storage.Row.committed.(0))
    (Quill_storage.Db.table_by_name db name);
  !acc

(* Minimal JSON syntax checker for the trace-export tests: verifies the
   string is exactly one well-formed JSON value.  Returns [Some error]
   on malformed input, [None] when it parses. *)
let json_error s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Failure (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> fail "expected a value"
  and lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l
    else fail ("expected " ^ w)
  and number () =
    let start = !pos in
    let num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "bad number"
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          if peek () = None then fail "bad escape";
          advance ();
          go ()
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    if !pos <> n then Some (Printf.sprintf "trailing input at %d" !pos)
    else None
  with Failure msg -> Some msg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Substring test for error-message assertions. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
