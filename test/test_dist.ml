(* Distributed engines: exact-state oracles (both are deterministic),
   commit without 2PC (message counts scale with batches, not
   transactions, for dist-quecc), and degenerate configurations. *)

open Quill_storage
open Quill_txn
open Quill_workloads
module Dq = Quill_dist.Dist_quecc
module Dc = Quill_dist.Dist_calvin

let dq_cfg ?(nodes = 2) ?(planners = 2) ?(executors = 2) ?(batch_size = 128)
    ?(pipeline = false) ?(replicas = 0) ?(spec_lag = 1) () =
  { Dq.nodes; planners; executors; batch_size;
    costs = Quill_sim.Costs.default; pipeline; replicas; spec_lag }

let dc_cfg ?(nodes = 2) ?(workers = 2) ?(batch_size = 128)
    ?(pipeline = false) () =
  { Dc.nodes; workers; batch_size; costs = Quill_sim.Costs.default; pipeline }

let ycsb_for ~nparts ?(mp = 0.3) ?(theta = 0.6) ?(abort_ratio = 0.0)
    ?(chain_deps = false) ?(seed = 11) () =
  Tutil.small_ycsb ~table_size:4_000 ~nparts ~theta ~mp_ratio:mp ~abort_ratio
    ~chain_deps ~seed ()

(* ------------------------- dist-quecc ------------------------- *)

let test_dq_matches_serial () =
  let cfg = ycsb_for ~nparts:4 ~chain_deps:true ~abort_ratio:0.1 () in
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m = Dq.run (dq_cfg ()) wl_rec ~batches:3 in
  let wl2 = Ycsb.make cfg in
  (* global order: planner gid-major = stream-major ✓ *)
  let txns = Tutil.epoch_order logs ~streams:4 ~batch_size:128 ~batches:3 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits" m2.Metrics.committed m.Metrics.committed;
  Tutil.check_int "aborts" m2.Metrics.logic_aborted m.Metrics.logic_aborted;
  Tutil.check_bool "state" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let test_dq_deterministic () =
  let run () =
    let wl = Ycsb.make (ycsb_for ~nparts:4 ~abort_ratio:0.1 ()) in
    let m = Dq.run (dq_cfg ()) wl ~batches:3 in
    (Db.checksum wl.Workload.db, m.Metrics.elapsed, m.Metrics.msgs)
  in
  Tutil.check_bool "bit-identical runs" true (run () = run ())

let test_dq_message_batching () =
  (* The Q-Store property: message count depends on batches x planners x
     nodes, not on the number of transactions. *)
  let msgs batches =
    let wl = Ycsb.make (ycsb_for ~nparts:4 ~mp:1.0 ()) in
    let m = Dq.run (dq_cfg ()) wl ~batches in
    m.Metrics.msgs
  in
  let m2 = msgs 2 and m4 = msgs 4 in
  Tutil.check_bool "scales with batches" true (m4 > m2);
  (* per-batch message budget: planners ship <= nodes-1 each, plus
     done/commit/value traffic; far below one per transaction *)
  Tutil.check_bool
    (Printf.sprintf "far fewer msgs (%d) than txns (%d)" m4 (128 * 4))
    true
    (m4 < 128 * 4 / 4)

let test_dq_single_node () =
  let cfg = ycsb_for ~nparts:2 ~mp:0.0 () in
  let wl = Ycsb.make cfg in
  let m = Dq.run (dq_cfg ~nodes:1 ~planners:2 ~executors:2 ()) wl ~batches:2 in
  Tutil.check_int "all committed" 256
    (m.Metrics.committed + m.Metrics.logic_aborted);
  Tutil.check_int "no network traffic" 0 m.Metrics.msgs

let test_dq_bad_partitioning_rejected () =
  let wl = Ycsb.make (ycsb_for ~nparts:3 ()) in
  Alcotest.check_raises "nparts mismatch"
    (Invalid_argument "Dist_quecc.run: db nparts must equal nodes * executors")
    (fun () -> ignore (Dq.run (dq_cfg ()) wl ~batches:1))

let test_dq_tpcc () =
  (* Distributed QueCC on TPC-C with remote stock accesses. *)
  let cfg =
    { (Tutil.small_tpcc ~warehouses:2 ~nparts:4 ~payment_only:true ()) with
      Tpcc_defs.remote_payment_pct = 30 }
  in
  let wl = Tpcc.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m = Dq.run (dq_cfg ()) wl_rec ~batches:3 in
  let wl2 = Tpcc.make cfg in
  let txns = Tutil.epoch_order logs ~streams:4 ~batch_size:128 ~batches:3 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits" m2.Metrics.committed m.Metrics.committed;
  Tutil.check_bool "state" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

(* ------------------------- pipelining ------------------------- *)

(* The lag-1 pipeline (planners/sequencer run one batch ahead of the
   commit they would otherwise block on) only changes virtual-time
   interleaving, never the committed state: planning touches no rows,
   so pipelined and lockstep runs of the same seed are bit-identical
   in state and counts, and the overlap must not slow the run down. *)
let test_dq_pipeline_identical () =
  let cfg = ycsb_for ~nparts:4 ~chain_deps:true ~abort_ratio:0.1 () in
  let run pipeline =
    let wl = Ycsb.make cfg in
    let m = Dq.run (dq_cfg ~pipeline ()) wl ~batches:4 in
    ( Db.checksum wl.Workload.db,
      m.Metrics.committed,
      m.Metrics.logic_aborted,
      m.Metrics.elapsed )
  in
  let c0, n0, a0, e0 = run false in
  let c1, n1, a1, e1 = run true in
  Tutil.check_int "commits" n0 n1;
  Tutil.check_int "aborts" a0 a1;
  Tutil.check_bool "state" true (c0 = c1);
  Tutil.check_bool
    (Printf.sprintf "pipelined (%d) not slower than lockstep (%d)" e1 e0)
    true (e1 <= e0)

let test_dc_pipeline_identical () =
  let cfg = ycsb_for ~nparts:4 ~mp:0.5 ~abort_ratio:0.1 () in
  let run pipeline =
    let wl = Ycsb.make cfg in
    let m = Dc.run (dc_cfg ~pipeline ()) wl ~batches:4 in
    ( Db.checksum wl.Workload.db,
      m.Metrics.committed,
      m.Metrics.logic_aborted,
      m.Metrics.elapsed )
  in
  let c0, n0, a0, e0 = run false in
  let c1, n1, a1, e1 = run true in
  Tutil.check_int "commits" n0 n1;
  Tutil.check_int "aborts" a0 a1;
  Tutil.check_bool "state" true (c0 = c1);
  Tutil.check_bool
    (Printf.sprintf "pipelined (%d) not slower than lockstep (%d)" e1 e0)
    true (e1 <= e0)

(* ------------------------- dist-calvin ------------------------- *)

let test_dc_matches_serial () =
  let cfg = ycsb_for ~nparts:4 ~abort_ratio:0.1 ~chain_deps:true () in
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m = Dc.run (dc_cfg ()) wl_rec ~batches:3 in
  (* global order: per epoch, node 0's slice then node 1's *)
  let wl2 = Ycsb.make cfg in
  let txns = Tutil.epoch_order logs ~streams:2 ~batch_size:128 ~batches:3 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits" m2.Metrics.committed m.Metrics.committed;
  Tutil.check_bool "state" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let test_dc_deterministic () =
  let run () =
    let wl = Ycsb.make (ycsb_for ~nparts:4 ~mp:0.5 ()) in
    let m = Dc.run (dc_cfg ()) wl ~batches:2 in
    (Db.checksum wl.Workload.db, m.Metrics.elapsed)
  in
  Tutil.check_bool "bit-identical runs" true (run () = run ())

let test_dc_per_txn_messaging () =
  (* Calvin's structural cost: messages grow with multi-node txn count. *)
  let msgs mp =
    let wl = Ycsb.make (ycsb_for ~nparts:4 ~mp ()) in
    let m = Dc.run (dc_cfg ()) wl ~batches:2 in
    m.Metrics.msgs
  in
  let low = msgs 0.0 and high = msgs 1.0 in
  Tutil.check_bool
    (Printf.sprintf "mp=1.0 (%d msgs) >> mp=0 (%d msgs)" high low)
    true
    (high > low + 100)

let test_dq_beats_dc_on_messages () =
  let cfg = ycsb_for ~nparts:4 ~mp:1.0 () in
  let wl1 = Ycsb.make cfg in
  let m1 = Dq.run (dq_cfg ()) wl1 ~batches:3 in
  let wl2 = Ycsb.make cfg in
  let m2 = Dc.run (dc_cfg ()) wl2 ~batches:3 in
  Tutil.check_bool "queue shipping amortizes messages" true
    (m1.Metrics.msgs * 4 < m2.Metrics.msgs)

let prop_dq_oracle_random =
  QCheck.Test.make ~name:"dist-quecc == serial oracle across seeds" ~count:6
    QCheck.(pair (int_range 0 500) (int_range 0 100))
    (fun (seed, mp_pct) ->
      let cfg =
        ycsb_for ~nparts:4 ~mp:(float_of_int mp_pct /. 100.0) ~seed
          ~abort_ratio:0.05 ()
      in
      let wl = Ycsb.make cfg in
      let wl_rec, logs = Tutil.record wl in
      let _ = Dq.run (dq_cfg ~batch_size:64 ()) wl_rec ~batches:2 in
      let wl2 = Ycsb.make cfg in
      let txns = Tutil.epoch_order logs ~streams:4 ~batch_size:64 ~batches:2 in
      let _ = Quill_protocols.Serial.run_txns wl2 txns in
      Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dist"
    [
      ( "dist-quecc",
        [
          Alcotest.test_case "matches serial oracle" `Quick
            test_dq_matches_serial;
          Alcotest.test_case "deterministic" `Quick test_dq_deterministic;
          Alcotest.test_case "message batching" `Quick test_dq_message_batching;
          Alcotest.test_case "single node" `Quick test_dq_single_node;
          Alcotest.test_case "bad partitioning rejected" `Quick
            test_dq_bad_partitioning_rejected;
          Alcotest.test_case "tpcc distributed" `Quick test_dq_tpcc;
          qc prop_dq_oracle_random;
        ] );
      ( "dist-calvin",
        [
          Alcotest.test_case "matches serial oracle" `Quick
            test_dc_matches_serial;
          Alcotest.test_case "deterministic" `Quick test_dc_deterministic;
          Alcotest.test_case "per-txn messaging" `Quick
            test_dc_per_txn_messaging;
          Alcotest.test_case "quecc ships fewer messages" `Quick
            test_dq_beats_dc_on_messages;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "dist-quecc pipelined identical" `Quick
            test_dq_pipeline_identical;
          Alcotest.test_case "dist-calvin pipelined identical" `Quick
            test_dc_pipeline_identical;
        ] );
    ]
