(* Ordered commit-stream subscriptions (CDC).

   The headline claim: QueCC's planning phase fixes the commit order
   before execution starts, so the serialized change feed is a pure
   function of the input batches — lockstep, pipelined, stealing and
   split-queue runs of the same seed produce byte-identical feeds.
   Plus the subscription mechanics: bounded queues with overflow
   recovery, late-joiner catch-up (ring replay vs snapshot), the
   materialized view's view-equals-recompute invariant and the read
   replica's bounded staleness. *)

open Quill_sim
open Quill_txn
open Quill_workloads
module Qe = Quill_quecc.Engine
module Serial = Quill_protocols.Serial
module Cdc = Quill_cdc.Cdc
module View = Quill_cdc.View
module Replica = Quill_cdc.Replica
module Db = Quill_storage.Db
module Table = Quill_storage.Table
module Row = Quill_storage.Row
module E = Quill_harness.Experiment
module F = Quill_faults.Faults

type mode = Lockstep | Pipelined | Steal | Split

let mode_name = function
  | Lockstep -> "lockstep"
  | Pipelined -> "pipelined"
  | Steal -> "pipelined+steal"
  | Split -> "split"

(* One quecc run under [mode] over a fresh same-seed workload, with the
   full serialized feed retained; returns the hub (drained) and the
   workload for committed-state checks. *)
let quecc_feed ?(seed = 42) ?(theta = 0.6) ?(batches = 4) ?(retain = 64)
    ?(subscribe = fun _ -> ()) mode =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed ~theta ()) in
  let sim = Sim.create ~wake_cost:Costs.default.Costs.wakeup () in
  let cdc =
    Cdc.create ~retain ~record_feed:true ~sim ~costs:Costs.default
      wl.Workload.db
  in
  subscribe cdc;
  let cfg =
    {
      Qe.default_cfg with
      Qe.planners = 2;
      executors = 2;
      batch_size = 256;
      pipeline = (mode = Pipelined || mode = Steal);
      steal = (mode = Steal);
      split =
        (if mode = Split then
           Some { Qe.hot_threshold = 8; max_subqueues = 4 }
         else None);
    }
  in
  ignore (Qe.run ~sim ~cdc cfg wl ~batches);
  Cdc.finish cdc;
  (cdc, wl)

let test_feed_identical_across_modes () =
  let base, _ = quecc_feed Lockstep in
  Tutil.check_bool "feed has events" true (Cdc.events base > 0);
  Tutil.check_int "all batches published" 4 (Cdc.batches base);
  List.iter
    (fun mode ->
      let c, _ = quecc_feed mode in
      Alcotest.(check string)
        (mode_name mode ^ " feed byte-identical to lockstep")
        (Cdc.feed base) (Cdc.feed c);
      Tutil.check_int
        (mode_name mode ^ " digest matches")
        (Cdc.digest base) (Cdc.digest c))
    [ Pipelined; Steal; Split ];
  (* sanity: the digest depends on the input (not trivially constant) *)
  let other, _ = quecc_feed ~seed:43 Lockstep in
  Tutil.check_bool "different seed, different feed" true
    (Cdc.digest base <> Cdc.digest other)

(* qcheck: the byte-identity holds across random seeds, contention
   levels and schedule variants, not just the hand-picked case. *)
let qcheck_feed_identity =
  let gen =
    QCheck.Gen.(
      triple (int_range 1 500) (oneofl [ 0.0; 0.6; 0.9 ])
        (oneofl [ Pipelined; Steal; Split ]))
  in
  let arb =
    QCheck.make gen ~print:(fun (seed, theta, mode) ->
        Printf.sprintf "seed=%d theta=%.1f mode=%s" seed theta
          (mode_name mode))
  in
  QCheck.Test.make ~name:"cdc feed bit-identity across schedules" ~count:12
    arb
    (fun (seed, theta, mode) ->
      let base, _ = quecc_feed ~seed ~theta ~batches:2 Lockstep in
      let c, _ = quecc_feed ~seed ~theta ~batches:2 mode in
      Cdc.feed base = Cdc.feed c && Cdc.events base > 0)

(* The feed reflects exactly the committed state transitions: replaying
   every event's post-image (inserts included) on top of the pre-run
   database must land on the engine's final committed state. *)
let test_feed_replays_to_committed_state () =
  let shadow : (int * int, int array) Hashtbl.t = Hashtbl.create 1024 in
  let subscribe hub =
    ignore
      (Cdc.subscribe hub ~name:"shadow"
         {
           Cdc.on_batch =
             (fun b ->
               Array.iter
                 (fun (ev : Cdc.event) ->
                   Hashtbl.replace shadow (ev.Cdc.table, ev.Cdc.key)
                     (Array.copy ev.Cdc.after))
                 b.Cdc.events);
           on_snapshot = (fun _ ~batch_no:_ -> Alcotest.fail "no snapshot");
           on_caught_up = (fun ~batch_no:_ -> ());
         })
  in
  let _, wl = quecc_feed ~subscribe Lockstep in
  let ok = ref true in
  Hashtbl.iter
    (fun (tid, key) img ->
      match Table.find (Db.table wl.Workload.db tid) key with
      | Some row -> if row.Row.committed <> img then ok := false
      | None -> ok := false)
    shadow;
  Tutil.check_bool "every event post-image = committed image" true !ok;
  Tutil.check_bool "shadow saw rows" true (Hashtbl.length shadow > 0)

let test_serial_feed_deterministic () =
  let run () =
    let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:7 ()) in
    let sim = Sim.create () in
    let cdc =
      Cdc.create ~record_feed:true ~sim ~costs:Costs.default wl.Workload.db
    in
    ignore (Serial.run ~sim ~cdc ~batch_size:256 wl ~txns:1024);
    Cdc.finish cdc;
    (Cdc.feed cdc, Cdc.batches cdc)
  in
  let f1, b1 = run () and f2, b2 = run () in
  Alcotest.(check string) "serial feed deterministic" f1 f2;
  Tutil.check_int "group-commit boundaries" b1 b2;
  Tutil.check_int "1024 txns / 256 = 4 groups" 4 b1

(* -------------------------- consumers -------------------------- *)

let test_view_equals_recompute () =
  (* direct: serial engine, verify at every batch (View raises on any
     divergence; check() is the explicit end-of-run comparison) *)
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:5 ()) in
  let sim = Sim.create () in
  let cdc = Cdc.create ~sim ~costs:Costs.default wl.Workload.db in
  let v = View.create ~verify:true ~table:0 ~field:0 wl.Workload.db in
  ignore (Cdc.subscribe cdc ~name:"view" (View.consumer v));
  ignore (Serial.run ~sim ~cdc ~batch_size:256 wl ~txns:1024);
  Cdc.finish cdc;
  Tutil.check_bool "view = recompute after serial run" true (View.check v);
  Tutil.check_bool "view refreshed" true (View.refreshes v > 0);
  Tutil.check_bool "view has partitions" true (View.sums v <> [])

let test_view_through_experiment () =
  (* quecc x ycsb and x tpcc through the harness: the run itself fails
     if the view ever diverges from recompute *)
  List.iter
    (fun (label, spec) ->
      let e =
        E.make ~threads:4 ~txns:1024 ~batch_size:256 ~views:true
          (E.Quecc (Qe.Speculative, Qe.Serializable))
          spec
      in
      let m = E.run e in
      Tutil.check_bool (label ^ ": view refreshed") true
        (m.Metrics.view_refreshes > 0);
      Tutil.check_bool (label ^ ": feed flowed") true
        (m.Metrics.cdc_events > 0);
      Tutil.check_int (label ^ ": replica + view subs") 2
        m.Metrics.cdc_subs)
    [
      ("ycsb", E.Ycsb (Tutil.small_ycsb ~table_size:2_000 ()));
      ( "tpcc",
        E.Tpcc (Tutil.small_tpcc ~warehouses:2 ~nparts:4 ~payment_only:true ())
      );
    ]

let test_replica_bounded_staleness () =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:11 ()) in
  let sim = Sim.create ~wake_cost:Costs.default.Costs.wakeup () in
  let cdc = Cdc.create ~sim ~costs:Costs.default wl.Workload.db in
  let rep = Replica.create wl.Workload.db in
  let sub =
    Cdc.subscribe cdc ~name:"replica" ~apply_every:3 (Replica.consumer rep)
  in
  let cfg =
    { Qe.default_cfg with Qe.planners = 2; executors = 2; batch_size = 256 }
  in
  ignore (Qe.run ~sim ~cdc cfg wl ~batches:6);
  (* staleness bound: the cursor never trails by more than apply_every *)
  Tutil.check_bool "lag bounded by apply period" true (Cdc.lag_max sub <= 3);
  Cdc.finish cdc;
  Tutil.check_int "cursor at newest batch" (Cdc.last_batch cdc)
    (Replica.cursor rep);
  Tutil.check_bool "replica rows cached" true (Replica.rows rep > 0);
  Tutil.check_bool "replica = committed state" true
    (Replica.consistent_with rep wl.Workload.db);
  Tutil.check_int "no catch-up on a live subscriber" 0
    (Cdc.catchup_batches sub);
  (* spot-check a read against the base table *)
  let served = ref false in
  (try
     Table.iter_dense
       (fun row ->
         if not !served then begin
           (match Replica.read rep ~table:0 ~key:row.Row.key with
           | Some img ->
               Tutil.check_bool "replica read = committed" true
                 (img = row.Row.committed);
               served := true
           | None -> ())
         end)
       (Db.table wl.Workload.db 0)
   with Exit -> ());
  Tutil.check_bool "replica reads counted" true (Replica.reads rep > 0)

(* ---------------------- catch-up mechanics ---------------------- *)

let test_late_joiner_ring_replay () =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:13 ()) in
  let sim = Sim.create ~wake_cost:Costs.default.Costs.wakeup () in
  (* retain 64 >> 6 batches: the ring covers everything, so the late
     joiner catches up by replay, never by snapshot *)
  let cdc = Cdc.create ~retain:64 ~sim ~costs:Costs.default wl.Workload.db in
  let rep = Replica.create wl.Workload.db in
  let sub =
    Cdc.subscribe cdc ~name:"late" ~join_at:2 (Replica.consumer rep)
  in
  let cfg =
    { Qe.default_cfg with Qe.planners = 2; executors = 2; batch_size = 256 }
  in
  ignore (Qe.run ~sim ~cdc cfg wl ~batches:6);
  Cdc.finish cdc;
  Tutil.check_bool "ring replay counted as catch-up" true
    (Cdc.catchup_batches sub >= 3);
  Tutil.check_int "no overflow" 0 (Cdc.overflows sub);
  Tutil.check_bool "events delivered live after joining" true
    (Cdc.delivered sub > 0);
  Tutil.check_bool "late joiner converges to committed state" true
    (Replica.consistent_with rep wl.Workload.db)

let test_late_joiner_snapshot () =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:17 ()) in
  let sim = Sim.create ~wake_cost:Costs.default.Costs.wakeup () in
  (* retain 2 < join_at: by the time the subscriber activates the ring
     no longer covers batch 0, forcing the snapshot path *)
  let cdc = Cdc.create ~retain:2 ~sim ~costs:Costs.default wl.Workload.db in
  let rep = Replica.create wl.Workload.db in
  let sub =
    Cdc.subscribe cdc ~name:"very-late" ~join_at:4 (Replica.consumer rep)
  in
  let cfg =
    { Qe.default_cfg with Qe.planners = 2; executors = 2; batch_size = 256 }
  in
  ignore (Qe.run ~sim ~cdc cfg wl ~batches:6);
  Cdc.finish cdc;
  Tutil.check_bool "snapshot catch-up counted" true
    (Cdc.catchup_batches sub >= 5);
  Tutil.check_bool "snapshot seeds the whole cache" true
    (Replica.rows rep > 0);
  Tutil.check_bool "snapshot joiner converges" true
    (Replica.consistent_with rep wl.Workload.db)

let test_overflow_snapshot_recovery () =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:2_000 ~seed:19 ()) in
  let sim = Sim.create ~wake_cost:Costs.default.Costs.wakeup () in
  let cdc = Cdc.create ~sim ~costs:Costs.default wl.Workload.db in
  let rep = Replica.create wl.Workload.db in
  (* a slow consumer: drains every 100 batches with a 2-deep queue, so
     the queue overflows and recovery must go through a snapshot *)
  let sub =
    Cdc.subscribe cdc ~name:"slow" ~max_queue:2 ~apply_every:100
      (Replica.consumer rep)
  in
  let cfg =
    { Qe.default_cfg with Qe.planners = 2; executors = 2; batch_size = 256 }
  in
  ignore (Qe.run ~sim ~cdc cfg wl ~batches:6);
  Cdc.finish cdc;
  Tutil.check_bool "queue overflowed" true (Cdc.overflows sub >= 1);
  Tutil.check_bool "overflow absorbed as catch-up" true
    (Cdc.catchup_batches sub > 0);
  Tutil.check_bool "overflowing subscriber still converges" true
    (Replica.consistent_with rep wl.Workload.db)

(* ------------------------- validation ------------------------- *)

let test_rejections () =
  let spec = E.Ycsb (Tutil.small_ycsb ~table_size:1_000 ()) in
  Alcotest.check_raises "cdc rejected off capability set"
    (Invalid_argument
       "Experiment.run: --cdc/--views requires the 'cdc' capability, but \
        engine silo provides {clients}")
    (fun () ->
      ignore
        (E.run (E.make ~threads:2 ~txns:256 ~batch_size:128 ~cdc:true E.Silo spec)));
  let crash_plan =
    { F.none with F.crashes = [ { F.node = 0; at = 1_000; down = 1 } ] }
  in
  Alcotest.check_raises "cdc + crash faults rejected"
    (Invalid_argument
       "Experiment.run: --cdc cannot be combined with crash/disk faults \
        (the feed is a commit stream; a crash-truncated run would feed \
        subscribers retracted commits)")
    (fun () ->
      ignore
        (E.run
           (E.make ~threads:2 ~txns:256 ~batch_size:128 ~cdc:true ~wal:true
              ~faults:crash_plan
              (E.Quecc (Qe.Speculative, Qe.Serializable))
              spec)));
  (* the engine-level guard, for callers bypassing the harness *)
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:1_000 ()) in
  let sim = Sim.create () in
  let cdc = Cdc.create ~sim ~costs:Costs.default wl.Workload.db in
  Alcotest.check_raises "engine rejects cdc + crash_at"
    (Invalid_argument
       "Quecc.Engine.run: --cdc cannot be combined with crash faults (a \
        crash-truncated run would feed subscribers retracted commits)")
    (fun () ->
      ignore
        (Qe.run ~sim ~cdc ~crash_at:1_000
           { Qe.default_cfg with Qe.planners = 2; executors = 2 }
           wl ~batches:1));
  (* subscribing into the past is a programming error *)
  let wl2 = Ycsb.make (Tutil.small_ycsb ~table_size:1_000 ()) in
  let sim2 = Sim.create () in
  let cdc2 = Cdc.create ~sim:sim2 ~costs:Costs.default wl2.Workload.db in
  ignore (Serial.run ~sim:sim2 ~cdc:cdc2 ~batch_size:128 wl2 ~txns:256);
  Alcotest.check_raises "join_at in the past rejected"
    (Invalid_argument
       "Cdc.subscribe stale: join_at=0 is already published (last batch 1)")
    (fun () ->
      ignore
        (Cdc.subscribe cdc2 ~name:"stale" ~join_at:0
           (Replica.consumer (Replica.create wl2.Workload.db))))

let test_experiment_counters () =
  List.iter
    (fun engine ->
      let e =
        E.make ~threads:4 ~txns:1024 ~batch_size:256 ~cdc:true engine
          (E.Ycsb (Tutil.small_ycsb ~table_size:2_000 ()))
      in
      let m = E.run e in
      let label = E.engine_name engine in
      Tutil.check_bool (label ^ ": events flowed") true
        (m.Metrics.cdc_events > 0);
      Tutil.check_int (label ^ ": all batches sealed") 4
        m.Metrics.cdc_batches;
      Tutil.check_int (label ^ ": one replica sub") 1 m.Metrics.cdc_subs;
      Tutil.check_bool (label ^ ": lag within replica staleness") true
        (m.Metrics.cdc_lag_max <= 4);
      Tutil.check_bool (label ^ ": bytes counted") true
        (m.Metrics.cdc_bytes > 0))
    [ E.Quecc (Qe.Speculative, Qe.Serializable); E.Serial ]

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "cdc"
    [
      ( "determinism",
        [
          Alcotest.test_case "feed identical across schedules" `Quick
            test_feed_identical_across_modes;
          Alcotest.test_case "feed replays to committed state" `Quick
            test_feed_replays_to_committed_state;
          Alcotest.test_case "serial group-commit feed" `Quick
            test_serial_feed_deterministic;
          qc qcheck_feed_identity;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "view = recompute" `Quick
            test_view_equals_recompute;
          Alcotest.test_case "view through experiment" `Quick
            test_view_through_experiment;
          Alcotest.test_case "replica bounded staleness" `Quick
            test_replica_bounded_staleness;
        ] );
      ( "catch-up",
        [
          Alcotest.test_case "late joiner ring replay" `Quick
            test_late_joiner_ring_replay;
          Alcotest.test_case "late joiner snapshot" `Quick
            test_late_joiner_snapshot;
          Alcotest.test_case "overflow snapshot recovery" `Quick
            test_overflow_snapshot_recovery;
        ] );
      ( "harness",
        [
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "experiment counters" `Quick
            test_experiment_counters;
        ] );
    ]
