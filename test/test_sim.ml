open Quill_sim

(* ------------------------- scheduling ------------------------- *)

let test_single_thread_clock () =
  let s = Sim.create () in
  Sim.spawn s (fun () ->
      Tutil.check_int "starts at 0" 0 (Sim.now s);
      Sim.tick s 100;
      Tutil.check_int "after tick" 100 (Sim.now s);
      Sim.sleep s 50;
      Tutil.check_int "after sleep" 150 (Sim.now s));
  Tutil.check_int "no parked" 0 (Sim.run s);
  Tutil.check_int "busy" 100 (Sim.busy_time s);
  Tutil.check_int "idle" 50 (Sim.idle_time s);
  Tutil.check_int "horizon" 150 (Sim.horizon s)

let test_virtual_time_ordering () =
  (* Events execute in virtual-time order regardless of spawn order. *)
  let s = Sim.create () in
  let log = ref [] in
  Sim.spawn s (fun () ->
      Sim.tick s 300;
      log := "slow" :: !log);
  Sim.spawn s (fun () ->
      Sim.tick s 100;
      log := "fast" :: !log;
      Sim.tick s 300;
      log := "fast2" :: !log);
  ignore (Sim.run s);
  Alcotest.(check (list string))
    "order" [ "fast"; "slow"; "fast2" ] (List.rev !log)

let test_spawn_at () =
  let s = Sim.create () in
  let t = ref (-1) in
  Sim.spawn ~at:500 s (fun () -> t := Sim.now s);
  ignore (Sim.run s);
  Tutil.check_int "delayed start" 500 !t

let test_determinism () =
  let run_once () =
    let s = Sim.create () in
    let log = Buffer.create 64 in
    for i = 0 to 9 do
      Sim.spawn s (fun () ->
          for j = 0 to 9 do
            Sim.tick s ((i * 7 mod 3) + 1);
            Buffer.add_string log (Printf.sprintf "%d.%d;" i j)
          done)
    done;
    ignore (Sim.run s);
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

(* ------------------------- ivar ------------------------- *)

let test_ivar_fill_then_read () =
  let s = Sim.create () in
  let iv = Sim.Ivar.create () in
  Sim.spawn s (fun () ->
      Sim.tick s 10;
      Sim.Ivar.fill s iv 7);
  Sim.spawn s (fun () ->
      Sim.tick s 100;
      (* already full: no wait beyond our own clock *)
      Tutil.check_int "value" 7 (Sim.Ivar.read s iv);
      Tutil.check_int "no extra wait" 100 (Sim.now s));
  Tutil.check_int "parked" 0 (Sim.run s)

let test_ivar_read_blocks () =
  let s = Sim.create () in
  let iv = Sim.Ivar.create () in
  Sim.spawn s (fun () ->
      Tutil.check_int "value" 9 (Sim.Ivar.read s iv);
      Tutil.check_int "woke at fill time" 250 (Sim.now s));
  Sim.spawn s (fun () ->
      Sim.tick s 250;
      Sim.Ivar.fill s iv 9);
  Tutil.check_int "parked" 0 (Sim.run s)

let test_ivar_double_fill () =
  let s = Sim.create () in
  let iv = Sim.Ivar.create () in
  Sim.spawn s (fun () ->
      Sim.Ivar.fill s iv 1;
      Alcotest.check_raises "double fill"
        (Invalid_argument "Sim.Ivar.fill: already full") (fun () ->
          Sim.Ivar.fill s iv 2));
  ignore (Sim.run s)

let test_ivar_peek_multireader () =
  let s = Sim.create () in
  let iv = Sim.Ivar.create () in
  let seen = ref 0 in
  for _ = 1 to 5 do
    Sim.spawn s (fun () -> seen := !seen + Sim.Ivar.read s iv)
  done;
  Sim.spawn s (fun () ->
      Tutil.check_bool "peek empty" true (Sim.Ivar.peek iv = None);
      Sim.tick s 5;
      Sim.Ivar.fill s iv 3;
      Tutil.check_bool "peek full" true (Sim.Ivar.peek iv = Some 3));
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "all readers woke" 15 !seen

let test_wake_cost () =
  let s = Sim.create ~wake_cost:42 () in
  let iv = Sim.Ivar.create () in
  Sim.spawn s (fun () ->
      ignore (Sim.Ivar.read s iv);
      Tutil.check_int "wake cost added" 142 (Sim.now s));
  Sim.spawn s (fun () ->
      Sim.tick s 100;
      Sim.Ivar.fill s iv 0);
  Tutil.check_int "parked" 0 (Sim.run s)

(* ------------------------- chan ------------------------- *)

let test_chan_fifo () =
  let s = Sim.create () in
  let ch = Sim.Chan.create () in
  let got = ref [] in
  Sim.spawn s (fun () ->
      for i = 1 to 3 do
        Sim.Chan.send s ch i
      done);
  Sim.spawn s (fun () ->
      for _ = 1 to 3 do
        got := Sim.Chan.recv s ch :: !got
      done);
  Tutil.check_int "parked" 0 (Sim.run s);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_chan_delay () =
  let s = Sim.create () in
  let ch = Sim.Chan.create () in
  Sim.spawn s (fun () -> Sim.Chan.send ~delay:1000 s ch "hello");
  Sim.spawn s (fun () ->
      let m = Sim.Chan.recv s ch in
      Alcotest.(check string) "msg" "hello" m;
      Tutil.check_int "arrival time" 1000 (Sim.now s));
  Tutil.check_int "parked" 0 (Sim.run s)

let test_chan_try_recv () =
  let s = Sim.create () in
  let ch = Sim.Chan.create () in
  Sim.spawn s (fun () ->
      Sim.Chan.send ~delay:100 s ch 1;
      Tutil.check_bool "not yet arrived" true (Sim.Chan.try_recv s ch = None);
      Sim.tick s 200;
      Tutil.check_bool "arrived" true (Sim.Chan.try_recv s ch = Some 1);
      Tutil.check_int "pending" 0 (Sim.Chan.pending ch));
  Tutil.check_int "parked" 0 (Sim.run s)

let test_chan_blocked_receiver_parks () =
  let s = Sim.create () in
  let ch : int Sim.Chan.ch = Sim.Chan.create () in
  Sim.spawn s (fun () -> ignore (Sim.Chan.recv s ch));
  Tutil.check_int "one parked thread" 1 (Sim.run s)

(* ------------------------- barrier / gate ------------------------- *)

let test_barrier_max_clock () =
  let s = Sim.create () in
  let b = Sim.Barrier.create 3 in
  let times = ref [] in
  List.iter
    (fun d ->
      Sim.spawn s (fun () ->
          Sim.tick s d;
          Sim.Barrier.await s b;
          times := Sim.now s :: !times))
    [ 10; 200; 50 ];
  Tutil.check_int "parked" 0 (Sim.run s);
  List.iter (fun t -> Tutil.check_int "released at max" 200 t) !times

let test_barrier_reusable () =
  let s = Sim.create () in
  let b = Sim.Barrier.create 2 in
  let rounds = ref 0 in
  for _ = 1 to 2 do
    Sim.spawn s (fun () ->
        for _ = 1 to 5 do
          Sim.tick s 10;
          Sim.Barrier.await s b
        done;
        incr rounds)
  done;
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "both finished" 2 !rounds

let test_gate () =
  let s = Sim.create () in
  let g = Sim.Gate.create 3 in
  let opened_at = ref (-1) in
  Sim.spawn s (fun () ->
      Sim.Gate.await s g;
      opened_at := Sim.now s);
  for i = 1 to 3 do
    Sim.spawn s (fun () ->
        Sim.tick s (i * 100);
        Sim.Gate.arrive s g)
  done;
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "opens at last arrival" 300 !opened_at

let test_gate_zero () =
  let s = Sim.create () in
  let g = Sim.Gate.create 0 in
  Sim.spawn s (fun () ->
      Sim.Gate.await s g;
      Tutil.check_int "no wait" 0 (Sim.now s));
  Tutil.check_int "parked" 0 (Sim.run s)

(* -------------------- wake-cost uniformity -------------------- *)

(* Regression: the barrier's last arriver used to release the waiters
   (each paying wake_cost) without paying wake_cost itself, so it left
   the rendezvous ahead of everyone it woke.  All parties must leave at
   release + wake_cost. *)
let test_barrier_wake_cost_uniform () =
  let s = Sim.create ~wake_cost:7 () in
  let b = Sim.Barrier.create 2 in
  let times = ref [] in
  List.iter
    (fun d ->
      Sim.spawn s (fun () ->
          Sim.tick s d;
          Sim.Barrier.await s b;
          times := Sim.now s :: !times))
    [ 10; 30 ];
  Tutil.check_int "parked" 0 (Sim.run s);
  List.iter
    (fun t -> Tutil.check_int "all leave at release + wake_cost" 37 t)
    !times;
  (* Early arriver waited 10->37, last arriver 30->37. *)
  Tutil.check_int "barrier idle" 34 (Sim.idle_in s Sim.Cause_barrier);
  Tutil.check_int "idle total matches" 34 (Sim.idle_time s)

(* Regression: a reader hitting an already-full ivar whose fill time is
   AHEAD of the reader's clock used to catch up to the fill time for
   free, while a parked reader paid wake_cost for the same hand-off. *)
let test_ivar_fastpath_wake_cost () =
  let s = Sim.create ~wake_cost:5 () in
  let iv = Sim.Ivar.create () in
  Sim.spawn s (fun () ->
      Sim.tick s 100;
      Sim.Ivar.fill s iv 3;
      (* Reader starts at 0, finds the ivar full at 100: it genuinely
         waited, so it pays the same wake_cost as a parked reader. *)
      Sim.spawn ~at:0 s (fun () ->
          Tutil.check_int "value" 3 (Sim.Ivar.read s iv);
          Tutil.check_int "fastpath pays wake cost" 105 (Sim.now s)));
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "charged as ivar idle" 105 (Sim.idle_in s Sim.Cause_ivar)

(* Every idle nanosecond is attributed to exactly one cause. *)
let test_idle_cause_partition () =
  let s = Sim.create ~wake_cost:11 () in
  let iv = Sim.Ivar.create () in
  let ch = Sim.Chan.create () in
  let b = Sim.Barrier.create 2 in
  Sim.spawn s (fun () ->
      Sim.sleep s 25;
      ignore (Sim.Ivar.read s iv);
      ignore (Sim.Chan.recv s ch);
      Sim.Barrier.await s b);
  Sim.spawn s (fun () ->
      Sim.tick s 40;
      Sim.Ivar.fill s iv 1;
      Sim.tick s 40;
      Sim.Chan.send s ch 2;
      Sim.tick s 40;
      Sim.Barrier.await s b);
  Tutil.check_int "parked" 0 (Sim.run s);
  let by_cause =
    Sim.idle_in s Sim.Cause_barrier
    + Sim.idle_in s Sim.Cause_ivar
    + Sim.idle_in s Sim.Cause_chan
    + Sim.idle_in s Sim.Cause_sleep
  in
  Tutil.check_int "causes partition idle" (Sim.idle_time s) by_cause;
  Tutil.check_bool "barrier idle seen" true
    (Sim.idle_in s Sim.Cause_barrier > 0);
  Tutil.check_bool "ivar idle seen" true (Sim.idle_in s Sim.Cause_ivar > 0);
  Tutil.check_bool "chan idle seen" true (Sim.idle_in s Sim.Cause_chan > 0);
  Tutil.check_int "sleep idle" 25 (Sim.idle_in s Sim.Cause_sleep)

(* ------------------------- phases / tracing ------------------------- *)

let test_phase_attribution () =
  let s = Sim.create () in
  Sim.spawn s (fun () ->
      Sim.tick s 5;
      Sim.set_phase s Sim.Ph_plan;
      Sim.tick s 10;
      Sim.set_phase s Sim.Ph_execute;
      Sim.tick s 20;
      Sim.set_phase s Sim.Ph_other;
      Sim.tick s 1);
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "plan busy" 10 (Sim.busy_in s Sim.Ph_plan);
  Tutil.check_int "execute busy" 20 (Sim.busy_in s Sim.Ph_execute);
  Tutil.check_int "other busy" 6 (Sim.busy_in s Sim.Ph_other);
  Tutil.check_int "recover busy" 0 (Sim.busy_in s Sim.Ph_recover);
  Tutil.check_int "total" (Sim.busy_time s)
    (Sim.busy_in s Sim.Ph_plan + Sim.busy_in s Sim.Ph_execute
    + Sim.busy_in s Sim.Ph_other)

(* Tracing must never perturb virtual time: the same program with an
   enabled tracer reaches bit-identical clocks. *)
let test_tracer_zero_overhead () =
  let run tracer =
    let s = Sim.create ~wake_cost:9 ~tracer () in
    let b = Sim.Barrier.create 3 in
    for i = 0 to 2 do
      Sim.spawn s (fun () ->
          Sim.tick s (10 * (i + 1));
          Sim.Barrier.await s b;
          Sim.tick s 7)
    done;
    ignore (Sim.run s);
    (Sim.horizon s, Sim.busy_time s, Sim.idle_time s)
  in
  let tr = Quill_trace.Trace.create () in
  let plain = run Quill_trace.Trace.null in
  let traced = run tr in
  Tutil.check_bool "identical timings" true (plain = traced);
  Tutil.check_bool "wait spans recorded" true
    (Quill_trace.Trace.num_events tr > 0)

(* ------------------------- stress ------------------------- *)

let test_many_threads () =
  let s = Sim.create () in
  let n = 500 in
  let b = Sim.Barrier.create n in
  let total = ref 0 in
  for i = 0 to n - 1 do
    Sim.spawn s (fun () ->
        Sim.tick s (i mod 17);
        Sim.Barrier.await s b;
        incr total)
  done;
  Tutil.check_int "parked" 0 (Sim.run s);
  Tutil.check_int "all ran" n !total;
  Tutil.check_int "spawned" n (Sim.threads_spawned s);
  Tutil.check_int "completed" n (Sim.threads_completed s)

let prop_ivar_chain =
  QCheck.Test.make ~name:"ivar chains preserve order and values" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 100))
    (fun xs ->
      let s = Sim.create () in
      let n = List.length xs in
      let ivs = Array.init (n + 1) (fun _ -> Sim.Ivar.create ()) in
      List.iteri
        (fun i x ->
          Sim.spawn s (fun () ->
              let v = Sim.Ivar.read s ivs.(i) in
              Sim.tick s x;
              Sim.Ivar.fill s ivs.(i + 1) (v + x)))
        xs;
      Sim.spawn s (fun () -> Sim.Ivar.fill s ivs.(0) 0);
      let parked = Sim.run s in
      parked = 0
      && Sim.Ivar.peek ivs.(n) = Some (List.fold_left ( + ) 0 xs))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "single thread clock" `Quick
            test_single_thread_clock;
          Alcotest.test_case "virtual time ordering" `Quick
            test_virtual_time_ordering;
          Alcotest.test_case "spawn at" `Quick test_spawn_at;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "many threads" `Quick test_many_threads;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "peek + multireader" `Quick
            test_ivar_peek_multireader;
          Alcotest.test_case "wake cost" `Quick test_wake_cost;
          qc prop_ivar_chain;
        ] );
      ( "chan",
        [
          Alcotest.test_case "fifo" `Quick test_chan_fifo;
          Alcotest.test_case "delay" `Quick test_chan_delay;
          Alcotest.test_case "try_recv" `Quick test_chan_try_recv;
          Alcotest.test_case "blocked receiver parks" `Quick
            test_chan_blocked_receiver_parks;
        ] );
      ( "barrier+gate",
        [
          Alcotest.test_case "barrier max clock" `Quick test_barrier_max_clock;
          Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "gate" `Quick test_gate;
          Alcotest.test_case "gate zero" `Quick test_gate_zero;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "barrier wake cost uniform" `Quick
            test_barrier_wake_cost_uniform;
          Alcotest.test_case "ivar fastpath wake cost" `Quick
            test_ivar_fastpath_wake_cost;
          Alcotest.test_case "idle cause partition" `Quick
            test_idle_cause_partition;
          Alcotest.test_case "phase attribution" `Quick test_phase_attribution;
          Alcotest.test_case "tracer zero overhead" `Quick
            test_tracer_zero_overhead;
        ] );
    ]
