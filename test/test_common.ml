open Quill_common

(* ------------------------- Rng ------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 1000 do
    Tutil.check_int "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    Tutil.check_bool "in range" true (v >= 0 && v < 17);
    let w = Rng.int_incl r (-5) 5 in
    Tutil.check_bool "incl range" true (w >= -5 && w <= 5);
    let f = Rng.float r 2.0 in
    Tutil.check_bool "float range" true (f >= 0.0 && f < 2.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 3 in
  let b = Rng.split a in
  (* The split stream must not mirror the parent. *)
  let equal = ref 0 in
  for _ = 1 to 100 do
    if Rng.next a = Rng.next b then incr equal
  done;
  Tutil.check_bool "split diverges" true (!equal < 5)

let test_rng_uniformity () =
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int r 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Tutil.check_bool "bucket within 10% of uniform" true
        (abs (c - (n / 10)) < n / 100))
    buckets

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_chance () =
  let r = Rng.create 12 in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Rng.chance r 0.25 then incr hits
  done;
  Tutil.check_bool "chance ~ 25%" true (abs (!hits - 25_000) < 1_000)

(* ------------------------- Zipf ------------------------- *)

let test_zipf_bounds () =
  let z = Zipf.create ~theta:0.99 1000 in
  let r = Rng.create 4 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z r in
    Tutil.check_bool "in range" true (k >= 0 && k < 1000);
    let s = Zipf.sample_scrambled z r in
    Tutil.check_bool "scrambled in range" true (s >= 0 && s < 1000)
  done

let test_zipf_uniform_case () =
  let z = Zipf.create ~theta:0.0 100 in
  let r = Rng.create 8 in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    let k = Zipf.sample z r in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Tutil.check_bool "roughly uniform" true (abs (c - 1000) < 250))
    counts

let test_zipf_skew () =
  let z = Zipf.create ~theta:0.99 10_000 in
  let r = Rng.create 21 in
  let hot = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Zipf.sample z r < 100 then incr hot
  done;
  (* Under theta=0.99 the hottest 1% of keys draw a large share. *)
  Tutil.check_bool
    (Printf.sprintf "hot keys dominate (%d/%d)" !hot n)
    true
    (float_of_int !hot /. float_of_int n > 0.35)

let test_zipf_theta_ordering () =
  let hot_share theta =
    let z = Zipf.create ~theta 10_000 in
    let r = Rng.create 2 in
    let hot = ref 0 in
    for _ = 1 to 20_000 do
      if Zipf.sample z r < 100 then incr hot
    done;
    !hot
  in
  let h0 = hot_share 0.0 and h6 = hot_share 0.6 and h9 = hot_share 0.9 in
  Tutil.check_bool "skew grows with theta" true (h0 < h6 && h6 < h9)

let prop_zipf_uniform_when_theta0 =
  QCheck.Test.make ~name:"zipf theta=0 is uniform" ~count:10
    QCheck.(pair (int_range 10 500) (int_range 0 1000))
    (fun (n, seed) ->
      let z = Zipf.create ~theta:0.0 n in
      let r = Rng.create seed in
      let draws = 200 * n in
      let c0 = ref 0 in
      for _ = 1 to draws do
        if Zipf.sample z r = 0 then incr c0
      done;
      (* key 0 (the hottest rank under skew) draws ~ draws/n; under
         theta=0 it must stay near the uniform share *)
      let expected = draws / n in
      !c0 > expected / 3 && !c0 < expected * 3)

let prop_zipf_rank_monotone =
  QCheck.Test.make ~name:"zipf theta>0: frequency decreases with rank"
    ~count:10
    QCheck.(pair (int_range 20 99) (int_range 0 1000))
    (fun (theta_pct, seed) ->
      let n = 1000 in
      let z = Zipf.create ~theta:(float_of_int theta_pct /. 100.0) n in
      let r = Rng.create seed in
      let top = ref 0 and bottom = ref 0 in
      for _ = 1 to 20_000 do
        let k = Zipf.sample z r in
        if k < n / 10 then incr top
        else if k >= n - (n / 10) then incr bottom
      done;
      !top > !bottom)

let prop_zipf_scrambled_bounds =
  QCheck.Test.make ~name:"zipf scrambled sample stays in [0, n)" ~count:20
    QCheck.(
      triple (int_range 1 10_000) (int_range 0 99) (int_range 0 1000))
    (fun (n, theta_pct, seed) ->
      let z = Zipf.create ~theta:(float_of_int theta_pct /. 100.0) n in
      let r = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 1000 do
        let s = Zipf.sample_scrambled z r in
        if s < 0 || s >= n then ok := false
      done;
      !ok)

(* ------------------------- Vec ------------------------- *)

let test_vec_basic () =
  let v = Vec.create () in
  Tutil.check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Tutil.check_int "length" 100 (Vec.length v);
  Tutil.check_int "get" 42 (Vec.get v 42);
  Vec.set v 42 1000;
  Tutil.check_int "set" 1000 (Vec.get v 42);
  Tutil.check_int "pop" 99 (match Vec.pop v with Some x -> x | None -> -1);
  Tutil.check_int "length after pop" 99 (Vec.length v);
  Vec.clear v;
  Tutil.check_int "cleared" 0 (Vec.length v);
  Tutil.check_bool "pop empty" true (Vec.pop v = None)

let test_vec_oob () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v (-1) 0)

let test_vec_sort_fold () =
  let v = Vec.of_array [| 5; 1; 4; 2; 3 |] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Vec.to_list v);
  Tutil.check_int "fold" 15 (Vec.fold ( + ) 0 v);
  Tutil.check_bool "exists" true (Vec.exists (fun x -> x = 4) v);
  Tutil.check_bool "not exists" false (Vec.exists (fun x -> x = 9) v)

let prop_vec_model =
  QCheck.Test.make ~name:"vec behaves like list" ~count:200
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && List.for_all2 ( = ) (Vec.to_list v) xs)

(* ------------------------- Heap ------------------------- *)

let test_heap_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "heap sorts" [ 9; 8; 5; 3; 2; 1 ] !out

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pop order = sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ------------------------- Bitset ------------------------- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  Tutil.check_int "cardinal" 4 (Bitset.cardinal b);
  Tutil.check_bool "mem" true (Bitset.mem b 64);
  Bitset.remove b 64;
  Tutil.check_bool "removed" false (Bitset.mem b 64);
  Tutil.check_int "cardinal after remove" 3 (Bitset.cardinal b);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 99 ] (Bitset.to_list b);
  Bitset.clear b;
  Tutil.check_int "cleared" 0 (Bitset.cardinal b)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset behaves like int set" ~count:200
    QCheck.(list (int_bound 199))
    (fun xs ->
      let b = Bitset.create 200 in
      List.iter (Bitset.add b) xs;
      let module S = Set.Make (Int) in
      let s = S.of_list xs in
      Bitset.cardinal b = S.cardinal s
      && Bitset.to_list b = S.elements s)

(* ------------------------- Stats ------------------------- *)

let test_acc () =
  let a = Stats.Acc.create () in
  List.iter (Stats.Acc.add a) [ 2.0; 4.0; 6.0; 8.0 ];
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Acc.mean a);
  Alcotest.(check (float 1e-9))
    "variance" (20.0 /. 3.0) (Stats.Acc.variance a);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Acc.min a);
  Alcotest.(check (float 1e-9)) "max" 8.0 (Stats.Acc.max a);
  Tutil.check_int "count" 4 (Stats.Acc.count a);
  Alcotest.(check (float 1e-9)) "total" 20.0 (Stats.Acc.total a)

let test_hist_exact_small () =
  let h = Stats.Hist.create () in
  for v = 0 to 15 do
    Stats.Hist.add h v
  done;
  (* values < 16 are exact buckets *)
  Tutil.check_int "p50 small" 7 (Stats.Hist.percentile h 50.0);
  Tutil.check_int "p100 small" 15 (Stats.Hist.percentile h 100.0)

let test_hist_percentile_bounds () =
  let h = Stats.Hist.create () in
  let values = [ 100; 1_000; 10_000; 100_000; 1_000_000 ] in
  List.iter (Stats.Hist.add h) values;
  List.iteri
    (fun i v ->
      let p = float_of_int (i + 1) /. 5.0 *. 100.0 in
      let est = Stats.Hist.percentile h p in
      (* log-bucket estimate: within 1/16 relative error, never below *)
      Tutil.check_bool
        (Printf.sprintf "p%.0f >= value" p)
        true (est >= v);
      Tutil.check_bool
        (Printf.sprintf "p%.0f within bucket" p)
        true
        (float_of_int est <= float_of_int v *. 1.08))
    values;
  Tutil.check_int "max" 1_000_000 (Stats.Hist.max_value h);
  Tutil.check_int "count" 5 (Stats.Hist.count h)

let test_hist_zero_and_negative () =
  let h = Stats.Hist.create () in
  Stats.Hist.add h 0;
  Tutil.check_int "zero counted" 1 (Stats.Hist.count h);
  Tutil.check_int "p100 of {0}" 0 (Stats.Hist.percentile h 100.0);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Stats.Hist.add: negative value") (fun () ->
      Stats.Hist.add h (-1));
  (* the rejected value must not have perturbed the histogram *)
  Tutil.check_int "count unchanged" 1 (Stats.Hist.count h)

let test_hist_merge () =
  let a = Stats.Hist.create () and b = Stats.Hist.create () in
  Stats.Hist.add a 10;
  Stats.Hist.add b 1_000;
  Stats.Hist.merge_into ~dst:a b;
  Tutil.check_int "merged count" 2 (Stats.Hist.count a);
  Tutil.check_int "merged max" 1_000 (Stats.Hist.max_value a)

let prop_hist_percentile_ge_median =
  QCheck.Test.make ~name:"hist p50 upper-bounds true median" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_bound 1_000_000))
    (fun xs ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.add h) xs;
      let sorted = List.sort compare xs in
      let median = List.nth sorted ((List.length xs - 1) / 2) in
      Stats.Hist.percentile h 50.0 >= median)

(* ------------------------- Tablefmt ------------------------- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_tablefmt () =
  let s =
    Tablefmt.render ~header:[ "name"; "value" ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  Tutil.check_bool "contains header" true (contains s "name");
  Tutil.check_bool "contains cell" true (contains s "yy");
  (* numbers right-aligned by default: "  22 " not "22   " *)
  Tutil.check_bool "right aligned" true (contains s "    22 ");
  Tutil.check_bool "si formatting" true (Tablefmt.fmt_si 1_230_000.0 = "1.23M");
  Tutil.check_bool "si small" true (Tablefmt.fmt_si 12.0 = "12.00");
  Tutil.check_bool "float fmt" true (Tablefmt.fmt_float ~decimals:1 1.25 = "1.2")

let prop_hist_percentile_monotone =
  QCheck.Test.make ~name:"hist percentile monotone in p" ~count:50
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_range 0 1_000_000))
        (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
    (fun (values, (p1, p2)) ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.add h) values;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.Hist.percentile h lo <= Stats.Hist.percentile h hi)

let prop_hist_p100_is_max =
  QCheck.Test.make ~name:"hist p100 = max recorded value" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 1_000_000))
    (fun values ->
      let h = Stats.Hist.create () in
      List.iter (Stats.Hist.add h) values;
      Stats.Hist.percentile h 100.0 = Stats.Hist.max_value h
      && Stats.Hist.max_value h = List.fold_left max 0 values)

let prop_hist_bucket_edge_bounds_value =
  QCheck.Test.make ~name:"hist upper_edge (index_of v) >= v" ~count:200
    QCheck.(int_range 0 1_000_000_000)
    (fun v -> Stats.Hist.upper_edge (Stats.Hist.index_of v) >= v)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "common"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "chance" `Quick test_rng_chance;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "uniform case" `Quick test_zipf_uniform_case;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "theta ordering" `Quick test_zipf_theta_ordering;
          qc prop_zipf_uniform_when_theta0;
          qc prop_zipf_rank_monotone;
          qc prop_zipf_scrambled_bounds;
        ] );
      ( "vec",
        [
          Alcotest.test_case "basic" `Quick test_vec_basic;
          Alcotest.test_case "out of bounds" `Quick test_vec_oob;
          Alcotest.test_case "sort/fold" `Quick test_vec_sort_fold;
          qc prop_vec_model;
        ] );
      ( "heap",
        [ Alcotest.test_case "order" `Quick test_heap_order; qc prop_heap_sorts ]
      );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          qc prop_bitset_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "acc" `Quick test_acc;
          Alcotest.test_case "hist exact small" `Quick test_hist_exact_small;
          Alcotest.test_case "hist percentile bounds" `Quick
            test_hist_percentile_bounds;
          Alcotest.test_case "hist zero and negative" `Quick
            test_hist_zero_and_negative;
          Alcotest.test_case "hist merge" `Quick test_hist_merge;
          qc prop_hist_percentile_ge_median;
          qc prop_hist_percentile_monotone;
          qc prop_hist_p100_is_max;
          qc prop_hist_bucket_edge_bounds_value;
        ] );
      ( "tablefmt",
        [ Alcotest.test_case "render" `Quick test_tablefmt ] );
    ]
