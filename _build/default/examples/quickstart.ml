(* Quickstart: run the queue-oriented engine on a YCSB workload and
   demonstrate its headline property — the final database state is a
   deterministic function of the input batch, identical to serial
   execution, with no concurrency-control aborts.

     dune exec examples/quickstart.exe *)

open Quill_workloads
open Quill_storage
open Quill_txn
module Engine = Quill_quecc.Engine

let () =
  (* A small skewed key-value workload: 10 operations per transaction,
     50% reads, zipfian(0.9) access over 50k rows, 4 partitions. *)
  let cfg =
    { Ycsb.default with Ycsb.table_size = 50_000; nparts = 4; theta = 0.9 }
  in

  (* Phase 1+2 (paper Figure 1): 4 planner threads build priority-tagged
     execution queues, 4 executor threads drain them in priority order. *)
  let wl = Ycsb.make cfg in
  let engine_cfg =
    {
      Engine.default_cfg with
      Engine.planners = 4;
      executors = 4;
      batch_size = 512;
    }
  in
  let metrics = Engine.run engine_cfg wl ~batches:8 in
  Format.printf "QueCC (4 planners, 4 executors):@.  %a@." Metrics.pp metrics;

  (* Determinism check 1: run the identical configuration again on a
     fresh database — bit-identical final state. *)
  let wl' = Ycsb.make cfg in
  let _ = Engine.run engine_cfg wl' ~batches:8 in
  let c1 = Db.checksum wl.Workload.db and c2 = Db.checksum wl'.Workload.db in
  Printf.printf "determinism across runs: %s (checksum %x)\n"
    (if c1 = c2 then "OK" else "FAILED")
    c1;

  (* Determinism check 2: the parallel engine's state equals serial
     execution of the same batch in batch order. *)
  let wl_serial = Ycsb.make cfg in
  let streams = Array.init 4 wl_serial.Workload.new_stream in
  let txns = ref [] in
  for _batch = 0 to 7 do
    for p = 0 to 3 do
      for _j = 0 to (512 / 4) - 1 do
        txns := streams.(p) () :: !txns
      done
    done
  done;
  let serial_metrics =
    Quill_protocols.Serial.run_txns wl_serial (List.rev !txns)
  in
  Format.printf "serial oracle:@.  %a@." Metrics.pp serial_metrics;
  Printf.printf "parallel state == serial state: %s\n"
    (if Db.checksum wl_serial.Workload.db = c1 then "OK" else "FAILED")
