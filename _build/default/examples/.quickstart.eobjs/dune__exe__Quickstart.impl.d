examples/quickstart.ml: Array Db Format List Metrics Printf Quill_protocols Quill_quecc Quill_storage Quill_txn Quill_workloads Workload Ycsb
