examples/banking.ml: Array Db Exec Format Fragment List Metrics Printf Quill_common Quill_quecc Quill_storage Quill_txn Rng Row Table Txn Workload
