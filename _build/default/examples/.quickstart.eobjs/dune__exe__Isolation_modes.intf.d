examples/isolation_modes.mli:
