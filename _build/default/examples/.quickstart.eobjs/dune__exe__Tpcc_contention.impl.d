examples/tpcc_contention.ml: List Printf Quill_harness Quill_quecc Quill_workloads Tpcc Tpcc_defs
