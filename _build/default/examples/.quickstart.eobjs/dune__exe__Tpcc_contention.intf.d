examples/tpcc_contention.mli:
