examples/quickstart.mli:
