examples/isolation_modes.ml: List Metrics Printf Quill_common Quill_quecc Quill_sim Quill_txn Quill_workloads Ycsb
