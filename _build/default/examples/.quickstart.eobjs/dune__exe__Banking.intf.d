examples/banking.mli:
