examples/distributed_demo.ml: List Metrics Printf Quill_dist Quill_sim Quill_txn Quill_workloads Ycsb
