(* The paper's high-contention motivation (section 2.1): on 1-warehouse
   TPC-C every transaction fights over the same warehouse and district
   rows.  Non-deterministic protocols pay for that with aborts and
   retries; the queue-oriented engine plans the conflicts away.

     dune exec examples/tpcc_contention.exe *)

open Quill_workloads
module E = Quill_harness.Experiment
module Qe = Quill_quecc.Engine

let () =
  let spec w =
    E.Tpcc
      (Tpcc.payment_mix { Tpcc.default with Tpcc_defs.warehouses = w; nparts = 8 })
  in
  List.iter
    (fun w ->
      let rows =
        List.map
          (fun engine ->
            let exp =
              E.make ~threads:8 ~txns:8192 ~batch_size:1024 engine (spec w)
            in
            {
              Quill_harness.Report.label = E.engine_name engine;
              metrics = E.run exp;
            })
          [
            E.Quecc (Qe.Conservative, Qe.Serializable);
            E.Twopl_nowait;
            E.Silo;
            E.Tictoc;
            E.Mvto;
          ]
      in
      Quill_harness.Report.print_table
        ~title:
          (Printf.sprintf
             "TPC-C NewOrder/Payment, %d warehouse(s), 8 cores (aborts = \
              wasted work)"
             w)
        rows)
    [ 1; 8 ]
