(* Building your own workload against the public API: a bank with
   overdraft-checked transfers.

   Each transfer is fragmented exactly as the paper's model prescribes:
   an abortable fragment reads the source account and aborts on
   insufficient funds; the debit carries a commit dependency on it; the
   credit is a commutative add.  The conserved-total invariant then holds
   under every engine.

     dune exec examples/banking.exe *)

open Quill_common
open Quill_storage
open Quill_txn
module Engine = Quill_quecc.Engine

let accounts = 10_000
let initial_balance = 1_000
let op_check = 0 (* abortable: abort when balance < amount *)
let op_debit = 1
let op_credit = 2

let build_db ~nparts =
  let db = Db.create ~nparts in
  let _ = Db.add_table db ~name:"account" ~nfields:1 ~capacity:accounts in
  Table.iter_dense
    (fun row ->
      row.Row.data.(0) <- initial_balance;
      Row.publish row)
    (Db.table_by_name db "account");
  db

let gen_transfer table rng tid =
  let src = Rng.int rng accounts in
  let dst = (src + 1 + Rng.int rng (accounts - 1)) mod accounts in
  let amount = 1 + Rng.int rng 2_000 in
  (* Deliberately sometimes more than a fresh account holds, so the
     overdraft check aborts a realistic fraction of transfers. *)
  Txn.make ~tid
    [|
      Fragment.make ~fid:0 ~table ~key:src ~mode:Fragment.Read ~op:op_check
        ~abortable:true ~args:[| amount |] ();
      Fragment.make ~fid:1 ~table ~key:src ~mode:Fragment.Rmw ~op:op_debit
        ~args:[| amount |] ();
      Fragment.make ~fid:2 ~table ~key:dst ~mode:Fragment.Rmw ~op:op_credit
        ~args:[| amount |] ();
    |]

let exec (ctx : Exec.ctx) (_ : Txn.t) (frag : Fragment.t) =
  let amount = frag.Fragment.args.(0) in
  if frag.Fragment.op = op_check then
    if ctx.Exec.read frag 0 < amount then Exec.Abort else Exec.Ok
  else begin
    (if frag.Fragment.op = op_debit then ctx.Exec.add frag 0 (-amount)
     else ctx.Exec.add frag 0 amount);
    Exec.Ok
  end

let make_workload ~nparts ~seed =
  let db = build_db ~nparts in
  let table = Db.table_id db "account" in
  let base = Rng.create seed in
  let seeds = Array.init 64 (fun _ -> Rng.next base) in
  let new_stream i =
    let rng = Rng.create seeds.(i mod 64) in
    let n = ref 0 in
    fun () ->
      incr n;
      gen_transfer table rng ((!n * 64) + (i mod 64))
  in
  {
    Workload.name = "banking";
    db;
    new_stream;
    exec;
    describe = "bank transfers with overdraft checks";
  }

let total_balance db =
  let acc = ref 0 in
  Table.iter_dense
    (fun row -> acc := !acc + row.Row.committed.(0))
    (Db.table_by_name db "account");
  !acc

let () =
  let expected = accounts * initial_balance in
  List.iter
    (fun (label, mode) ->
      let wl = make_workload ~nparts:4 ~seed:3 in
      let metrics =
        Engine.run
          {
            Engine.default_cfg with
            Engine.planners = 4;
            executors = 4;
            batch_size = 512;
            mode;
          }
          wl ~batches:16
      in
      let total = total_balance wl.Workload.db in
      Format.printf "%-14s %a@." label Metrics.pp metrics;
      Printf.printf "  money conserved: %s (total=%d)\n"
        (if total = expected then "OK" else "VIOLATED")
        total;
      (* No account may end negative: the overdraft check guarantees it
         under serializable execution. *)
      let negatives = ref 0 in
      Table.iter_dense
        (fun row -> if row.Row.committed.(0) < 0 then incr negatives)
        (Db.table_by_name wl.Workload.db "account");
      Printf.printf "  overdrawn accounts: %d\n" !negatives)
    [ ("speculative", Engine.Speculative); ("conservative", Engine.Conservative) ]
