(* Correctness of the baseline protocols.

   Non-deterministic engines can commit in any serializable order, so
   exact-state oracles don't apply; instead we check (a) the additive
   invariant (sum of field 0 = initial + committed deltas) on update-only
   YCSB, (b) completion without losing transactions, (c) run-to-run
   determinism of the simulation itself, and (d) for the deterministic
   engines (Calvin, serial) exact equality with the serial oracle. *)

open Quill_storage
open Quill_txn
open Quill_workloads
open Quill_protocols

let nd_cfg workers =
  { Nd_driver.default_cfg with Nd_driver.workers }

let all_cc : (string * (module Nd_driver.CC)) list =
  [
    ("2pl-nowait", (module Twopl.No_wait_cc));
    ("2pl-waitdie", (module Twopl.Wait_die_cc));
    ("silo", (module Silo));
    ("tictoc", (module Tictoc));
    ("mvto", (module Mvto));
  ]

let additive_check name run =
  (* update-only YCSB at high contention: conflicts guaranteed *)
  let cfg =
    Tutil.small_ycsb ~table_size:256 ~theta:0.9 ~read_ratio:0.0 ~mp_ratio:0.0 ()
  in
  let wl = Ycsb.make cfg in
  let initial = Tutil.sum_field0 wl.Workload.db "usertable" in
  let wl_rec, logs = Tutil.record wl in
  let m = run wl_rec in
  (* every generated transaction was either committed or logic-aborted *)
  let txns =
    Hashtbl.fold
      (fun _ v acc -> Quill_common.Vec.to_list v @ acc)
      logs []
  in
  let delta = Tutil.ycsb_committed_delta txns in
  Tutil.check_int (name ^ ": additive invariant") (initial + delta)
    (Tutil.sum_field0 wl.Workload.db "usertable");
  Tutil.check_int
    (name ^ ": no transaction lost")
    2_000
    (m.Metrics.committed + m.Metrics.logic_aborted)

let test_additive_all_nd () =
  List.iter
    (fun (name, cc) ->
      additive_check name (fun wl -> Nd_driver.run cc (nd_cfg 4) wl ~txns:2000))
    all_cc

let test_additive_hstore () =
  additive_check "hstore" (fun wl ->
      Hstore.run { Hstore.workers = 4; costs = Quill_sim.Costs.default } wl
        ~txns:2000)

let test_additive_calvin () =
  additive_check "calvin" (fun wl ->
      Calvin.run { Calvin.default_cfg with Calvin.workers = 3 } wl ~txns:2000)

let test_abort_rates_under_contention () =
  (* ND protocols must actually abort under contention — otherwise the
     whole comparison is vacuous — and still finish. *)
  List.iter
    (fun (name, cc) ->
      let wl =
        Ycsb.make (Tutil.small_ycsb ~table_size:64 ~theta:0.0 ~read_ratio:0.0 ())
      in
      let m = Nd_driver.run cc (nd_cfg 8) wl ~txns:1000 in
      Tutil.check_int (name ^ " commits") 1000 m.Metrics.committed;
      Tutil.check_bool (name ^ " experienced conflicts") true
        (m.Metrics.cc_aborts > 0))
    all_cc

let test_deterministic_engines_have_no_cc_aborts () =
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:64 ~theta:0.0 ()) in
  let m = Hstore.run { Hstore.workers = 4; costs = Quill_sim.Costs.default }
            wl ~txns:500
  in
  Tutil.check_int "hstore abort-free" 0 m.Metrics.cc_aborts;
  let wl2 = Ycsb.make (Tutil.small_ycsb ~table_size:64 ~theta:0.0 ()) in
  let m2 = Calvin.run { Calvin.default_cfg with Calvin.workers = 3 } wl2
             ~txns:500
  in
  Tutil.check_int "calvin abort-free" 0 m2.Metrics.cc_aborts

let test_calvin_matches_serial () =
  (* Calvin is deterministic: its state equals serial execution of the
     sequencer's stream order (stream 0). *)
  let cfg = Tutil.small_ycsb ~theta:0.9 ~abort_ratio:0.15 ~mp_ratio:0.3 () in
  let wl = Ycsb.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m =
    Calvin.run { Calvin.default_cfg with Calvin.workers = 4 } wl_rec ~txns:600
  in
  let wl_oracle = Ycsb.make cfg in
  let txns = Quill_common.Vec.to_list (Hashtbl.find logs 0) in
  let m2 = Quill_protocols.Serial.run_txns wl_oracle txns in
  Tutil.check_int "commits" m2.Metrics.committed m.Metrics.committed;
  Tutil.check_bool "state equals serial" true
    (Db.checksum wl.Workload.db = Db.checksum wl_oracle.Workload.db)

let test_run_to_run_determinism () =
  List.iter
    (fun (name, cc) ->
      let run () =
        let wl = Ycsb.make (Tutil.small_ycsb ~theta:0.9 ()) in
        let m = Nd_driver.run cc (nd_cfg 4) wl ~txns:800 in
        (Db.checksum wl.Workload.db, m.Metrics.cc_aborts, m.Metrics.elapsed)
      in
      Tutil.check_bool (name ^ " deterministic simulation") true
        (run () = run ()))
    all_cc

let test_serial_engine () =
  let cfg = Tutil.small_ycsb ~abort_ratio:0.2 ~read_ratio:0.0 () in
  let wl = Ycsb.make cfg in
  let initial = Tutil.sum_field0 wl.Workload.db "usertable" in
  let wl_rec, logs = Tutil.record wl in
  let m = Serial.run wl_rec ~txns:500 in
  Tutil.check_int "count" 500 (m.Metrics.committed + m.Metrics.logic_aborted);
  let txns = Quill_common.Vec.to_list (Hashtbl.find logs 0) in
  let delta = Tutil.ycsb_committed_delta txns in
  Tutil.check_int "serial additive" (initial + delta)
    (Tutil.sum_field0 wl.Workload.db "usertable");
  Tutil.check_int "serial never cc-aborts" 0 m.Metrics.cc_aborts

let test_hstore_partition_collapse () =
  (* The Table-2-row-1 mechanism: multi-partition transactions serialize
     H-Store's partitions, so throughput must collapse as MP% rises. *)
  let tput mp =
    let wl =
      Ycsb.make
        (Tutil.small_ycsb ~table_size:8_000 ~nparts:4 ~theta:0.0 ~mp_ratio:mp ())
    in
    let m = Hstore.run { Hstore.workers = 4; costs = Quill_sim.Costs.default }
              wl ~txns:2000
    in
    Metrics.throughput m
  in
  let t0 = tput 0.0 and t1 = tput 1.0 in
  Tutil.check_bool
    (Printf.sprintf "collapse (%.0f -> %.0f)" t0 t1)
    true
    (t1 < t0 /. 4.0)

let test_calvin_lock_manager_bottleneck () =
  (* Adding workers cannot push Calvin past its single-threaded lock
     manager: going 2 -> 8 workers helps far less than 4x. *)
  let tput workers =
    let wl = Ycsb.make (Tutil.small_ycsb ~table_size:8_000 ~theta:0.0 ()) in
    let m = Calvin.run { Calvin.default_cfg with Calvin.workers } wl ~txns:3000 in
    Metrics.throughput m
  in
  let t2 = tput 2 and t8 = tput 8 in
  Tutil.check_bool "sublinear worker scaling" true (t8 < t2 *. 2.0)

let test_plock () =
  let open Quill_sim in
  let s = Sim.create () in
  let l = Plock.create () in
  let order = ref [] in
  for i = 0 to 2 do
    Sim.spawn s (fun () ->
        Sim.tick s (i * 10);
        Plock.acquire s l;
        order := i :: !order;
        Sim.tick s 100;
        Plock.release s l)
  done;
  Tutil.check_int "parked" 0 (Sim.run s);
  Alcotest.(check (list int)) "fifo handoff" [ 0; 1; 2 ] (List.rev !order);
  Tutil.check_bool "free at end" false (Plock.held l)

let test_mvto_versions () =
  (* MVTO run leaves version chains bounded and committed = live. *)
  let wl = Ycsb.make (Tutil.small_ycsb ~table_size:64 ~read_ratio:0.5 ()) in
  let _ = Nd_driver.run (module Mvto) (nd_cfg 4) wl ~txns:1000 in
  Table.iter_dense
    (fun row ->
      Tutil.check_bool "chain bounded" true (List.length row.Row.versions <= 8);
      Tutil.check_int "committed = live" row.Row.data.(0) row.Row.committed.(0))
    (Db.table_by_name wl.Workload.db "usertable")

let prop_nd_additive =
  QCheck.Test.make ~name:"nd protocols keep the additive invariant" ~count:10
    QCheck.(pair (int_range 0 10_000) (int_range 0 4))
    (fun (seed, proto) ->
      let _, cc = List.nth all_cc proto in
      let cfg =
        Tutil.small_ycsb ~table_size:128 ~theta:0.8 ~read_ratio:0.0 ~seed ()
      in
      let wl = Ycsb.make cfg in
      let initial = Tutil.sum_field0 wl.Workload.db "usertable" in
      let wl_rec, logs = Tutil.record wl in
      let _ = Nd_driver.run cc (nd_cfg 3) wl_rec ~txns:300 in
      let txns =
        Hashtbl.fold (fun _ v acc -> Quill_common.Vec.to_list v @ acc) logs []
      in
      Tutil.sum_field0 wl.Workload.db "usertable"
      = initial + Tutil.ycsb_committed_delta txns)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "protocols"
    [
      ( "invariants",
        [
          Alcotest.test_case "additive: all nd protocols" `Quick
            test_additive_all_nd;
          Alcotest.test_case "additive: hstore" `Quick test_additive_hstore;
          Alcotest.test_case "additive: calvin" `Quick test_additive_calvin;
          Alcotest.test_case "serial engine" `Quick test_serial_engine;
          qc prop_nd_additive;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "nd protocols abort under contention" `Quick
            test_abort_rates_under_contention;
          Alcotest.test_case "deterministic engines never cc-abort" `Quick
            test_deterministic_engines_have_no_cc_aborts;
          Alcotest.test_case "calvin == serial oracle" `Quick
            test_calvin_matches_serial;
          Alcotest.test_case "run-to-run determinism" `Quick
            test_run_to_run_determinism;
          Alcotest.test_case "mvto version chains" `Quick test_mvto_versions;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "hstore multi-partition collapse" `Slow
            test_hstore_partition_collapse;
          Alcotest.test_case "calvin lock-manager bottleneck" `Slow
            test_calvin_lock_manager_bottleneck;
        ] );
      ("plock", [ Alcotest.test_case "fifo mutex" `Quick test_plock ]);
    ]
