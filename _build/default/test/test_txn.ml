open Quill_txn

let frag ?(abortable = false) ?(early = false) ?(deps = [||]) ~fid ~key mode =
  Fragment.make ~abortable ~early ~data_deps:deps ~fid ~table:0 ~key ~mode
    ~op:0 ()

(* ------------------------- fragment ------------------------- *)

let test_fragment_updates () =
  Tutil.check_bool "read" false (Fragment.updates (frag ~fid:0 ~key:0 Fragment.Read));
  Tutil.check_bool "write" true (Fragment.updates (frag ~fid:0 ~key:0 Fragment.Write));
  Tutil.check_bool "rmw" true (Fragment.updates (frag ~fid:0 ~key:0 Fragment.Rmw));
  Tutil.check_bool "insert" true (Fragment.updates (frag ~fid:0 ~key:0 Fragment.Insert))

(* ------------------------- txn ------------------------- *)

let test_txn_validation () =
  Alcotest.check_raises "fid order" (Invalid_argument "Txn.make: fid out of order")
    (fun () ->
      ignore (Txn.make ~tid:0 [| frag ~fid:1 ~key:0 Fragment.Read |]));
  Alcotest.check_raises "forward dep"
    (Invalid_argument "Txn.make: data dependency must point backwards")
    (fun () ->
      ignore
        (Txn.make ~tid:0
           [|
             frag ~fid:0 ~deps:[| 0 |] ~key:0 Fragment.Read;
           |]))

let test_commit_dep_computation () =
  (* Updating fragments get a commit dependency iff another fragment of
     the same txn may abort. *)
  let t =
    Txn.make ~tid:1
      [|
        frag ~fid:0 ~abortable:true ~key:0 Fragment.Read;
        frag ~fid:1 ~key:1 Fragment.Rmw;
        frag ~fid:2 ~key:2 Fragment.Read;
      |]
  in
  Tutil.check_int "n_abortable" 1 t.Txn.n_abortable;
  Tutil.check_bool "abortable read: no cdep" false
    t.Txn.frags.(0).Fragment.commit_dep;
  Tutil.check_bool "update: cdep" true t.Txn.frags.(1).Fragment.commit_dep;
  Tutil.check_bool "read: no cdep" false t.Txn.frags.(2).Fragment.commit_dep;
  (* no aborters: no commit deps at all *)
  let t2 =
    Txn.make ~tid:2
      [| frag ~fid:0 ~key:0 Fragment.Rmw; frag ~fid:1 ~key:1 Fragment.Write |]
  in
  Tutil.check_bool "no aborter" false t2.Txn.frags.(0).Fragment.commit_dep;
  (* an abortable updating fragment guards itself: no self commit-dep *)
  let t3 = Txn.make ~tid:3 [| frag ~fid:0 ~abortable:true ~key:0 Fragment.Rmw |] in
  Tutil.check_bool "self-guarding aborter" false
    t3.Txn.frags.(0).Fragment.commit_dep

let test_txn_read_only () =
  let ro =
    Txn.make ~tid:0
      [| frag ~fid:0 ~key:0 Fragment.Read; frag ~fid:1 ~key:1 Fragment.Read |]
  in
  Tutil.check_bool "read only" true (Txn.is_read_only ro);
  let rw =
    Txn.make ~tid:1
      [| frag ~fid:0 ~key:0 Fragment.Read; frag ~fid:1 ~key:1 Fragment.Rmw |]
  in
  Tutil.check_bool "not read only" false (Txn.is_read_only rw)

let test_txn_partitions () =
  let db = Quill_storage.Db.create ~nparts:4 in
  let _ = Quill_storage.Db.add_table db ~name:"t" ~nfields:1 ~capacity:100 in
  let t =
    Txn.make ~tid:0
      [|
        frag ~fid:0 ~key:0 Fragment.Read;
        frag ~fid:1 ~key:99 Fragment.Read;
        frag ~fid:2 ~key:1 Fragment.Read;
      |]
  in
  Alcotest.(check (list int)) "partitions" [ 0; 3 ] (Txn.partitions db t)

(* ------------------------- plan order ------------------------- *)

let test_plan_order () =
  let frags =
    [|
      frag ~fid:0 ~key:0 Fragment.Rmw;
      frag ~fid:1 ~abortable:true ~key:1 Fragment.Read;
      frag ~fid:2 ~key:2 Fragment.Write;
      frag ~fid:3 ~abortable:true ~deps:[| 0 |] ~key:3 Fragment.Read;
    |]
  in
  let t = Txn.make ~tid:0 frags in
  let ordered = Quill_quecc.Engine.plan_order_for_dist t.Txn.frags in
  (* dep-free abortable first; abortable-with-deps stays in place *)
  Tutil.check_int "aborter first" 1 ordered.(0).Fragment.fid;
  Alcotest.(check (list int))
    "rest in program order" [ 1; 0; 2; 3 ]
    (Array.to_list (Array.map (fun f -> f.Fragment.fid) ordered));
  (* empty txn is fine *)
  Tutil.check_int "empty" 0
    (Array.length (Quill_quecc.Engine.plan_order_for_dist [||]))

(* ------------------------- metrics ------------------------- *)

let test_metrics () =
  let m = Metrics.create () in
  m.Metrics.committed <- 1000;
  m.Metrics.elapsed <- 500_000_000;
  m.Metrics.cc_aborts <- 250;
  m.Metrics.busy <- 400_000_000;
  m.Metrics.threads <- 2;
  Alcotest.(check (float 1e-6)) "throughput" 2000.0 (Metrics.throughput m);
  Alcotest.(check (float 1e-6)) "abort rate" 0.2 (Metrics.abort_rate m);
  Alcotest.(check (float 1e-6)) "utilization" 0.4 (Metrics.utilization m);
  let empty = Metrics.create () in
  Alcotest.(check (float 1e-6)) "zero tput" 0.0 (Metrics.throughput empty);
  Alcotest.(check (float 1e-6)) "zero abort" 0.0 (Metrics.abort_rate empty)

(* ------------------------- workload serial executor ----------------- *)

let test_exec_txn_stops_at_abort () =
  let calls = ref [] in
  let wl =
    {
      Workload.name = "t";
      db = Quill_storage.Db.create ~nparts:1;
      new_stream = (fun _ () -> assert false);
      exec =
        (fun _ _ f ->
          calls := f.Fragment.fid :: !calls;
          if f.Fragment.fid = 1 then Exec.Abort else Exec.Ok);
      describe = "";
    }
  in
  let dummy_ctx =
    {
      Exec.read = (fun _ _ -> 0);
      write = (fun _ _ _ -> ());
      add = (fun _ _ _ -> ());
      insert = (fun _ ~key:_ _ -> ());
      input = (fun _ -> 0);
      output = (fun _ _ -> ());
      found = (fun _ -> true);
    }
  in
  let t =
    Txn.make ~tid:0
      [|
        frag ~fid:0 ~key:0 Fragment.Read;
        frag ~fid:1 ~key:1 Fragment.Read;
        frag ~fid:2 ~key:2 Fragment.Read;
      |]
  in
  Tutil.check_bool "aborts" true (Workload.exec_txn wl dummy_ctx t = Exec.Abort);
  Alcotest.(check (list int)) "stopped at abort" [ 0; 1 ] (List.rev !calls)

let () =
  Alcotest.run "txn"
    [
      ( "fragment",
        [ Alcotest.test_case "updates" `Quick test_fragment_updates ] );
      ( "txn",
        [
          Alcotest.test_case "validation" `Quick test_txn_validation;
          Alcotest.test_case "commit deps" `Quick test_commit_dep_computation;
          Alcotest.test_case "read only" `Quick test_txn_read_only;
          Alcotest.test_case "partitions" `Quick test_txn_partitions;
          Alcotest.test_case "plan order" `Quick test_plan_order;
        ] );
      ("metrics", [ Alcotest.test_case "math" `Quick test_metrics ]);
      ( "workload",
        [
          Alcotest.test_case "exec stops at abort" `Quick
            test_exec_txn_stops_at_abort;
        ] );
    ]
