(* TPC-C workload correctness: key encodings, generator conformance, and
   post-run consistency conditions (TPC-C clause 3.3 adapted to our
   schema): district order counters vs committed NewOrders, warehouse /
   district YTD vs committed Payments, order/order-line row counts. *)

open Quill_storage
open Quill_txn
open Quill_workloads
module Engine = Quill_quecc.Engine

(* ------------------------- encodings ------------------------- *)

let test_key_encodings () =
  let dk = Tpcc_defs.dkey ~w:3 ~d:7 in
  Tutil.check_int "dkey" 37 dk;
  Tutil.check_int "ckey" ((37 * 3000) + 123) (Tpcc_defs.ckey ~w:3 ~d:7 ~c:123);
  Tutil.check_int "skey" 300_042 (Tpcc_defs.skey ~w:3 ~i:42);
  let ok = Tpcc_defs.okey ~dk ~o:999 in
  Tutil.check_int "okey roundtrip" dk (Tpcc_defs.dkey_of_okey ok);
  let olk = Tpcc_defs.olkey ~ok ~ol:14 in
  Tutil.check_int "olkey low bits" 14 (olk land 15);
  Tutil.check_int "olkey embeds okey" ok (olk lsr 4)

let test_nurand_bounds () =
  let rng = Quill_common.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Tpcc_defs.nurand rng ~a:1023 ~x:0 ~y:2999 in
    Tutil.check_bool "nurand range" true (v >= 0 && v <= 2999)
  done

(* ------------------------- generator ------------------------- *)

let test_mix_ratios () =
  let cfg = Tutil.small_tpcc () in
  let wl = Tpcc.make cfg in
  let stream = wl.Workload.new_stream 0 in
  let h = Tpcc.handles wl in
  let counts = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  let n = 5_000 in
  for _ = 1 to n do
    let t = stream () in
    if Array.length t.Txn.frags = 0 then bump `Other
    else begin
      let f0 = t.Txn.frags.(0) in
      if f0.Fragment.op = Tpcc_defs.op_no_wh then bump `New_order
      else if f0.Fragment.op = Tpcc_defs.op_pay_wh then bump `Payment
      else if f0.Fragment.op = Tpcc_defs.op_os_cust then bump `Order_status
      else if f0.Fragment.op = Tpcc_defs.op_del_neworder then bump `Delivery
      else if f0.Fragment.op = Tpcc_defs.op_sl_dist then bump `Stock_level
      else bump `Other
    end
  done;
  ignore h;
  let pct k = 100 * Option.value ~default:0 (Hashtbl.find_opt counts k) / n in
  Tutil.check_bool "new order ~45%" true (abs (pct `New_order - 45) <= 3);
  Tutil.check_bool "payment ~43%" true (abs (pct `Payment - 43) <= 3);
  (* empty-delivery txns (nothing undelivered) have zero fragments *)
  Tutil.check_bool "minor txns present" true
    (pct `Order_status + pct `Delivery + pct `Stock_level + pct `Other > 5)

let test_new_order_structure () =
  let cfg = Tutil.small_tpcc ~payment_only:true () in
  let wl = Tpcc.make cfg in
  let stream = wl.Workload.new_stream 0 in
  let rec find_no n =
    if n = 0 then Alcotest.fail "no NewOrder generated"
    else
      let t = stream () in
      if
        Array.length t.Txn.frags > 0
        && t.Txn.frags.(0).Fragment.op = Tpcc_defs.op_no_wh
      then t
      else find_no (n - 1)
  in
  let t = find_no 100 in
  let ops = Array.map (fun f -> f.Fragment.op) t.Txn.frags in
  let count op = Array.fold_left (fun a o -> if o = op then a + 1 else a) 0 ops in
  let items = count Tpcc_defs.op_no_item in
  Tutil.check_bool "5-15 items" true (items >= 5 && items <= 15);
  Tutil.check_int "stock per item" items (count Tpcc_defs.op_no_stock);
  Tutil.check_int "ol insert per item" items (count Tpcc_defs.op_no_ins_ol);
  Tutil.check_int "one order insert" 1 (count Tpcc_defs.op_no_ins_order);
  Tutil.check_int "one new_order insert" 1
    (count Tpcc_defs.op_no_ins_neworder);
  (* item checks are abortable, early, dependency-free *)
  Array.iter
    (fun (f : Fragment.t) ->
      if f.Fragment.op = Tpcc_defs.op_no_item then begin
        Tutil.check_bool "abortable" true f.Fragment.abortable;
        Tutil.check_bool "early" true f.Fragment.early;
        Tutil.check_int "dep-free" 0 (Array.length f.Fragment.data_deps)
      end;
      if f.Fragment.op = Tpcc_defs.op_no_ins_ol then
        Tutil.check_bool "ol insert has commit dep" true f.Fragment.commit_dep)
    t.Txn.frags

(* ------------------------- consistency after runs ------------------- *)

type tally = {
  mutable new_orders : int array; (* committed NewOrders per dkey *)
  mutable pay_w : int array;      (* committed payment amounts per warehouse *)
  mutable pay_d : int array;      (* per dkey *)
}

let tally_of cfg txns =
  let dk_count = cfg.Tpcc_defs.warehouses * 10 in
  let t =
    {
      new_orders = Array.make dk_count 0;
      pay_w = Array.make cfg.Tpcc_defs.warehouses 0;
      pay_d = Array.make dk_count 0;
    }
  in
  List.iter
    (fun (txn : Txn.t) ->
      if txn.Txn.status = Txn.Committed && Array.length txn.Txn.frags > 0 then begin
        let f0 = txn.Txn.frags.(0) in
        if f0.Fragment.op = Tpcc_defs.op_no_wh then begin
          let d = txn.Txn.frags.(1) in
          t.new_orders.(d.Fragment.key) <- t.new_orders.(d.Fragment.key) + 1
        end
        else if f0.Fragment.op = Tpcc_defs.op_pay_wh then begin
          let amount = f0.Fragment.args.(0) in
          t.pay_w.(f0.Fragment.key) <- t.pay_w.(f0.Fragment.key) + amount;
          let d = txn.Txn.frags.(1) in
          t.pay_d.(d.Fragment.key) <- t.pay_d.(d.Fragment.key) + amount
        end
      end)
    txns;
  t

let check_consistency name cfg (wl : Workload.t) txns =
  let h = Tpcc.handles wl in
  let db = wl.Workload.db in
  let t = tally_of cfg txns in
  (* Consistency 1: d_next_o_id == committed NewOrders for that district *)
  Table.iter_dense
    (fun row ->
      Tutil.check_int
        (Printf.sprintf "%s: district %d order counter" name row.Row.key)
        t.new_orders.(row.Row.key)
        row.Row.committed.(Tpcc_defs.D.next_o_id))
    (Db.table db h.Tpcc_load.t_district);
  (* Consistency 2: w_ytd == initial + committed payments *)
  Table.iter_dense
    (fun row ->
      Tutil.check_int
        (Printf.sprintf "%s: warehouse %d ytd" name row.Row.key)
        (3_000_000_00 + t.pay_w.(row.Row.key))
        row.Row.committed.(Tpcc_defs.W.ytd))
    (Db.table db h.Tpcc_load.t_warehouse);
  (* Consistency 3: d_ytd == initial + committed district payments *)
  Table.iter_dense
    (fun row ->
      Tutil.check_int
        (Printf.sprintf "%s: district %d ytd" name row.Row.key)
        (300_000_00 + t.pay_d.(row.Row.key))
        row.Row.committed.(Tpcc_defs.D.ytd))
    (Db.table db h.Tpcc_load.t_district);
  (* Consistency 4: order rows == committed NewOrders *)
  let total_no = Array.fold_left ( + ) 0 t.new_orders in
  Tutil.check_int (name ^ ": orders inserted") total_no
    (Table.inserted_count (Db.table db h.Tpcc_load.t_orders));
  Tutil.check_int (name ^ ": new_order rows") total_no
    (Table.inserted_count (Db.table db h.Tpcc_load.t_new_order))

let run_quecc_consistency mode () =
  let cfg = Tutil.small_tpcc ~warehouses:2 () in
  let wl = Tpcc.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let _ =
    Engine.run
      { Engine.default_cfg with Engine.planners = 4; executors = 4;
        batch_size = 128; mode }
      wl_rec ~batches:4
  in
  let txns = Tutil.batch_order logs ~streams:4 ~batch_size:128 ~batches:4 in
  check_consistency "quecc" cfg wl txns

let test_quecc_speculative_consistency () =
  run_quecc_consistency Engine.Speculative ()

let test_quecc_conservative_consistency () =
  run_quecc_consistency Engine.Conservative ()

let test_nd_consistency () =
  List.iter
    (fun (name, (cc : (module Quill_protocols.Nd_driver.CC))) ->
      let cfg = Tutil.small_tpcc ~payment_only:true () in
      let wl = Tpcc.make cfg in
      let wl_rec, logs = Tutil.record wl in
      let _ =
        Quill_protocols.Nd_driver.run cc
          { Quill_protocols.Nd_driver.default_cfg with
            Quill_protocols.Nd_driver.workers = 4 }
          wl_rec ~txns:600
      in
      let txns =
        Hashtbl.fold (fun _ v acc -> Quill_common.Vec.to_list v @ acc) logs []
      in
      check_consistency name cfg wl txns)
    [
      ("2pl-nowait", (module Quill_protocols.Twopl.No_wait_cc));
      ("silo", (module Quill_protocols.Silo));
      ("tictoc", (module Quill_protocols.Tictoc));
      ("mvto", (module Quill_protocols.Mvto));
    ]

let test_quecc_matches_serial_full_mix () =
  let cfg = Tutil.small_tpcc ~warehouses:2 () in
  let wl = Tpcc.make cfg in
  let wl_rec, logs = Tutil.record wl in
  let m =
    Engine.run
      { Engine.default_cfg with Engine.planners = 4; executors = 4;
        batch_size = 128 }
      wl_rec ~batches:4
  in
  let cfg2 = Tutil.small_tpcc ~warehouses:2 () in
  let wl2 = Tpcc.make cfg2 in
  let txns = Tutil.batch_order logs ~streams:4 ~batch_size:128 ~batches:4 in
  let m2 = Quill_protocols.Serial.run_txns wl2 txns in
  Tutil.check_int "commits" m2.Metrics.committed m.Metrics.committed;
  Tutil.check_int "aborts" m2.Metrics.logic_aborted m.Metrics.logic_aborted;
  Tutil.check_bool "state" true
    (Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let test_invalid_items_abort () =
  let cfg =
    { (Tutil.small_tpcc ~payment_only:true ()) with
      Tpcc_defs.invalid_item_pct = 50 }
  in
  let wl = Tpcc.make cfg in
  let m =
    Engine.run
      { Engine.default_cfg with Engine.planners = 2; executors = 2;
        batch_size = 64 }
      wl ~batches:2
  in
  (* ~50% of ~50% NewOrders should abort *)
  Tutil.check_bool "aborts happen" true (m.Metrics.logic_aborted > 10);
  Tutil.check_bool "most still commit" true
    (m.Metrics.committed > m.Metrics.logic_aborted)

let test_customer_index () =
  let cfg = Tutil.small_tpcc () in
  let wl = Tpcc.make cfg in
  let h = Tpcc.handles wl in
  let idx = Db.index wl.Workload.db h.Tpcc_load.ix_cust_by_name in
  let tbl = Db.table wl.Workload.db h.Tpcc_load.t_customer in
  (* every indexed primary key carries the matching last name *)
  let checked = ref 0 in
  for last = 0 to 50 do
    List.iter
      (fun ck ->
        incr checked;
        let row = Table.dense tbl ck in
        Tutil.check_int "index consistent" last
          row.Row.committed.(Tpcc_defs.C.last))
      (Index.find idx last)
    (* dkey 0, last name [last] *)
  done;
  Tutil.check_bool "index nonempty" true (!checked > 0)

let prop_tpcc_quecc_oracle =
  QCheck.Test.make ~name:"tpcc: quecc == serial oracle across seeds" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let cfg = Tutil.small_tpcc ~seed () in
      let wl = Tpcc.make cfg in
      let wl_rec, logs = Tutil.record wl in
      let _ =
        Engine.run
          { Engine.default_cfg with Engine.planners = 2; executors = 4;
            batch_size = 64 }
          wl_rec ~batches:3
      in
      let wl2 = Tpcc.make cfg in
      let txns = Tutil.batch_order logs ~streams:2 ~batch_size:64 ~batches:3 in
      let _ = Quill_protocols.Serial.run_txns wl2 txns in
      Db.checksum wl.Workload.db = Db.checksum wl2.Workload.db)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "tpcc"
    [
      ( "schema",
        [
          Alcotest.test_case "key encodings" `Quick test_key_encodings;
          Alcotest.test_case "nurand bounds" `Quick test_nurand_bounds;
          Alcotest.test_case "customer index" `Quick test_customer_index;
        ] );
      ( "generator",
        [
          Alcotest.test_case "mix ratios" `Quick test_mix_ratios;
          Alcotest.test_case "new order structure" `Quick
            test_new_order_structure;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "quecc speculative" `Quick
            test_quecc_speculative_consistency;
          Alcotest.test_case "quecc conservative" `Quick
            test_quecc_conservative_consistency;
          Alcotest.test_case "nd protocols" `Quick test_nd_consistency;
          Alcotest.test_case "quecc == serial (full mix)" `Quick
            test_quecc_matches_serial_full_mix;
          Alcotest.test_case "invalid items abort" `Quick
            test_invalid_items_abort;
          qc prop_tpcc_quecc_oracle;
        ] );
    ]
