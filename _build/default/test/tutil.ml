(* Shared helpers for the test suites. *)

open Quill_common
open Quill_txn

(* Wrap a workload so every generated transaction is recorded per stream;
   [batch_order] then reconstructs the exact global order an engine with
   planner-major slicing processed. *)
let record (wl : Workload.t) =
  let logs : (int, Txn.t Vec.t) Hashtbl.t = Hashtbl.create 8 in
  let new_stream i =
    let s = wl.Workload.new_stream i in
    let v =
      match Hashtbl.find_opt logs i with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          Hashtbl.replace logs i v;
          v
    in
    fun () ->
      let t = s () in
      Vec.push v t;
      t
  in
  ({ wl with Workload.new_stream }, logs)

(* Global batch order for a planner-major engine: batch b consists of the
   b-th slice of every stream in stream order. *)
let batch_order logs ~streams ~batch_size ~batches =
  (* Mirror the engines' slice_bounds: the remainder goes to the first
     [batch_size mod streams] planners. *)
  let base = batch_size / streams and rem = batch_size mod streams in
  let count p = base + if p < rem then 1 else 0 in
  let acc = ref [] in
  for b = 0 to batches - 1 do
    for p = 0 to streams - 1 do
      let v = Hashtbl.find logs p in
      for j = 0 to count p - 1 do
        acc := Vec.get v ((b * count p) + j) :: !acc
      done
    done
  done;
  List.rev !acc

(* Epoch order for the distributed engines: per batch, node-major, then
   planner-major within the node. *)
let epoch_order logs ~streams ~batch_size ~batches =
  batch_order logs ~streams ~batch_size ~batches

let small_ycsb ?(table_size = 4_000) ?(nparts = 4) ?(theta = 0.6)
    ?(mp_ratio = 0.2) ?(abort_ratio = 0.0) ?(chain_deps = false)
    ?(read_ratio = 0.5) ?(seed = 42) () =
  {
    Quill_workloads.Ycsb.default with
    Quill_workloads.Ycsb.table_size;
    nparts;
    theta;
    mp_ratio;
    abort_ratio;
    abort_threshold = 100;
    chain_deps;
    read_ratio;
    seed;
  }

let small_tpcc ?(warehouses = 1) ?(nparts = 4) ?(seed = 9)
    ?(payment_only = false) () =
  let cfg =
    {
      Quill_workloads.Tpcc.default with
      Quill_workloads.Tpcc_defs.warehouses;
      nparts;
      items = 2_000;
      customers_per_district = 300;
      seed;
    }
  in
  if payment_only then Quill_workloads.Tpcc.payment_mix cfg else cfg

(* Sum of committed YCSB RMW deltas: the additive invariant oracle.  Every
   Rmw fragment with op op_rmw adds args.(0) to field 0; op_rmw_dep adds
   args.(0) + (dep value & 1023) which is not statically known, so the
   invariant tests use chain_deps = false workloads. *)
let ycsb_committed_delta txns =
  List.fold_left
    (fun acc (t : Txn.t) ->
      if t.Txn.status = Txn.Committed then
        Array.fold_left
          (fun acc (f : Fragment.t) ->
            if
              f.Fragment.op = Quill_workloads.Ycsb.op_rmw
              && f.Fragment.mode = Fragment.Rmw
            then acc + f.Fragment.args.(0)
            else acc)
          acc t.Txn.frags
      else acc)
    0 txns

let sum_field0 db name =
  let acc = ref 0 in
  Quill_storage.Table.iter_dense
    (fun row -> acc := !acc + row.Quill_storage.Row.committed.(0))
    (Quill_storage.Db.table_by_name db name);
  !acc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
