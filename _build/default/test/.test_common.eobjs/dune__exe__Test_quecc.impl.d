test/test_quecc.ml: Alcotest Db List Metrics Printf QCheck QCheck_alcotest Quill_common Quill_protocols Quill_quecc Quill_sim Quill_storage Quill_txn Quill_workloads Tutil Workload Ycsb
