test/tutil.ml: Alcotest Array Fragment Hashtbl List Quill_common Quill_storage Quill_txn Quill_workloads Txn Vec Workload
