test/test_sim.ml: Alcotest Array Buffer Gen List Printf QCheck QCheck_alcotest Quill_sim Sim Tutil
