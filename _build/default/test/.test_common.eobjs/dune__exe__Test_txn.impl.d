test/test_txn.ml: Alcotest Array Exec Fragment List Metrics Quill_quecc Quill_storage Quill_txn Tutil Txn Workload
