test/test_harness.ml: Alcotest List Metrics Quill_common Quill_harness Quill_quecc Quill_txn Tutil
