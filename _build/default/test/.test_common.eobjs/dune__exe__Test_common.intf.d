test/test_common.mli:
