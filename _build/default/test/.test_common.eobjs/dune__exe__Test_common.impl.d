test/test_common.ml: Alcotest Array Bitset Fun Gen Heap Int List Printf QCheck QCheck_alcotest Quill_common Rng Set Stats String Tablefmt Tutil Vec Zipf
