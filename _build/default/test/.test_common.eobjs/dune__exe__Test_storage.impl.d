test/test_storage.ml: Alcotest Array Db Index QCheck QCheck_alcotest Quill_storage Row Table Tutil
