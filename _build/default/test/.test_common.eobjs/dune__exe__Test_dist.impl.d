test/test_dist.ml: Alcotest Db Metrics Printf QCheck QCheck_alcotest Quill_dist Quill_protocols Quill_sim Quill_storage Quill_txn Quill_workloads Tpcc Tpcc_defs Tutil Workload Ycsb
