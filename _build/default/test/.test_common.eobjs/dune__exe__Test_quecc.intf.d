test/test_quecc.mli:
