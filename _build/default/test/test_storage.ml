open Quill_storage

let mk_table ?(capacity = 100) ?(nparts = 4) () =
  Table.create ~name:"t" ~nfields:3 ~capacity ~nparts ()

(* ------------------------- row ------------------------- *)

let test_row_publish_restore () =
  let r = Row.make ~key:1 ~nfields:3 in
  r.Row.data.(0) <- 10;
  Tutil.check_int "committed untouched" 0 r.Row.committed.(0);
  Row.publish r;
  Tutil.check_int "published" 10 r.Row.committed.(0);
  Row.restore r [| 7; 8; 9 |];
  Tutil.check_int "restored live" 7 r.Row.data.(0);
  Tutil.check_int "committed kept" 10 r.Row.committed.(0)

let test_row_batch_reset () =
  let r = Row.make ~key:1 ~nfields:2 in
  r.Row.inserter <- 5;
  r.Row.fstate <- [| (1, [ 2 ], []) |];
  r.Row.undo <- [ (1, 0, Row.Uset 0) ];
  Row.reset_batch_state r 7;
  Tutil.check_int "inserter reset" (-1) r.Row.inserter;
  Tutil.check_bool "fstate reset" true (Array.length r.Row.fstate = 0);
  Tutil.check_bool "undo reset" true (r.Row.undo = []);
  (* same batch: no re-reset *)
  r.Row.inserter <- 9;
  Row.reset_batch_state r 7;
  Tutil.check_int "idempotent per batch" 9 r.Row.inserter

(* ------------------------- table ------------------------- *)

let test_table_dense () =
  let t = mk_table () in
  Tutil.check_int "capacity" 100 (Table.capacity t);
  let r = Table.dense t 42 in
  Tutil.check_int "key" 42 r.Row.key;
  Tutil.check_bool "find dense" true (Table.find t 42 = Some r);
  Alcotest.check_raises "oob" (Invalid_argument "Table.dense t: key 100")
    (fun () -> ignore (Table.dense t 100))

let test_table_insert_find_remove () =
  let t = mk_table () in
  Tutil.check_bool "missing" true (Table.find t 5_000 = None);
  let r = Table.insert t ~home:2 ~key:5_000 [| 1; 2; 3 |] in
  Tutil.check_int "payload" 2 r.Row.data.(1);
  Tutil.check_int "committed at insert" 2 r.Row.committed.(1);
  Tutil.check_bool "found" true (Table.find t 5_000 = Some r);
  Tutil.check_int "home recorded" 2 (Table.home_of_key t 5_000);
  Tutil.check_int "inserted count" 1 (Table.inserted_count t);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Table.insert t: duplicate key 5000") (fun () ->
      ignore (Table.insert t ~home:0 ~key:5_000 [| 0; 0; 0 |]));
  Table.remove t 5_000;
  Tutil.check_bool "removed" true (Table.find t 5_000 = None);
  Alcotest.check_raises "remove dense"
    (Invalid_argument "Table.remove: dense keys cannot be removed") (fun () ->
      Table.remove t 10)

let test_table_range_partitioning () =
  let t = mk_table ~capacity:100 ~nparts:4 () in
  Tutil.check_int "first range" 0 (Table.home_of_key t 0);
  Tutil.check_int "second range" 1 (Table.home_of_key t 25);
  Tutil.check_int "last range" 3 (Table.home_of_key t 99);
  (* contiguity: homes are monotone in the key *)
  let prev = ref 0 in
  for k = 0 to 99 do
    let h = Table.home_of_key t k in
    Tutil.check_bool "monotone" true (h >= !prev);
    prev := h
  done

let test_table_custom_home () =
  let t =
    Table.create ~name:"orders" ~nfields:1 ~capacity:0 ~nparts:4
      ~home_fn:(fun key -> key lsr 24 mod 4) ()
  in
  let key = (7 lsl 24) lor 123 in
  Tutil.check_int "derived home" 3 (Table.home_of_key t key);
  let _ = Table.insert t ~home:(Table.home_of_key t key) ~key [| 1 |] in
  Tutil.check_int "still derived" 3 (Table.home_of_key t key)

(* ------------------------- index ------------------------- *)

let test_index () =
  let ix = Index.create ~name:"i" in
  Index.add ix 10 100;
  Index.add ix 10 101;
  Index.add ix 20 200;
  Alcotest.(check (list int)) "find order" [ 100; 101 ] (Index.find ix 10);
  Alcotest.(check (list int)) "missing" [] (Index.find ix 99);
  Tutil.check_bool "pop fifo" true (Index.pop_min ix 10 = Some 100);
  Alcotest.(check (list int)) "after pop" [ 101 ] (Index.find ix 10);
  Tutil.check_bool "pop again" true (Index.pop_min ix 10 = Some 101);
  Tutil.check_bool "pop empty" true (Index.pop_min ix 10 = None);
  Tutil.check_bool "pop missing" true (Index.pop_min ix 77 = None);
  Tutil.check_int "size" 2 (Index.size ix)

(* ------------------------- db ------------------------- *)

let test_db_catalog () =
  let db = Db.create ~nparts:4 in
  let a = Db.add_table db ~name:"a" ~nfields:2 ~capacity:10 in
  let b = Db.add_table db ~name:"b" ~nfields:1 ~capacity:0 in
  let ix = Db.add_index db ~name:"ia" in
  Tutil.check_int "ids dense" 0 a;
  Tutil.check_int "ids dense 2" 1 b;
  Tutil.check_int "index id" 0 ix;
  Tutil.check_int "ntables" 2 (Db.ntables db);
  Tutil.check_int "lookup" a (Db.table_id db "a");
  Tutil.check_bool "by name" true (Db.table_by_name db "a" == Db.table db a);
  Alcotest.check_raises "dup table" (Invalid_argument "Db.add_table: duplicate a")
    (fun () -> ignore (Db.add_table db ~name:"a" ~nfields:1 ~capacity:0));
  Alcotest.check_raises "unknown" (Invalid_argument "Db.table_id: unknown z")
    (fun () -> ignore (Db.table_id db "z"))

let test_db_checksum () =
  let mk () =
    let db = Db.create ~nparts:2 in
    let _ = Db.add_table db ~name:"t" ~nfields:2 ~capacity:16 in
    db
  in
  let d1 = mk () and d2 = mk () in
  Tutil.check_bool "equal initial" true (Db.checksum d1 = Db.checksum d2);
  let row = Table.dense (Db.table_by_name d1 "t") 3 in
  row.Row.data.(1) <- 99;
  Tutil.check_bool "live differs" true
    (Db.live_checksum d1 <> Db.live_checksum d2);
  Tutil.check_bool "committed unchanged" true (Db.checksum d1 = Db.checksum d2);
  Row.publish row;
  Tutil.check_bool "committed differs after publish" true
    (Db.checksum d1 <> Db.checksum d2);
  (* inserted rows affect the digest *)
  let _ = Table.insert (Db.table_by_name d2 "t") ~home:0 ~key:100 [| 0; 0 |] in
  Tutil.check_bool "insert changes digest" true
    (Db.checksum d2 <> Db.checksum (mk ()))

let prop_checksum_field_sensitive =
  QCheck.Test.make ~name:"checksum distinguishes single-field flips" ~count:50
    QCheck.(pair (int_bound 15) (int_bound 1))
    (fun (key, field) ->
      let db = Db.create ~nparts:2 in
      let _ = Db.add_table db ~name:"t" ~nfields:2 ~capacity:16 in
      let before = Db.checksum db in
      let row = Table.dense (Db.table_by_name db "t") key in
      row.Row.data.(field) <- 12345;
      Row.publish row;
      Db.checksum db <> before)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "storage"
    [
      ( "row",
        [
          Alcotest.test_case "publish/restore" `Quick test_row_publish_restore;
          Alcotest.test_case "batch reset" `Quick test_row_batch_reset;
        ] );
      ( "table",
        [
          Alcotest.test_case "dense" `Quick test_table_dense;
          Alcotest.test_case "insert/find/remove" `Quick
            test_table_insert_find_remove;
          Alcotest.test_case "range partitioning" `Quick
            test_table_range_partitioning;
          Alcotest.test_case "custom home" `Quick test_table_custom_home;
        ] );
      ("index", [ Alcotest.test_case "fifo index" `Quick test_index ]);
      ( "db",
        [
          Alcotest.test_case "catalog" `Quick test_db_catalog;
          Alcotest.test_case "checksum" `Quick test_db_checksum;
          qc prop_checksum_field_sensitive;
        ] );
    ]
