(** Benchmark report rendering: one row per engine/configuration with the
    metrics the paper reports (throughput, latency, aborts). *)

type row = {
  label : string;
  metrics : Quill_txn.Metrics.t;
}

val header : string list

val to_cells : ?baseline:float -> row -> string list
(** [baseline] is a throughput used for the speedup column (defaults to
    the row's own throughput, i.e. 1.00x). *)

val print_table : title:string -> row list -> unit
(** Prints the table with the FIRST row as the speedup baseline (so
    "x vs first" reads as QueCC-relative when QueCC is first). *)

val print_sweep :
  title:string -> param:string -> (string * row list) list -> unit
(** Series output: one table per parameter value. *)

val best_throughput : row list -> float
