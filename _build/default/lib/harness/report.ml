open Quill_common
open Quill_txn

type row = {
  label : string;
  metrics : Metrics.t;
}

let header =
  [
    "engine"; "tput (txn/s)"; "p50 lat"; "p99 lat"; "cc-aborts"; "commits";
    "util"; "msgs"; "x vs first";
  ]

let fmt_lat ns =
  if ns >= 1_000_000 then Printf.sprintf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else Printf.sprintf "%dns" ns

let to_cells ?baseline r =
  let m = r.metrics in
  let tput = Metrics.throughput m in
  let base = match baseline with Some b -> b | None -> tput in
  [
    r.label;
    Tablefmt.fmt_si tput;
    fmt_lat (Stats.Hist.percentile m.Metrics.lat 50.0);
    fmt_lat (Stats.Hist.percentile m.Metrics.lat 99.0);
    string_of_int m.Metrics.cc_aborts;
    string_of_int m.Metrics.committed;
    Printf.sprintf "%.2f" (Metrics.utilization m);
    string_of_int m.Metrics.msgs;
    (if base > 0.0 then Printf.sprintf "%.2fx" (tput /. base) else "-");
  ]

let print_table ~title rows =
  Printf.printf "\n== %s ==\n" title;
  match rows with
  | [] -> print_endline "(no rows)"
  | first :: _ ->
      let base = Metrics.throughput first.metrics in
      Tablefmt.print ~header
        (List.map (fun r -> to_cells ~baseline:base r) rows)

let print_sweep ~title ~param series =
  Printf.printf "\n== %s ==\n" title;
  List.iter
    (fun (value, rows) ->
      Printf.printf "-- %s = %s --\n" param value;
      match rows with
      | [] -> ()
      | first :: _ ->
          let base = Metrics.throughput first.metrics in
          Tablefmt.print ~header
            (List.map (fun r -> to_cells ~baseline:base r) rows))
    series

let best_throughput rows =
  List.fold_left
    (fun acc r -> Float.max acc (Metrics.throughput r.metrics))
    0.0 rows
