lib/harness/experiment.ml: Costs Printf Quill_dist Quill_protocols Quill_quecc Quill_sim Quill_workloads Tpcc Ycsb
