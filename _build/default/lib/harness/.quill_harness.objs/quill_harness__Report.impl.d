lib/harness/report.ml: Float List Metrics Printf Quill_common Quill_txn Stats Tablefmt
