lib/harness/report.mli: Quill_txn
