lib/harness/experiments.mli:
