lib/harness/experiments.ml: Experiment List Printf Quill_quecc Quill_workloads Report Tpcc Tpcc_defs Ycsb
