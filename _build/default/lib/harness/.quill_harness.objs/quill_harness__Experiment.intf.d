lib/harness/experiment.mli: Quill_quecc Quill_sim Quill_txn Quill_workloads
