lib/quecc/engine.mli: Quill_sim Quill_txn
