lib/quecc/engine.ml: Array Costs Db Exec Fragment List Metrics Printf Quill_common Quill_sim Quill_storage Quill_txn Row Sim Stats Table Txn Vec Workload
