lib/storage/row.ml: Array
