lib/storage/table.mli: Row
