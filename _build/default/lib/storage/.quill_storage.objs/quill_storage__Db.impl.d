lib/storage/db.ml: Array Hashtbl Index Quill_common Row Table Vec
