lib/storage/index.ml: Hashtbl Quill_common Vec
