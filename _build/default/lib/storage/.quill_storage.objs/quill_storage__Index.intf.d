lib/storage/index.mli: Quill_common
