lib/storage/row.mli:
