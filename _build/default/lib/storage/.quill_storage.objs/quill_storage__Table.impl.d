lib/storage/table.ml: Array Hashtbl Printf Row
