lib/storage/db.mli: Index Table
