lib/protocols/serial.ml: Array Costs Db Exec Fragment List Metrics Quill_common Quill_sim Quill_storage Quill_txn Row Sim Stats Table Txn Workload
