lib/protocols/nd_driver.ml: Costs Exec Metrics Printf Quill_common Quill_sim Quill_storage Quill_txn Rng Sim Stats Txn Workload
