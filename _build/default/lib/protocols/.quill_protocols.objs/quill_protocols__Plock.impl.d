lib/protocols/plock.ml: Queue Quill_sim Sim
