lib/protocols/silo.mli: Nd_driver
