lib/protocols/hstore.ml: Array Costs Db Exec Fragment List Metrics Pcommon Plock Printf Quill_common Quill_sim Quill_storage Quill_txn Sim Stats Txn Workload
