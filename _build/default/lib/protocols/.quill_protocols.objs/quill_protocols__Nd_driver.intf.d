lib/protocols/nd_driver.mli: Quill_sim Quill_storage Quill_txn
