lib/protocols/calvin.ml: Array Costs Db Exec Fragment Hashtbl List Metrics Pcommon Printf Queue Quill_common Quill_sim Quill_storage Quill_txn Sim Stats Txn Workload
