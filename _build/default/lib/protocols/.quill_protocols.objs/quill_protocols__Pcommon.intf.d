lib/protocols/pcommon.mli: Quill_sim Quill_storage Quill_txn
