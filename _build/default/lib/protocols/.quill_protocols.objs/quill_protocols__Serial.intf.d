lib/protocols/serial.mli: Quill_sim Quill_txn
