lib/protocols/plock.mli: Quill_sim
