lib/protocols/mvto.ml: Array Costs Db Exec Fragment List Pcommon Quill_sim Quill_storage Quill_txn Row Sim Table Txn Workload
