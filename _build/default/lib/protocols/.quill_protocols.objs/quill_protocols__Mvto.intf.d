lib/protocols/mvto.mli: Nd_driver
