lib/protocols/pcommon.ml: Array Costs Db Exec Fragment List Quill_sim Quill_storage Quill_txn Row Sim Table Txn Workload
