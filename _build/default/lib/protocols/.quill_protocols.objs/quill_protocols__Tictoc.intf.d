lib/protocols/tictoc.mli: Nd_driver
