lib/protocols/calvin.mli: Quill_sim Quill_txn
