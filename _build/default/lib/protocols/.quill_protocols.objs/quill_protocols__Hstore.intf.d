lib/protocols/hstore.mli: Quill_sim Quill_txn
