lib/protocols/twopl.mli: Nd_driver
