(** Strict two-phase locking with the NoWait and WaitDie
    deadlock-avoidance policies (the classic pessimistic baselines of
    Yu et al., VLDB'14).  Writes go in place under exclusive row locks
    with undo on abort; NoWait aborts on any conflict, WaitDie lets
    older transactions wait (spin) and kills younger ones. *)

type policy = No_wait | Wait_die

module Make (_ : sig
  val policy : policy
end) : Nd_driver.CC

module No_wait_cc : Nd_driver.CC
module Wait_die_cc : Nd_driver.CC
