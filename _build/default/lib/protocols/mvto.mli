(** Multi-version timestamp ordering — the representative of the
    multi-version engine class the paper compares against (Cicada,
    ERMIA, FOEDUS; DESIGN.md section 1 gives the substitution argument).
    Readers never block (older snapshots live on the row's version
    chain); writers abort on timestamp-order violations, with
    Cicada-style early aborts on doomed writes.  Plugs into
    {!Nd_driver}. *)

include Nd_driver.CC
