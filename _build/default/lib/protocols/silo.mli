(** Silo-style optimistic concurrency control (Tu et al., SOSP'13):
    invisible reads recording per-row TIDs, transaction-local write
    buffers, and a commit protocol that latches the write set in
    deterministic order, validates the read set and installs under a new
    TID.  Plugs into {!Nd_driver}. *)

include Nd_driver.CC
