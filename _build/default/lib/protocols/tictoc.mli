(** TicToc timestamp-ordering OCC (Yu et al., SIGMOD'16): rows carry a
    [wts, rts] validity interval; the commit timestamp is derived from
    the access set and read intervals are extended at validation, which
    admits schedules classic OCC aborts.  Plugs into {!Nd_driver}. *)

include Nd_driver.CC
