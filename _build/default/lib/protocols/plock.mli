(** FIFO mutex with ownership hand-off on the simulation substrate; used
    as H-Store's partition lock. *)

type t

val create : unit -> t

val acquire : Quill_sim.Sim.t -> t -> unit
(** Blocks (virtual time) until the lock is handed over, FIFO. *)

val release : Quill_sim.Sim.t -> t -> unit
val held : t -> bool
