(* FIFO mutex with ownership hand-off, used as H-Store's partition lock. *)

open Quill_sim

type t = {
  mutable held : bool;
  waiters : unit Sim.Ivar.iv Queue.t;
}

let create () = { held = false; waiters = Queue.create () }

let acquire sim t =
  if not t.held then t.held <- true
  else begin
    let iv = Sim.Ivar.create () in
    Queue.push iv t.waiters;
    (* Ownership is handed to us by the releaser. *)
    Sim.Ivar.read sim iv
  end

let release sim t =
  assert t.held;
  if Queue.is_empty t.waiters then t.held <- false
  else Sim.Ivar.fill sim (Queue.pop t.waiters) ()

let held t = t.held
