(** Skewed-access samplers used by the workload generators.

    [Zipf] implements the YCSB zipfian generator (Gray et al.'s rejection
    inversion as popularized by the YCSB core workloads), including the
    scrambled variant that spreads hot keys across the key space so that
    skew is not correlated with partition placement. *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n] prepares a sampler over [\[0, n)].  [theta] is the
    YCSB skew parameter: 0 is uniform, 0.99 is the classic "high
    contention" setting.  Cost: O(n) once (zeta precomputation). *)

val theta : t -> float
val cardinality : t -> int

val sample : t -> Rng.t -> int
(** Draw a key; key 0 is the hottest. *)

val sample_scrambled : t -> Rng.t -> int
(** Draw a key with the YCSB "scrambled zipfian" hash applied, decoupling
    hotness from key order. *)
