type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols && String.length cell > widths.(i) then
            widths.(i) <- String.length cell)
        row)
    rows;
  let buf = Buffer.create 256 in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let emit_row cells =
    let padded =
      List.mapi
        (fun i cell ->
          let a = List.nth aligns i in
          " " ^ pad a widths.(i) cell ^ " ")
        cells
    in
    Buffer.add_string buf ("|" ^ String.concat "|" padded ^ "|\n")
  in
  Buffer.add_string buf (sep ^ "\n");
  emit_row header;
  Buffer.add_string buf (sep ^ "\n");
  List.iter emit_row rows;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_si v =
  let abs = Float.abs v in
  if abs >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if abs >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else Printf.sprintf "%.2f" v
