lib/common/rng.ml: Array Int64
