lib/common/rng.mli:
