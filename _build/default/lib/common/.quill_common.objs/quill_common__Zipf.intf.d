lib/common/zipf.mli: Rng
