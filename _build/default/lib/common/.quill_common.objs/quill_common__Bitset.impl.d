lib/common/bitset.ml: Array Sys
