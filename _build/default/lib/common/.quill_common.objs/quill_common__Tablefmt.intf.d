lib/common/tablefmt.mli:
