lib/common/stats.mli:
