lib/common/stats.ml: Array
