lib/common/vec.mli:
