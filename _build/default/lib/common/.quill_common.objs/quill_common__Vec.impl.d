lib/common/vec.ml: Array
