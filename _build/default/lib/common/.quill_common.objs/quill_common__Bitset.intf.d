lib/common/bitset.mli:
