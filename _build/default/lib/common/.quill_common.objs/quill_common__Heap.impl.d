lib/common/heap.ml: Vec
