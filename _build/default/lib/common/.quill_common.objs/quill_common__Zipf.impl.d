lib/common/zipf.ml: Float Int64 Rng
