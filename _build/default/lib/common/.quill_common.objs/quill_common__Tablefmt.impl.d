lib/common/tablefmt.ml: Array Buffer Float List Printf String
