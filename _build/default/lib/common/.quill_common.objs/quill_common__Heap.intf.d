lib/common/heap.mli:
