(** Deterministic pseudo-random number generation.

    All randomness in Quill flows through this module so that every
    experiment is reproducible from a single seed.  The generator is
    SplitMix64 (Steele et al., OOPSLA 2014): tiny state, good statistical
    quality, and splittable, which lets us hand independent streams to
    planners, workers and workload generators without coordination. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an arbitrary seed. *)

val split : t -> t
(** [split t] returns a new generator statistically independent from the
    future output of [t]; [t] is advanced. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future output). *)

val next : t -> int
(** [next t] returns a uniform non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
