(** Growable arrays ([Dynarray] is stdlib 5.2+; this container fills the
    gap for OCaml 5.1).  Amortized O(1) push; O(1) random access. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit
(** Resets length to 0 (keeps capacity; releases element references). *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
