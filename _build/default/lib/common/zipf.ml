type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ?(theta = 0.99) n =
  assert (n > 0);
  assert (theta >= 0.0 && theta < 1.0);
  if theta = 0.0 then
    { n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; half_pow_theta = 0.0 }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow_theta = 0.5 ** theta }
  end

let theta t = t.theta
let cardinality t = t.n

let sample t rng =
  if t.theta = 0.0 then Rng.int rng t.n
  else begin
    let u = Rng.float rng 1.0 in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else
      let v =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
      in
      let k = int_of_float v in
      if k >= t.n then t.n - 1 else if k < 0 then 0 else k
  end

(* FNV-1a finalizer, as used by YCSB's ScrambledZipfian. *)
let fnv_hash x =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let x = ref (Int64.of_int x) in
  for _ = 0 to 7 do
    let octet = Int64.to_int (Int64.logand !x 0xffL) in
    x := Int64.shift_right_logical !x 8;
    h := Int64.logxor !h (Int64.of_int octet);
    h := Int64.mul !h prime
  done;
  Int64.to_int (Int64.shift_right_logical !h 2)

let sample_scrambled t rng =
  let k = sample t rng in
  if t.theta = 0.0 then k else fnv_hash k mod t.n
