type 'a t = {
  cmp : 'a -> 'a -> int;
  v : 'a Vec.t;
}

let create ~cmp = { cmp; v = Vec.create () }
let length t = Vec.length t.v
let is_empty t = Vec.is_empty t.v

let swap t i j =
  let x = Vec.get t.v i in
  Vec.set t.v i (Vec.get t.v j);
  Vec.set t.v j x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Vec.get t.v i) (Vec.get t.v parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && t.cmp (Vec.get t.v l) (Vec.get t.v !smallest) < 0 then
    smallest := l;
  if r < n && t.cmp (Vec.get t.v r) (Vec.get t.v !smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  Vec.push t.v x;
  sift_up t (length t - 1)

let peek t = if is_empty t then None else Some (Vec.get t.v 0)

let pop t =
  let n = length t in
  if n = 0 then None
  else begin
    let top = Vec.get t.v 0 in
    swap t 0 (n - 1);
    ignore (Vec.pop t.v);
    if not (is_empty t) then sift_down t 0;
    Some top
  end

let clear t = Vec.clear t.v
