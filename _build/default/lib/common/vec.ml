type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 8) () = { data = [||]; len = -capacity }
(* Empty vectors carry no element witness; we stash the desired capacity in
   a negative [len] until the first push provides one. *)

let length t = if t.len < 0 then 0 else t.len
let is_empty t = length t = 0

let grow t x =
  if t.len < 0 then begin
    let cap = max 1 (-t.len) in
    t.data <- Array.make cap x;
    t.len <- 0
  end
  else begin
    let cap = max 1 (2 * Array.length t.data) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  if t.len < 0 || t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if length t = 0 then None
  else begin
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    t.data.(t.len) <- t.data.(0);
    (* overwrite with a live value to avoid keeping [x] reachable *)
    Some x
  end

let get t i =
  if i < 0 || i >= length t then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= length t then invalid_arg "Vec.set";
  t.data.(i) <- x

let clear t =
  if t.len > 0 then begin
    (* Drop references so the GC can reclaim elements. *)
    let keep = t.data.(0) in
    Array.fill t.data 0 t.len keep;
    t.len <- 0
  end

let iter f t =
  for i = 0 to length t - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to length t - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < length t && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 (length t)
let to_list t = Array.to_list (to_array t)

let of_array a =
  if Array.length a = 0 then create ()
  else { data = Array.copy a; len = Array.length a }

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 (Array.length a)
