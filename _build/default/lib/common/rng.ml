type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next64 t }
let copy t = { state = t.state }

(* Keep results non-negative by dropping the top two bits: a 62-bit range
   is plenty and avoids [abs min_int] pitfalls. *)
let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias on large bounds. *)
  let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
  let rec go () =
    let v = next t in
    if v < limit then v mod bound else go ()
  in
  go ()

let int_incl t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L
let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
