(** Plain-text table rendering for benchmark reports and examples. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with box-drawing rules and
    per-column widths.  [align] defaults to [Left] for the first column and
    [Right] for the rest (the usual label-then-numbers layout). *)

val print : ?align:align list -> header:string list -> string list list -> unit

val fmt_float : ?decimals:int -> float -> string
val fmt_si : float -> string
(** Engineering notation with an SI suffix: [fmt_si 1.23e6 = "1.23M"]. *)
