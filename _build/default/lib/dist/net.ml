open Quill_sim

type 'a t = {
  sim : Sim.t;
  costs : Costs.t;
  inboxes : 'a Sim.Chan.ch array;
  mutable msgs : int;
  mutable bytes : int;
}

let create sim costs ~nodes =
  assert (nodes > 0);
  {
    sim;
    costs;
    inboxes = Array.init nodes (fun _ -> Sim.Chan.create ());
    msgs = 0;
    bytes = 0;
  }

let nodes t = Array.length t.inboxes

let send t ~src ~dst ~bytes m =
  if src = dst then Sim.Chan.send t.sim t.inboxes.(dst) m
  else begin
    t.msgs <- t.msgs + 1;
    t.bytes <- t.bytes + bytes;
    Sim.tick t.sim t.costs.Costs.msg_fixed;
    let delay =
      t.costs.Costs.net_latency + (bytes * t.costs.Costs.msg_per_byte / 1000)
    in
    Sim.Chan.send ~delay t.sim t.inboxes.(dst) m
  end

let recv t ~node =
  let m = Sim.Chan.recv t.sim t.inboxes.(node) in
  Sim.tick t.sim t.costs.Costs.msg_fixed;
  m

let messages_sent t = t.msgs
let bytes_sent t = t.bytes
