lib/dist/net.mli: Quill_sim
