lib/dist/net.ml: Array Costs Quill_sim Sim
