lib/dist/dist_quecc.ml: Array Costs Db Exec Fragment Hashtbl List Metrics Net Printf Quill_common Quill_quecc Quill_sim Quill_storage Quill_txn Row Sim Stats Table Txn Vec Workload
