lib/dist/dist_calvin.ml: Array Costs Db Exec Fragment Hashtbl List Metrics Net Printf Queue Quill_common Quill_quecc Quill_sim Quill_storage Quill_txn Row Sim Stats Table Txn Vec Workload
