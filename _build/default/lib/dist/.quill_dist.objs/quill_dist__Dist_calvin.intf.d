lib/dist/dist_calvin.mli: Quill_sim Quill_txn
