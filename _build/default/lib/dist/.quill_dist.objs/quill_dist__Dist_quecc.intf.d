lib/dist/dist_quecc.mli: Quill_sim Quill_txn
