(** Simulated cluster interconnect: one FIFO inbox per node, messages
    carry a payload size used for serialization and propagation costs.
    Senders pay [Costs.msg_fixed] CPU; delivery is delayed by
    [Costs.net_latency] plus a per-byte term; receivers pay
    [Costs.msg_fixed] on receipt (charged by the node's demux thread
    calling [recv]).  Loopback sends are free and instantaneous. *)

type 'a t

val create : Quill_sim.Sim.t -> Quill_sim.Costs.t -> nodes:int -> 'a t
val nodes : 'a t -> int

val send : 'a t -> src:int -> dst:int -> bytes:int -> 'a -> unit
(** Must be called from a simulated thread on node [src]. *)

val recv : 'a t -> node:int -> 'a
(** Blocking receive from the node's inbox. *)

val messages_sent : 'a t -> int
(** Total non-loopback messages. *)

val bytes_sent : 'a t -> int
