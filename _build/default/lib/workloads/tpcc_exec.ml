(* Fragment-logic interpreter: the stored-procedure bodies of the five
   TPC-C transactions, written once against the engine-neutral
   execution context. *)

open Quill_txn
open Tpcc_defs

let exec (ctx : Exec.ctx) (_txn : Txn.t) (frag : Fragment.t) : Exec.outcome =
  let op = frag.Fragment.op in
  let args = frag.Fragment.args in
  let deps = frag.Fragment.data_deps in
  (* --- NewOrder --- *)
  if op = op_no_wh then begin
    ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag W.tax);
    Exec.Ok
  end
  else if op = op_no_dist then begin
    let tax = ctx.Exec.read frag D.tax in
    (* Order ids are pre-assigned (DESIGN.md), so the next_o_id bump is a
       pure commutative increment: no one consumes the stored value. *)
    ctx.Exec.add frag D.next_o_id 1;
    ctx.Exec.output frag.Fragment.fid tax;
    Exec.Ok
  end
  else if op = op_no_cust then begin
    ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag C.discount);
    Exec.Ok
  end
  else if op = op_no_item then begin
    if not (ctx.Exec.found frag) then Exec.Abort
    else begin
      ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag I.price);
      Exec.Ok
    end
  end
  else if op = op_no_stock then begin
    let qty = args.(0) and remote = args.(1) in
    let q = ctx.Exec.read frag S.quantity in
    let q' = if q >= qty + 10 then q - qty else q - qty + 91 in
    ctx.Exec.write frag S.quantity q';
    ctx.Exec.add frag S.ytd qty;
    ctx.Exec.add frag S.order_cnt 1;
    if remote = 1 then ctx.Exec.add frag S.remote_cnt 1;
    Exec.Ok
  end
  else if op = op_no_ins_order then begin
    let payload = Array.make O.nfields 0 in
    payload.(O.c) <- args.(0);
    payload.(O.ol_cnt) <- args.(1);
    ctx.Exec.insert frag ~key:frag.Fragment.key payload;
    Exec.Ok
  end
  else if op = op_no_ins_neworder then begin
    ctx.Exec.insert frag ~key:frag.Fragment.key (Array.make NO.nfields 0);
    Exec.Ok
  end
  else if op = op_no_ins_ol then begin
    let price = ctx.Exec.input deps.(0) in
    let qty = args.(0) and supply = args.(1) and item = args.(2) in
    let payload = Array.make OL.nfields 0 in
    payload.(OL.i) <- item;
    payload.(OL.qty) <- qty;
    payload.(OL.amount) <- qty * price;
    payload.(OL.supply_w) <- supply;
    ctx.Exec.insert frag ~key:frag.Fragment.key payload;
    Exec.Ok
  end
  (* --- Payment --- *)
  else if op = op_pay_wh then begin
    ctx.Exec.add frag W.ytd args.(0);
    Exec.Ok
  end
  else if op = op_pay_dist then begin
    ctx.Exec.add frag D.ytd args.(0);
    Exec.Ok
  end
  else if op = op_pay_cust then begin
    let h = args.(0) in
    ctx.Exec.add frag C.balance (-h);
    ctx.Exec.add frag C.ytd_payment h;
    ctx.Exec.add frag C.payment_cnt 1;
    Exec.Ok
  end
  else if op = op_pay_ins_hist then begin
    let payload = Array.make H.nfields 0 in
    payload.(H.amount) <- args.(0);
    payload.(H.wd) <- args.(1);
    payload.(H.c) <- args.(2);
    ctx.Exec.insert frag ~key:frag.Fragment.key payload;
    Exec.Ok
  end
  (* --- OrderStatus --- *)
  else if op = op_os_cust then begin
    ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag C.balance);
    Exec.Ok
  end
  else if op = op_os_order then begin
    ctx.Exec.output frag.Fragment.fid
      (if ctx.Exec.found frag then ctx.Exec.read frag O.carrier else 0);
    Exec.Ok
  end
  else if op = op_os_ol then begin
    ctx.Exec.output frag.Fragment.fid
      (if ctx.Exec.found frag then ctx.Exec.read frag OL.amount else 0);
    Exec.Ok
  end
  (* --- Delivery --- *)
  else if op = op_del_neworder then begin
    if ctx.Exec.found frag && ctx.Exec.read frag NO.delivered = 0 then begin
      ctx.Exec.write frag NO.delivered 1;
      ctx.Exec.output frag.Fragment.fid 1
    end
    else ctx.Exec.output frag.Fragment.fid 0;
    Exec.Ok
  end
  else if op = op_del_order then begin
    let gate = ctx.Exec.input deps.(0) in
    if gate = 1 && ctx.Exec.found frag then
      ctx.Exec.write frag O.carrier args.(0);
    Exec.Ok
  end
  else if op = op_del_ol then begin
    let gate = ctx.Exec.input deps.(0) in
    if gate = 1 && ctx.Exec.found frag then begin
      ctx.Exec.write frag OL.delivery_d 1;
      ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag OL.amount)
    end
    else ctx.Exec.output frag.Fragment.fid 0;
    Exec.Ok
  end
  else if op = op_del_cust then begin
    let gate = ctx.Exec.input deps.(0) in
    if gate = 1 && ctx.Exec.found frag then begin
      let sum = ref 0 in
      for i = 1 to Array.length deps - 1 do
        sum := !sum + ctx.Exec.input deps.(i)
      done;
      ctx.Exec.add frag C.balance !sum;
      ctx.Exec.add frag C.delivery_cnt 1
    end;
    Exec.Ok
  end
  (* --- StockLevel --- *)
  else if op = op_sl_dist then begin
    ctx.Exec.output frag.Fragment.fid (ctx.Exec.read frag D.next_o_id);
    Exec.Ok
  end
  else if op = op_sl_ol then begin
    ctx.Exec.output frag.Fragment.fid
      (if ctx.Exec.found frag then ctx.Exec.read frag OL.i else -1);
    Exec.Ok
  end
  else if op = op_sl_stock then begin
    (* The < threshold comparison is the query's predicate; the count is
       a client-side aggregate, so reading suffices. *)
    let _q = ctx.Exec.read frag S.quantity in
    Exec.Ok
  end
  else invalid_arg (Printf.sprintf "Tpcc_exec: unknown opcode %d" op)
