lib/workloads/tpcc_defs.ml: Quill_common Rng
