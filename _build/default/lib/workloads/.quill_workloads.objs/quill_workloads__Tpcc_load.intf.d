lib/workloads/tpcc_load.mli: Quill_storage Tpcc_defs
