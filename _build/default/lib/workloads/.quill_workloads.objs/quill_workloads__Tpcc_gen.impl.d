lib/workloads/tpcc_gen.ml: Array Fragment Hashtbl Queue Quill_common Quill_storage Quill_txn Rng Tpcc_defs Tpcc_load Txn Vec
