lib/workloads/tpcc_defs.mli: Quill_common
