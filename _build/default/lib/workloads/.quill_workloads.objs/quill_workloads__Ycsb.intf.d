lib/workloads/ycsb.mli: Quill_txn
