lib/workloads/tpcc.ml: Array Hashtbl Printf Quill_common Quill_txn Rng Tpcc_defs Tpcc_exec Tpcc_gen Tpcc_load Workload
