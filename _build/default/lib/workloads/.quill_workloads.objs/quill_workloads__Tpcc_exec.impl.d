lib/workloads/tpcc_exec.ml: Array C D Exec Fragment H I NO O OL Printf Quill_txn S Tpcc_defs Txn W
