lib/workloads/tpcc_exec.mli: Quill_txn
