lib/workloads/tpcc_gen.mli: Quill_common Quill_txn Tpcc_defs Tpcc_load
