lib/workloads/ycsb.ml: Array Db Exec Fragment Printf Quill_common Quill_storage Quill_txn Rng Row Table Txn Workload Zipf
