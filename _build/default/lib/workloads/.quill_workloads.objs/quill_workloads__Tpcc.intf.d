lib/workloads/tpcc.mli: Quill_txn Tpcc_defs Tpcc_load
