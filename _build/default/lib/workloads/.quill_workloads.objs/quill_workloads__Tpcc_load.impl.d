lib/workloads/tpcc_load.ml: Array C D Db H I Index NO O OL Quill_common Quill_storage Rng Row S Table Tpcc_defs W
