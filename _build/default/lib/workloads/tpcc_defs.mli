(** TPC-C schema constants: table ids are assigned by {!Tpcc_load}, this
    module owns key encodings, field layouts, opcodes and the standard
    random distributions (TPC-C v5.11 clause 2 / 4.3.2 / 4.3.3).

    All composite primary keys are packed into a single int:
    - district:   [w*10 + d]
    - customer:   [dkey*3000 + c]
    - stock:      [w*100000 + i]
    - orders:     [dkey << 24 | o]          (o is 0-based, pre-assigned)
    - order_line: [okey << 4 | ol]          (ol in 0..14)
    - new_order:  same key domain as orders
    - history:    generator-unique surrogate key

    Monetary amounts are fixed-point cents; tax/discount rates are
    x10000.  Text attributes are represented by integer surrogates
    (hashes), which preserves record sizes' order of magnitude and every
    access pattern while keeping rows as int arrays (see DESIGN.md). *)

type cfg = {
  warehouses : int;
  nparts : int;
  items : int;                 (** spec: 100_000; scale down for tests *)
  customers_per_district : int;(** spec: 3000 *)
  mix_new_order : int;         (** percentages, must sum to 100 *)
  mix_payment : int;
  mix_order_status : int;
  mix_delivery : int;
  mix_stock_level : int;
  remote_payment_pct : int;    (** spec: 15 *)
  remote_stock_pct : int;      (** spec: 1 (per order line) *)
  by_last_name_pct : int;      (** spec: 60 *)
  invalid_item_pct : int;      (** spec: 1 (of new-orders) *)
  seed : int;
}

val default : cfg
(** 1 warehouse, full-size tables, the standard 45/43/4/4/4 mix. *)

val payment_mix : cfg -> cfg
(** The QueCC-paper evaluation mix: 50% NewOrder / 50% Payment. *)

(* -- key encoding -- *)
val dkey : w:int -> d:int -> int
val ckey : w:int -> d:int -> c:int -> int
val skey : w:int -> i:int -> int
val okey : dk:int -> o:int -> int
val olkey : ok:int -> ol:int -> int
val dkey_of_okey : int -> int

(* -- field indexes -- *)
module W : sig
  val ytd : int
  val tax : int
  val nfields : int
end

module D : sig
  val ytd : int
  val tax : int
  val next_o_id : int
  val nfields : int
end

module C : sig
  val balance : int
  val ytd_payment : int
  val payment_cnt : int
  val discount : int
  val last : int
  val delivery_cnt : int
  val credit : int
  val nfields : int
end

module H : sig
  val amount : int
  val wd : int
  val c : int
  val nfields : int
end

module NO : sig
  val delivered : int
  val nfields : int
end

module O : sig
  val c : int
  val entry_d : int
  val carrier : int
  val ol_cnt : int
  val nfields : int
end

module OL : sig
  val i : int
  val qty : int
  val amount : int
  val delivery_d : int
  val supply_w : int
  val nfields : int
end

module I : sig
  val price : int
  val im : int
  val name : int
  val nfields : int
end

module S : sig
  val quantity : int
  val ytd : int
  val order_cnt : int
  val remote_cnt : int
  val nfields : int
end

(* -- opcodes (fragment logic selectors) -- *)
val op_no_wh : int
val op_no_dist : int
val op_no_cust : int
val op_no_item : int
val op_no_stock : int
val op_no_ins_order : int
val op_no_ins_neworder : int
val op_no_ins_ol : int
val op_pay_wh : int
val op_pay_dist : int
val op_pay_cust : int
val op_pay_ins_hist : int
val op_os_cust : int
val op_os_order : int
val op_os_ol : int
val op_del_neworder : int
val op_del_order : int
val op_del_ol : int
val op_del_cust : int
val op_sl_dist : int
val op_sl_ol : int
val op_sl_stock : int

(* -- random distributions -- *)
val nurand : Quill_common.Rng.t -> a:int -> x:int -> y:int -> int
(** Spec 2.1.6 non-uniform random, with the standard C constants. *)

val last_name_num : Quill_common.Rng.t -> int
(** NURand(255) last-name surrogate in [0, 999]. *)
