(* Schema creation and initial population (TPC-C clause 4.3.3, with the
   deviations documented in DESIGN.md: order-family tables start empty
   and text attributes are integer surrogates). *)

open Quill_common
open Quill_storage
open Tpcc_defs

type handles = {
  db : Db.t;
  t_warehouse : int;
  t_district : int;
  t_customer : int;
  t_history : int;
  t_new_order : int;
  t_orders : int;
  t_order_line : int;
  t_item : int;
  t_stock : int;
  ix_cust_by_name : int;  (* (dkey*1000 + last-name surrogate) -> ckeys *)
}

let build (cfg : cfg) =
  let w = cfg.warehouses in
  let db = Db.create ~nparts:cfg.nparts in
  let dcap = w * 10 in
  (* Hash placement for the hot scalar rows: with few warehouses, range
     partitioning would pile every district (and the whole order family)
     onto a few executors. *)
  let district_home dk = dk mod cfg.nparts in
  let order_home key = district_home (dkey_of_okey key) in
  let ol_home key = district_home (key lsr 28) in
  let t_warehouse =
    Db.add_table db ~name:"warehouse" ~nfields:W.nfields ~capacity:w
      ~home_fn:(fun wk -> wk mod cfg.nparts)
  in
  let t_district =
    Db.add_table db ~name:"district" ~nfields:D.nfields ~capacity:dcap
      ~home_fn:district_home
  in
  let t_customer =
    Db.add_table db ~name:"customer" ~nfields:C.nfields
      ~capacity:(dcap * cfg.customers_per_district)
  in
  let t_history =
    Db.add_table db ~name:"history" ~nfields:H.nfields ~capacity:0
  in
  let t_new_order =
    Db.add_table db ~name:"new_order" ~nfields:NO.nfields ~capacity:0
      ~home_fn:order_home
  in
  let t_orders =
    Db.add_table db ~name:"orders" ~nfields:O.nfields ~capacity:0
      ~home_fn:order_home
  in
  let t_order_line =
    Db.add_table db ~name:"order_line" ~nfields:OL.nfields ~capacity:0
      ~home_fn:ol_home
  in
  let t_item =
    Db.add_table db ~name:"item" ~nfields:I.nfields ~capacity:cfg.items
  in
  let t_stock =
    Db.add_table db ~name:"stock" ~nfields:S.nfields ~capacity:(w * 100_000)
  in
  let ix_cust_by_name = Db.add_index db ~name:"cust_by_name" in
  {
    db;
    t_warehouse;
    t_district;
    t_customer;
    t_history;
    t_new_order;
    t_orders;
    t_order_line;
    t_item;
    t_stock;
    ix_cust_by_name;
  }

let populate (cfg : cfg) h =
  let rng = Rng.create (cfg.seed * 31 + 5) in
  let db = h.db in
  Table.iter_dense
    (fun row ->
      row.Row.data.(W.ytd) <- 3_000_000_00;
      row.Row.data.(W.tax) <- Rng.int_incl rng 0 2000;
      Row.publish row)
    (Db.table db h.t_warehouse);
  Table.iter_dense
    (fun row ->
      row.Row.data.(D.ytd) <- 300_000_00;
      row.Row.data.(D.tax) <- Rng.int_incl rng 0 2000;
      row.Row.data.(D.next_o_id) <- 0;
      Row.publish row)
    (Db.table db h.t_district);
  let idx = Db.index db h.ix_cust_by_name in
  Table.iter_dense
    (fun row ->
      let ck = row.Row.key in
      let dk = ck / 3000 in
      (* Clause 4.3.3.1: the first 1000 customers of each district get
         sequential last names, the rest NURand(255). *)
      let cpos = ck mod 3000 in
      let last =
        if cpos < 1000 && cfg.customers_per_district >= 1000 then cpos
        else last_name_num rng
      in
      row.Row.data.(C.balance) <- -10_00;
      row.Row.data.(C.ytd_payment) <- 10_00;
      row.Row.data.(C.payment_cnt) <- 1;
      row.Row.data.(C.discount) <- Rng.int_incl rng 0 5000;
      row.Row.data.(C.last) <- last;
      row.Row.data.(C.delivery_cnt) <- 0;
      row.Row.data.(C.credit) <- (if Rng.int rng 100 < 10 then 1 else 0);
      Row.publish row;
      Index.add idx ((dk * 1000) + last) ck)
    (Db.table db h.t_customer);
  Table.iter_dense
    (fun row ->
      row.Row.data.(I.price) <- Rng.int_incl rng 100 10000;
      row.Row.data.(I.im) <- Rng.int_incl rng 1 10_000;
      row.Row.data.(I.name) <- Rng.int rng 1_000_000;
      Row.publish row)
    (Db.table db h.t_item);
  Table.iter_dense
    (fun row ->
      row.Row.data.(S.quantity) <- Rng.int_incl rng 10 100;
      row.Row.data.(S.ytd) <- 0;
      row.Row.data.(S.order_cnt) <- 0;
      row.Row.data.(S.remote_cnt) <- 0;
      Row.publish row)
    (Db.table db h.t_stock);
  ()

let make cfg =
  let h = build cfg in
  populate cfg h;
  h
