(** TPC-C (v5.11) as a fragmented transactional workload.

    All five transactions are implemented (NewOrder, Payment, OrderStatus,
    Delivery, StockLevel) over the full nine-table schema; see
    {!Tpcc_defs} for the key/field encodings and {!Tpcc_gen} for how the
    deterministic-processing requirements (up-front read/write sets,
    pre-assigned order ids, generation-time customer-by-last-name
    resolution) are met.  [Tpcc_defs.payment_mix] gives the 50/50
    NewOrder/Payment mix the QueCC evaluation uses for the paper's
    high-contention experiment (Table 2 row 3). *)

type cfg = Tpcc_defs.cfg

val default : cfg
val payment_mix : cfg -> cfg

val make : cfg -> Quill_txn.Workload.t
(** Builds and populates the database and returns the workload handle.
    Generator streams share the order-id / delivery bookkeeping, so they
    must all be created through this handle. *)

val handles : Quill_txn.Workload.t -> Tpcc_load.handles
(** Table handles of a workload created by [make] (for tests and
    invariant checks).  Raises [Not_found] for non-TPC-C workloads. *)
