open Quill_common
open Quill_txn

type cfg = Tpcc_defs.cfg

let default = Tpcc_defs.default
let payment_mix = Tpcc_defs.payment_mix

(* Registry so tests can recover the table handles from a workload. *)
let registry : (string, Tpcc_load.handles) Hashtbl.t = Hashtbl.create 4

let make (cfg : cfg) =
  assert (cfg.Tpcc_defs.warehouses > 0 && cfg.Tpcc_defs.nparts > 0);
  assert (
    cfg.Tpcc_defs.mix_new_order + cfg.Tpcc_defs.mix_payment
    + cfg.Tpcc_defs.mix_order_status + cfg.Tpcc_defs.mix_delivery
    + cfg.Tpcc_defs.mix_stock_level
    = 100);
  let h = Tpcc_load.make cfg in
  let book = Tpcc_gen.make_book cfg in
  let base = Rng.create cfg.Tpcc_defs.seed in
  let stream_seeds = Array.init 1024 (fun _ -> Rng.next base) in
  let new_stream i =
    let rng = Rng.create stream_seeds.(i mod 1024) in
    let counter = ref 0 in
    fun () ->
      let tid = (!counter * 1024) + (i mod 1024) in
      incr counter;
      Tpcc_gen.gen_txn cfg h book rng tid
  in
  let name =
    Printf.sprintf "tpcc-w%d-%d" cfg.Tpcc_defs.warehouses cfg.Tpcc_defs.seed
  in
  Hashtbl.replace registry name h;
  {
    Workload.name;
    db = h.Tpcc_load.db;
    new_stream;
    exec = Tpcc_exec.exec;
    describe =
      Printf.sprintf "TPC-C W=%d parts=%d mix=%d/%d/%d/%d/%d"
        cfg.Tpcc_defs.warehouses cfg.Tpcc_defs.nparts
        cfg.Tpcc_defs.mix_new_order cfg.Tpcc_defs.mix_payment
        cfg.Tpcc_defs.mix_order_status cfg.Tpcc_defs.mix_delivery
        cfg.Tpcc_defs.mix_stock_level;
  }

let handles (wl : Workload.t) = Hashtbl.find registry wl.Workload.name
