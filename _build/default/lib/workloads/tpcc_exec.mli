(** The stored-procedure bodies of the five TPC-C transactions,
    interpreted per fragment opcode (see {!Tpcc_defs}) against the
    engine-neutral execution context. *)

val exec :
  Quill_txn.Exec.ctx ->
  Quill_txn.Txn.t ->
  Quill_txn.Fragment.t ->
  Quill_txn.Exec.outcome
