(** TPC-C schema creation and initial population (clause 4.3.3, with the
    deviations documented in DESIGN.md: the order-family tables start
    empty, text attributes are integer surrogates).  The hot scalar
    tables (warehouse, district) and the order family use hash placement
    derived from the district embedded in the key, so an order always
    lives with its district. *)

type handles = {
  db : Quill_storage.Db.t;
  t_warehouse : int;
  t_district : int;
  t_customer : int;
  t_history : int;
  t_new_order : int;
  t_orders : int;
  t_order_line : int;
  t_item : int;
  t_stock : int;
  ix_cust_by_name : int;
      (** secondary index: [dkey * 1000 + last-name surrogate] -> ckeys *)
}

val build : Tpcc_defs.cfg -> handles
(** Create all nine tables and the customer-by-last-name index, empty. *)

val populate : Tpcc_defs.cfg -> handles -> unit
(** Load warehouses, districts, customers, items and stock per spec. *)

val make : Tpcc_defs.cfg -> handles
(** [build] then [populate]. *)
