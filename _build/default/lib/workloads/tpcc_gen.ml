(* Transaction generation (TPC-C clause 2) with the pre-assigned order-id
   scheme deterministic engines need (DESIGN.md): order ids are drawn from
   shared per-district counters at generation time; the district's
   next_o_id row is still read-modify-written at execution time, so the
   hot-spot contention is preserved exactly. *)

open Quill_common
open Quill_txn
open Tpcc_defs

(* Shared bookkeeping across generator streams. *)
type book = {
  next_o : int array;                                   (* per dkey *)
  undelivered : (int * int * int) Queue.t array;        (* (o, cnt, c) *)
  last_order : (int, int * int) Hashtbl.t;              (* ckey -> (okey, cnt) *)
  recent : (int * int array) option array array;        (* ring of 20 *)
  recent_pos : int array;
  mutable hseq : int;
}

let make_book (cfg : cfg) =
  let dk_count = cfg.warehouses * 10 in
  {
    next_o = Array.make dk_count 0;
    undelivered = Array.init dk_count (fun _ -> Queue.create ());
    last_order = Hashtbl.create 4096;
    recent = Array.make_matrix dk_count 20 None;
    recent_pos = Array.make dk_count 0;
    hseq = 0;
  }

let pick_customer (cfg : cfg) h rng ~w ~d =
  if Rng.int rng 100 < cfg.by_last_name_pct then begin
    (* By last name: position the cursor at the middle match (2.5.2.2). *)
    let dk = dkey ~w ~d in
    let last = last_name_num rng in
    let idx = Quill_storage.Db.index h.Tpcc_load.db h.Tpcc_load.ix_cust_by_name in
    match Quill_storage.Index.find idx ((dk * 1000) + last) with
    | [] -> ckey ~w ~d ~c:(nurand rng ~a:1023 ~x:0 ~y:(cfg.customers_per_district - 1))
    | l ->
        let arr = Array.of_list l in
        arr.(Array.length arr / 2)
  end
  else
    ckey ~w ~d ~c:(nurand rng ~a:1023 ~x:0 ~y:(cfg.customers_per_district - 1))

let gen_new_order (cfg : cfg) h book rng tid ~w =
  let d = Rng.int rng 10 in
  let dk = dkey ~w ~d in
  let ck = pick_customer cfg h rng ~w ~d in
  let cnt = Rng.int_incl rng 5 15 in
  let invalid = Rng.int rng 100 < cfg.invalid_item_pct in
  let items =
    Array.init cnt (fun k ->
        if invalid && k = cnt - 1 then cfg.items (* out of range *)
        else nurand rng ~a:8191 ~x:0 ~y:(cfg.items - 1))
  in
  let supply =
    Array.init cnt (fun _ ->
        if cfg.warehouses > 1 && Rng.int rng 100 < cfg.remote_stock_pct then
          Rng.int rng cfg.warehouses
        else w)
  in
  let qtys = Array.init cnt (fun _ -> Rng.int_incl rng 1 10) in
  let o = book.next_o.(dk) in
  book.next_o.(dk) <- o + 1;
  let ok = okey ~dk ~o in
  if not invalid then begin
    Queue.push (o, cnt, ck) book.undelivered.(dk);
    Hashtbl.replace book.last_order ck (ok, cnt);
    let pos = book.recent_pos.(dk) in
    book.recent.(dk).(pos mod 20) <- Some (o, Array.copy items);
    book.recent_pos.(dk) <- pos + 1
  end;
  let frags = Vec.create () in
  let fid () = Vec.length frags in
  let push f = Vec.push frags f in
  push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_warehouse ~key:w
          ~mode:Fragment.Read ~op:op_no_wh ());
  push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_district ~key:dk
          ~mode:Fragment.Rmw ~op:op_no_dist ());
  push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_customer ~key:ck
          ~mode:Fragment.Read ~op:op_no_cust ());
  let item_fids = Array.make cnt 0 in
  for k = 0 to cnt - 1 do
    item_fids.(k) <- fid ();
    push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_item ~key:items.(k)
            ~mode:Fragment.Read ~op:op_no_item ~abortable:true ~early:true ());
    push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_stock
            ~key:(skey ~w:supply.(k) ~i:(min items.(k) (cfg.items - 1)))
            ~mode:Fragment.Rmw ~op:op_no_stock
            ~args:[| qtys.(k); (if supply.(k) <> w then 1 else 0) |] ())
  done;
  push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_orders ~key:ok
          ~mode:Fragment.Insert ~op:op_no_ins_order ~args:[| ck; cnt |] ());
  push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_new_order ~key:ok
          ~mode:Fragment.Insert ~op:op_no_ins_neworder ());
  for k = 0 to cnt - 1 do
    push (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_order_line
            ~key:(olkey ~ok ~ol:k) ~mode:Fragment.Insert ~op:op_no_ins_ol
            ~data_deps:[| item_fids.(k) |]
            ~args:[| qtys.(k); supply.(k); min items.(k) (cfg.items - 1) |] ())
  done;
  Txn.make ~tid (Vec.to_array frags)

let gen_payment (cfg : cfg) h book rng tid ~w =
  let d = Rng.int rng 10 in
  let c_w, c_d =
    if cfg.warehouses > 1 && Rng.int rng 100 < cfg.remote_payment_pct then
      (Rng.int rng cfg.warehouses, Rng.int rng 10)
    else (w, d)
  in
  let ck = pick_customer cfg h rng ~w:c_w ~d:c_d in
  let amount = Rng.int_incl rng 100 500_000 in
  book.hseq <- book.hseq + 1;
  let hkey = book.hseq in
  [|
    Fragment.make ~fid:0 ~table:h.Tpcc_load.t_warehouse ~key:w
      ~mode:Fragment.Rmw ~op:op_pay_wh ~args:[| amount |] ();
    Fragment.make ~fid:1 ~table:h.Tpcc_load.t_district ~key:(dkey ~w ~d)
      ~mode:Fragment.Rmw ~op:op_pay_dist ~args:[| amount |] ();
    Fragment.make ~fid:2 ~table:h.Tpcc_load.t_customer ~key:ck
      ~mode:Fragment.Rmw ~op:op_pay_cust ~args:[| amount |] ();
    Fragment.make ~fid:3 ~table:h.Tpcc_load.t_history ~key:hkey
      ~mode:Fragment.Insert ~op:op_pay_ins_hist
      ~args:[| amount; dkey ~w ~d; ck |] ();
  |]
  |> Txn.make ~tid

let gen_order_status (cfg : cfg) h book rng tid ~w =
  let d = Rng.int rng 10 in
  let ck = pick_customer cfg h rng ~w ~d in
  let frags = Vec.create () in
  Vec.push frags
    (Fragment.make ~fid:0 ~table:h.Tpcc_load.t_customer ~key:ck
       ~mode:Fragment.Read ~op:op_os_cust ());
  (match Hashtbl.find_opt book.last_order ck with
  | None -> ()
  | Some (ok, cnt) ->
      Vec.push frags
        (Fragment.make ~fid:1 ~table:h.Tpcc_load.t_orders ~key:ok
           ~mode:Fragment.Read ~op:op_os_order ());
      for l = 0 to cnt - 1 do
        Vec.push frags
          (Fragment.make ~fid:(2 + l) ~table:h.Tpcc_load.t_order_line
             ~key:(olkey ~ok ~ol:l) ~mode:Fragment.Read ~op:op_os_ol ())
      done);
  Txn.make ~tid (Vec.to_array frags)

let gen_delivery (cfg : cfg) h book rng tid ~w =
  ignore cfg;
  let carrier = Rng.int_incl rng 1 10 in
  let frags = Vec.create () in
  let fid () = Vec.length frags in
  for d = 0 to 9 do
    let dk = dkey ~w ~d in
    match Queue.take_opt book.undelivered.(dk) with
    | None -> ()
    | Some (o, cnt, ck) ->
        let ok = okey ~dk ~o in
        let gate = fid () in
        Vec.push frags
          (Fragment.make ~fid:gate ~table:h.Tpcc_load.t_new_order ~key:ok
             ~mode:Fragment.Rmw ~op:op_del_neworder ());
        Vec.push frags
          (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_orders ~key:ok
             ~mode:Fragment.Rmw ~op:op_del_order ~data_deps:[| gate |]
             ~args:[| carrier |] ());
        let ol_fids = Array.make cnt 0 in
        for l = 0 to cnt - 1 do
          ol_fids.(l) <- fid ();
          Vec.push frags
            (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_order_line
               ~key:(olkey ~ok ~ol:l) ~mode:Fragment.Rmw ~op:op_del_ol
               ~data_deps:[| gate |] ())
        done;
        Vec.push frags
          (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_customer ~key:ck
             ~mode:Fragment.Rmw ~op:op_del_cust
             ~data_deps:(Array.append [| gate |] ol_fids) ())
  done;
  Txn.make ~tid (Vec.to_array frags)

let gen_stock_level (cfg : cfg) h book rng tid ~w =
  let d = Rng.int rng 10 in
  let dk = dkey ~w ~d in
  let threshold = Rng.int_incl rng 10 20 in
  let frags = Vec.create () in
  let fid () = Vec.length frags in
  Vec.push frags
    (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_district ~key:dk
       ~mode:Fragment.Read ~op:op_sl_dist ());
  let seen = Hashtbl.create 64 in
  let budget = ref 100 in
  Array.iter
    (fun slot ->
      match slot with
      | None -> ()
      | Some (o, items) ->
          let ok = okey ~dk ~o in
          Array.iteri
            (fun l item ->
              if !budget > 0 && item < cfg.items then begin
                decr budget;
                Vec.push frags
                  (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_order_line
                     ~key:(olkey ~ok ~ol:l) ~mode:Fragment.Read ~op:op_sl_ol ());
                if not (Hashtbl.mem seen item) then begin
                  Hashtbl.replace seen item ();
                  Vec.push frags
                    (Fragment.make ~fid:(fid ()) ~table:h.Tpcc_load.t_stock
                       ~key:(skey ~w ~i:item) ~mode:Fragment.Read
                       ~op:op_sl_stock ~args:[| threshold |] ())
                end
              end)
            items)
    book.recent.(dk);
  Txn.make ~tid (Vec.to_array frags)

let gen_txn (cfg : cfg) h book rng tid =
  let w = Rng.int rng cfg.warehouses in
  let roll = Rng.int rng 100 in
  let m1 = cfg.mix_new_order in
  let m2 = m1 + cfg.mix_payment in
  let m3 = m2 + cfg.mix_order_status in
  let m4 = m3 + cfg.mix_delivery in
  if roll < m1 then gen_new_order cfg h book rng tid ~w
  else if roll < m2 then gen_payment cfg h book rng tid ~w
  else if roll < m3 then gen_order_status cfg h book rng tid ~w
  else if roll < m4 then gen_delivery cfg h book rng tid ~w
  else gen_stock_level cfg h book rng tid ~w
