(** TPC-C transaction generation (clause 2) with the pre-assigned
    order-id scheme deterministic engines require (DESIGN.md section 6):
    order ids come from bookkeeping shared by all generator streams, the
    district's next_o_id row is still read-modify-written at execution
    time, customer-by-last-name is resolved against the static index,
    and Delivery / OrderStatus / StockLevel draw their targets from the
    shared bookkeeping. *)

type book
(** Shared cross-stream generator state (order counters, undelivered
    queues, last order per customer, recent orders per district). *)

val make_book : Tpcc_defs.cfg -> book

val gen_txn :
  Tpcc_defs.cfg ->
  Tpcc_load.handles ->
  book ->
  Quill_common.Rng.t ->
  int ->
  Quill_txn.Txn.t
(** Draw one transaction from the configured mix; the [int] is its tid. *)
