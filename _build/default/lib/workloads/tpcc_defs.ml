open Quill_common

type cfg = {
  warehouses : int;
  nparts : int;
  items : int;
  customers_per_district : int;
  mix_new_order : int;
  mix_payment : int;
  mix_order_status : int;
  mix_delivery : int;
  mix_stock_level : int;
  remote_payment_pct : int;
  remote_stock_pct : int;
  by_last_name_pct : int;
  invalid_item_pct : int;
  seed : int;
}

let default =
  {
    warehouses = 1;
    nparts = 1;
    items = 100_000;
    customers_per_district = 3000;
    mix_new_order = 45;
    mix_payment = 43;
    mix_order_status = 4;
    mix_delivery = 4;
    mix_stock_level = 4;
    remote_payment_pct = 15;
    remote_stock_pct = 1;
    by_last_name_pct = 60;
    invalid_item_pct = 1;
    seed = 7;
  }

let payment_mix cfg =
  {
    cfg with
    mix_new_order = 50;
    mix_payment = 50;
    mix_order_status = 0;
    mix_delivery = 0;
    mix_stock_level = 0;
  }

let dkey ~w ~d = (w * 10) + d
let ckey ~w ~d ~c = (dkey ~w ~d * 3000) + c
let skey ~w ~i = (w * 100_000) + i
let okey ~dk ~o = (dk lsl 24) lor o
let olkey ~ok ~ol = (ok lsl 4) lor ol
let dkey_of_okey ok = ok lsr 24

module W = struct
  let ytd = 0
  let tax = 1
  let nfields = 4
end

module D = struct
  let ytd = 0
  let tax = 1
  let next_o_id = 2
  let nfields = 4
end

module C = struct
  let balance = 0
  let ytd_payment = 1
  let payment_cnt = 2
  let discount = 3
  let last = 4
  let delivery_cnt = 5
  let credit = 6
  let nfields = 8
end

module H = struct
  let amount = 0
  let wd = 1
  let c = 2
  let nfields = 3
end

module NO = struct
  let delivered = 0
  let nfields = 1
end

module O = struct
  let c = 0
  let entry_d = 1
  let carrier = 2
  let ol_cnt = 3
  let nfields = 4
end

module OL = struct
  let i = 0
  let qty = 1
  let amount = 2
  let delivery_d = 3
  let supply_w = 4
  let nfields = 5
end

module I = struct
  let price = 0
  let im = 1
  let name = 2
  let nfields = 3
end

module S = struct
  let quantity = 0
  let ytd = 1
  let order_cnt = 2
  let remote_cnt = 3
  let nfields = 4
end

let op_no_wh = 10
let op_no_dist = 11
let op_no_cust = 12
let op_no_item = 13
let op_no_stock = 14
let op_no_ins_order = 15
let op_no_ins_neworder = 16
let op_no_ins_ol = 17
let op_pay_wh = 20
let op_pay_dist = 21
let op_pay_cust = 22
let op_pay_ins_hist = 23
let op_os_cust = 30
let op_os_order = 31
let op_os_ol = 32
let op_del_neworder = 40
let op_del_order = 41
let op_del_ol = 42
let op_del_cust = 43
let op_sl_dist = 50
let op_sl_ol = 51
let op_sl_stock = 52

(* Spec 2.1.6; C constants chosen once (any constant is spec-conformant
   for a given run). *)
let c_for_a a = match a with 255 -> 123 | 1023 -> 259 | 8191 -> 4099 | _ -> 42

let nurand rng ~a ~x ~y =
  let c = c_for_a a in
  ((((Rng.int_incl rng 0 a) lor Rng.int_incl rng x y) + c) mod (y - x + 1)) + x

let last_name_num rng = nurand rng ~a:255 ~x:0 ~y:999
