open Quill_common

type time = int

type t = {
  runq : entry Heap.t;
  mutable order : int;
  mutable current : thread option;
  mutable spawned : int;
  mutable completed : int;
  mutable busy : int;
  mutable idle : int;
  mutable horizon : time;
  wake_cost : int;
}

and thread = { tid : int; mutable clock : time }
and entry = { at : time; ord : int; resume : unit -> unit }

type _ Effect.t +=
  | Suspend : (thread -> (unit, unit) Effect.Deep.continuation -> unit)
      -> unit Effect.t

let compare_entry a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.ord b.ord

let create ?(wake_cost = 0) () =
  {
    runq = Heap.create ~cmp:compare_entry;
    order = 0;
    current = None;
    spawned = 0;
    completed = 0;
    busy = 0;
    idle = 0;
    horizon = 0;
    wake_cost;
  }

let schedule t ~at resume =
  if at > t.horizon then t.horizon <- at;
  Heap.push t.runq { at; ord = t.order; resume };
  t.order <- t.order + 1

let cur t =
  match t.current with
  | Some th -> th
  | None -> failwith "Sim: primitive used outside a simulated thread"

(* Build the closure that re-enters a parked thread. *)
let make_resume t th k () =
  t.current <- Some th;
  Effect.Deep.continue k ()

(* Park the calling thread; [f] receives the thread and its continuation
   and is responsible for scheduling it again (directly or via a waiter
   list). *)
let suspend (_ : t) f = Effect.perform (Suspend f)

let reschedule t th k = schedule t ~at:th.clock (make_resume t th k)

let spawn ?(at = 0) t body =
  let th = { tid = t.spawned; clock = at } in
  t.spawned <- t.spawned + 1;
  let start () =
    t.current <- Some th;
    Effect.Deep.match_with body ()
      {
        retc = (fun () -> t.completed <- t.completed + 1);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend f ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) -> f th k)
            | _ -> None);
      }
  in
  schedule t ~at start

let run t =
  let rec loop () =
    match Heap.pop t.runq with
    | None -> ()
    | Some e ->
        if e.at > t.horizon then t.horizon <- e.at;
        e.resume ();
        loop ()
  in
  loop ();
  t.current <- None;
  t.spawned - t.completed

let now t = (cur t).clock

let advance t th n =
  th.clock <- th.clock + n;
  if th.clock > t.horizon then t.horizon <- th.clock

(* Yield only when another thread is due at or before our new clock; this
   keeps the virtual-time ordering invariant while avoiding a heap
   operation per tick on quiet cores. *)
let maybe_yield t th =
  match Heap.peek t.runq with
  | Some e when e.at <= th.clock -> suspend t (fun th k -> reschedule t th k)
  | Some _ | None -> ()

let tick t n =
  let th = cur t in
  t.busy <- t.busy + n;
  advance t th n;
  maybe_yield t th

let sleep t n =
  let th = cur t in
  t.idle <- t.idle + n;
  advance t th n;
  maybe_yield t th

let yield t = suspend t (fun th k -> reschedule t th k)

let busy_time t = t.busy
let idle_time t = t.idle
let horizon t = t.horizon
let threads_spawned t = t.spawned
let threads_completed t = t.completed

let wake t th at resume =
  let at = if at > th.clock then at else th.clock in
  let at = at + t.wake_cost in
  schedule t ~at (fun () ->
      if at > th.clock then begin
        t.idle <- t.idle + (at - th.clock);
        th.clock <- at
      end;
      resume ())

module Ivar = struct
  type 'a state =
    | Empty of (thread * (unit -> unit)) Vec.t
    | Full of time * 'a

  type 'a iv = { mutable st : 'a state }

  let create () = { st = Empty (Vec.create ()) }
  let is_full iv = match iv.st with Full _ -> true | Empty _ -> false

  let fill t iv v =
    match iv.st with
    | Full _ -> invalid_arg "Sim.Ivar.fill: already full"
    | Empty waiters ->
        let at = now t in
        iv.st <- Full (at, v);
        Vec.iter (fun (th, r) -> wake t th at r) waiters

  let rec read t iv =
    match iv.st with
    | Full (tf, v) ->
        let th = cur t in
        if tf > th.clock then begin
          t.idle <- t.idle + (tf - th.clock);
          th.clock <- tf
        end;
        v
    | Empty waiters ->
        suspend t (fun th k -> Vec.push waiters (th, make_resume t th k));
        read t iv

  let peek iv = match iv.st with Full (_, v) -> Some v | Empty _ -> None
end

module Chan = struct
  type 'a ch = {
    q : (time * 'a) Queue.t;
    waiters : (thread * (unit -> unit)) Queue.t;
  }

  let create () = { q = Queue.create (); waiters = Queue.create () }

  let send ?(delay = 0) t ch v =
    let arrival = now t + delay in
    Queue.push (arrival, v) ch.q;
    if not (Queue.is_empty ch.waiters) then begin
      let th, r = Queue.pop ch.waiters in
      wake t th arrival r
    end

  let rec recv t ch =
    if Queue.is_empty ch.q then begin
      suspend t (fun th k -> Queue.push (th, make_resume t th k) ch.waiters);
      recv t ch
    end
    else begin
      let arrival, v = Queue.pop ch.q in
      let th = cur t in
      if arrival > th.clock then begin
        t.idle <- t.idle + (arrival - th.clock);
        th.clock <- arrival
      end;
      v
    end

  let try_recv t ch =
    match Queue.peek_opt ch.q with
    | Some (arrival, _) when arrival <= now t ->
        let _, v = Queue.pop ch.q in
        Some v
    | Some _ | None -> None

  let pending ch = Queue.length ch.q
end

module Barrier = struct
  type b = {
    parties : int;
    mutable arrived : int;
    mutable t_max : time;
    mutable waiters : (thread * (unit -> unit)) list;
  }

  let create parties =
    assert (parties > 0);
    { parties; arrived = 0; t_max = 0; waiters = [] }

  let await t b =
    let th = cur t in
    b.arrived <- b.arrived + 1;
    if th.clock > b.t_max then b.t_max <- th.clock;
    if b.arrived = b.parties then begin
      let release = b.t_max in
      let waiters = b.waiters in
      b.arrived <- 0;
      b.t_max <- 0;
      b.waiters <- [];
      List.iter (fun (wth, r) -> wake t wth release r) waiters;
      if release > th.clock then begin
        t.idle <- t.idle + (release - th.clock);
        th.clock <- release
      end
    end
    else
      suspend t (fun th k ->
          b.waiters <- (th, make_resume t th k) :: b.waiters)
end

module Gate = struct
  type g = { mutable remaining : int; iv : unit Ivar.iv }

  let create n =
    assert (n >= 0);
    let g = { remaining = n; iv = Ivar.create () } in
    if n = 0 then g.iv.Ivar.st <- Ivar.Full (0, ());
    g

  let arrive t g =
    if g.remaining <= 0 then invalid_arg "Sim.Gate.arrive: already open";
    g.remaining <- g.remaining - 1;
    if g.remaining = 0 then Ivar.fill t g.iv ()

  let await t g = Ivar.read t g.iv
  let pending g = g.remaining
end
