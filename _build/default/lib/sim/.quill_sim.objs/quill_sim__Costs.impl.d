lib/sim/costs.ml:
