lib/sim/costs.mli:
