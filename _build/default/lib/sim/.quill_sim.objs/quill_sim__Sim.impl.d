lib/sim/sim.ml: Effect Heap List Queue Quill_common Vec
