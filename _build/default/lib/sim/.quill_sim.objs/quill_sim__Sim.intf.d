lib/sim/sim.mli:
