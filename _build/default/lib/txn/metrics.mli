(** Run metrics shared by every engine. *)

type t = {
  mutable committed : int;
  mutable logic_aborted : int;  (** transactions whose final outcome is abort *)
  mutable cc_aborts : int;      (** concurrency-control aborts / retries (ND) *)
  mutable cascades : int;       (** speculative cascade re-executions *)
  lat : Quill_common.Stats.Hist.t;  (** commit latency, virtual ns *)
  mutable elapsed : int;        (** virtual ns covered by the run *)
  mutable busy : int;           (** CPU ns charged *)
  mutable idle : int;
  mutable threads : int;        (** virtual cores used *)
  mutable batches : int;
  mutable msgs : int;           (** messages sent (distributed engines) *)
}

val create : unit -> t

val throughput : t -> float
(** Committed transactions per virtual second. *)

val abort_rate : t -> float
(** cc aborts / (commits + cc aborts): wasted-execution fraction. *)

val utilization : t -> float
val pp : Format.formatter -> t -> unit
