open Quill_storage

type status = Pending | Active | Committed | Aborted

type t = {
  tid : int;
  frags : Fragment.t array;
  n_abortable : int;
  mutable status : status;
  mutable submit_time : int;
  mutable finish_time : int;
  mutable attempts : int;
}

let make ~tid frags =
  Array.iteri
    (fun i (f : Fragment.t) ->
      if f.Fragment.fid <> i then invalid_arg "Txn.make: fid out of order";
      Array.iter
        (fun d ->
          if d < 0 || d >= i then
            invalid_arg "Txn.make: data dependency must point backwards")
        f.Fragment.data_deps)
    frags;
  let n_abortable =
    Array.fold_left
      (fun acc (f : Fragment.t) -> if f.Fragment.abortable then acc + 1 else acc)
      0 frags
  in
  (* A fragment that updates the database carries a commit dependency when
     some *other* fragment of the same transaction may abort. *)
  Array.iter
    (fun (f : Fragment.t) ->
      let others = n_abortable - if f.Fragment.abortable then 1 else 0 in
      f.Fragment.commit_dep <- Fragment.updates f && others > 0)
    frags;
  {
    tid;
    frags;
    n_abortable;
    status = Pending;
    submit_time = 0;
    finish_time = 0;
    attempts = 0;
  }

let reset t = t.status <- Pending

let partitions db t =
  let parts =
    Array.fold_left
      (fun acc (f : Fragment.t) ->
        let p = Db.home db f.Fragment.table f.Fragment.key in
        if List.mem p acc then acc else p :: acc)
      [] t.frags
  in
  List.sort compare parts

let is_read_only t =
  not (Array.exists Fragment.updates t.frags)

let pp fmt t =
  Format.fprintf fmt "txn%d{%a}" t.tid
    (Format.pp_print_array
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       Fragment.pp)
    t.frags
