open Quill_common

type t = {
  mutable committed : int;
  mutable logic_aborted : int;
  mutable cc_aborts : int;
  mutable cascades : int;
  lat : Stats.Hist.t;
  mutable elapsed : int;
  mutable busy : int;
  mutable idle : int;
  mutable threads : int;
  mutable batches : int;
  mutable msgs : int;
}

let create () =
  {
    committed = 0;
    logic_aborted = 0;
    cc_aborts = 0;
    cascades = 0;
    lat = Stats.Hist.create ();
    elapsed = 0;
    busy = 0;
    idle = 0;
    threads = 0;
    batches = 0;
    msgs = 0;
  }

let throughput t =
  if t.elapsed <= 0 then 0.0
  else float_of_int t.committed /. (float_of_int t.elapsed /. 1e9)

let abort_rate t =
  let attempts = t.committed + t.cc_aborts in
  if attempts = 0 then 0.0 else float_of_int t.cc_aborts /. float_of_int attempts

let utilization t =
  let span = t.elapsed * t.threads in
  if span <= 0 then 0.0 else float_of_int t.busy /. float_of_int span

let pp fmt t =
  Format.fprintf fmt
    "commits=%d aborts(logic)=%d aborts(cc)=%d tput=%.0f txn/s p50=%dns p99=%dns util=%.2f"
    t.committed t.logic_aborted t.cc_aborts (throughput t)
    (Stats.Hist.percentile t.lat 50.0)
    (Stats.Hist.percentile t.lat 99.0)
    (utilization t)
