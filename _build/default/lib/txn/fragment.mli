(** Transaction fragments — the unit of work of the queue-oriented
    paradigm (paper section 3.1).

    A fragment performs one or more operations on a {e single} record
    (identified by a routing key known at planning time, per the
    deterministic full-read/write-set requirement).  A fragment may be
    {e abortable}: its logic can decide to abort the whole transaction.

    The four dependency kinds of the paper's Table 1 map onto this
    representation as follows:
    - {e data dependency} (same txn): [data_deps] lists the fragments
      whose published outputs this fragment consumes;
    - {e conflict dependency} (different txns, same record): implicit —
      enforced by FIFO order of the record's home execution queue;
    - {e commit dependency} (same txn): [commit_dep] marks fragments that
      update the database while a sibling fragment may still abort;
    - {e speculation dependency} (different txns): arises at run time in
      speculative mode when a fragment reads another transaction's
      uncommitted write; tracked by the executor, not here. *)

type mode =
  | Read
  | Write        (** blind write *)
  | Rmw          (** read-modify-write *)
  | Insert       (** insert into the routing key's partition *)

type t = {
  fid : int;             (** position within the transaction *)
  table : int;
  key : int;             (** routing key; for [Insert] it fixes the home
                             partition, the final key may be computed *)
  mode : mode;
  abortable : bool;
  early : bool;          (** safe to hoist to the head of its execution
                             queue: the fragment only reads data no
                             transaction in the workload ever writes
                             (e.g. the TPC-C item table), so reordering
                             cannot change any conflict order.  Lets the
                             planner resolve abort decisions before the
                             updates that depend on them. *)
  mutable commit_dep : bool; (** set by {!Txn.make} *)
  data_deps : int array; (** fids of fragments whose output we consume *)
  op : int;              (** workload-defined opcode *)
  args : int array;      (** immediate arguments *)
}

val make :
  ?abortable:bool ->
  ?early:bool ->
  ?data_deps:int array ->
  ?args:int array ->
  fid:int ->
  table:int ->
  key:int ->
  mode:mode ->
  op:int ->
  unit ->
  t

val updates : t -> bool
(** True for [Write], [Rmw] and [Insert] fragments. *)

val pp : Format.formatter -> t -> unit
