(** Transaction descriptors.

    A transaction is an ordered array of fragments (see {!Fragment}); the
    array order is the intra-transaction program order.  Descriptors are
    generated with their complete fragment list up front — the
    deterministic-processing prerequisite the paper discusses in
    section 2.3. *)

type status =
  | Pending      (** generated, not yet executing *)
  | Active       (** executing *)
  | Committed
  | Aborted      (** logic abort (deterministic) *)

type t = {
  tid : int;                  (** unique, monotone; doubles as timestamp *)
  frags : Fragment.t array;
  n_abortable : int;
  mutable status : status;
  mutable submit_time : int;  (** virtual ns *)
  mutable finish_time : int;
  mutable attempts : int;     (** executions incl. retries (ND protocols) *)
}

val make : tid:int -> Fragment.t array -> t
(** Validates fragment numbering ([frags.(i).fid = i] and data deps point
    backwards) and computes each fragment's [commit_dep] flag. *)

val reset : t -> unit
(** Clear runtime state for re-execution (retry loops). *)

val partitions : Quill_storage.Db.t -> t -> int list
(** Distinct home partitions touched, ascending. *)

val is_read_only : t -> bool
val pp : Format.formatter -> t -> unit
