type t = {
  name : string;
  db : Quill_storage.Db.t;
  new_stream : int -> unit -> Txn.t;
  exec : Exec.ctx -> Txn.t -> Fragment.t -> Exec.outcome;
  describe : string;
}

let exec_txn t ctx txn =
  let n = Array.length txn.Txn.frags in
  let rec go i =
    if i >= n then Exec.Ok
    else
      match t.exec ctx txn txn.Txn.frags.(i) with
      | Exec.Ok -> go (i + 1)
      | (Exec.Abort | Exec.Blocked) as r -> r
  in
  go 0
