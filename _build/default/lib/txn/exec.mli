(** The execution interface between workload logic and engines.

    Workload transaction logic (YCSB ops, TPC-C stored procedures) is
    written once against {!ctx}; every engine — QueCC, the deterministic
    baselines and the non-deterministic protocols — supplies its own
    implementation of the record accessors, which is where concurrency
    control, cost accounting and dependency tracking live. *)

type outcome =
  | Ok
  | Abort          (** deterministic logic abort *)
  | Blocked        (** ND protocols only: conflict, retry the txn *)

type ctx = {
  read : Fragment.t -> int -> int;
      (** [read frag field]: current value of the fragment's record. *)
  write : Fragment.t -> int -> int -> unit;
      (** [write frag field v]. *)
  add : Fragment.t -> int -> int -> unit;
      (** [add frag field delta]: commutative increment.  Engines may
          exploit commutativity (QueCC's speculative mode undoes it by
          inverse delta and records no speculation edges); protocols
          without that notion implement it as read-modify-write. *)
  insert : Fragment.t -> key:int -> int array -> unit;
      (** Insert under the computed key into the fragment's table; the
          fragment's routing key fixed the home partition. *)
  input : int -> int;
      (** [input fid]: output published by an earlier fragment (data
          dependency); may block in the queue-oriented engine when the
          producer runs on another core. *)
  output : int -> int -> unit;
      (** [output fid v]: publish this fragment's output. *)
  found : Fragment.t -> bool;
      (** Does the fragment's record exist (insert-region probes)? *)
}

exception Blocked_exn
(** Raised by ND-protocol accessors on lock conflict / validation
    prefail; engines catch it and retry. *)

val exec_abort : outcome
val exec_ok : outcome
