lib/txn/workload.mli: Exec Fragment Quill_storage Txn
