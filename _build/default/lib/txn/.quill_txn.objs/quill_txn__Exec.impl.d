lib/txn/exec.ml: Fragment
