lib/txn/fragment.ml: Format
