lib/txn/txn.ml: Array Db Format Fragment List Quill_storage
