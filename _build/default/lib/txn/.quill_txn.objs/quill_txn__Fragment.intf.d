lib/txn/fragment.mli: Format
