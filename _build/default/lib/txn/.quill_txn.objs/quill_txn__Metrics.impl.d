lib/txn/metrics.ml: Format Quill_common Stats
