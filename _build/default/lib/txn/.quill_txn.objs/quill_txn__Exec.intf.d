lib/txn/exec.mli: Fragment
