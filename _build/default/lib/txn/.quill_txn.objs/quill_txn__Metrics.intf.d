lib/txn/metrics.mli: Format Quill_common
