lib/txn/txn.mli: Format Fragment Quill_storage
