lib/txn/workload.ml: Array Exec Fragment Quill_storage Txn
