(** Engine-facing workload handle.

    A workload bundles the populated database, per-stream transaction
    generators (one independent deterministic stream per planner or
    worker thread), and the fragment-logic interpreter. *)

type t = {
  name : string;
  db : Quill_storage.Db.t;
  new_stream : int -> unit -> Txn.t;
      (** [new_stream i] returns a generator for stream [i]; streams are
          deterministic and independent.  Transactions carry globally
          unique, monotone-per-stream tids. *)
  exec : Exec.ctx -> Txn.t -> Fragment.t -> Exec.outcome;
      (** Run one fragment's logic through the engine's accessors. *)
  describe : string;
}

val exec_txn : t -> Exec.ctx -> Txn.t -> Exec.outcome
(** Run all fragments in program order against [ctx], stopping at the
    first [Abort] or [Blocked].  The serial reference executor; engines
    with their own scheduling call [exec] per fragment instead. *)
