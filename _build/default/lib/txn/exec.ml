type outcome = Ok | Abort | Blocked

type ctx = {
  read : Fragment.t -> int -> int;
  write : Fragment.t -> int -> int -> unit;
  add : Fragment.t -> int -> int -> unit;
  insert : Fragment.t -> key:int -> int array -> unit;
  input : int -> int;
  output : int -> int -> unit;
  found : Fragment.t -> bool;
}

exception Blocked_exn

let exec_abort = Abort
let exec_ok = Ok
