type mode = Read | Write | Rmw | Insert

type t = {
  fid : int;
  table : int;
  key : int;
  mode : mode;
  abortable : bool;
  early : bool;
  mutable commit_dep : bool;
  data_deps : int array;
  op : int;
  args : int array;
}

let make ?(abortable = false) ?(early = false) ?(data_deps = [||])
    ?(args = [||]) ~fid ~table ~key ~mode ~op () =
  {
    fid;
    table;
    key;
    mode;
    abortable;
    early;
    commit_dep = false;
    data_deps;
    op;
    args;
  }

let updates t =
  match t.mode with Write | Rmw | Insert -> true | Read -> false

let mode_str = function
  | Read -> "R"
  | Write -> "W"
  | Rmw -> "RMW"
  | Insert -> "INS"

let pp fmt t =
  Format.fprintf fmt "f%d[%s t%d k%d%s%s]" t.fid (mode_str t.mode) t.table
    t.key
    (if t.abortable then " abortable" else "")
    (if t.commit_dep then " cdep" else "")
