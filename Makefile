SMOKE_TRACE := /tmp/quill-smoke-trace.json

.PHONY: all build test lint check clean

all: build

build:
	dune build

test:
	dune runtest

# quill-check determinism lint: exits 1 on any unwaived finding.
lint:
	dune exec bin/quill_lint.exe

# Full verification: build, test suite, determinism lint, then a CLI
# smoke run that exports a trace, validates the Chrome trace-event JSON
# actually parses, and replays the planned-order conflict check.
check: build test lint
	dune exec bin/quill_cli.exe -- run --engine quecc --workload ycsb \
	  --txns 2048 --batch 512 --trace $(SMOKE_TRACE) --phase-table \
	  --pipeline --steal --check-conflicts
	python3 -c "import json; d = json.load(open('$(SMOKE_TRACE)')); \
	  assert d['traceEvents'], 'empty trace'; \
	  print('trace ok: %d events' % len(d['traceEvents']))"

clean:
	dune clean
