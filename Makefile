SMOKE_TRACE := /tmp/quill-smoke-trace.json

.PHONY: all build test check clean

all: build

build:
	dune build

test:
	dune runtest

# Full verification: build, test suite, then a CLI smoke run that exports
# a trace and validates the Chrome trace-event JSON actually parses.
check: build test
	dune exec bin/quill_cli.exe -- run --engine quecc --workload ycsb \
	  --txns 2048 --batch 512 --trace $(SMOKE_TRACE) --phase-table
	python3 -c "import json; d = json.load(open('$(SMOKE_TRACE)')); \
	  assert d['traceEvents'], 'empty trace'; \
	  print('trace ok: %d events' % len(d['traceEvents']))"

clean:
	dune clean
