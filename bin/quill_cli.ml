(* Command-line front end: run any engine x workload x parameters and
   print metrics, or replay the paper's experiment suite.

     quill_cli run --engine quecc --workload ycsb --theta 0.9 --threads 8
     quill_cli run --engine tictoc --workload tpcc --warehouses 1
     quill_cli experiments --only table2-row3 --scale 0.5
     quill_cli list-engines *)

open Cmdliner
open Quill_workloads
module E = Quill_harness.Experiment
module R = Quill_harness.Engine_registry

module C = Quill_clients.Clients

(* Any of the four client flags switches the run into open-loop mode:
   seeded generators feed the engine through a bounded admission queue
   instead of the engine pulling from the workload directly. *)
let clients_cfg ~seed arrival admission deadline retries =
  if arrival = None && admission = None && deadline = None && retries = None
  then None
  else begin
    let get name parse = function
      | None -> None
      | Some s -> (
          match parse s with
          | Ok v -> Some v
          | Error msg ->
              Printf.eprintf "quill_cli: bad --%s: %s\n" name msg;
              exit 2)
    in
    let cfg = { C.default with C.seed } in
    let cfg =
      match get "arrival" C.parse_arrival arrival with
      | Some a -> { cfg with C.arrival = a }
      | None -> cfg
    in
    let cfg =
      match get "admission" C.parse_admission admission with
      | Some (policy, depth) -> { cfg with C.policy; depth }
      | None -> cfg
    in
    let cfg =
      match deadline with
      | Some s -> (
          match C.parse_time s with
          | d -> { cfg with C.deadline = d }
          | exception _ ->
              Printf.eprintf
                "quill_cli: bad --deadline %S (want NUM[ns|us|ms|s])\n" s;
              exit 2)
      | None -> cfg
    in
    let cfg =
      match get "retries" C.parse_retries retries with
      | Some (max_retries, backoff) -> { cfg with C.max_retries; backoff }
      | None -> cfg
    in
    Some cfg
  end

let run_cmd engine workload threads txns batch theta mp abort_ratio warehouses
    table_size seed faults_spec arrival admission deadline retries pipeline
    steal split_spec adapt_spec replicas spec_lag wal snapshot_every cdc views
    global_zipf check_conflicts trace_file phase_table =
  if replicas < 0 then begin
    Printf.eprintf
      "quill_cli: bad --replicas %d (want a non-negative backup count)\n"
      replicas;
    exit 2
  end;
  if spec_lag < 1 then begin
    Printf.eprintf
      "quill_cli: bad --spec-lag %d (want a speculation window of at least 1 \
       batch)\n"
      spec_lag;
    exit 2
  end;
  if snapshot_every < 1 then begin
    Printf.eprintf
      "quill_cli: bad --snapshot-every %d (want a period of at least 1 \
       batch)\n"
      snapshot_every;
    exit 2
  end;
  (* --split N: hot-key split threshold, a positive integer. *)
  let split =
    match split_spec with
    | None -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> Some n
        | Some _ | None ->
            Printf.eprintf
              "quill_cli: bad --split %S (want a positive integer threshold)\n"
              s;
            exit 2)
  in
  let adapt_repart, adapt_batch =
    match adapt_spec with
    | None -> (false, false)
    | Some "repart" -> (true, false)
    | Some "batch" -> (false, true)
    | Some "all" -> (true, true)
    | Some s ->
        Printf.eprintf "quill_cli: bad --adapt %S (want repart|batch|all)\n"
          s;
        exit 2
  in
  let faults =
    match faults_spec with
    | None -> Quill_faults.Faults.none
    | Some s -> (
        match Quill_faults.Faults.parse s with
        | Ok f -> f
        | Error msg ->
            Printf.eprintf "quill_cli: bad --faults spec: %s\n" msg;
            exit 2)
  in
  match E.engine_of_string engine with
  | None ->
      Printf.eprintf "unknown engine %s; known engines: %s\n" engine
        (String.concat ", " (R.names ()));
      exit 2
  | Some e ->
      (* Capability validation happens in Experiment.run's single
         chokepoint; Invalid_argument is mapped to exit 2 below. *)
      let clients = clients_cfg ~seed arrival admission deadline retries in
      let spec =
        match workload with
        | "ycsb" ->
            E.Ycsb
              {
                Ycsb.default with
                Ycsb.table_size;
                nparts = threads;
                theta;
                mp_ratio = mp;
                abort_ratio;
                abort_threshold = 128;
                global_zipf;
                seed;
              }
        | "tpcc" ->
            E.Tpcc
              (Tpcc.payment_mix
                 {
                   Tpcc.default with
                   Tpcc_defs.warehouses;
                   nparts = threads;
                   seed;
                 })
        | "tpcc-full" ->
            E.Tpcc
              { Tpcc.default with Tpcc_defs.warehouses; nparts = threads; seed }
        | w ->
            Printf.eprintf "unknown workload %s (ycsb|tpcc|tpcc-full)\n" w;
            exit 2
      in
      let exp =
        E.make ~threads ~txns ~batch_size:batch ~faults ?clients ~pipeline
          ~steal ?split ~adapt_repart ~adapt_batch ~replicas ~spec_lag ~wal
          ~snapshot_every ~cdc ~views e spec
      in
      let tracer =
        match trace_file with
        | Some _ -> Quill_trace.Trace.create ()
        | None -> Quill_trace.Trace.null
      in
      let recorder =
        if check_conflicts then Some (Quill_analysis.Access_log.create ())
        else None
      in
      let m = E.run ~tracer ?recorder exp in
      Format.printf "%s on %s:@.  %a@." engine workload
        Quill_txn.Metrics.pp m;
      if Quill_txn.Metrics.clients_active m then
        Format.printf "  %a@." Quill_txn.Metrics.pp_clients m;
      if Quill_txn.Metrics.replicated m then
        Format.printf "  %a@." Quill_txn.Metrics.pp_replication m;
      if Quill_txn.Metrics.walled m then
        Format.printf "  %a@." Quill_txn.Metrics.pp_wal m;
      if Quill_txn.Metrics.cdc_active m then
        Format.printf "  %a@." Quill_txn.Metrics.pp_cdc m;
      Quill_harness.Report.print_table ~title:"result"
        [ { Quill_harness.Report.label = engine; metrics = m } ];
      if phase_table then
        Quill_harness.Report.print_phase_table ~title:"result"
          [ { Quill_harness.Report.label = engine; metrics = m } ];
      (match trace_file with
      | Some path ->
          Quill_trace.Trace.write_file tracer path;
          Printf.printf "trace: %d events written to %s\n"
            (Quill_trace.Trace.num_events tracer) path
      | None -> ());
      match recorder with
      | None -> ()
      | Some log ->
          let module CC = Quill_analysis.Conflict_check in
          let r = CC.check_log log in
          Format.printf "[conflict-check] %s: %a@." engine CC.pp_report r;
          if r.CC.r_rows = 0 && r.CC.r_probes = 0 then
            Format.printf
              "[conflict-check] note: %s does not record accesses (only \
               the QueCC family does)@."
              engine;
          if not (CC.ok r) then exit 1

let experiments_cmd only scale check_conflicts =
  let module X = Quill_harness.Experiments in
  X.check_conflicts := check_conflicts;
  match only with
  | None -> X.all ~scale ()
  | Some "table2-row1" -> X.table2_row1 ~scale ()
  | Some "table2-row2" -> X.table2_row2 ~scale ()
  | Some "table2-row3" -> X.table2_row3 ~scale ()
  | Some "fig-contention" -> X.fig_contention ~scale ()
  | Some "fig-scalability" -> X.fig_scalability ~scale ()
  | Some "fig-modes" -> X.fig_modes ~scale ()
  | Some "fig-latency" -> X.fig_latency ~scale ()
  | Some "fig-batch" -> X.fig_batch ~scale ()
  | Some "pipeline" -> X.pipeline ~scale ()
  | Some "skew" -> X.skew ~scale ()
  | Some "fault-tolerance" -> X.fault_tolerance ~scale ()
  | Some "failover" -> X.failover ~scale ()
  | Some "durability" -> X.durability ~scale ()
  | Some "cdc" -> X.cdc ~scale ()
  | Some "overload" -> X.overload ~scale ()
  | Some other ->
      Printf.eprintf "unknown experiment %s\n" other;
      exit 2

(* Each engine name with the capability set its module advertises, so
   the listing answers "which flags does this engine honor" directly. *)
let list_engines_cmd () =
  List.iter
    (fun name ->
      let probe =
        match R.engine_of_string name with
        | Some _ as e -> e
        | None -> (
            (* the dist-*-<n>n placeholder rows parse once <n> is a number *)
            match String.index_opt name '<' with
            | Some i when String.length name > i + 2 ->
                R.engine_of_string
                  (String.sub name 0 i ^ "2"
                  ^ String.sub name (i + 3) (String.length name - i - 3))
            | _ -> None)
      in
      match probe with
      | None -> print_endline name
      | Some e ->
          let (module M : Quill_harness.Engine_intf.S) = R.resolve e in
          Printf.printf "%-16s %s\n" name
            (Quill_harness.Capability.set_to_string M.caps))
    (R.names ())

(* -- cmdliner wiring -- *)

(* --help sections, one per engine capability (plus workload shape and
   observability), so the flag groups mirror the Capability sets the
   chokepoint validates against. *)
let s_workload = "WORKLOAD AND SCALE"
let s_exec = "EXECUTION (quecc family)"
let s_faults = "FAULT INJECTION (faults capability)"
let s_clients = "OPEN-LOOP CLIENTS (clients capability)"
let s_wal = "DURABILITY (wal capability)"
let s_cdc = "CHANGE DATA CAPTURE (cdc capability)"
let s_repl = "REPLICATION (replication capability)"
let s_obs = "OBSERVABILITY"

let engine_t =
  Arg.(
    (* lint: engine-name-ok — CLI default, parsed back through the registry *)
    value & opt string "quecc"
    & info [ "engine"; "e" ]
        ~doc:
          (Printf.sprintf "Engine name: %s."
             (String.concat ", " (R.names ()))))

let workload_t =
  Arg.(
    value & opt string "ycsb"
    & info [ "workload"; "w" ] ~docs:s_workload ~doc:"ycsb | tpcc | tpcc-full.")

let threads_t =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docs:s_workload ~doc:"Virtual cores.")

let txns_t =
  Arg.(value & opt int 20_000 & info [ "txns"; "n" ] ~docs:s_workload ~doc:"Transactions.")

let batch_t =
  Arg.(value & opt int 1024 & info [ "batch" ] ~docs:s_workload ~doc:"Batch size.")

let theta_t =
  Arg.(value & opt float 0.0 & info [ "theta" ] ~docs:s_workload ~doc:"YCSB zipfian skew.")

let mp_t =
  Arg.(
    value & opt float 0.0
    & info [ "mp" ] ~docs:s_workload ~doc:"YCSB multi-partition transaction fraction.")

let abort_t =
  Arg.(
    value & opt float 0.0
    & info [ "abort-ratio" ] ~docs:s_workload ~doc:"YCSB abortable-fragment fraction.")

let warehouses_t =
  Arg.(value & opt int 1 & info [ "warehouses" ] ~docs:s_workload ~doc:"TPC-C warehouses.")

let table_size_t =
  Arg.(value & opt int 100_000 & info [ "table-size" ] ~docs:s_workload ~doc:"YCSB rows.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~docs:s_workload ~doc:"Random seed.")

let faults_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docs:s_faults ~docv:"SPEC"
        ~doc:
          "Deterministic fault plan for the distributed engines, e.g. \
           'crash@t=5ms:node=1,drop=0.01,seed=7'.  Clauses: \
           crash@t=TIME[:node=N][:down=TIME], \
           part@t=TIME:a=N:b=N:until=TIME, drop=P, dup=P, \
           delay=P[:by=TIME], seed=N, retries=N, rto=TIME.")

let arrival_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "arrival" ] ~docs:s_clients ~docv:"RATE"
        ~doc:
          "Open-loop client arrivals: a Poisson rate in txn/s (e.g. \
           '250000') or 'burst:RATE:ON:OFF' for an on/off source (ON/OFF \
           in NUM[ns|us|ms|s]).  Any client flag switches the run from \
           closed-loop to open-loop.")

let admission_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "admission" ] ~docs:s_clients ~docv:"POLICY[:DEPTH]"
        ~doc:
          "Admission-queue policy when full: 'block' (backpressure), \
           'shed' (drop oldest), 'shed-newest' (drop incoming), \
           'deadline' (drop expired, else incoming).  DEPTH bounds the \
           per-node queue (default 1024).")

let deadline_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "deadline" ] ~docs:s_clients ~docv:"TIME"
        ~doc:
          "Per-transaction deadline from first offer, NUM[ns|us|ms|s]; \
           expired transactions are dropped and counted as misses.")

let retries_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "retries" ] ~docs:s_clients ~docv:"N[:BACKOFF]"
        ~doc:
          "Abort-retry budget per transaction with seeded exponential \
           backoff starting at BACKOFF (NUM[ns|us|ms|s], default 2us).")

let pipeline_t =
  Arg.(
    value & flag
    & info [ "pipeline" ] ~docs:s_exec
        ~doc:
          "QueCC engines: overlap planning of batch N+1 with execution of \
           batch N (committed state stays bit-identical per seed).  \
           Ignored by engines without a planning phase.")

let steal_t =
  Arg.(
    value & flag
    & info [ "steal" ] ~docs:s_exec
        ~doc:
          "QueCC: let drained executors steal whole queues whose key \
           signatures are disjoint from every unfinished queue of the \
           victim (deterministic outcome preserved).")

let split_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "split" ] ~docs:s_exec ~docv:"N"
        ~doc:
          "QueCC: split any key planned N+ times in one batch slice into ordered sub-queues executed chain-serially across executors (committed state stays bit-identical per seed; see DESIGN.md section 12).  N is a positive integer op-count threshold.")

let adapt_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "adapt" ] ~docs:s_exec ~docv:"repart|batch|all"
        ~doc:
          "QueCC adaptive planning: 'repart' rebalances key-to-executor routing between batches from queue-depth counters (state-identical); 'batch' auto-tunes the batch size from pipeline stall counters (pipelined closed-loop runs only; alters the schedule); 'all' enables both.")

let replicas_t =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docs:s_repl ~docv:"R"
        ~doc:
          "HA replication (single-node dist-quecc only): stream each \
           planned batch and its commit marker to R backup nodes that \
           speculatively execute ahead of visibility; on a leader crash \
           (--faults crash@...) the lowest-id live backup takes over with \
           zero lost committed transactions.  0 disables replication.")

let spec_lag_t =
  Arg.(
    value & opt int 1
    & info [ "spec-lag" ] ~docs:s_repl ~docv:"N"
        ~doc:
          "HA replication: how many batches past the newest commit marker \
           a backup may speculatively execute before waiting (>= 1).  \
           Larger windows hide replication latency at the cost of more \
           rollback work on failover.")

let wal_t =
  Arg.(
    value & flag
    & info [ "wal" ] ~docs:s_wal
        ~doc:
          "Durable group-commit write-ahead log (serial and the quecc \
           family): every committed batch's row images are logged and \
           hardened with one modeled fsync at the batch commit point.  \
           Enables crash (--faults crash@...) and disk-fault (torn@, \
           fsync-fail@, corrupt@) recovery on centralized engines: the \
           run rebuilds from the newest snapshot plus the log, \
           bit-identical at the last durable batch.")

let snapshot_every_t =
  Arg.(
    value & opt int 8
    & info [ "snapshot-every" ] ~docs:s_wal ~docv:"N"
        ~doc:
          "WAL snapshot period in durable batches (>= 1): after every \
           N-th durable batch the database is snapshotted and the log \
           truncated, bounding replay length and log size.")

let cdc_t =
  Arg.(
    value & flag
    & info [ "cdc" ] ~docs:s_cdc
        ~doc:
          "Ordered change-data-capture (serial and the quecc family): \
           hook a subscription hub at the batch commit point and stream \
           each batch's canonical change set — one (before, after) event \
           per distinct row, in deterministic commit order — to \
           subscribers.  A bounded-staleness read-replica cache consumes \
           the feed (at most 4 batches behind) and is checked against \
           committed state after the run.  The feed is byte-identical \
           across lockstep, pipelined, stealing and split-queue runs of \
           the same seed.  Cannot be combined with crash/disk faults.")

let views_t =
  Arg.(
    value & flag
    & info [ "views" ] ~docs:s_cdc
        ~doc:
          "Additionally maintain a materialized per-partition aggregate \
           view (SUM of table 0 field 0; the per-warehouse w_ytd total \
           for TPC-C) incrementally from the CDC feed, verified against \
           a full recompute whenever the view catches up.  Implies \
           --cdc.")

let global_zipf_t =
  Arg.(
    value & flag
    & info [ "global-zipf" ] ~docs:s_workload
        ~doc:
          "YCSB: draw keys zipfian over the whole table instead of within a per-transaction partition, so every stream hits the same hottest keys (the adaptive-planning worst case).")

let check_conflicts_t =
  Arg.(
    value & flag
    & info [ "check-conflicts" ] ~docs:s_obs
        ~doc:
          "Record every row access and verify the planned-order \
           invariants after the run (plan does no row access, \
           conflicting accesses follow planned queue priority, stolen \
           queues are key-disjoint).  Prints a conflict-check report; \
           exits 1 on any violation.  Only the QueCC-family engines \
           record; recording never affects virtual time.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docs:s_obs ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON file of the run.")

let phase_table_t =
  Arg.(
    value & flag
    & info [ "phase-table" ] ~docs:s_obs
        ~doc:"Print the per-phase busy / idle-cause breakdown.")

let run_term =
  Term.(
    const run_cmd $ engine_t $ workload_t $ threads_t $ txns_t $ batch_t
    $ theta_t $ mp_t $ abort_t $ warehouses_t $ table_size_t $ seed_t
    $ faults_t $ arrival_t $ admission_t $ deadline_t $ retries_t
    $ pipeline_t $ steal_t $ split_t $ adapt_t $ replicas_t $ spec_lag_t
    $ wal_t $ snapshot_every_t $ cdc_t $ views_t $ global_zipf_t
    $ check_conflicts_t $ trace_t $ phase_table_t)

let only_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "only" ] ~doc:"Run a single experiment by id.")

let scale_t =
  Arg.(value & opt float 0.5 & info [ "scale" ] ~doc:"Scale factor.")

let experiments_term =
  Term.(const experiments_cmd $ only_t $ scale_t $ check_conflicts_t)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run one engine on one workload.") run_term;
    Cmd.v
      (Cmd.info "experiments" ~doc:"Replay the paper's experiment suite.")
      experiments_term;
    Cmd.v
      (Cmd.info "list-engines" ~doc:"List available engines.")
      Term.(const list_engines_cmd $ const ());
  ]

(* Errors exit 2 with a one-line hint: cmdliner's multi-line usage dump
   is collapsed to its first line, and stray Invalid_argument / Failure
   from the engines (e.g. a fault plan naming a node that doesn't
   exist) are reported without a backtrace. *)
let () =
  let info =
    Cmd.info "quill_cli" ~version:"1.0"
      ~doc:"Queue-oriented deterministic transaction processing testbed"
  in
  let err_buf = Buffer.create 256 in
  let err = Format.formatter_of_buffer err_buf in
  let rc =
    try Cmd.eval ~catch:false ~err (Cmd.group info cmds) with
    | Invalid_argument msg | Failure msg ->
        Printf.eprintf "quill_cli: %s\n" msg;
        2
  in
  Format.pp_print_flush err ();
  if rc = Cmd.Exit.cli_error then begin
    let first_line =
      match
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (Buffer.contents err_buf))
      with
      | l :: _ -> String.trim l
      | [] -> "quill_cli: invalid command line"
    in
    Printf.eprintf "%s (try 'quill_cli --help')\n" first_line;
    exit 2
  end
  else begin
    prerr_string (Buffer.contents err_buf);
    exit rc
  end
