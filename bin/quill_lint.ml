(* quill-check determinism lint driver.

     quill_lint [DIR ...]

   Walks every [.ml] under the given roots (default: lib bin bench),
   runs {!Quill_analysis.Lint.lint_file} on each and prints one
   machine-readable line per finding ([file:line: [RULE] message]).
   Exits 1 if any finding survives, 0 on a clean tree.

   The engine-name list for rule D4 comes from the live registry, so a
   newly registered engine is linted without touching this driver;
   pattern entries like "dist-quecc-<n>n" are skipped (they are help
   text, not literals anyone could hardcode). *)

let roots = ref []

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || (String.length entry > 0 && entry.[0] = '.')
        then acc
        else walk acc (Filename.concat path entry))
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  Arg.parse []
    (fun d -> roots := d :: !roots)
    "quill_lint [DIR ...]  (default roots: lib bin bench)";
  let roots =
    match List.rev !roots with [] -> [ "lib"; "bin"; "bench" ] | rs -> rs
  in
  let engine_names =
    List.filter
      (fun n -> not (String.contains n '<'))
      (Quill_harness.Engine_registry.names ())
  in
  let files =
    List.concat_map
      (fun r -> if Sys.file_exists r then List.rev (walk [] r) else [])
      roots
  in
  let findings =
    List.concat_map (fun f -> Quill_analysis.Lint.lint_file ~engine_names f)
      files
  in
  let findings = List.sort Quill_analysis.Lint.compare_finding findings in
  List.iter
    (fun f -> Format.printf "%a@." Quill_analysis.Lint.pp_finding f)
    findings;
  Printf.printf "quill_lint: %d file(s), %d finding(s)\n" (List.length files)
    (List.length findings);
  if findings <> [] then exit 1
